// Ablation for the paper's §4.2 suggestion: "keep information about which
// states were reached during the search in a hash table, to prevent the
// analysis of the same state twice" — extended with the hash-COST ablation
// for the incremental (trail-maintained) hash implementation.
//
// Two sections, both written to BENCH_hashing.json (or argv[1]):
//
//   micro  - per-hash cost of MachineState::hash() (full recursive walk)
//            vs hash_cached() with one dirty slot per hash and with a
//            clean cache (pure combine). This is the per-node cost the
//            incremental path is designed to cut.
//   macro  - invalid TP0 traces (the exponential-interleaving workload
//            where hashing prunes reconverging permutations) across all
//            four order presets (NR/IO/IP/FULL, §2.4.2): hashing off as
//            the baseline, then hash-dfs on with hash_impl full vs
//            incremental. Verdicts and counters must agree pairwise —
//            the impls are bit-identical by contract — so the only column
//            allowed to move is CPUT.
//
// `--smoke` shrinks sizes/iterations for the CI validity check (the JSON
// must parse and contain both impl variants; numbers are not judged).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/machine.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"

namespace {

using namespace tango;

struct Preset {
  const char* name;
  core::Options options;
};

struct MacroRow {
  const char* order;
  int n;
  bool hashing;
  core::HashImpl impl;
  core::DfsResult result;
};

struct Micro {
  int iterations = 0;
  std::size_t vars = 0;
  double full_ns = 0;
  double dirty_ns = 0;
  double clean_ns = 0;
};

double ns_per_iter(std::chrono::steady_clock::time_point t0,
                   std::chrono::steady_clock::time_point t1, int iters) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return static_cast<double>(ns) / iters;
}

/// Per-hash cost on the TP0 initial machine: between hashes, one module
/// variable is stored through the same note_var_write hook the
/// interpreter uses, so the incremental path rehashes exactly one
/// component per call.
Micro run_micro(const est::Spec& spec, int iters) {
  Micro m;
  m.iterations = iters;
  rt::MachineState machine = rt::make_initial_machine(spec);
  machine.fsm_state = 0;
  m.vars = machine.vars.size();
  const int slots = static_cast<int>(machine.vars.size());
  std::uint64_t sink = 0;

  auto mutate = [&](int i) {
    const int slot = slots > 0 ? i % slots : -1;
    if (slot >= 0) {
      machine.note_var_write(slot);
      machine.vars[static_cast<std::size_t>(slot)] =
          rt::Value::make_int(i & 0xff);
    }
  };

  // Warm both paths (and build the cache) outside the timed regions.
  sink ^= machine.hash();
  sink ^= machine.hash_cached();

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    mutate(i);
    sink ^= machine.hash();
  }
  auto t1 = std::chrono::steady_clock::now();
  m.full_ns = ns_per_iter(t0, t1, iters);

  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    mutate(i);
    sink ^= machine.hash_cached();
  }
  t1 = std::chrono::steady_clock::now();
  m.dirty_ns = ns_per_iter(t0, t1, iters);

  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) sink ^= machine.hash_cached();
  t1 = std::chrono::steady_clock::now();
  m.clean_ns = ns_per_iter(t0, t1, iters);

  if (sink == 0x5eed) std::printf("(ignore)\n");  // keep the loops alive
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_hashing.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  est::Spec spec = bench::load("tp0");

  std::printf("State-hashing ablation (§4.2 pruning + incremental cost)\n\n");

  const Micro micro = run_micro(spec, smoke ? 20'000 : 2'000'000);
  std::printf("micro: per-hash cost, TP0 machine, %zu vars, %d iters\n",
              micro.vars, micro.iterations);
  std::printf("  full walk          %8.1f ns/hash\n", micro.full_ns);
  std::printf("  incremental dirty  %8.1f ns/hash  (one slot stored)\n",
              micro.dirty_ns);
  std::printf("  incremental clean  %8.1f ns/hash  (pure combine)\n\n",
              micro.clean_ns);

  const std::vector<Preset> presets = {{"NR", core::Options::none()},
                                       {"IO", core::Options::io()},
                                       {"IP", core::Options::ip()},
                                       {"FULL", core::Options::full()}};
  const std::vector<int> sizes = smoke ? std::vector<int>{2}
                                       : std::vector<int>{2, 3, 4};

  std::vector<MacroRow> rows;
  std::printf("macro: invalid TP0, hash-dfs ablation per order preset\n");
  std::printf("%-5s %-8s %-12s ", "order", "hashing", "impl");
  bench::print_header("n");
  for (const Preset& preset : presets) {
    for (int n : sizes) {
      tr::Trace bad =
          sim::mutate_last_output_param(sim::tp0_paper_trace(spec, n));
      struct Variant {
        bool hashing;
        core::HashImpl impl;
      };
      const Variant variants[] = {
          {false, core::HashImpl::Full},
          {true, core::HashImpl::Full},
          {true, core::HashImpl::Incremental},
      };
      for (const Variant& v : variants) {
        core::Options opts = preset.options;
        opts.hash_states = v.hashing;
        opts.hash_impl = v.impl;
        opts.max_transitions = 30'000'000;
        MacroRow row{preset.name, n, v.hashing, v.impl,
                     core::analyze(spec, bad, opts)};
        std::printf("%-5s %-8s %-12s ", preset.name,
                    v.hashing ? "on" : "off",
                    v.hashing ? std::string(core::to_string(v.impl)).c_str()
                              : "-");
        bench::print_row(n, row.result);
        rows.push_back(std::move(row));
      }
    }
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"hashing\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n";
  json << "  \"micro\": {\"iterations\": " << micro.iterations
       << ", \"vars\": " << micro.vars
       << ", \"ns_per_hash\": {\"full\": " << micro.full_ns
       << ", \"incremental_dirty_slot\": " << micro.dirty_ns
       << ", \"incremental_clean\": " << micro.clean_ns << "}},\n";
  json << "  \"macro\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MacroRow& row = rows[i];
    json << "    {\"order\": \"" << row.order << "\", \"n\": " << row.n
         << ", \"hashing\": " << (row.hashing ? "true" : "false")
         << ", \"hash_impl\": \""
         << (row.hashing ? core::to_string(row.impl) : "-")
         << "\", \"verdict\": \"" << core::to_string(row.result.verdict)
         << "\", \"stats\": " << row.result.stats.to_json() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", json_path);
  return 0;
}
