// Ablation for the paper's §4.2 suggestion: "keep information about which
// states were reached during the search in a hash table, to prevent the
// analysis of the same state twice". Invalid TP0 traces are exactly the
// workload where the exponential interleaving blowup bites; hashing prunes
// permutations that reconverge to the same composite state.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"

int main() {
  using namespace tango;
  est::Spec spec = bench::load("tp0");

  std::printf("State-hashing ablation on invalid TP0 traces (§4.2)\n\n");
  std::printf("%-10s ", "hashing");
  bench::print_header("n");

  for (int n : {2, 3, 4}) {
    tr::Trace bad =
        sim::mutate_last_output_param(sim::tp0_paper_trace(spec, n));
    for (bool hash : {false, true}) {
      core::Options opts = core::Options::none();
      opts.hash_states = hash;
      opts.max_transitions = 30'000'000;
      core::DfsResult r = core::analyze(spec, bad, opts);
      std::printf("%-10s ", hash ? "on" : "off");
      bench::print_row(n, r);
      if (hash) {
        std::printf("%10s pruned-by-hash=%llu\n", "",
                    static_cast<unsigned long long>(
                        r.stats.pruned_by_hash));
      }
    }
  }
  return 0;
}
