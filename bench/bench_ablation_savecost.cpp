// Micro-benchmarks (google-benchmark) for the §3.2.2 cost model: saving
// and restoring states that carry dynamic memory is substantially more
// expensive than scalar-only states, which is why the paper recommends
// static-mode analysis for heap-heavy specifications. Also measures the
// generate operation's dependence on the number of transition
// declarations (the §4 transitions/second observation).
// The copy-vs-trail benchmarks below quantify the undo-log alternative:
// save() under trail checkpointing is an O(1) mark instead of a deep copy,
// so its cost is flat in heap size, and branching-heavy searches spend
// their time executing transitions instead of duplicating states.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/checkpoint.hpp"
#include "core/dfs.hpp"
#include "core/executor.hpp"
#include "core/generator.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace tango;

est::Spec& spec_of(const char* name) {
  static std::map<std::string, est::Spec> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache
             .emplace(name,
                      est::compile_spec(specs::builtin_spec(name)))
             .first;
  }
  return it->second;
}

/// Builds a TP0 search state whose buffers hold `cells` heap cells.
core::SearchState tp0_state_with_heap(int cells) {
  est::Spec& spec = spec_of("tp0");
  rt::Interp interp(spec);
  tr::Trace trace(static_cast<int>(spec.ips.size()));
  trace.mark_eof();
  const core::Options ro_opts = core::Options::none();
  core::ResolvedOptions ro(spec, ro_opts);
  core::Stats stats;
  core::InitResult init = core::apply_initializer(interp, trace, ro, 0,
                                                  stats);
  // Drive t13 by hand: enqueue `cells` data values through the interpreter.
  const est::Transition* t13 = nullptr;
  for (const est::Transition& t : spec.body().transitions) {
    if (t.name == "t13") t13 = &t;
  }
  init.state.machine.fsm_state = spec.state_ordinal("data_state");
  rt::NullSink sink;
  for (int i = 0; i < cells; ++i) {
    interp.fire(init.state.machine, *t13, {rt::Value::make_int(i)}, sink);
  }
  return std::move(init.state);
}

void BM_SaveRestore_HeapState(benchmark::State& state) {
  core::SearchState st = tp0_state_with_heap(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::SearchState saved = st;  // save
    benchmark::DoNotOptimize(saved);
    st = std::move(saved);  // restore
  }
  state.SetLabel(std::to_string(st.machine.heap.live_cells()) +
                 " heap cells");
}
BENCHMARK(BM_SaveRestore_HeapState)->Arg(0)->Arg(8)->Arg(64)->Arg(512);

void BM_SaveRestore_ScalarState(benchmark::State& state) {
  // LAPD: arrays and scalars, no dynamic memory.
  est::Spec& spec = spec_of("lapd");
  rt::Interp interp(spec);
  tr::Trace trace(static_cast<int>(spec.ips.size()));
  trace.mark_eof();
  const core::Options ro_opts = core::Options::none();
  core::ResolvedOptions ro(spec, ro_opts);
  core::Stats stats;
  core::InitResult init =
      core::apply_initializer(interp, trace, ro, 0, stats);
  core::SearchState st = std::move(init.state);
  for (auto _ : state) {
    core::SearchState saved = st;
    benchmark::DoNotOptimize(saved);
    st = std::move(saved);
  }
}
BENCHMARK(BM_SaveRestore_ScalarState);

void BM_CheckpointSave(benchmark::State& state, core::CheckpointMode mode) {
  // One save+forget pair through the Checkpointer interface: copy mode
  // deep-copies the state, trail mode records an O(1) mark.
  core::SearchState st = tp0_state_with_heap(static_cast<int>(state.range(0)));
  core::Stats stats;
  std::unique_ptr<core::Checkpointer> ckpt =
      core::make_checkpointer(mode, stats);
  for (auto _ : state) {
    const std::size_t mark = ckpt->save(st);
    benchmark::DoNotOptimize(mark);
    ckpt->forget(mark);
  }
  state.SetLabel(std::to_string(st.machine.heap.live_cells()) +
                 " heap cells");
}
BENCHMARK_CAPTURE(BM_CheckpointSave, copy, core::CheckpointMode::Copy)
    ->Arg(0)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK_CAPTURE(BM_CheckpointSave, trail, core::CheckpointMode::Trail)
    ->Arg(0)->Arg(8)->Arg(64)->Arg(512);

void BM_AnalyzeInvalidTp0Checkpoint(benchmark::State& state,
                                    core::CheckpointMode mode) {
  // Branching-heavy end-to-end workload: the Figure-4 invalid TP0 trace
  // without order checking backtracks massively, so nearly every node
  // branches and pays a save. This is where the checkpoint implementation
  // dominates (§3.2.2's save-cost observation).
  est::Spec& spec = spec_of("tp0");
  tr::Trace bad = sim::mutate_last_output_param(
      sim::tp0_paper_trace(spec, static_cast<int>(state.range(0))));
  core::Options opts = core::Options::none();
  opts.checkpoint = mode;
  opts.max_transitions = 30'000'000;
  std::uint64_t saves = 0;
  for (auto _ : state) {
    core::DfsResult r = core::analyze(spec, bad, opts);
    saves = r.stats.saves;
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(saves) + " saves/analysis");
}
BENCHMARK_CAPTURE(BM_AnalyzeInvalidTp0Checkpoint, copy,
                  core::CheckpointMode::Copy)->Arg(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AnalyzeInvalidTp0Checkpoint, trail,
                  core::CheckpointMode::Trail)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Generate(benchmark::State& state, const char* name,
                 const char* trace_text) {
  est::Spec& spec = spec_of(name);
  rt::Interp interp(spec);
  tr::Trace trace = tr::parse_trace(spec, trace_text);
  const core::Options ro_opts = core::Options::none();
  core::ResolvedOptions ro(spec, ro_opts);
  core::Stats stats;
  core::InitResult init =
      core::apply_initializer(interp, trace, ro, 0, stats);
  for (auto _ : state) {
    core::GenResult g =
        core::generate(interp, trace, ro, init.state, stats);
    benchmark::DoNotOptimize(g);
  }
  state.SetLabel(std::to_string(spec.body().transitions.size()) +
                 " transition declarations");
}
BENCHMARK_CAPTURE(BM_Generate, ack, "ack", "in a.x\n");
BENCHMARK_CAPTURE(BM_Generate, tp0, "tp0", "in u.tconreq\nout n.cr\n");
BENCHMARK_CAPTURE(BM_Generate, lapd, "lapd", "in u.dl_establish_req\n");

void BM_AnalyzeValidLapd(benchmark::State& state) {
  est::Spec& spec = spec_of("lapd");
  tr::Trace trace =
      sim::lapd_trace(spec, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::DfsResult r = core::analyze(spec, trace, core::Options::full());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AnalyzeValidLapd)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Complexity(benchmark::oN);

void BM_AnalyzeValidTp0(benchmark::State& state) {
  est::Spec& spec = spec_of("tp0");
  tr::Trace trace = sim::tp0_trace(
      spec, static_cast<int>(state.range(0)),
      static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    core::DfsResult r = core::analyze(spec, trace, core::Options::full());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AnalyzeValidTp0)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
