// Analysis-server throughput (docs/SERVER.md §deployment): an in-process
// `serve` pool on a loopback ephemeral port, hammered by 1 / 4 / 16
// concurrent submit clients cycling through the golden traces. Reports
// sessions/sec and per-session latency quantiles (connect -> final
// verdict) per concurrency level; every session's verdict is checked
// against the golden's expected value, so the numbers measure *correct*
// sessions only.
//
// Results go to stdout as a table and to BENCH_server.json (or the path
// in argv[1]) for EXPERIMENTS.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Golden {
  const char* trace_file;
  const char* spec_ref;
  const char* expected;
  std::string text;
};

std::vector<Golden> load_goldens() {
  std::vector<Golden> goldens = {
      {"abp_valid.tr", "builtin:abp", "valid", ""},
      {"abp_invalid.tr", "builtin:abp", "invalid", ""},
      {"ack_paper.tr", "builtin:ack", "valid", ""},
      {"inres_valid.tr", "builtin:inres", "valid", ""},
      {"tp0_valid.tr", "builtin:tp0", "valid", ""},
  };
  for (Golden& g : goldens) {
    std::ifstream file(std::string(TANGO_TRACES_DIR) + "/" + g.trace_file);
    if (!file.good()) {
      std::fprintf(stderr, "cannot open %s\n", g.trace_file);
      std::exit(1);
    }
    std::stringstream text;
    text << file.rdbuf();
    g.text = text.str();
  }
  return goldens;
}

struct LevelResult {
  int clients = 0;
  std::size_t sessions = 0;
  std::size_t failures = 0;
  double wall_seconds = 0.0;
  double sessions_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

LevelResult run_level(tango::srv::Server& server,
                      const std::vector<Golden>& goldens, int clients,
                      std::size_t sessions_per_client) {
  std::mutex mu;
  std::vector<double> latencies_ms;
  std::size_t failures = 0;

  const auto start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    pool.emplace_back([&, t] {
      std::vector<double> local;
      std::size_t local_failures = 0;
      for (std::size_t i = 0; i < sessions_per_client; ++i) {
        const Golden& g =
            goldens[(static_cast<std::size_t>(t) + i) % goldens.size()];
        tango::srv::SubmitOptions o;
        o.port = server.port();
        o.spec = g.spec_ref;
        o.max_transitions = 200'000;
        const auto t0 = Clock::now();
        const tango::srv::SubmitResult r = tango::srv::submit_trace(g.text, o);
        const auto t1 = Clock::now();
        if (!r.completed || r.final_status != g.expected) {
          ++local_failures;
          continue;
        }
        local.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      const std::lock_guard<std::mutex> lock(mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      failures += local_failures;
    });
  }
  for (std::thread& th : pool) th.join();
  const auto end = Clock::now();

  LevelResult r;
  r.clients = clients;
  r.sessions = latencies_ms.size();
  r.failures = failures;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.sessions_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(r.sessions) / r.wall_seconds
                         : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  r.p50_ms = quantile(latencies_ms, 0.50);
  r.p95_ms = quantile(latencies_ms, 0.95);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_server.json";
  const std::vector<Golden> goldens = load_goldens();

  auto registry = std::make_shared<const tango::srv::SpecRegistry>(
      tango::srv::SpecRegistry::with_builtins());
  tango::srv::ServerConfig config;
  config.workers = 8;
  config.queue_max = 128;  // measure service time, not rejection rate
  tango::srv::Server server(std::move(registry), config);
  server.start();

  constexpr int kLevels[] = {1, 4, 16};
  constexpr std::size_t kSessionsPerLevel = 160;

  std::vector<LevelResult> results;
  std::printf("%8s %10s %12s %10s %10s %10s\n", "clients", "sessions",
              "sessions/s", "p50 ms", "p95 ms", "failures");
  for (const int clients : kLevels) {
    const LevelResult r = run_level(
        server, goldens, clients,
        kSessionsPerLevel / static_cast<std::size_t>(clients));
    std::printf("%8d %10zu %12.1f %10.3f %10.3f %10zu\n", r.clients,
                r.sessions, r.sessions_per_sec, r.p50_ms, r.p95_ms,
                r.failures);
    results.push_back(r);
  }
  server.shutdown();

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"server_throughput\",\n  \"workers\": "
       << config.workers << ",\n  \"levels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    json << "    {\"clients\": " << r.clients
         << ", \"sessions\": " << r.sessions
         << ", \"failures\": " << r.failures << ", \"wall_seconds\": "
         << r.wall_seconds << ", \"sessions_per_sec\": " << r.sessions_per_sec
         << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", json_path);

  std::size_t total_failures = 0;
  for (const LevelResult& r : results) total_failures += r.failures;
  return total_failures == 0 ? 0 : 1;
}
