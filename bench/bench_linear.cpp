// Verifies the §2.4.2 claim that with relative order checking enabled,
// valid-trace analysis runs in time linear in the trace length ("most
// non-spontaneous transitions become deterministic"). Prints TE and the
// TE-per-event ratio, which must stay flat as traces grow.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/workloads.hpp"

int main() {
  using namespace tango;

  std::printf("Valid-trace analysis scaling under FULL order checking "
              "(§2.4.2)\n\n");

  {
    est::Spec spec = bench::load("lapd");
    std::printf("[lapd]\n%5s %8s %10s %10s %12s\n", "DI", "events", "TE",
                "RE", "TE/event");
    for (int di : {5, 10, 20, 40, 80}) {
      tr::Trace trace = sim::lapd_trace(spec, di);
      core::DfsResult r = core::analyze(spec, trace, core::Options::full());
      std::printf("%5d %8zu %10llu %10llu %12.2f  %s\n", di,
                  trace.events().size(),
                  static_cast<unsigned long long>(
                      r.stats.transitions_executed),
                  static_cast<unsigned long long>(r.stats.restores),
                  static_cast<double>(r.stats.transitions_executed) /
                      static_cast<double>(trace.events().size()),
                  std::string(core::to_string(r.verdict)).c_str());
    }
  }

  {
    est::Spec spec = bench::load("tp0");
    std::printf("\n[tp0]\n%5s %8s %10s %10s %12s\n", "n", "events", "TE",
                "RE", "TE/event");
    for (int n : {5, 10, 20, 40, 80}) {
      tr::Trace trace = sim::tp0_trace(spec, n, n, false);
      core::DfsResult r = core::analyze(spec, trace, core::Options::full());
      std::printf("%5d %8zu %10llu %10llu %12.2f  %s\n", n,
                  trace.events().size(),
                  static_cast<unsigned long long>(
                      r.stats.transitions_executed),
                  static_cast<unsigned long long>(r.stats.restores),
                  static_cast<double>(r.stats.transitions_executed) /
                      static_cast<double>(trace.events().size()),
                  std::string(core::to_string(r.verdict)).c_str());
    }
  }
  return 0;
}
