// Guard-solver pruning ablation. Two workloads on deliberately
// nondeterministic specifications:
//
//   dup3_invalid  - three structurally identical fork transitions; an
//                   invalid trace forces the exhaustive search to visit
//                   every fork combination (3^n paths) unpruned, but the
//                   solver's skip set collapses the choice to one path, so
//                   TE/GE drop by orders of magnitude;
//   mutex_toggle  - two provably disjoint guards on one (state, when)
//                   arena; verdict-relevant work is identical, but the
//                   mutual-exclusion matrix skips the doomed candidate's
//                   guard evaluation at every node (static_skips counts
//                   the savings).
//
// Results go to stdout as a table and to BENCH_guard_prune.json (or the
// path in argv[1]) for EXPERIMENTS.md. Pruned and unpruned rows must agree
// on the verdict — the facts are proofs (see docs/LINT.md).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "trace/trace_io.hpp"

namespace {

constexpr const char* kDupSpec = R"(
specification bench_dup;
channel C(Env, Sys);
  by Env: go;
  by Sys: done;
module M systemprocess;
  ip P: C(Sys);
end;
body MB for M;
var x: integer;
state S1, S2;
initialize to S1 begin x := 0; end;
trans
from S1 to S2 when P.go name fork_a: begin x := x + 1; end;
from S1 to S2 when P.go name fork_b: begin x := x + 1; end;
from S1 to S2 when P.go name fork_c: begin x := x + 1; end;
from S2 to S1 when P.go name back: begin output P.done; end;
end;
end.
)";

constexpr const char* kMutexSpec = R"(
specification bench_mutex;
channel C(Env, Sys);
  by Env: go;
  by Sys: done;
module M systemprocess;
  ip P: C(Sys);
end;
body MB for M;
var x: integer;
state S;
initialize to S begin x := 0; end;
trans
from S to S when P.go provided x = 0 name opening: begin x := 1; end;
from S to S when P.go provided x = 1 name closing:
begin x := 0; output P.done; end;
end;
end.
)";

// n fork/back cycles; when `valid` is false the final done is missing, so
// the search must exhaust every path to conclude Invalid.
std::string dup_trace(int n, bool valid) {
  std::string t;
  for (int i = 0; i < n; ++i) {
    t += "in p.go\nin p.go\n";
    if (valid || i + 1 < n) t += "out p.done\n";
  }
  t += "eof\n";
  return t;
}

std::string mutex_trace(int n) {
  std::string t;
  for (int i = 0; i < n; ++i) t += "in p.go\nin p.go\nout p.done\n";
  t += "eof\n";
  return t;
}

struct Row {
  int n = 0;
  bool pruned = false;
  tango::core::DfsResult result;
};

struct Workload {
  std::string name;
  std::vector<Row> rows;
};

Workload run(const char* name, const char* spec_text,
             const std::vector<int>& sizes, bool valid) {
  using namespace tango;
  est::Spec spec = est::compile_spec(spec_text);
  Workload w;
  w.name = name;
  std::printf("%s\n", name);
  std::printf("%-6s %5s  %8s  %9s  %9s  %12s  %s\n", "prune", "n", "CPUT",
              "TE", "GE", "static_skip", "verdict");
  for (int n : sizes) {
    tr::Trace trace = tr::parse_trace(
        spec, name[0] == 'd' ? dup_trace(n, valid) : mutex_trace(n));
    for (bool prune : {false, true}) {
      core::Options opts = core::Options::none();
      opts.static_prune = prune;
      opts.max_transitions = 30'000'000;
      Row row{n, prune, core::analyze(spec, trace, opts)};
      std::printf("%-6s %5d  %8.3f  %9llu  %9llu  %12llu  %s\n",
                  prune ? "on" : "off", n, row.result.stats.cpu_seconds,
                  static_cast<unsigned long long>(
                      row.result.stats.transitions_executed),
                  static_cast<unsigned long long>(row.result.stats.generates),
                  static_cast<unsigned long long>(
                      row.result.stats.static_skips),
                  std::string(core::to_string(row.result.verdict)).c_str());
      w.rows.push_back(std::move(row));
    }
  }
  std::printf("\n");
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_guard_prune.json";

  std::printf("Guard-solver pruning ablation (skip set + mutex matrix)\n\n");
  std::vector<Workload> all;
  all.push_back(run("dup3_invalid", kDupSpec, {3, 5, 7}, /*valid=*/false));
  all.push_back(run("mutex_toggle", kMutexSpec, {64, 256}, /*valid=*/true));

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"guard_prune\",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    json << "    {\"name\": \"" << all[i].name << "\", \"rows\": [\n";
    for (std::size_t j = 0; j < all[i].rows.size(); ++j) {
      const Row& row = all[i].rows[j];
      json << "      {\"n\": " << row.n << ", \"static_prune\": "
           << (row.pruned ? "true" : "false") << ", \"verdict\": \""
           << tango::core::to_string(row.result.verdict)
           << "\", \"stats\": " << row.result.stats.to_json() << "}"
           << (j + 1 < all[i].rows.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (i + 1 < all.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", json_path);
  return 0;
}
