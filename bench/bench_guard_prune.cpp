// Static-pruning ablation. Three workloads on deliberately nondeterministic
// specifications, each mode toggling one layer of facts:
//
//   off      - no static facts at all (static_prune = false);
//   pairwise - the guard solver's skip set + mutual-exclusion matrix only
//              (invariant_prune = false);
//   full     - pairwise plus the whole-spec invariant facts: state-refuted
//              candidates and doomed-output subtree cuts.
//
//   dup3_invalid  - three structurally identical fork transitions; an
//                   invalid trace forces the exhaustive search to visit
//                   every fork combination (3^n paths) unpruned, but the
//                   solver's skip set collapses the choice to one path, so
//                   TE/GE drop by orders of magnitude;
//   mutex_toggle  - two provably disjoint guards on one (state, when)
//                   arena; verdict-relevant work is identical, but the
//                   mutual-exclusion matrix skips the doomed candidate's
//                   guard evaluation at every node (static_skips counts
//                   the savings);
//   doomed_out    - two structurally DISTINCT forks (nothing for the
//                   pairwise solver to prove) and a trace whose only
//                   pending output can only be emitted by an
//                   invariant-dead transition: only the full mode can cut
//                   the whole 2^n subtree at the root.
//
// Results go to stdout as a table and to BENCH_guard_prune.json (or the
// path in argv[1]) for EXPERIMENTS.md. All modes must agree on the verdict
// — the facts are proofs (see docs/LINT.md).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "trace/trace_io.hpp"

namespace {

constexpr const char* kDupSpec = R"(
specification bench_dup;
channel C(Env, Sys);
  by Env: go;
  by Sys: done;
module M systemprocess;
  ip P: C(Sys);
end;
body MB for M;
var x: integer;
state S1, S2;
initialize to S1 begin x := 0; end;
trans
from S1 to S2 when P.go name fork_a: begin x := x + 1; end;
from S1 to S2 when P.go name fork_b: begin x := x + 1; end;
from S1 to S2 when P.go name fork_c: begin x := x + 1; end;
from S2 to S1 when P.go name back: begin output P.done; end;
end;
end.
)";

constexpr const char* kMutexSpec = R"(
specification bench_mutex;
channel C(Env, Sys);
  by Env: go;
  by Sys: done;
module M systemprocess;
  ip P: C(Sys);
end;
body MB for M;
var x: integer;
state S;
initialize to S begin x := 0; end;
trans
from S to S when P.go provided x = 0 name opening: begin x := 1; end;
from S to S when P.go provided x = 1 name closing:
begin x := 0; output P.done; end;
end;
end.
)";

// fork_a and fork_b have different bodies, so the pairwise solver has no
// duplicate/shadow/mutex fact about them — the 2^(n/2) branching survives
// pairwise pruning. `emit_err` is the only output site for err, and the
// invariant engine proves it dead (x is pinned to 0), so in full mode a
// complete trace still expecting `out p.err` is cut at the root.
constexpr const char* kDoomedSpec = R"(
specification bench_doomed;
channel C(Env, Sys);
  by Env: go;
  by Sys: done; err;
module M systemprocess;
  ip P: C(Sys);
end;
body MB for M;
var x: integer;
state S1, S2;
initialize to S1 begin x := 0; end;
trans
from S1 to S2 when P.go name fork_a: begin x := 0; end;
from S1 to S2 when P.go name fork_b: begin end;
from S2 to S1 when P.go name back: begin end;
from S1 to S1 when P.go provided x = 1 name emit_err: begin output P.err; end;
end;
end.
)";

// n fork/back cycles; when `valid` is false the final done is missing, so
// the search must exhaust every path to conclude Invalid.
std::string dup_trace(int n, bool valid) {
  std::string t;
  for (int i = 0; i < n; ++i) {
    t += "in p.go\nin p.go\n";
    if (valid || i + 1 < n) t += "out p.done\n";
  }
  t += "eof\n";
  return t;
}

std::string mutex_trace(int n) {
  std::string t;
  for (int i = 0; i < n; ++i) t += "in p.go\nin p.go\nout p.done\n";
  t += "eof\n";
  return t;
}

// n inputs (the search branches fork_a/fork_b at every S1 node), then one
// pending output only the dead transition could produce.
std::string doomed_trace(int n) {
  std::string t;
  for (int i = 0; i < n; ++i) t += "in p.go\n";
  t += "out p.err\neof\n";
  return t;
}

enum class Mode { Off, Pairwise, Full };

constexpr const char* to_string(Mode m) {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::Pairwise: return "pairwise";
    case Mode::Full: return "full";
  }
  return "?";
}

struct Row {
  int n = 0;
  Mode mode = Mode::Off;
  tango::core::DfsResult result;
};

struct Workload {
  std::string name;
  std::vector<Row> rows;
};

Workload run(const char* name, const char* spec_text,
             const std::vector<int>& sizes,
             const std::string (*make_trace)(int)) {
  using namespace tango;
  est::Spec spec = est::compile_spec(spec_text);
  Workload w;
  w.name = name;
  std::printf("%s\n", name);
  std::printf("%-8s %5s  %8s  %9s  %9s  %12s  %s\n", "mode", "n", "CPUT",
              "TE", "GE", "static_skip", "verdict");
  for (int n : sizes) {
    tr::Trace trace = tr::parse_trace(spec, make_trace(n));
    for (Mode mode : {Mode::Off, Mode::Pairwise, Mode::Full}) {
      core::Options opts = core::Options::none();
      opts.static_prune = mode != Mode::Off;
      opts.invariant_prune = mode == Mode::Full;
      opts.max_transitions = 30'000'000;
      Row row{n, mode, core::analyze(spec, trace, opts)};
      std::printf("%-8s %5d  %8.3f  %9llu  %9llu  %12llu  %s\n",
                  to_string(mode), n, row.result.stats.cpu_seconds,
                  static_cast<unsigned long long>(
                      row.result.stats.transitions_executed),
                  static_cast<unsigned long long>(row.result.stats.generates),
                  static_cast<unsigned long long>(
                      row.result.stats.static_skips),
                  std::string(core::to_string(row.result.verdict)).c_str());
      w.rows.push_back(std::move(row));
    }
  }
  std::printf("\n");
  return w;
}

const std::string make_dup_trace(int n) { return dup_trace(n, false); }
const std::string make_mutex_trace(int n) { return mutex_trace(n); }
const std::string make_doomed_trace(int n) { return doomed_trace(n); }

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_guard_prune.json";

  std::printf(
      "Static pruning ablation (off / pairwise guard facts / "
      "+ whole-spec invariants)\n\n");
  std::vector<Workload> all;
  all.push_back(run("dup3_invalid", kDupSpec, {3, 5, 7}, make_dup_trace));
  all.push_back(run("mutex_toggle", kMutexSpec, {64, 256},
                    make_mutex_trace));
  all.push_back(run("doomed_out", kDoomedSpec, {8, 12, 16},
                    make_doomed_trace));

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"guard_prune\",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    json << "    {\"name\": \"" << all[i].name << "\", \"rows\": [\n";
    for (std::size_t j = 0; j < all[i].rows.size(); ++j) {
      const Row& row = all[i].rows[j];
      json << "      {\"n\": " << row.n << ", \"mode\": \""
           << to_string(row.mode) << "\", \"static_prune\": "
           << (row.mode != Mode::Off ? "true" : "false")
           << ", \"invariant_prune\": "
           << (row.mode == Mode::Full ? "true" : "false")
           << ", \"verdict\": \""
           << tango::core::to_string(row.result.verdict)
           << "\", \"stats\": " << row.result.stats.to_json() << "}"
           << (j + 1 < all[i].rows.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (i + 1 < all.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", json_path);
  return 0;
}
