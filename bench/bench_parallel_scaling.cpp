// Scaling curve for the parallel work-stealing engine: each workload runs
// under jobs = 1, 2, 4, 8 and the wall-clock times are written both as a
// human-readable table and as machine-readable BENCH_parallel.json so
// future changes can track the perf trajectory.
//
// Two workload families:
//   - invalid TP0 traces (the paper's §4.2 mutation): refuting them walks
//     an exponential tree with real branching — the case parallel search
//     is for;
//   - a valid LAPD trace: near-linear search with one live path, included
//     as a control — there is nothing to steal, so jobs>1 must not regress
//     it beyond pool overhead.
//
// Wall time is measured with steady_clock, NOT Stats::cpu_seconds: the cpu
// timer reads CLOCK_PROCESS_CPUTIME_ID, which sums across threads and
// therefore cannot show a speedup.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/parallel_dfs.hpp"
#include "obs/sink.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  int jobs;
  double wall_seconds;
  tango::core::DfsResult result;
};

struct WorkloadResult {
  const char* name;
  std::vector<Row> rows;
};

double best_of(int repeats, const std::function<tango::core::DfsResult()>& run,
               tango::core::DfsResult& out) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = Clock::now();
    tango::core::DfsResult r = run();
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    if (secs < best) {
      best = secs;
      out = std::move(r);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tango;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const int repeats = 3;

  est::Spec tp0 = bench::load("tp0");
  est::Spec lapd = bench::load("lapd");

  struct Workload {
    const char* name;
    est::Spec* spec;
    tr::Trace trace;
    core::Options options;
  };
  std::vector<Workload> workloads;
  {
    // Branching refutations: FULL ordering keeps the tree exponential but
    // compact enough per node that deeper traces stay bench-sized; the IO
    // preset branches harder per node, so a shorter trace suffices.
    Workload a{"tp0_invalid_full_n12", &tp0,
               sim::mutate_last_output_param(sim::tp0_paper_trace(tp0, 12)),
               core::Options::full()};
    Workload b{"tp0_invalid_io_n6", &tp0,
               sim::mutate_last_output_param(sim::tp0_paper_trace(tp0, 6)),
               core::Options::io()};
    Workload c{"lapd_valid_full_di100", &lapd, sim::lapd_trace(lapd, 100),
               core::Options::full()};
    for (Workload* w : {&a, &b, &c}) {
      w->options.max_transitions = 30'000'000;
      workloads.push_back(std::move(*w));
    }
  }

  std::printf("Parallel scaling — work-stealing engine, best of %d runs\n",
              repeats);
  std::printf("(hardware_concurrency = %u)\n\n",
              std::thread::hardware_concurrency());

  std::vector<WorkloadResult> all;
  for (const Workload& w : workloads) {
    WorkloadResult wr{w.name, {}};
    std::printf("[%s]\n", w.name);
    std::printf("%5s  %9s  %8s  %9s  %9s  %9s  %s\n", "jobs", "wall_s",
                "speedup", "TE", "published", "stolen", "verdict");
    double base = 0;
    for (int jobs : {1, 2, 4, 8}) {
      core::Options opts = w.options;
      opts.jobs = jobs;
      core::DfsResult r;
      const double secs = best_of(
          repeats, [&] { return core::analyze_parallel(*w.spec, w.trace, opts); },
          r);
      if (jobs == 1) base = secs;
      std::printf("%5d  %9.4f  %7.2fx  %9llu  %9llu  %9llu  %s\n", jobs, secs,
                  base / secs,
                  static_cast<unsigned long long>(r.stats.transitions_executed),
                  static_cast<unsigned long long>(r.stats.tasks_published),
                  static_cast<unsigned long long>(r.stats.tasks_stolen),
                  std::string(core::to_string(r.verdict)).c_str());
      wr.rows.push_back(Row{jobs, secs, std::move(r)});
    }
    std::printf("\n");
    all.push_back(std::move(wr));
  }

  // Observability overhead (docs/OBSERVABILITY.md): the same search with
  // the default null sink vs. a ring-buffered JSONL sink recording every
  // event. The branching tp0 workload is the stress case — its event rate
  // is the highest of the three families.
  struct SinkRow {
    int jobs;
    double null_seconds;
    double jsonl_seconds;
    std::uint64_t events;
  };
  std::vector<SinkRow> sink_rows;
  {
    const Workload& w = workloads[1];  // tp0_invalid_io_n6
    std::printf("[sink_overhead — %s]\n", w.name);
    std::printf("%5s  %10s  %10s  %9s  %9s\n", "jobs", "null_s", "jsonl_s",
                "overhead", "events");
    for (int jobs : {1, 2}) {
      core::Options opts = w.options;
      opts.jobs = jobs;
      core::DfsResult r;
      const double null_secs = best_of(
          repeats,
          [&] { return core::analyze_parallel(*w.spec, w.trace, opts); }, r);
      std::uint64_t events = 0;
      const double jsonl_secs = best_of(
          repeats,
          [&] {
            obs::JsonlSink sink("BENCH_events_scratch.jsonl");
            opts.sink = &sink;
            core::DfsResult res = core::analyze_parallel(*w.spec, w.trace, opts);
            opts.sink = nullptr;
            sink.flush();
            events = sink.events_written();
            return res;
          },
          r);
      std::printf("%5d  %10.4f  %10.4f  %8.1f%%  %9llu\n", jobs, null_secs,
                  jsonl_secs, (jsonl_secs / null_secs - 1.0) * 100.0,
                  static_cast<unsigned long long>(events));
      sink_rows.push_back(SinkRow{jobs, null_secs, jsonl_secs, events});
    }
    std::remove("BENCH_events_scratch.jsonl");
    std::printf("\n");
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"parallel_scaling\",\n";
  json << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n  \"repeats\": " << repeats << ",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    json << "    {\"name\": \"" << all[i].name << "\", \"rows\": [\n";
    for (std::size_t j = 0; j < all[i].rows.size(); ++j) {
      const Row& row = all[i].rows[j];
      json << "      {\"jobs\": " << row.jobs << ", \"wall_seconds\": "
           << row.wall_seconds << ", \"verdict\": \""
           << core::to_string(row.result.verdict)
           << "\", \"stats\": " << row.result.stats.to_json() << "}"
           << (j + 1 < all[i].rows.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (i + 1 < all.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"sink_overhead\": [\n";
  for (std::size_t i = 0; i < sink_rows.size(); ++i) {
    const SinkRow& s = sink_rows[i];
    json << "    {\"jobs\": " << s.jobs << ", \"null_seconds\": "
         << s.null_seconds << ", \"jsonl_seconds\": " << s.jsonl_seconds
         << ", \"events\": " << s.events << "}"
         << (i + 1 < sink_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", json_path);
  return 0;
}
