// Shared helpers for the paper-table benchmark binaries.
#pragma once

#include <cstdio>
#include <string>

#include "core/dfs.hpp"
#include "estelle/spec.hpp"
#include "specs/builtin_specs.hpp"

namespace tango::bench {

inline est::Spec load(const char* name) {
  return est::compile_spec(specs::builtin_spec(name));
}

/// Prints one row in the style of the paper's Figures 3/4 tables.
inline void print_row(int key, const core::DfsResult& r) {
  std::printf("%5d  %8.3f  %9llu  %9llu  %9llu  %9llu  %6.2f  %s\n", key,
              r.stats.cpu_seconds,
              static_cast<unsigned long long>(r.stats.transitions_executed),
              static_cast<unsigned long long>(r.stats.generates),
              static_cast<unsigned long long>(r.stats.restores),
              static_cast<unsigned long long>(r.stats.saves),
              r.stats.average_fanout(),
              std::string(core::to_string(r.verdict)).c_str());
}

inline void print_header(const char* key_name) {
  std::printf("%5s  %8s  %9s  %9s  %9s  %9s  %6s  %s\n", key_name, "CPUT",
              "TE", "GE", "RE", "SA", "FAN", "verdict");
}

}  // namespace tango::bench
