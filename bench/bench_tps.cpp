// Reproduces the §4 intro measurement: transitions searched per CPU second
// as a function of specification size. The paper reports ~250 t/s for
// small test specs (<10 transition declarations), 40–60 t/s for TP0 (19
// declarations) and ~10 t/s for LAPD (800+ declarations) on a SUN 4.
// Absolute numbers are hardware-bound; the *shape* — throughput drops as
// the number of transition declarations grows, because every generate
// scans the declaration list — is what this binary checks.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/workloads.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace tango;

core::DfsResult analyze_repeated(const est::Spec& spec,
                                 const tr::Trace& trace,
                                 const core::Options& opts, int repeats,
                                 double* seconds) {
  core::DfsResult last;
  core::CpuTimer timer;
  for (int i = 0; i < repeats; ++i) {
    last = core::analyze(spec, trace, opts);
  }
  *seconds = timer.elapsed() / repeats;
  return last;
}

}  // namespace

int main() {
  using namespace tango;

  std::printf("Transitions per second vs specification size (paper §4)\n\n");
  std::printf("%-6s %12s %10s %10s %14s\n", "spec", "#trans-decl", "TE",
              "CPUT(ms)", "TE/second");

  struct Row {
    const char* name;
    tr::Trace (*trace_fn)(const est::Spec&);
  };

  auto ack_trace = [](const est::Spec& spec) {
    return tr::parse_trace(spec,
                           "in a.x\nin a.x\nin a.x\nin b.y\nout a.ack\n"
                           "in a.x\nin b.y\nout a.ack\n");
  };
  auto tp0_trace_fn = [](const est::Spec& spec) {
    return sim::tp0_trace(spec, 10, 10, false);
  };
  auto lapd_trace_fn = [](const est::Spec& spec) {
    return sim::lapd_trace(spec, 10);
  };

  const Row rows[] = {
      {"ack", +ack_trace},
      {"tp0", +tp0_trace_fn},
      {"lapd", +lapd_trace_fn},
  };

  for (const Row& row : rows) {
    est::Spec spec = bench::load(row.name);
    tr::Trace trace = row.trace_fn(spec);
    double seconds = 0;
    core::DfsResult r = analyze_repeated(spec, trace, core::Options::io(),
                                         50, &seconds);
    const double tps =
        seconds > 0 ? static_cast<double>(r.stats.transitions_executed) /
                          seconds
                    : 0;
    std::printf("%-6s %12zu %10llu %10.3f %14.0f\n", row.name,
                spec.body().transitions.size(),
                static_cast<unsigned long long>(
                    r.stats.transitions_executed),
                seconds * 1e3, tps);
  }

  std::printf(
      "\n(The paper's SUN 4 numbers: ack-class ~250 t/s, TP0 40-60 t/s, "
      "LAPD ~10 t/s; modern hardware scales all rows up but the ordering "
      "must match.)\n");
  return 0;
}
