// Reproduces the paper's Figure 3: "Execution times of a TAM on LAPD
// traces of various sizes". Seven valid traces, differing in the number of
// data interactions (DI) sent by the user module to the LAPD module, each
// analyzed under the four relative-order checking modes:
//   NR   — order checking disabled
//   IO   — I/O and O/I relative order checking only
//   IP   — IP relative order checking only
//   FULL — all options enabled
// Columns match the paper: CPUT (cpu seconds), TE (transitions executed),
// GE (generates), RE (restores/backtracks), SA (state saves); FAN (average
// fanout) is added because §4.2 discusses it.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/workloads.hpp"

int main() {
  using namespace tango;
  est::Spec spec = bench::load("lapd");

  const int sizes[] = {5, 10, 15, 25, 50, 75, 100};
  struct Mode {
    const char* name;
    core::Options options;
  } modes[] = {
      {"NR", core::Options::none()},
      {"IO", core::Options::io()},
      {"IP", core::Options::ip()},
      {"FULL", core::Options::full()},
  };

  std::printf("Figure 3 — TAM execution on valid LAPD traces "
              "(DI = data interactions user->LAPD)\n");
  for (const Mode& mode : modes) {
    // A generous budget guards against pathological seeds; rows that hit
    // it print an `inconclusive` verdict.
    std::printf("\n[%s]\n", mode.name);
    bench::print_header("DI");
    for (int di : sizes) {
      tr::Trace trace = sim::lapd_trace(spec, di);
      core::Options opts = mode.options;
      opts.max_transitions = 20'000'000;
      core::DfsResult r = core::analyze(spec, trace, opts);
      bench::print_row(di, r);
    }
  }

  // Robustness appendix: the simulator's scheduler seed changes the
  // recorded interleaving; the table's shape must not depend on it.
  std::printf("\n[seed variance, DI=25: TE min..max over seeds 1..5]\n");
  for (const Mode& mode : modes) {
    std::uint64_t lo = ~0ull, hi = 0;
    bool all_valid = true;
    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
      tr::Trace trace = sim::lapd_trace(spec, 25, seed);
      core::Options opts = mode.options;
      opts.max_transitions = 20'000'000;
      core::DfsResult r = core::analyze(spec, trace, opts);
      all_valid = all_valid && r.verdict == core::Verdict::Valid;
      lo = std::min(lo, r.stats.transitions_executed);
      hi = std::max(hi, r.stats.transitions_executed);
    }
    std::printf("  %-5s TE %llu..%llu  %s\n", mode.name,
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                all_valid ? "all valid" : "NOT ALL VALID");
  }
  return 0;
}
