// On-line (MDFS) benchmarks: the paper's Figure 1/2 scenarios as
// regression workloads, plus the §3.1.3 dynamic node-reordering ablation —
// reordering searches freshly re-enabled PG nodes first instead of
// re-exploring the rest of the tree.
#include <cstdio>

#include "bench_util.hpp"
#include "core/mdfs.hpp"
#include "sim/workloads.hpp"
#include "trace/dynamic_source.hpp"

namespace {

using namespace tango;

struct OnlineRun {
  core::OnlineStatus status;
  core::Stats stats;
  double seconds = 0;
};

/// Streams the trace into the analyzer in `chunk`-event slices.
OnlineRun stream(const est::Spec& spec, const tr::Trace& trace,
                 const core::Options& opts, std::size_t chunk) {
  tr::MemoryFeed feed(spec);
  core::OnlineConfig config;
  config.options = opts;
  core::OnlineAnalyzer analyzer(spec, feed, config);
  core::CpuTimer timer;
  std::size_t next = 0;
  while (next < trace.events().size()) {
    for (std::size_t i = 0; i < chunk && next < trace.events().size(); ++i) {
      feed.push(trace.events()[next++]);
    }
    analyzer.step_round(1 << 16);
  }
  feed.push_eof();
  core::OnlineStatus status = analyzer.run(1 << 16, 3);
  return {status, analyzer.stats(), timer.elapsed()};
}

void print_run(const char* label, const OnlineRun& r) {
  std::printf("%-28s %8.3fs  TE=%-9llu GE=%-9llu SA=%-9llu %s\n", label,
              r.seconds,
              static_cast<unsigned long long>(r.stats.transitions_executed),
              static_cast<unsigned long long>(r.stats.generates),
              static_cast<unsigned long long>(r.stats.saves),
              std::string(to_string(r.status)).c_str());
}

}  // namespace

int main() {
  using namespace tango;

  std::printf("On-line analysis (MDFS) — paper §3 scenarios\n\n");

  {  // Figure 1 `ack`: the deadlock example, streamed one event at a time.
    est::Spec spec = bench::load("ack");
    tr::Trace t = tr::parse_trace(
        spec, "in a.x\nin a.x\nin a.x\nin b.y\nout a.ack\n",
        /*assume_eof=*/false);
    print_run("fig1 ack (event-by-event)",
              stream(spec, t, core::Options::none(), 1));
  }

  {  // Figure 2 ip3: the finished interaction unlocks the o output.
    est::Spec spec = bench::load("ip3");
    tr::Trace t = tr::parse_trace(spec,
                                  "in b.data\nout c.data\nin c.data\n"
                                  "out b.data\nin b.finished\nin a.x\n"
                                  "out a.o\n",
                                  false);
    print_run("fig2 ip3 (event-by-event)",
              stream(spec, t, core::Options::none(), 1));
  }

  std::printf("\nDynamic node reordering ablation (§3.1.3) — streamed LAPD "
              "and TP0 traces\n\n");
  struct Work {
    const char* label;
    const char* spec_name;
    int size;
  } works[] = {
      {"lapd DI=10", "lapd", 10},
      {"lapd DI=25", "lapd", 25},
      {"tp0 n=6", "tp0", 6},
  };
  for (const Work& w : works) {
    est::Spec spec = bench::load(w.spec_name);
    tr::Trace trace =
        std::string_view(w.spec_name) == "lapd"
            ? sim::lapd_trace(spec, w.size)
            : sim::tp0_trace(spec, w.size, w.size, false);
    for (bool reorder : {true, false}) {
      core::Options opts = core::Options::io();
      opts.reorder_pg_nodes = reorder;
      char label[64];
      std::snprintf(label, sizeof(label), "%s %s", w.label,
                    reorder ? "[reorder]" : "[basic]  ");
      print_run(label, stream(spec, trace, opts, 2));
    }
  }

  // The §3.1.3 motivating case: a highly nondeterministic specification
  // (ack's T1/T2 choice gives a 2^N tree) with a long valid trace streamed
  // event by event. The deepest parked PG node is the partial solution;
  // reordering resumes it immediately, while basic MDFS re-searches the
  // old tree first.
  std::printf("\nHighly nondeterministic spec (fig1 ack, N x inputs)\n\n");
  {
    est::Spec spec = bench::load("ack");
    for (int n : {8, 12, 14}) {
      std::string text;
      for (int i = 0; i < n; ++i) text += "in a.x\n";
      text += "in b.y\nout a.ack\n";
      tr::Trace trace = tr::parse_trace(spec, text, false);
      for (bool reorder : {true, false}) {
        core::Options opts = core::Options::none();
        opts.reorder_pg_nodes = reorder;
        char label[64];
        std::snprintf(label, sizeof(label), "ack N=%-3d %s", n,
                      reorder ? "[reorder]" : "[basic]  ");
        print_run(label, stream(spec, trace, opts, 1));
      }
    }
  }

  // §3.2.1 degenerate case: an ip that never receives input makes every
  // node PG; disable_ip prevents the memory blowup.
  std::printf("\nDegenerate PG growth (§3.2.1): ip3 with ips A and C silent\n\n");
  {
    est::Spec spec = bench::load("ip3");
    std::string text;
    for (int i = 0; i < 40; ++i) text += "in b.data\nout c.data\n";
    tr::Trace trace = tr::parse_trace(spec, text, false);
    for (bool disable : {false, true}) {
      tr::MemoryFeed feed(spec);
      core::OnlineConfig config;
      config.options = core::Options::io();
      // A never sees traffic; C sees outputs but never inputs. Without
      // disable_ip their empty input queues turn EVERY searched state into
      // a parked PG node (§3.2.1's degenerate memory growth).
      if (disable) config.options.disabled_ips = {"a", "c"};
      core::OnlineAnalyzer analyzer(spec, feed, config);
      for (const tr::TraceEvent& e : trace.events()) {
        feed.push(e);
        analyzer.step_round(1 << 14);
      }
      std::printf("%-28s parked PG nodes = %zu (status: %s)\n",
                  disable ? "ip A disabled" : "ip A enabled",
                  analyzer.pg_count(),
                  std::string(to_string(analyzer.status())).c_str());
    }
  }
  return 0;
}
