// Reproduces the paper's Figure 4: "Execution times of a TAM on invalid
// TP0 traces". The traces carry the initial handshake, n data interactions
// in each direction and a final disconnect; one parameter of the last data
// interaction is edited slightly to cause a mismatch (the paper's §4.2
// procedure). The first trace (n=3; the paper's search depth 13) is
// analyzed under all four relative-order modes; the longer ones (n=5, 7 —
// paper depths 21, 29) under full checking only, exactly as in the paper.
//
// The paper's observation to reproduce: invalid-trace analysis without
// order checking explodes combinatorially (their depth-13 run took 1469.5s
// and 88329 TE on a SUN 4), order checking collapses it by orders of
// magnitude, and even with full checking the cost grows exponentially with
// the depth while average fanout stays ~1.5.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"

int main() {
  using namespace tango;
  est::Spec spec = bench::load("tp0");

  struct Mode {
    const char* name;
    core::Options options;
  } modes[] = {
      {"None", core::Options::none()},
      {"IO and OI", core::Options::io()},
      {"IP only", core::Options::ip()},
      {"Full", core::Options::full()},
  };

  std::printf("Figure 4 — TAM execution on invalid TP0 traces\n");
  std::printf("(n data interactions each way; last data parameter edited)\n\n");
  std::printf("%-10s ", "RCM");
  bench::print_header("n");

  auto run = [&](const char* mode_name, const core::Options& base, int n) {
    tr::Trace bad =
        sim::mutate_last_output_param(sim::tp0_paper_trace(spec, n));
    core::Options opts = base;
    opts.max_transitions = 30'000'000;
    core::DfsResult r = core::analyze(spec, bad, opts);
    std::printf("%-10s ", mode_name);
    bench::print_row(n, r);
  };

  // The paper ran the unchecked mode only at depth 13 (n=3).
  for (const Mode& mode : modes) run(mode.name, mode.options, 3);
  std::printf("\n");
  for (int n : {5, 7}) run("Full", core::Options::full(), n);

  std::printf(
      "\n(hash-states ablation for the same traces lives in "
      "bench_ablation_hashing)\n");
  return 0;
}
