// Quickstart: compile an Estelle specification, parse a trace, analyze it,
// and read the verdict — the whole public API in ~60 lines.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/dfs.hpp"
#include "estelle/spec.hpp"
#include "trace/trace_io.hpp"

int main() {
  using namespace tango;

  // 1. A single-module Estelle specification: a tiny echo protocol.
  const char* spec_text = R"(
specification echo;

channel CH(Client, Server);
  by Client: ping(n: integer);
  by Server: pong(n: integer);

module E systemprocess;
  ip P: CH(Server);
end;

body EB for E;
  var count: integer;
  state idle;

  initialize to idle begin count := 0; end;

  trans
    from idle to idle when P.ping name reply:
    begin
      count := count + 1;
      output P.pong(n + 1);
    end;
end;

end.
)";

  DiagnosticSink diagnostics;
  est::Spec spec = est::compile_spec(spec_text, diagnostics);
  std::cout << "compiled '" << spec.name << "': "
            << spec.body().transitions.size() << " transition(s), "
            << spec.states.size() << " state(s)\n";

  // 2. A trace: what a tester observed at the implementation's interface.
  const char* trace_text =
      "in  p.ping(1)\n"
      "out p.pong(2)\n"
      "in  p.ping(7)\n"
      "out p.pong(8)\n";
  tr::Trace trace = tr::parse_trace(spec, trace_text);

  // 3. Analyze. Options::io() enables the input/output relative-order
  //    checks, the paper's recommended default.
  core::DfsResult result = core::analyze(spec, trace, core::Options::io());
  std::cout << "verdict: " << core::to_string(result.verdict) << " ("
            << result.stats.summary() << ")\n";

  // 4. A valid result carries one witness path through the specification.
  std::cout << "witness:";
  for (const std::string& step : result.solution) std::cout << " " << step;
  std::cout << "\n";

  // 5. An invalid trace explains itself.
  tr::Trace bad = tr::parse_trace(spec, "in p.ping(1)\nout p.pong(99)\n");
  core::DfsResult invalid = core::analyze(spec, bad, core::Options::io());
  std::cout << "bad trace verdict: " << core::to_string(invalid.verdict)
            << "\n  reason: " << invalid.note << "\n";
  return 0;
}
