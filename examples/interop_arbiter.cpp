// Interoperability arbiter — the paper's §1 second use case: "take two
// human-generated implementations ... and test the interoperability
// between them, in which case a trace analyzer could act as an 'arbiter'
// and provide diagnostic information about the behaviour of each
// implementation."
//
// We play two TP0 "implementations" (the simulator with different seeds,
// one of them deliberately patched to corrupt a payload), collect each
// one's trace, and let the TAM arbitrate which side misbehaved.
#include <iostream>

#include "core/dfs.hpp"
#include "sim/mutate.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

int main() {
  using namespace tango;
  est::Spec spec = est::compile_spec(specs::tp0());

  std::cout << "arbitrating two TP0 implementations against the reference "
               "specification\n\n";

  // Implementation A: a conforming stack (simulated, seed 11).
  tr::Trace trace_a = sim::tp0_trace(spec, 4, 4, /*disconnect=*/true, 11);

  // Implementation B: same stack, but its last data payload is corrupted
  // in transit (a bug an interop test must pin on B, not on A).
  tr::Trace trace_b = sim::mutate_last_output_param(
      sim::tp0_trace(spec, 4, 4, /*disconnect=*/true, 23));

  struct Side {
    const char* name;
    const tr::Trace* trace;
  } sides[] = {{"implementation A", &trace_a},
               {"implementation B", &trace_b}};

  int failures = 0;
  for (const Side& side : sides) {
    core::DfsResult verdict =
        core::analyze(spec, *side.trace, core::Options::full());
    std::cout << side.name << ": " << core::to_string(verdict.verdict)
              << "  [" << verdict.stats.summary() << "]\n";
    if (verdict.verdict != core::Verdict::Valid) {
      ++failures;
      std::cout << "  diagnosis: " << verdict.note << "\n";
      std::cout << "  trace tail:\n";
      const auto& events = side.trace->events();
      for (std::size_t i = events.size() > 3 ? events.size() - 3 : 0;
           i < events.size(); ++i) {
        std::cout << "    " << tr::format_event(spec, events[i]) << "\n";
      }
    }
  }

  std::cout << "\narbiter verdict: "
            << (failures == 0 ? "both implementations conform"
                              : "fault isolated — see diagnosis above")
            << "\n";
  return failures == 1 ? 0 : 1;  // this demo expects exactly B to fail
}
