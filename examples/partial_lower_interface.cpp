// Partial-trace analysis (paper §4.1 + §5): "often, it is desired to
// analyze only the packets transmitted at the lower interface of the LAPD
// module ... because the interactions passing between the user module and
// the LAPD module are not necessarily observable."
//
// The user-side ip U is declared unobservable (inputs synthesized with
// undefined parameters, §5.2) and disabled (outputs never checked,
// §2.4.3); only the line-side events are matched. A depth bound tames the
// §5.4 infinite tree.
#include <iostream>

#include "core/dfs.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace {

tango::core::Options lower_interface_options() {
  tango::core::Options opts = tango::core::Options::full();
  opts.partial = true;
  opts.unobservable_ips = {"u"};
  opts.disabled_ips = {"u"};
  opts.max_depth = 48;
  opts.max_transitions = 2'000'000;
  return opts;
}

}  // namespace

int main() {
  using namespace tango;
  est::Spec spec = est::compile_spec(specs::lapd());

  // What a line monitor saw: establishment and two I frames, with the
  // user-side primitives invisible.
  const char* observed =
      "out l.sabme\n"
      "in  l.ua\n"
      "out l.iframe(0, 0, 42)\n"
      "in  l.rr(1)\n"
      "out l.iframe(1, 0, 57)\n"
      "in  l.rr(2)\n";

  std::cout << "analyzing a lower-interface-only LAPD trace (user side "
               "unobservable)\n\n"
            << observed << "\n";

  tr::Trace trace = tr::parse_trace(spec, observed);
  core::DfsResult result =
      core::analyze(spec, trace, lower_interface_options());
  std::cout << "verdict: " << core::to_string(result.verdict) << "  ["
            << result.stats.summary() << "]\n";
  if (result.verdict == core::Verdict::Valid) {
    std::cout << "witness (synthesized user-side inputs included):\n ";
    for (const std::string& step : result.solution) std::cout << " " << step;
    std::cout << "\n";
  }

  // The same monitor now sees a protocol violation: an I frame with a
  // sequence number the module could never have produced, no matter what
  // the invisible user side did.
  const char* violating =
      "out l.sabme\n"
      "in  l.ua\n"
      "out l.iframe(5, 0, 42)\n";  // N(S) must be 0 after establishment
  core::DfsResult bad = core::analyze(spec, tr::parse_trace(spec, violating),
                                      lower_interface_options());
  std::cout << "\nviolating trace verdict: " << core::to_string(bad.verdict)
            << "\n  reason: " << bad.note << "\n";
  return result.verdict == core::Verdict::Valid &&
                 bad.verdict != core::Verdict::Valid
             ? 0
             : 1;
}
