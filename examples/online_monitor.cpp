// On-line monitoring (paper §3): a LAPD link is observed live; events
// stream into the analyzer which continuously reports whether everything
// seen so far is explainable by the specification. The stream deliberately
// replays the paper's Figure 1 pathology first (inputs that strand a
// depth-first searcher) to show MDFS riding through it.
#include <iostream>

#include "core/mdfs.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/dynamic_source.hpp"
#include "trace/trace_io.hpp"

namespace {

void report(const tango::core::OnlineAnalyzer& analyzer, std::size_t seen) {
  std::cout << "  after " << seen << " event(s): "
            << tango::core::to_string(analyzer.status())
            << " (parked PG nodes: " << analyzer.pg_count() << ")\n";
}

}  // namespace

int main() {
  using namespace tango;

  {
    std::cout << "--- figure 1 'ack' scenario, event by event ---\n";
    est::Spec spec = est::compile_spec(specs::ack());
    tr::MemoryFeed feed(spec);
    core::OnlineConfig config;
    config.options = core::Options::none();
    core::OnlineAnalyzer analyzer(spec, feed, config);

    std::size_t seen = 0;
    for (const char* line :
         {"in a.x", "in a.x", "in a.x", "in b.y", "out a.ack"}) {
      feed.push_line(line);
      analyzer.step_round(4096);
      report(analyzer, ++seen);
    }
    feed.push_eof();
    analyzer.run();
    std::cout << "  final: " << core::to_string(analyzer.status()) << "\n\n";
  }

  {
    std::cout << "--- live LAPD link (25 data packets, chunked) ---\n";
    est::Spec spec = est::compile_spec(specs::lapd());
    tr::Trace replay = sim::lapd_trace(spec, 25);

    tr::MemoryFeed feed(spec);
    core::OnlineConfig config;
    config.options = core::Options::io();
    core::OnlineAnalyzer analyzer(spec, feed, config);

    std::size_t next = 0;
    while (next < replay.events().size()) {
      // A monitor typically receives bursts, not single events.
      for (int burst = 0; burst < 7 && next < replay.events().size();
           ++burst) {
        feed.push(replay.events()[next++]);
      }
      analyzer.step_round(1 << 14);
      report(analyzer, next);
      if (analyzer.conclusive()) break;
    }
    feed.push_eof();
    core::OnlineStatus final_status = analyzer.run();
    std::cout << "  final: " << core::to_string(final_status) << "  ["
              << analyzer.stats().summary() << "]\n";
    return final_status == core::OnlineStatus::Valid ? 0 : 1;
  }
}
