// A conformance-testing campaign, end to end:
//   1. lint the specification (§2.1 hygiene: non-progress cycles,
//      unreachable states);
//   2. run a batch of traces collected from the IUT through the analyzer;
//   3. report transition coverage — which parts of the specification the
//      campaign actually exercised (the "test verdict checker" use case of
//      the paper's §1, third bullet).
#include <iostream>

#include "analysis/coverage.hpp"
#include "analysis/lint.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

int main() {
  using namespace tango;
  est::Spec spec = est::compile_spec(specs::lapd());

  std::cout << "== step 1: lint the specification ==\n";
  analysis::LintReport lint = analysis::lint(spec);
  std::cout << lint.render();
  if (lint.has_errors()) {
    std::cout << "specification is unsuitable for DFS trace analysis\n";
    return 2;
  }

  std::cout << "\n== step 2+3: analyze the campaign, report coverage ==\n";
  std::vector<tr::Trace> campaign;
  // Data transfer at three sizes (simulated IUT runs)...
  for (int di : {2, 5, 9}) campaign.push_back(sim::lapd_trace(spec, di));
  // ... plus hand-collected establishment/release and error-path traces.
  campaign.push_back(tr::parse_trace(spec,
                                     "in  u.dl_establish_req\n"
                                     "out l.sabme\n"
                                     "in  l.ua\n"
                                     "out u.dl_establish_cnf\n"
                                     "in  u.dl_release_req\n"
                                     "out l.disc\n"
                                     "in  l.ua\n"
                                     "out u.dl_release_cnf\n"));
  campaign.push_back(tr::parse_trace(spec,
                                     "in  l.sabme\n"
                                     "out l.ua\n"
                                     "out u.dl_establish_ind\n"
                                     "in  l.iframe(3, 0, 9)\n"
                                     "out l.rej(0)\n"));
  // One corrupted trace slipped into the campaign.
  campaign.push_back(tr::parse_trace(spec,
                                     "in  u.dl_establish_req\n"
                                     "out l.ua\n"));  // must be sabme

  analysis::CoverageReport report =
      analysis::coverage(spec, campaign, core::Options::io());
  std::cout << report.render();

  std::cout << "\nverdict: " << report.traces_valid << "/"
            << report.traces_total << " traces conform; "
            << report.uncovered.size()
            << " transition(s) still need test cases\n";
  return 0;
}
