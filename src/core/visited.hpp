// The §4.2 visited-state hash table, factored out of the DFS engines so it
// can be (a) bounded — `--visited-max` caps resident hashes and overflow
// evicts a uniformly random entry, trading pruning power for bounded
// memory on deep traces — and (b) shared across the parallel engine's
// workers through a sharded wrapper (one mutex per shard keyed on
// `hash % shards`, so workers exploring disjoint subtrees rarely contend).
//
// Eviction is always sound: losing a hash can only cause a state to be
// re-explored, never a live path to be pruned. The replacement victim is
// drawn from a per-set xorshift generator with a fixed seed, so the
// sequential engine (and the parallel engine's deterministic mode, which
// uses private per-task sets) stays run-to-run reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace tango::core {

class VisitedSet {
 public:
  /// `max_entries` = 0 keeps every hash (the pre-existing behaviour).
  explicit VisitedSet(std::uint64_t max_entries = 0,
                      std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// True when `h` was not yet present (the state is fresh — explore it);
  /// false when it was (§4.2: identical subtree, prune).
  bool insert(std::uint64_t h);

  [[nodiscard]] std::size_t size() const { return set_.size(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  std::unordered_set<std::uint64_t> set_;
  /// Resident hashes in insertion-then-swap order; only maintained when
  /// bounded, to give O(1) uniform victim selection.
  std::vector<std::uint64_t> keys_;
  std::uint64_t max_;
  std::uint64_t evictions_ = 0;
  std::uint64_t rng_;
};

/// Concurrent visited table for the parallel engine's relaxed mode: S
/// independently-locked VisitedSet shards. The per-analysis bound is
/// split evenly across shards (hashes distribute uniformly, so the
/// aggregate cap tracks `max_entries` closely).
class ShardedVisitedTable {
 public:
  ShardedVisitedTable(std::size_t shards, std::uint64_t max_entries);

  bool insert(std::uint64_t h);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Sums per-shard eviction counters; call after the workers joined.
  [[nodiscard]] std::uint64_t total_evictions() const;

 private:
  struct Shard {
    std::mutex mu;
    VisitedSet set;
    explicit Shard(std::uint64_t max, std::uint64_t seed)
        : set(max, seed) {}
  };
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t mask_;
};

}  // namespace tango::core
