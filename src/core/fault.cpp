#include "core/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "support/text.hpp"

namespace tango::core {

namespace {

struct Entry {
  FaultSite site = FaultSite::Alloc;
  std::string scope;       // "" = any scope
  std::uint64_t nth = 0;   // 0 = every probe; else fire at this count only
};

bool parse_site(std::string_view name, FaultSite& out) {
  for (const FaultSite s :
       {FaultSite::Alloc, FaultSite::TraceRead, FaultSite::Deadline}) {
    if (to_string(s) == name) {
      out = s;
      return true;
    }
  }
  return false;
}

thread_local std::string tl_scope;  // NOLINT(cert-err58-cpp)

}  // namespace

struct FaultInjector::Impl {
  mutable std::mutex mu;
  std::vector<Entry> entries;
  std::atomic<std::uint64_t> counters[kFaultSiteCount] = {};
  std::atomic<bool> armed{false};
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  const char* env = std::getenv("TANGO_FAULT_INJECT");
  if (env != nullptr && *env != '\0') configure(env);
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(std::string_view spec) {
  std::vector<Entry> entries;
  for (std::string_view part : split(spec, ',')) {
    part = trim(part);
    if (part.empty()) continue;
    Entry e;
    std::string_view site = part;
    const std::size_t at = part.find('@');
    const std::size_t colon = part.find(':');
    if (at != std::string_view::npos) {
      site = part.substr(0, at);
      e.scope = std::string(part.substr(at + 1));
      if (e.scope.empty()) {
        throw std::invalid_argument("fault spec '" + std::string(part) +
                                    "': empty scope");
      }
    } else if (colon != std::string_view::npos) {
      site = part.substr(0, colon);
      const std::string num(part.substr(colon + 1));
      char* end = nullptr;
      e.nth = std::strtoull(num.c_str(), &end, 10);
      if (num.empty() || end != num.c_str() + num.size() || e.nth == 0) {
        throw std::invalid_argument("fault spec '" + std::string(part) +
                                    "': expected a positive probe index");
      }
    }
    if (!parse_site(site, e.site)) {
      throw std::invalid_argument("fault spec '" + std::string(part) +
                                  "': unknown site '" + std::string(site) +
                                  "' (alloc, trace-read, deadline)");
    }
    entries.push_back(std::move(e));
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->entries = std::move(entries);
  for (auto& c : impl_->counters) c.store(0, std::memory_order_relaxed);
  impl_->armed.store(!impl_->entries.empty(), std::memory_order_release);
}

bool FaultInjector::should_fire(FaultSite site) {
  if (!impl_->armed.load(std::memory_order_acquire)) return false;
  const std::uint64_t count =
      impl_->counters[static_cast<std::size_t>(site)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const Entry& e : impl_->entries) {
    if (e.site != site) continue;
    if (!e.scope.empty() && e.scope != tl_scope) continue;
    if (e.nth != 0 && e.nth != count) continue;
    return true;
  }
  return false;
}

std::uint64_t FaultInjector::probes(FaultSite site) const {
  return impl_->counters[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

bool FaultInjector::armed() const {
  return impl_->armed.load(std::memory_order_acquire);
}

FaultScope::FaultScope(std::string scope) : previous_(std::move(tl_scope)) {
  tl_scope = std::move(scope);
}

FaultScope::~FaultScope() { tl_scope = std::move(previous_); }

const std::string& FaultScope::current() { return tl_scope; }

}  // namespace tango::core
