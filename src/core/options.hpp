// Analyzer run-time options (paper §2.4). The relative-order presets match
// the four modes measured in the paper's Figures 3 and 4:
//   NR   - no relative order checking
//   IO   - inputs-wrt-outputs AND outputs-wrt-inputs (the paper's "I/O and
//          O/I relative order checking only")
//   IP   - IP relative order checking only
//   FULL - all three options
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "analysis/guard_solver.hpp"
#include "estelle/spec.hpp"
#include "runtime/interp.hpp"

namespace tango::obs {
class Sink;
}

namespace tango::core {

/// How the DFS engines implement the §2.2 save/restore primitives.
/// `Copy` deep-copies the composite state at every branching node (the
/// paper's cost model, §3.2.2) and is kept as a differential oracle;
/// `Trail` makes save an O(1) mark on an undo log and restore a rewind.
/// Both produce identical verdicts and identical TE/GE/RE/SA counters.
/// MDFS per-node states are materialized snapshots in either mode, because
/// §3.1.1 re-generation needs whole states to park on PG nodes.
enum class CheckpointMode : std::uint8_t { Copy, Trail };

[[nodiscard]] constexpr const char* to_string(CheckpointMode m) {
  return m == CheckpointMode::Copy ? "copy" : "trail";
}

/// Which SearchState hash implementation the engines use for §4.2 pruning
/// and obs `state_hash` emission. `Incremental` combines trail-maintained
/// per-component hashes in O(dirty) (runtime/machine.hpp); `Full` is the
/// original full recursive walk, kept as the differential oracle (debug
/// builds assert the two agree on every hash the engines take).
enum class HashImpl : std::uint8_t { Incremental, Full };

[[nodiscard]] constexpr const char* to_string(HashImpl h) {
  return h == HashImpl::Incremental ? "incremental" : "full";
}

struct Options {
  // --- relative order checking (§2.4.2) ---
  /// The next input consumed must precede every pending output at the same
  /// ip in the trace. "Should be used under most circumstances."
  bool check_input_wrt_output = false;
  /// The next output generated must precede every pending input at the same
  /// ip. Not valid if the IUT has input queues at that ip.
  bool check_output_wrt_input = false;
  /// Inputs consumed in global trace-input order; outputs generated in
  /// global trace-output order (outputs of one transition block to
  /// different ips may be permuted — the §2.4.2 special case).
  bool check_ip_order = false;

  // --- other run-time options ---
  /// §2.4.1: if analysis from the declared initial state fails, backtrack
  /// to just after the initialize transition and try every other FSM state.
  bool initial_state_search = false;
  /// §2.4.3: outputs at these ips are never checked (always valid), and
  /// when-clauses on them never fire (prevents the degenerate MDFS case of
  /// §3.2.1). Canonical (lower-case) ip names.
  std::vector<std::string> disabled_ips;
  /// §5: partial-trace mode — these ips deliver no inputs in the trace;
  /// when-clauses on them fire with undefined parameters, and undefined
  /// values compare equal to anything.
  std::vector<std::string> unobservable_ips;
  /// Partial mode also applies undefined-tolerant expression semantics.
  bool partial = false;

  // --- search engineering ---
  /// §4.2 "keep information about which states were reached ... in a hash
  /// table, to prevent the analysis of the same state twice" (evaluated as
  /// an ablation). Hashes are 64-bit; collisions are astronomically rare
  /// but would prune a live path, so the option is off by default.
  bool hash_states = false;
  /// MDFS dynamic node reordering (§3.1.3). On by default, as in Tango.
  bool reorder_pg_nodes = true;
  /// Paper §3.1.2 footnote 2: when a PGAV node exists at quiescence, drop
  /// every non-PGAV node — "piecewise validity". Saves memory but can
  /// report invalid on a valid trace when the only viable continuation
  /// went through a pruned node; off by default, exactly as the footnote
  /// cautions.
  bool prune_on_pgav = false;
  /// Save/restore implementation for the DFS engines (see CheckpointMode).
  CheckpointMode checkpoint = CheckpointMode::Trail;
  /// State-hash implementation (see HashImpl). `--hash-impl=full` opts
  /// back into the O(state) walk for differential runs; both produce
  /// identical hash values, so verdicts, pruning and event streams match.
  HashImpl hash_impl = HashImpl::Incremental;
  /// 0 = unlimited. When exceeded the verdict is Inconclusive.
  std::uint64_t max_transitions = 0;
  /// 0 = unlimited search depth. Needed for partial traces (§5.4).
  int max_depth = 0;
  /// Wall-clock deadline in milliseconds (`--deadline`, 0 = none), checked
  /// cooperatively at generate/backtrack boundaries; expiry yields
  /// Inconclusive with reason "deadline". In batch mode the deadline is
  /// per item: each trace's clock starts when its analysis starts.
  std::uint64_t deadline_ms = 0;
  /// Checkpoint/heap byte budget (`--max-memory`, 0 = none) over the
  /// deterministic allocation proxy ResourceGovernor::memory_bytes —
  /// cumulative bytes charged to state preservation (checkpoint copies,
  /// snapshots and trail entries), not process RSS. Exceeding it yields
  /// Inconclusive with reason "memory". A pure function of the search, so
  /// it trips at the same point on every run, --deterministic included.
  std::uint64_t max_memory = 0;
  /// Batch mode (`--item-retries`): re-run an item up to N extra times
  /// when its analysis dies with a transient RuntimeFault. Compile errors
  /// and budget verdicts are never retried.
  int item_retries = 0;
  /// Worker threads for analyze_parallel (`--jobs`): 1 = one worker, 0 =
  /// one per hardware thread. The sequential analyze() ignores this.
  int jobs = 1;
  /// Reproducible parallel mode (`--deterministic`): branch ownership is a
  /// fixed function of the search tree (depth-bounded publication), hash
  /// pruning and budgets are per-task, no early cancellation, and results
  /// merge in task-lineage order — verdict and counters are then
  /// run-to-run identical for any jobs value. The default relaxed mode
  /// shares budget/pruning/cancellation globally; its verdict is stable
  /// (up to budget races) but its counters depend on the schedule.
  bool deterministic = false;
  /// Bound on retained visited-state hashes (`--visited-max`, 0 =
  /// unlimited). Overflow evicts a uniformly random resident entry,
  /// counted in stats.evictions; eviction weakens §4.2 pruning but never
  /// soundness. Only meaningful with hash_states.
  std::uint64_t visited_max = 0;
  /// Consume the guard-solver facts (analysis/guard_solver.hpp) during
  /// generate(): skip transitions that provably cannot contribute behavior
  /// (structural duplicates, priority-shadowed, always-false guards) and
  /// early-exit candidates proven mutually exclusive with a guard that
  /// already held. Facts are proofs, so verdicts and witnesses are
  /// unchanged; `--no-static-prune` turns it off for differential runs.
  /// Automatically disabled in partial mode and with unobservable ips,
  /// where undefined-tolerant semantics break the proofs.
  bool static_prune = true;
  /// Additionally consume the whole-spec invariant facts
  /// (analysis/invariants.hpp) during generate(): skip candidates whose
  /// guard is refuted by the current control state's invariant, and cut
  /// subtrees whose remaining trace demands an output no live code can
  /// emit. Same proof discipline as static_prune (which gates it: the
  /// facts ride on the same GuardMatrix); `--no-invariant-prune` isolates
  /// the pairwise solver for differential and ablation runs. Also
  /// disabled under initial-state search, whose non-initializer entry
  /// states invalidate the fixpoint's seeding assumption.
  bool invariant_prune = true;
  /// Pre-built guard-solver/invariant facts for this specification. When
  /// set, ResolvedOptions adopts this matrix instead of re-running the
  /// solver and the invariant fixpoint — the analysis server pre-analyzes
  /// every spec once at startup and shares the matrix read-only across
  /// sessions. The caller owns the contract that the matrix was built for
  /// the SAME spec and with fact layers matching invariant_prune /
  /// initial_state_search (`srv::SpecRegistry` keeps one matrix per
  /// layer). Ignored whenever the solver would not have run at all
  /// (static_prune off, partial mode, unobservable ips).
  std::shared_ptr<const analysis::GuardMatrix> prebuilt_guard_matrix;
  /// Structured search-event sink (src/obs/). Null — the default — records
  /// nothing; engines guard every emission behind one branch. Non-owning:
  /// the sink must outlive the analysis. Every engine emits the same typed
  /// stream (docs/EVENTS.md), replayable by obs::replay.
  obs::Sink* sink = nullptr;

  rt::InterpLimits interp;

  // --- presets (the paper's four modes) ---
  [[nodiscard]] static Options none() { return Options{}; }
  [[nodiscard]] static Options io() {
    Options o;
    o.check_input_wrt_output = true;
    o.check_output_wrt_input = true;
    return o;
  }
  [[nodiscard]] static Options ip() {
    Options o;
    o.check_ip_order = true;
    return o;
  }
  [[nodiscard]] static Options full() {
    Options o;
    o.check_input_wrt_output = true;
    o.check_output_wrt_input = true;
    o.check_ip_order = true;
    return o;
  }

  [[nodiscard]] std::string order_mode_name() const;
};

/// Per-analysis view of the options with ip names resolved to indexes.
/// Throws CompileError when an option names an unknown ip.
struct ResolvedOptions {
  ResolvedOptions(const est::Spec& spec, const Options& opts);
  /// `base` aliases `opts`, which must outlive this view — a temporary
  /// would dangle (caught by the sanitizer build), so reject it.
  ResolvedOptions(const est::Spec& spec, Options&& opts) = delete;

  const Options* base;
  std::vector<char> disabled;      // by ip index
  std::vector<char> unobservable;  // by ip index
  /// Guard-solver facts for generate()-time pruning; null when
  /// static_prune is off, the proofs are invalid for this run (partial
  /// mode / unobservable ips) or the solver found nothing. Shared so the
  /// parallel engines' per-worker views alias one matrix.
  std::shared_ptr<const analysis::GuardMatrix> guard_matrix;

  [[nodiscard]] bool is_disabled(int ip) const {
    return disabled[static_cast<std::size_t>(ip)] != 0;
  }
  [[nodiscard]] bool is_unobservable(int ip) const {
    return unobservable[static_cast<std::size_t>(ip)] != 0;
  }

 private:
  /// Runs the guard solver (plus the invariant fixpoint when its facts are
  /// admissible) and installs the matrix; the constructor skips this when
  /// Options carries a prebuilt matrix.
  void build_guard_matrix(const est::Spec& spec, const Options& opts);
};

}  // namespace tango::core
