// The *generate* operation of the paper's §2.2: list every transition
// fireable from the current search state, honouring when-clauses against
// the trace's pending inputs, provided clauses, Estelle priorities, and the
// relative-order checking options of §2.4.2.
//
// A generation is *incomplete* (the node is a PG-node, §3.1.1) when a
// when-transition could not be offered only because its input queue has no
// pending event and the trace has not reached eof — new input may make it
// fireable later.
#pragma once

#include <string>
#include <vector>

#include "core/obs_record.hpp"
#include "core/search_state.hpp"
#include "core/stats.hpp"
#include "runtime/interp.hpp"

namespace tango::core {

struct Firing {
  int transition = -1;    // index into spec.body().transitions
  int input_event = -1;   // global seq consumed by the when clause, or -1
  std::vector<rt::Value> binding;  // when-parameter values
  bool synthesized = false;        // unobservable-ip input (partial mode)
};

struct GenResult {
  std::vector<Firing> firings;
  bool incomplete = false;  // PG: more firings may appear with new input
  std::string fault;        // first provided-clause fault, if any (path note)
};

/// Enumerates fireable transitions in declaration order, then keeps only
/// the highest-priority group (smallest priority value; transitions without
/// a priority clause rank below all prioritized ones). With a sink in
/// `obs`, guard-solver skips emit one `prune.static` event each and the
/// priority filter emits one `prune.shadow` event carrying the number of
/// shadowed candidates dropped.
[[nodiscard]] GenResult generate(rt::Interp& interp, const tr::Trace& trace,
                                 const ResolvedOptions& ro, SearchState& st,
                                 Stats& stats, const ObsCtx& obs = {});

}  // namespace tango::core
