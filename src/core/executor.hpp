// The *update* operation of §2.2: apply one firing to a search state.
// Inputs advance the ip's input cursor; outputs produced by the transition
// block are matched against the trace through a TraceMatcher sink, which
// enforces the §2.4.2 output-side order checks (including the
// same-transition permutation special case) and the §2.4.3 ip disabling.
#pragma once

#include <string>

#include "core/checkpoint.hpp"
#include "core/generator.hpp"
#include "core/search_state.hpp"

namespace tango::core {

/// OutputSink that verifies produced interactions against the trace.
/// With a non-null checkpointer, every output-cursor advance is logged so
/// a trail restore can undo it.
class TraceMatcher final : public rt::OutputSink {
 public:
  TraceMatcher(const est::Spec& spec, const tr::Trace& trace,
               const ResolvedOptions& ro, SearchState& st, bool partial,
               Checkpointer* ckpt = nullptr);

  bool on_output(int ip, int interaction_id, std::vector<rt::Value> params,
                 SourceLoc loc) override;

  /// IP-relative-order permutation check over the whole transition block
  /// (§2.4.2 special case). Call once after the block succeeds.
  [[nodiscard]] bool finish();

  /// Human-readable reason for the last veto (verbose diagnostics).
  [[nodiscard]] const std::string& failure() const { return failure_; }

  /// True when the veto was caused by an exhausted output queue while the
  /// trace can still grow — the firing may succeed after new events arrive
  /// (on-line analysis must keep the node as a PG node, §3.1.1).
  [[nodiscard]] bool retry_later() const { return retry_later_; }

 private:
  const est::Spec& spec_;
  const tr::Trace& trace_;
  const ResolvedOptions& ro_;
  SearchState& st_;
  bool partial_;
  Checkpointer* ckpt_;
  CursorSet start_cursors_;            // snapshot at transition start
  std::vector<std::uint32_t> matched_; // trace seqs verified by this block
  std::string failure_;
  bool retry_later_ = false;
};

struct ApplyResult {
  bool ok = false;
  bool retry_later = false;  // output queue exhausted on a growing trace
  std::string note;          // veto reason / runtime fault, when !ok
};

/// Applies `firing` to `st` (mutating it). On failure `st` is left
/// partially updated; the caller restores it through its checkpointer (or
/// from a saved copy). With a non-null `ckpt`, all machine mutations go
/// through the checkpointer's trail and cursor advances are logged, so a
/// trail restore fully reverts the firing.
[[nodiscard]] ApplyResult apply_firing(rt::Interp& interp,
                                       const tr::Trace& trace,
                                       const ResolvedOptions& ro,
                                       SearchState& st, const Firing& firing,
                                       Stats& stats,
                                       Checkpointer* ckpt = nullptr);

/// Runs initializer `index` on a fresh state. Returns the resulting state;
/// ok=false when an initializer output mismatched the trace.
struct InitResult {
  bool ok = false;
  bool retry_later = false;  // output queue exhausted on a growing trace
  /// True iff this call counted a transition execution (TE): the provided
  /// clause held, so the initializer body ran (successfully or not). The
  /// replay oracle balances TE against the recorded enter/fire events
  /// through this flag.
  bool executed = false;
  SearchState state;
  std::string note;
};
[[nodiscard]] InitResult apply_initializer(rt::Interp& interp,
                                           const tr::Trace& trace,
                                           const ResolvedOptions& ro,
                                           std::size_t index, Stats& stats);

}  // namespace tango::core
