#include "core/mdfs.hpp"

#include <set>
#include <utility>

#include "core/executor.hpp"
#include "core/obs_record.hpp"

namespace tango::core {

namespace {

/// MDFS has no branch marks — every node is a materialized snapshot — so
/// its checkpoint events carry count=0.
void emit_at_node(obs::Sink* sink, obs::EventKind kind, std::uint64_t origin,
                  int depth) {
  if (sink == nullptr) return;
  obs::Event e;
  e.kind = kind;
  e.parent = origin;
  e.depth = depth;
  sink->emit(e);
}

}  // namespace

struct OnlineAnalyzer::MNode {
  SearchState state;
  GenResult gen;
  std::size_t next = 0;
  /// Event id of the enter/fire that produced `state`, and the node's
  /// search-tree depth — kept on the node because PG parking detaches it
  /// from any stack position.
  std::uint64_t origin = 0;
  int depth = 0;
  /// Trace extent when `gen` was computed: a node that sat on the stack
  /// while new events (or the eof marker) arrived has a stale firing list.
  std::size_t gen_events = 0;
  bool gen_eof = false;
  /// (transition index, consumed event seq or -1) pairs already explored;
  /// re-generation after new input must not repeat them (§3.1.1).
  std::set<std::pair<int, int>> explored;

  [[nodiscard]] bool pg(const tr::Trace& trace) const {
    return gen.incomplete && !trace.eof();
  }

  [[nodiscard]] bool stale(const tr::Trace& trace) const {
    return gen_events != trace.events().size() || gen_eof != trace.eof();
  }
};

void OnlineAnalyzer::compute_gen(MNode& node) {
  node.gen = generate(interp_, trace_, ro_, node.state, stats_,
                      ObsCtx{sink_, node.origin, -1, node.depth});
  node.gen_events = trace_.events().size();
  node.gen_eof = trace_.eof();
}

OnlineAnalyzer::OnlineAnalyzer(const est::Spec& spec, tr::TraceSource& source,
                               OnlineConfig config)
    : spec_(spec),
      source_(source),
      config_(std::move(config)),
      ro_(resolve_timed(spec, config_.options, phase_static_)),
      interp_(spec,
              config_.options.partial ? rt::EvalMode::Partial
                                      : rt::EvalMode::Strict,
              config_.options.interp),
      trace_(static_cast<int>(spec.ips.size())),
      governor_(config_.options),
      ckpt_(make_checkpointer(config_.options.checkpoint, stats_)) {
  sink_ = config_.options.sink;
  stats_.phase_static += phase_static_;
  if (sink_ != nullptr) emit_run_header(*sink_, spec_, config_.options, "mdfs");
}

void OnlineAnalyzer::conclude(OnlineStatus status, std::uint64_t witness,
                              InconclusiveReason reason) {
  concluded_ = true;
  final_status_ = status;
  stats_.reason = reason;
  if (sink_ != nullptr && !verdict_emitted_) {
    verdict_emitted_ = true;
    emit_verdict(*sink_, witness, to_string(status), stats_,
                 to_string(reason));
  }
}

void OnlineAnalyzer::abort(InconclusiveReason reason) {
  if (concluded_) return;
  conclude(OnlineStatus::Inconclusive, 0, reason);
}

void OnlineAnalyzer::finalize_stream() {
  if (sink_ == nullptr || verdict_emitted_) return;
  verdict_emitted_ = true;
  emit_verdict(*sink_, 0, to_string(status()), stats_,
               to_string(stats_.reason));
}

std::uint64_t OnlineAnalyzer::emit_enter(int init, int start_state,
                                         bool applied, bool ok, bool all_done,
                                         std::uint64_t state_hash) {
  if (sink_ == nullptr) return 0;
  obs::Event e;
  e.kind = obs::EventKind::Enter;
  e.id = sink_->next_id();
  e.init = init;
  e.start_state = start_state;
  e.applied = applied;
  e.ok = ok;
  e.all_done = all_done;
  e.state_hash = state_hash;
  sink_->emit(e);
  return e.id;
}

OnlineAnalyzer::~OnlineAnalyzer() = default;

bool OnlineAnalyzer::poll_source() {
  const bool had_eof = trace_.eof();
  const bool got = source_.poll(trace_);
  steps_since_poll_ = 0;
  if (!got) return false;
  // Validate only the newly arrived suffix.
  for (; validated_events_ < trace_.events().size(); ++validated_events_) {
    const tr::TraceEvent& e = trace_.events()[validated_events_];
    if (ro_.is_disabled(e.ip) ||
        (e.dir == tr::Dir::In && ro_.is_unobservable(e.ip))) {
      // Reuse the batch validator for a consistent message.
      tr::Trace one(trace_.ip_count());
      one.append(e);
      validate_trace_against_options(spec_, one, ro_);
    }
  }
  // Retry initializers that were blocked on unrecorded outputs.
  if (seeded_ && !pending_roots_.empty()) {
    std::vector<std::size_t> still_pending;
    for (std::size_t ii : pending_roots_) {
      InitResult init = apply_initializer(interp_, trace_, ro_, ii, stats_);
      if (!init.ok) {
        if (init.retry_later) still_pending.push_back(ii);
        else emit_enter(static_cast<int>(ii), -1, init.executed, false,
                        false, 0);
        continue;
      }
      auto node = std::make_unique<MNode>();
      node->state = std::move(init.state);
      node->origin = emit_enter(
          static_cast<int>(ii), node->state.machine.fsm_state, init.executed,
          true, node->state.cursors.all_done(trace_, ro_),
          sink_ != nullptr ? state_hash(node->state, config_.options) : 0);
      compute_gen(*node);
      ++stats_.saves;
      emit_at_node(sink_, obs::EventKind::CheckpointSave, node->origin, 0);
      stack_.push_back(std::move(node));
    }
    pending_roots_ = std::move(still_pending);
  }
  // New data (or the eof marker) re-enables parked PG nodes.
  if (config_.options.reorder_pg_nodes || trace_.eof() != had_eof) {
    reactivate_pg(/*all=*/true);
  }
  return true;
}

void OnlineAnalyzer::reactivate_pg(bool all) {
  if (pg_.empty()) return;
  if (all) {
    // Oldest nodes are pushed first so the NEWEST (deepest partial
    // solution) ends on top of the stack — the §3.1.3 reordering: PG nodes
    // are searched immediately, the rest of the tree is put on hold.
    while (!pg_.empty()) {
      regenerate(std::move(pg_.front()));
      pg_.pop_front();
    }
  } else {
    // Basic MDFS (§3.1.1): service only the oldest PG node.
    regenerate(std::move(pg_.front()));
    pg_.pop_front();
  }
}

void OnlineAnalyzer::regenerate(std::unique_ptr<MNode> node) {
  // A parked PGAV node becomes a full solution the moment eof is marked.
  if (trace_.eof() && node->state.cursors.all_done(trace_, ro_)) {
    conclude(OnlineStatus::Valid, node->origin);
    return;
  }
  compute_gen(*node);
  std::erase_if(node->gen.firings, [&](const Firing& f) {
    return node->explored.count({f.transition, f.input_event}) != 0;
  });
  node->next = 0;
  stack_.push_back(std::move(node));
}

void OnlineAnalyzer::seed_roots() {
  seeded_ = true;
  // Roots are pushed in reverse so the first initializer is explored first.
  std::vector<std::unique_ptr<MNode>> roots;
  for (std::size_t ii = 0; ii < spec_.body().initializers.size(); ++ii) {
    InitResult init = apply_initializer(interp_, trace_, ro_, ii, stats_);
    if (!init.ok) {
      // An initializer whose outputs are not in the trace yet is retried
      // when new events arrive.
      if (init.retry_later) pending_roots_.push_back(ii);
      else emit_enter(static_cast<int>(ii), -1, init.executed, false, false,
                      0);
      continue;
    }
    std::vector<int> start_states{init.state.machine.fsm_state};
    if (config_.options.initial_state_search) {
      for (int s = 0; s < static_cast<int>(spec_.states.size()); ++s) {
        if (s != init.state.machine.fsm_state) start_states.push_back(s);
      }
    }
    bool first_root = true;
    for (int start : start_states) {
      auto node = std::make_unique<MNode>();
      node->state = ckpt_->snapshot(init.state);
      node->state.machine.fsm_state = start;
      node->origin = emit_enter(
          static_cast<int>(ii), start, first_root && init.executed, true,
          node->state.cursors.all_done(trace_, ro_),
          sink_ != nullptr ? state_hash(node->state, config_.options) : 0);
      first_root = false;
      compute_gen(*node);
      ++stats_.saves;
      emit_at_node(sink_, obs::EventKind::CheckpointSave, node->origin, 0);
      roots.push_back(std::move(node));
    }
  }
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack_.push_back(std::move(*it));
  }
}

void OnlineAnalyzer::prune_non_pgav() {
  // §3.1.2 footnote 2: treat the fragments analyzed so far as piecewise
  // valid — keep only PGAV nodes. "It is possible that Tango will give an
  // invalid result on a valid trace", hence opt-in.
  if (!config_.options.prune_on_pgav || !any_pgav()) return;
  std::erase_if(pg_, [&](const std::unique_ptr<MNode>& node) {
    return !node->state.cursors.all_done(trace_, ro_);
  });
}

bool OnlineAnalyzer::any_pgav() const {
  for (const auto& node : pg_) {
    if (node->state.cursors.all_done(trace_, ro_)) return true;
  }
  for (const auto& node : stack_) {
    if (node->gen.incomplete &&
        node->state.cursors.all_done(trace_, ro_)) {
      return true;
    }
  }
  return false;
}

bool OnlineAnalyzer::do_step() {
  if (stack_.empty()) return false;
  MNode& node = *stack_.back();

  if (node.next >= node.gen.firings.size()) {
    std::unique_ptr<MNode> finished = std::move(stack_.back());
    stack_.pop_back();
    emit_at_node(sink_, obs::EventKind::Backtrack, finished->origin,
                 finished->depth);
    if (trace_.eof() && finished->state.cursors.all_done(trace_, ro_)) {
      // eof arrived while this all-verified node sat on the stack.
      conclude(OnlineStatus::Valid, finished->origin);
      return true;
    }
    if (finished->pg(trace_)) {
      pg_.push_back(std::move(finished));  // park for re-generation (§3.1.1)
    } else if (finished->gen.incomplete && finished->stale(trace_)) {
      // The eof marker (or new events) arrived while this partially
      // generated node sat on the stack: its firing list misses whatever
      // the late events enable. Dropping it here would lose valid paths —
      // re-generate against the full trace instead.
      regenerate(std::move(finished));
    }
    return true;
  }

  const Firing firing = node.gen.firings[node.next++];
  node.explored.insert({firing.transition, firing.input_event});

  auto child = std::make_unique<MNode>();
  // MDFS saves a full state per node (§3.2.2): a materialized snapshot in
  // either checkpoint mode, since PG parking outlives any stack order.
  child->state = ckpt_->snapshot(node.state);
  ++stats_.saves;
  ++stats_.restores;
  emit_at_node(sink_, obs::EventKind::CheckpointSave, node.origin, node.depth);
  emit_at_node(sink_, obs::EventKind::CheckpointRestore, node.origin,
               node.depth);

  ApplyResult applied =
      apply_firing(interp_, trace_, ro_, child->state, firing, stats_);
  const bool child_done =
      applied.ok && child->state.cursors.all_done(trace_, ro_);
  std::uint64_t fire_event = 0;
  if (sink_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::Fire;
    e.id = sink_->next_id();
    e.parent = node.origin;
    e.depth = node.depth + 1;
    e.transition = firing.transition;
    e.input_event = firing.input_event;
    e.synthesized = firing.synthesized;
    e.ok = applied.ok;
    e.retry = applied.retry_later;
    if (applied.ok) {
      e.all_done = child_done;
      e.state_hash = state_hash(child->state, config_.options);
    }
    sink_->emit(e);
    fire_event = e.id;
  }
  if (!applied.ok) {
    if (applied.retry_later) {
      // The firing produced an output the trace has not recorded YET.
      // Forget that we tried it and keep the node partially generated so
      // re-generation offers it again once new events arrive.
      node.explored.erase({firing.transition, firing.input_event});
      node.gen.incomplete = true;
    }
    return true;
  }

  child->origin = fire_event;
  child->depth = node.depth + 1;

  stats_.max_depth = std::max(stats_.max_depth,
                              static_cast<int>(stack_.size()));

  if (child_done && trace_.eof()) {
    conclude(OnlineStatus::Valid, fire_event);
    return true;
  }

  if (config_.options.max_depth != 0 &&
      static_cast<int>(stack_.size()) >= config_.options.max_depth) {
    return true;  // depth-clipped child is abandoned
  }

  compute_gen(*child);
  stack_.push_back(std::move(child));
  return true;
}

OnlineStatus OnlineAnalyzer::step_round(std::uint64_t steps) {
  if (concluded_) return final_status_;
  PhaseTimer search_timer(stats_.phase_search);
  if (!seeded_) {
    poll_source();
    seed_roots();
  }

  for (std::uint64_t i = 0; i < steps; ++i) {
    if (concluded_) return final_status_;
    if (config_.options.max_transitions != 0 &&
        stats_.transitions_executed >= config_.options.max_transitions) {
      conclude(OnlineStatus::Inconclusive, 0, InconclusiveReason::Transitions);
      return final_status_;
    }
    if (governor_.armed()) {
      const InconclusiveReason r = governor_.check(stats_);
      if (r != InconclusiveReason::None) {
        conclude(OnlineStatus::Inconclusive, 0, r);
        return final_status_;
      }
    }
    if (stack_.empty()) {
      prune_non_pgav();
      if (!poll_source()) break;  // quiescent and no new data
      if (stack_.empty() && !pg_.empty()) {
        reactivate_pg(config_.options.reorder_pg_nodes);
      }
      if (stack_.empty()) break;
      continue;
    }
    if (++steps_since_poll_ >= config_.poll_every) poll_source();
    do_step();
  }

  if (!concluded_ && stack_.empty() && pg_.empty() && pending_roots_.empty()) {
    // Tree exhausted with nothing parked: conclusively invalid (§3.1.2).
    // (reactivate_pg can conclude Valid while draining pg_, leaving every
    // container empty — concluded_ must win over this emptiness test.)
    conclude(OnlineStatus::Invalid, 0);
    return final_status_;
  }
  return status();
}

OnlineStatus OnlineAnalyzer::status() const {
  if (concluded_) return final_status_;
  if (!seeded_) return OnlineStatus::Searching;
  if (stack_.empty() && pg_.empty() && pending_roots_.empty()) {
    return OnlineStatus::Invalid;
  }
  if (any_pgav()) return OnlineStatus::ValidSoFar;
  if (stack_.empty()) return OnlineStatus::LikelyInvalid;
  return OnlineStatus::Searching;
}

bool OnlineAnalyzer::conclusive() const {
  return concluded_ ||
         (seeded_ && stack_.empty() && pg_.empty() && pending_roots_.empty());
}

std::size_t OnlineAnalyzer::pg_count() const { return pg_.size(); }

OnlineStatus OnlineAnalyzer::run(std::uint64_t steps_per_round,
                                 int idle_rounds) {
  int idle = 0;
  std::uint64_t last_te = stats_.transitions_executed;
  std::size_t last_events = trace_.events().size();
  for (;;) {
    OnlineStatus s = step_round(steps_per_round);
    if (conclusive()) return s;
    const bool progressed = stats_.transitions_executed != last_te ||
                            trace_.events().size() != last_events;
    last_te = stats_.transitions_executed;
    last_events = trace_.events().size();
    if (progressed) {
      idle = 0;
    } else if (++idle >= idle_rounds) {
      return s;
    }
  }
}

}  // namespace tango::core
