#include "core/options.hpp"

namespace tango::core {

std::string Options::order_mode_name() const {
  if (check_input_wrt_output && check_output_wrt_input && check_ip_order) {
    return "FULL";
  }
  if (check_input_wrt_output && check_output_wrt_input) return "IO";
  if (check_ip_order) return "IP";
  if (!check_input_wrt_output && !check_output_wrt_input) return "NR";
  return check_input_wrt_output ? "I/O only" : "O/I only";
}

ResolvedOptions::ResolvedOptions(const est::Spec& spec, const Options& opts)
    : base(&opts),
      disabled(spec.ips.size(), 0),
      unobservable(spec.ips.size(), 0) {
  for (const std::string& name : opts.disabled_ips) {
    const int ip = spec.ip_index(name);
    if (ip < 0) {
      throw CompileError({}, "disable-ip option names unknown ip '" + name +
                                 "'");
    }
    disabled[static_cast<std::size_t>(ip)] = 1;
  }
  for (const std::string& name : opts.unobservable_ips) {
    const int ip = spec.ip_index(name);
    if (ip < 0) {
      throw CompileError({}, "unobservable-ip option names unknown ip '" +
                                 name + "'");
    }
    unobservable[static_cast<std::size_t>(ip)] = 1;
  }
}

}  // namespace tango::core
