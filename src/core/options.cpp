#include "core/options.hpp"

#include "analysis/invariants.hpp"

namespace tango::core {

std::string Options::order_mode_name() const {
  if (check_input_wrt_output && check_output_wrt_input && check_ip_order) {
    return "FULL";
  }
  if (check_input_wrt_output && check_output_wrt_input) return "IO";
  if (check_ip_order) return "IP";
  if (!check_input_wrt_output && !check_output_wrt_input) return "NR";
  return check_input_wrt_output ? "I/O only" : "O/I only";
}

ResolvedOptions::ResolvedOptions(const est::Spec& spec, const Options& opts)
    : base(&opts),
      disabled(spec.ips.size(), 0),
      unobservable(spec.ips.size(), 0) {
  // Guard-solver pruning facts. The solver's proofs assume standard
  // (defined-value) expression semantics and real when-bindings, so the
  // matrix is only built when neither partial mode nor unobservable ips
  // are in play; an empty matrix isn't worth the per-generate() checks.
  if (opts.static_prune && !opts.partial && opts.unobservable_ips.empty()) {
    if (opts.prebuilt_guard_matrix != nullptr) {
      // Server fast path: adopt the registry's pre-analyzed matrix (one
      // solver + fixpoint run at startup instead of one per session). An
      // empty matrix stays null so generate() skips the per-candidate
      // checks, same as the computed path below.
      if (opts.prebuilt_guard_matrix->any_facts()) {
        guard_matrix = opts.prebuilt_guard_matrix;
      }
    } else {
      build_guard_matrix(spec, opts);
    }
  }
  for (const std::string& name : opts.disabled_ips) {
    const int ip = spec.ip_index(name);
    if (ip < 0) {
      throw CompileError({}, "disable-ip option names unknown ip '" + name +
                                 "'");
    }
    disabled[static_cast<std::size_t>(ip)] = 1;
  }
  for (const std::string& name : opts.unobservable_ips) {
    const int ip = spec.ip_index(name);
    if (ip < 0) {
      throw CompileError({}, "unobservable-ip option names unknown ip '" +
                                 name + "'");
    }
    unobservable[static_cast<std::size_t>(ip)] = 1;
  }
}

void ResolvedOptions::build_guard_matrix(const est::Spec& spec,
                                         const Options& opts) {
  analysis::GuardAnalysis ga = analysis::analyze_guards(spec);
  // Whole-spec invariant facts ride on the same matrix (v2 fields).
  // Initial-state search re-enters arbitrary FSM states after the
  // initializer, which breaks the fixpoint's "seeded from initializers"
  // premise — the per-state facts would be unsound there.
  if (opts.invariant_prune && !opts.initial_state_search) {
    const std::vector<analysis::RoutineEffects> effects =
        analysis::compute_routine_effects(spec);
    const analysis::StateInvariants inv =
        analysis::compute_state_invariants(spec, effects);
    analysis::augment_guard_matrix(spec, inv, ga.matrix);
  }
  if (ga.matrix.any_facts()) {
    guard_matrix = std::make_shared<const analysis::GuardMatrix>(
        std::move(ga.matrix));
  }
}

}  // namespace tango::core
