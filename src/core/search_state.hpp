// The composite TAM state of the paper's §2.3: the module state (FSM
// ordinal, variables, dynamic memory — runtime/machine.hpp) plus the queue
// state, represented as cursors into the per-(ip, direction) event lists of
// the trace: everything before a cursor has been consumed (inputs) or
// verified (outputs).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "runtime/machine.hpp"
#include "trace/event.hpp"

namespace tango::core {

/// Cursor positions, one pair per interaction point. Mutation goes through
/// advance()/retreat(), which also patch an XOR-fold of position-salted
/// per-cursor hashes — hash() is then O(1), the cursor-set leg of the
/// incremental SearchState hash.
class CursorSet {
 public:
  explicit CursorSet(int ip_count = 0);

  [[nodiscard]] int ip_count() const {
    return static_cast<int>(in_next_.size());
  }

  /// Next unconsumed input (Dir::In) / unverified output (Dir::Out) list
  /// position at `ip`.
  [[nodiscard]] std::uint32_t cursor(tr::Dir dir, int ip) const {
    const auto i = static_cast<std::size_t>(ip);
    return dir == tr::Dir::In ? in_next_[i] : out_next_[i];
  }

  /// Consumes/verifies one event at (dir, ip).
  void advance(tr::Dir dir, int ip);
  /// Undo of exactly one advance() at (dir, ip).
  void retreat(tr::Dir dir, int ip);

  /// Global seq of the next pending event at (ip, dir), or UINT32_MAX.
  [[nodiscard]] std::uint32_t next_seq(const tr::Trace& trace, int ip,
                                       tr::Dir dir) const;

  /// Smallest pending seq of direction `dir` across all non-skipped ips.
  [[nodiscard]] std::uint32_t global_min_seq(const tr::Trace& trace,
                                             tr::Dir dir,
                                             const ResolvedOptions& ro) const;

  /// All inputs consumed and all outputs verified (disabled ips skipped).
  [[nodiscard]] bool all_done(const tr::Trace& trace,
                              const ResolvedOptions& ro) const;

  /// O(1): the maintained fold. Bit-identical to hash_full().
  [[nodiscard]] std::uint64_t hash() const;
  /// Recomputes the fold from the cursor values — the oracle for the
  /// maintained one (full-hash SearchState::hash() goes through this).
  [[nodiscard]] std::uint64_t hash_full() const;

 private:
  std::vector<std::uint32_t> in_next_;   // per ip: next unconsumed input
  std::vector<std::uint32_t> out_next_;  // per ip: next unverified output
  std::uint64_t acc_ = 0;  // XOR-fold of every cursor's placement
};

/// One node's complete state in the search tree.
struct SearchState {
  rt::MachineState machine;
  CursorSet cursors;

  /// Full-walk hash (the differential oracle).
  [[nodiscard]] std::uint64_t hash() const {
    return machine.hash() * 0x9e3779b97f4a7c15ULL ^ cursors.hash_full();
  }

  /// Incremental hash: same value as hash(), O(dirty) to compute.
  [[nodiscard]] std::uint64_t hash_cached() const {
    return machine.hash_cached() * 0x9e3779b97f4a7c15ULL ^ cursors.hash();
  }
};

/// The engines' single hashing entry point: picks the implementation from
/// the options, and in debug builds asserts the incremental value against
/// the full-walk oracle on EVERY hash taken — which covers every
/// visited-table insert and every obs state_hash emission.
[[nodiscard]] inline std::uint64_t state_hash(const SearchState& st,
                                              const Options& options) {
  if (options.hash_impl == HashImpl::Full) return st.hash();
  const std::uint64_t h = st.hash_cached();
  assert(h == st.hash() &&
         "incremental state hash diverged from the full-walk oracle");
  return h;
}

}  // namespace tango::core
