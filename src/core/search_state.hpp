// The composite TAM state of the paper's §2.3: the module state (FSM
// ordinal, variables, dynamic memory — runtime/machine.hpp) plus the queue
// state, represented as cursors into the per-(ip, direction) event lists of
// the trace: everything before a cursor has been consumed (inputs) or
// verified (outputs).
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "runtime/machine.hpp"
#include "trace/event.hpp"

namespace tango::core {

struct CursorSet {
  std::vector<std::uint32_t> in_next;   // per ip: next unconsumed input
  std::vector<std::uint32_t> out_next;  // per ip: next unverified output

  explicit CursorSet(int ip_count = 0)
      : in_next(static_cast<std::size_t>(ip_count), 0),
        out_next(static_cast<std::size_t>(ip_count), 0) {}

  /// Global seq of the next pending event at (ip, dir), or UINT32_MAX.
  [[nodiscard]] std::uint32_t next_seq(const tr::Trace& trace, int ip,
                                       tr::Dir dir) const;

  /// Smallest pending seq of direction `dir` across all non-skipped ips.
  [[nodiscard]] std::uint32_t global_min_seq(const tr::Trace& trace,
                                             tr::Dir dir,
                                             const ResolvedOptions& ro) const;

  /// All inputs consumed and all outputs verified (disabled ips skipped).
  [[nodiscard]] bool all_done(const tr::Trace& trace,
                              const ResolvedOptions& ro) const;

  [[nodiscard]] std::uint64_t hash() const;
};

/// One node's complete state in the search tree.
struct SearchState {
  rt::MachineState machine;
  CursorSet cursors;

  [[nodiscard]] std::uint64_t hash() const {
    return machine.hash() * 0x9e3779b97f4a7c15ULL ^ cursors.hash();
  }
};

}  // namespace tango::core
