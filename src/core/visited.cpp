#include "core/visited.hpp"

namespace tango::core {

namespace {

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

VisitedSet::VisitedSet(std::uint64_t max_entries, std::uint64_t seed)
    : max_(max_entries), rng_(seed | 1) {}

bool VisitedSet::insert(std::uint64_t h) {
  if (!set_.insert(h).second) return false;
  if (max_ == 0) return true;
  keys_.push_back(h);
  if (keys_.size() > max_) {
    const std::size_t victim =
        static_cast<std::size_t>(xorshift64(rng_) % keys_.size());
    set_.erase(keys_[victim]);
    keys_[victim] = keys_.back();
    keys_.pop_back();
    ++evictions_;
    // The victim could have been the hash just inserted; either way the
    // caller explores the state — only the *memory* of it may be dropped.
  }
  return true;
}

ShardedVisitedTable::ShardedVisitedTable(std::size_t shards,
                                         std::uint64_t max_entries) {
  const std::size_t n = round_up_pow2(shards == 0 ? 1 : shards);
  mask_ = n - 1;
  const std::uint64_t per_shard =
      max_entries == 0 ? 0 : (max_entries + n - 1) / n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        per_shard, 0x9e3779b97f4a7c15ULL + i));
  }
}

bool ShardedVisitedTable::insert(std::uint64_t h) {
  // Shard on the high bits: the low bits pick the bucket inside the
  // shard's own table, and reusing them for both would correlate the two.
  Shard& s = *shards_[static_cast<std::size_t>(h >> 48) & mask_];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.set.insert(h);
}

std::uint64_t ShardedVisitedTable::total_evictions() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->set.evictions();
  return total;
}

}  // namespace tango::core
