#include "core/checkpoint.hpp"

#include <new>

#include "core/fault.hpp"

namespace tango::core {

std::uint64_t Checkpointer::copy_cost_bytes(const SearchState& st) {
  // Shallow estimate: top-level containers only. Enough to compare copy
  // vs. trail orders of magnitude without a full value-tree walk (which
  // would itself cost what we are trying to avoid measuring).
  std::uint64_t bytes = sizeof(SearchState);
  bytes += st.machine.vars.size() * sizeof(rt::Value);
  bytes += st.machine.heap.live_cells() *
           (sizeof(rt::Value) + sizeof(std::uint32_t));
  bytes += 2ull * static_cast<std::uint64_t>(st.cursors.ip_count()) *
           sizeof(std::uint32_t);
  return bytes;
}

SearchState Checkpointer::snapshot(const SearchState& st) {
  // Debug-build injection point for the allocation-failure degradation
  // path: a materialized copy is the search's dominant allocation.
  if (fault_probe(FaultSite::Alloc)) throw std::bad_alloc();
  stats_.checkpoint_bytes += copy_cost_bytes(st);
  return st;
}

void Checkpointer::log_cursor_advance(tr::Dir, int) {}

// ---------------------------------------------------------------- copy --

std::size_t CopyCheckpointer::save(const SearchState& st) {
  if (fault_probe(FaultSite::Alloc)) throw std::bad_alloc();
  stats_.checkpoint_bytes += copy_cost_bytes(st);
  snapshots_.push_back(st);
  return snapshots_.size() - 1;
}

void CopyCheckpointer::restore(std::size_t mark, SearchState& st) {
  st = snapshots_[mark];
}

void CopyCheckpointer::forget(std::size_t mark) {
  snapshots_.resize(mark);
}

// --------------------------------------------------------------- trail --

TrailCheckpointer::~TrailCheckpointer() { sync_stats(); }

void TrailCheckpointer::sync_stats() {
  const std::uint64_t total = trail_.total_logged() + cursor_logged_total_;
  stats_.trail_entries += total - synced_;
  synced_ = total;
}

std::size_t TrailCheckpointer::save(const SearchState&) {
  marks_.push_back(Mark{trail_.mark(), cursor_log_.size()});
  return marks_.size() - 1;
}

void TrailCheckpointer::restore(std::size_t mark, SearchState& st) {
  sync_stats();
  const Mark& m = marks_[mark];
  trail_.undo_to(m.trail, st.machine);
  while (cursor_log_.size() > m.cursors) {
    const CursorUndo& u = cursor_log_.back();
    // Cursors only ever advance by one, so undo is one retreat (which
    // also rewinds the maintained cursor-set hash).
    st.cursors.retreat(u.dir, u.ip);
    cursor_log_.pop_back();
  }
}

void TrailCheckpointer::forget(std::size_t mark) {
  // Dropping a mark keeps its undo entries: they belong to an ancestor's
  // span and will be rewound by that ancestor's restore (or never, if the
  // search completes first).
  marks_.resize(mark);
}

void TrailCheckpointer::log_cursor_advance(tr::Dir dir, int ip) {
  cursor_log_.push_back(CursorUndo{dir, ip});
  ++cursor_logged_total_;
}

std::unique_ptr<Checkpointer> make_checkpointer(CheckpointMode mode,
                                                Stats& stats) {
  if (mode == CheckpointMode::Copy) {
    return std::make_unique<CopyCheckpointer>(stats);
  }
  return std::make_unique<TrailCheckpointer>(stats);
}

}  // namespace tango::core
