#include "core/parallel_dfs.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/executor.hpp"
#include "core/fault.hpp"
#include "core/generator.hpp"
#include "core/governor.hpp"
#include "core/obs_record.hpp"
#include "core/visited.hpp"
#include "support/diagnostics.hpp"

namespace tango::core {

namespace {

/// Every branching node above this depth is published in deterministic
/// mode. Depth-bounded ownership keeps the task set a pure function of
/// the branch tree; below the bound, subtrees are small enough that
/// sequential exploration inside one task is the faster choice anyway.
constexpr int kDeterministicPublishDepth = 12;

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// A continuation: the untaken alternatives of one branching node,
/// materialized so any worker can resume them. `node_depth` is the global
/// stack depth of the node (the publisher's stack size with the node on
/// top), `path` the edge labels leading into the node.
struct Task {
  SearchState state;
  std::vector<Firing> firings;  // ignored unless `generated`
  bool generated = false;       // false: run generate() at the root node
  std::vector<std::string> path;
  int node_depth = 1;
  std::vector<std::uint32_t> lineage;
  /// Event id of the enter/fire that produced `state` — the task's fires
  /// keep pointing at the same parent a sequential run would name.
  std::uint64_t origin = 0;
};

/// What one task's exploration produced. Outcomes merge in lineage order
/// (lexicographic), which in deterministic mode makes the merged result a
/// pure function of the task set; the integer counters are commutative,
/// so relaxed mode loses nothing by reusing the same order.
struct Outcome {
  std::vector<std::uint32_t> lineage;
  Stats stats;
  std::string note;
  bool found = false;
  std::vector<std::string> solution;
  std::uint64_t witness = 0;  // fire event id of the completing state
};

struct NodeFrame {
  GenResult gen;
  std::size_t next = 0;
  std::optional<std::size_t> mark;  // checkpoint; present iff node branches
  std::string chosen;               // name of the firing taken to descend
  std::uint64_t origin = 0;         // enter/fire event that made this state
};

/// Same veto-preference rule as the sequential engine: a concrete
/// parameter mismatch beats ordering complaints from failed interleavings.
void merge_note(std::string& into, const std::string& msg) {
  if (msg.empty()) return;
  const bool existing_param = into.find("parameter") != std::string::npos;
  const bool incoming_param = msg.find("parameter") != std::string::npos;
  if (into.empty() || (incoming_param && !existing_param)) into = msg;
}

class ParallelEngine {
 public:
  ParallelEngine(const est::Spec& spec, const tr::Trace& trace,
                 const Options& options)
      : spec_(spec),
        trace_(trace),
        options_(options),
        ro_(resolve_timed(spec, options, phase_static_)),
        jobs_(resolve_jobs(options.jobs)),
        det_(options.deterministic),
        publish_watermark_(static_cast<std::size_t>(2 * jobs_)),
        governor_(options),
        sink_(options.sink) {}

  DfsResult run() {
    DfsResult result;
    {
      PhaseTimer search_timer(result.stats.phase_search);
      run_impl(result);
    }
    result.stats.phase_static = phase_static_;
    assert(result.stats.invariant_violations(false).empty());
    return result;
  }

 private:
  void run_impl(DfsResult& result) {
    validate_trace_against_options(spec_, trace_, ro_);
    CpuTimer timer;
    if (sink_ != nullptr) emit_run_header(*sink_, spec_, options_, "par");

    Outcome init_out;  // empty lineage sorts first
    rt::Interp init_interp(spec_,
                           options_.partial ? rt::EvalMode::Partial
                                            : rt::EvalMode::Strict,
                           options_.interp);
    std::vector<Task> roots;
    std::uint32_t root_seq = 0;
    std::uint64_t witness = 0;
    bool early_valid = false;
    for (std::size_t ii = 0;
         !early_valid && ii < spec_.body().initializers.size(); ++ii) {
      InitResult init =
          apply_initializer(init_interp, trace_, ro_, ii, init_out.stats);
      bump_shared_te();
      if (!init.ok) {
        emit_enter(static_cast<int>(ii), -1, init.executed, false, false, 0);
        merge_note(init_out.note, init.note);
        continue;
      }
      std::vector<int> start_states{init.state.machine.fsm_state};
      if (options_.initial_state_search) {
        for (int s = 0; s < static_cast<int>(spec_.states.size()); ++s) {
          if (s != init.state.machine.fsm_state) start_states.push_back(s);
        }
      }
      bool first_root = true;
      for (int start : start_states) {
        SearchState root = init.state;
        root.machine.fsm_state = start;
        const bool done = root.cursors.all_done(trace_, ro_);
        const std::uint64_t root_event =
            emit_enter(static_cast<int>(ii), start,
                       first_root && init.executed, true, done,
                       sink_ != nullptr ? state_hash(root, options_) : 0);
        first_root = false;
        std::string label =
            "initialize to " + spec_.states[static_cast<std::size_t>(start)];
        if (done) {
          result.verdict = Verdict::Valid;
          result.solution = {std::move(label)};
          witness = root_event;
          early_valid = true;
          break;
        }
        Task t;
        t.state = std::move(root);
        t.path = {std::move(label)};
        t.lineage = {root_seq++};
        t.origin = root_event;
        roots.push_back(std::move(t));
      }
    }

    if (early_valid) {
      result.stats = init_out.stats;
      result.note = init_out.note;
    } else {
      if (!roots.empty()) run_pool(std::move(roots));

      // Merge in lineage order; see Outcome.
      std::sort(outcomes_.begin(), outcomes_.end(),
                [](const Outcome& a, const Outcome& b) {
                  return a.lineage < b.lineage;
                });
      result.stats = init_out.stats;
      result.note = init_out.note;
      const Outcome* winner = nullptr;
      for (const Outcome& o : outcomes_) {
        result.stats += o.stats;
        merge_note(result.note, o.note);
        if (o.found && winner == nullptr) winner = &o;
      }
      if (shared_visited_ != nullptr) {
        const std::uint64_t shared_evictions =
            shared_visited_->total_evictions();
        result.stats.evictions += shared_evictions;
        if (sink_ != nullptr && shared_evictions > 0) {
          obs::Event e;
          e.kind = obs::EventKind::Evict;
          e.count = shared_evictions;
          sink_->emit(e);
        }
      }
      if (winner != nullptr) {
        result.verdict = Verdict::Valid;
        result.solution = winner->solution;
        witness = winner->witness;
        // A budget may have tripped in a losing task; a Valid verdict
        // carries no reason.
        result.stats.reason = InconclusiveReason::None;
      } else if (out_of_budget_.load() || depth_clipped_.load()) {
        result.verdict = Verdict::Inconclusive;
        // Deterministic mode: the merged stats carry the first tripped
        // reason in lineage order (a pure function of the task set).
        // Relaxed mode falls back to the first-wins shared trip, which
        // also covers budget trips outside any task (initializer loop).
        InconclusiveReason r = result.stats.reason;
        if (r == InconclusiveReason::None) {
          r = static_cast<InconclusiveReason>(stop_reason_.load());
        }
        if (r == InconclusiveReason::None) r = InconclusiveReason::Depth;
        result.reason = r;
        result.stats.reason = r;
      } else {
        result.verdict = Verdict::Invalid;
        result.stats.reason = InconclusiveReason::None;
      }
    }
    result.stats.cpu_seconds = timer.elapsed();
    if (sink_ != nullptr) {
      emit_verdict(*sink_, witness, to_string(result.verdict), result.stats,
                   to_string(result.reason));
    }
  }

  std::uint64_t emit_enter(int init, int start_state, bool applied, bool ok,
                           bool all_done, std::uint64_t state_hash) {
    if (sink_ == nullptr) return 0;
    obs::Event e;
    e.kind = obs::EventKind::Enter;
    e.id = sink_->next_id();
    e.init = init;
    e.start_state = start_state;
    e.applied = applied;
    e.ok = ok;
    e.all_done = all_done;
    e.state_hash = state_hash;
    sink_->emit(e);
    return e.id;
  }

  void emit_at_node(obs::EventKind kind, std::uint64_t origin, int worker,
                    int depth, std::uint64_t count) {
    if (sink_ == nullptr) return;
    obs::Event e;
    e.kind = kind;
    e.parent = origin;
    e.worker = worker;
    e.depth = depth;
    e.count = count;
    sink_->emit(e);
  }
  struct WorkerDeque {
    std::mutex mu;
    std::deque<Task> dq;
  };

  void run_pool(std::vector<Task> roots) {
    if (!det_ && options_.hash_states) {
      shared_visited_ = std::make_unique<ShardedVisitedTable>(
          static_cast<std::size_t>(std::max(16, 4 * jobs_)),
          options_.visited_max);
    }
    deques_.clear();
    for (int i = 0; i < jobs_; ++i) {
      deques_.push_back(std::make_unique<WorkerDeque>());
    }
    pending_.store(static_cast<int>(roots.size()));
    queued_.store(roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      deques_[i % static_cast<std::size_t>(jobs_)]->dq.push_back(
          std::move(roots[i]));
    }

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(jobs_));
    for (int w = 0; w < jobs_; ++w) {
      workers.emplace_back([this, w] { worker_loop(w); });
    }
    for (std::thread& t : workers) t.join();
    if (failure_ != nullptr) std::rethrow_exception(failure_);
  }

  void worker_loop(int wid) {
    rt::Interp interp(spec_,
                      options_.partial ? rt::EvalMode::Partial
                                       : rt::EvalMode::Strict,
                      options_.interp);
    while (true) {
      bool stolen = false;
      std::optional<Task> task = pop_or_steal(wid, stolen);
      if (!task) {
        std::unique_lock<std::mutex> lock(sleep_mu_);
        if (pending_.load() == 0 || stop_.load()) return;
        sleep_cv_.wait(lock, [this] {
          return queued_.load() > 0 || pending_.load() == 0 || stop_.load();
        });
        if (pending_.load() == 0 || stop_.load()) return;
        continue;
      }
      try {
        run_task(std::move(*task), wid, interp, stolen);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(outcomes_mu_);
          if (failure_ == nullptr) failure_ = std::current_exception();
        }
        stop_.store(true);
        wake_all();
        return;
      }
      if (pending_.fetch_sub(1) == 1) wake_all();
    }
  }

  std::optional<Task> pop_or_steal(int wid, bool& stolen) {
    {
      WorkerDeque& own = *deques_[static_cast<std::size_t>(wid)];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.dq.empty()) {
        Task t = std::move(own.dq.back());  // LIFO: stay depth-first locally
        own.dq.pop_back();
        queued_.fetch_sub(1);
        return t;
      }
    }
    for (int off = 1; off < jobs_; ++off) {
      WorkerDeque& victim =
          *deques_[static_cast<std::size_t>((wid + off) % jobs_)];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.dq.empty()) {
        Task t = std::move(victim.dq.front());  // FIFO: steal big subtrees
        victim.dq.pop_front();
        queued_.fetch_sub(1);
        stolen = true;
        return t;
      }
    }
    return std::nullopt;
  }

  void publish(Task t, int wid) {
    pending_.fetch_add(1);
    {
      WorkerDeque& own = *deques_[static_cast<std::size_t>(wid)];
      std::lock_guard<std::mutex> lock(own.mu);
      own.dq.push_back(std::move(t));
    }
    queued_.fetch_add(1);
    wake_one();
  }

  // Publishers/finishers lock-unlock sleep_mu_ before notifying so a
  // worker between its predicate check and its block cannot miss the wake.
  void wake_one() {
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    sleep_cv_.notify_one();
  }
  void wake_all() {
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    sleep_cv_.notify_all();
  }

  bool should_publish(int node_depth) const {
    if (det_) return node_depth < kDeterministicPublishDepth;
    return queued_.load(std::memory_order_relaxed) < publish_watermark_;
  }

  /// Global transition budget in relaxed mode; every apply (worker or
  /// initializer) adds one, mirroring the sequential TE counter.
  void bump_shared_te() {
    if (det_ || options_.max_transitions == 0) return;
    if (te_shared_.fetch_add(1) + 1 >= options_.max_transitions) {
      trip_relaxed(InconclusiveReason::Transitions);
    }
  }

  /// Relaxed-mode budget trip: records the winning reason (first trip
  /// wins) and cancels the pool cooperatively — the shared flag every
  /// worker observes through stop_.
  void trip_relaxed(InconclusiveReason r) {
    std::uint32_t expected = 0;
    stop_reason_.compare_exchange_strong(expected,
                                         static_cast<std::uint32_t>(r));
    out_of_budget_.store(true);
    stop_.store(true);
    wake_all();
  }

  void run_task(Task t, int wid, rt::Interp& interp, bool stolen) {
    Outcome out;
    out.lineage = std::move(t.lineage);
    Stats& stats = out.stats;
    if (stolen) {
      stats.tasks_stolen = 1;
      emit_at_node(obs::EventKind::Steal, t.origin, wid, t.node_depth - 1, 0);
    }

    SearchState cur = std::move(t.state);
    // Per-task copy: every task races the same absolute deadline but
    // samples its own clock stride; in deterministic mode the memory
    // budget applies to this task's stats alone.
    ResourceGovernor gov = governor_;
    std::uint64_t mem_reported = 0;  // relaxed: bytes pushed to mem_shared_
    std::unique_ptr<Checkpointer> ckpt =
        make_checkpointer(options_.checkpoint, stats);
    std::unique_ptr<VisitedSet> local_visited;
    if (det_ && options_.hash_states) {
      // Private per-task table: weaker pruning than the shared one, but a
      // pure function of the task, which determinism requires. The
      // --visited-max bound applies per task.
      local_visited = std::make_unique<VisitedSet>(options_.visited_max);
    }

    std::vector<std::string> path = std::move(t.path);
    std::vector<NodeFrame> stack;
    std::uint32_t pub_seq = 0;

    {
      NodeFrame root;
      root.origin = t.origin;
      if (t.generated) {
        root.gen.firings = std::move(t.firings);
      } else {
        root.gen = generate(interp, trace_, ro_, cur, stats,
                            ObsCtx{sink_, t.origin, wid, t.node_depth - 1});
        merge_note(out.note, root.gen.fault);
      }
      if (root.gen.firings.size() > 1) {
        root.mark = ckpt->save(cur);
        ++stats.saves;
        emit_at_node(obs::EventKind::CheckpointSave, t.origin, wid,
                     t.node_depth - 1, *root.mark);
      }
      stack.push_back(std::move(root));
    }

    while (!stack.empty()) {
      if (stop_.load(std::memory_order_relaxed)) break;  // never set in det
      NodeFrame& frame = stack.back();
      if (frame.next >= frame.gen.firings.size()) {
        if (frame.mark) ckpt->forget(*frame.mark);
        if (!frame.chosen.empty()) path.pop_back();
        emit_at_node(obs::EventKind::Backtrack, frame.origin, wid,
                     t.node_depth + static_cast<int>(stack.size()) - 2, 0);
        stack.pop_back();
        continue;
      }
      if (det_ && options_.max_transitions != 0 &&
          stats.transitions_executed >= options_.max_transitions) {
        // Deterministic budgets are per task: the clip point depends only
        // on the task, never on sibling tasks' progress.
        out_of_budget_.store(true);
        stats.reason = InconclusiveReason::Transitions;
        break;
      }
      if (gov.armed()) {
        if (det_) {
          // Per-task accounting, no cancellation: sibling tasks run to
          // completion, so every counter stays a pure function of its
          // task (modulo the wall clock itself for a deadline trip).
          const InconclusiveReason r = gov.check(stats);
          if (r != InconclusiveReason::None) {
            out_of_budget_.store(true);
            stats.reason = r;
            break;
          }
        } else {
          // Relaxed mode pools the memory proxy across workers and turns
          // any trip into a shared cancellation.
          const std::uint64_t mem = ResourceGovernor::memory_bytes(stats);
          if (mem > mem_reported) {
            mem_shared_.fetch_add(mem - mem_reported,
                                  std::memory_order_relaxed);
            mem_reported = mem;
          }
          InconclusiveReason r = InconclusiveReason::None;
          if (options_.max_memory != 0 &&
              mem_shared_.load(std::memory_order_relaxed) >=
                  options_.max_memory) {
            r = InconclusiveReason::Memory;
          } else if (gov.deadline_expired()) {
            r = InconclusiveReason::Deadline;
          }
          if (r != InconclusiveReason::None) {
            stats.reason = r;
            trip_relaxed(r);
            break;
          }
        }
      }

      const int node_depth = t.node_depth + static_cast<int>(stack.size()) - 1;
      const std::size_t pick = frame.next++;
      if (pick > 0) {
        ckpt->restore(*frame.mark, cur);
        ++stats.restores;
        emit_at_node(obs::EventKind::CheckpointRestore, frame.origin, wid,
                     node_depth - 1, *frame.mark);
        if (!frame.chosen.empty()) path.pop_back();
        frame.chosen.clear();
      }

      // cur is the pristine node state here; if untaken siblings remain
      // and the pool wants work, hand them off as one continuation.
      if (frame.next < frame.gen.firings.size() &&
          should_publish(node_depth)) {
        Task cont;
        cont.state = ckpt->snapshot(cur);
        cont.firings.assign(frame.gen.firings.begin() +
                                static_cast<std::ptrdiff_t>(frame.next),
                            frame.gen.firings.end());
        cont.generated = true;
        cont.path = path;
        cont.node_depth = node_depth;
        cont.origin = frame.origin;
        cont.lineage = out.lineage;
        // The lineage component must order continuations by DFS position.
        // In deterministic mode a task publishes at most once per depth,
        // along its leftmost descent chain; a DEEPER continuation lies
        // inside the shallower node's first subtree and therefore comes
        // EARLIER in tree order, so the component decreases with depth.
        // Relaxed mode makes no ordering promise; publication order is
        // fine there (the merge only needs distinct keys).
        cont.lineage.push_back(
            det_ ? static_cast<std::uint32_t>(kDeterministicPublishDepth -
                                              node_depth)
                 : pub_seq++);
        frame.gen.firings.resize(frame.next);  // this task owns only `pick`
        ++stats.tasks_published;
        publish(std::move(cont), wid);
      }

      const Firing& firing = frame.gen.firings[pick];
      ApplyResult applied =
          apply_firing(interp, trace_, ro_, cur, firing, stats, ckpt.get());
      bump_shared_te();
      const bool done = applied.ok && cur.cursors.all_done(trace_, ro_);
      // One hash per fired node, shared by the fire event and the visited
      // insert (with --events and --hash-states both on, this used to be
      // computed twice).
      std::uint64_t cur_hash = 0;
      if (applied.ok && (sink_ != nullptr || options_.hash_states)) {
        cur_hash = state_hash(cur, options_);
      }
      std::uint64_t fire_event = 0;
      if (sink_ != nullptr) {
        obs::Event e;
        e.kind = obs::EventKind::Fire;
        e.id = sink_->next_id();
        e.parent = frame.origin;
        e.worker = wid;
        e.depth = node_depth;
        e.transition = firing.transition;
        e.input_event = firing.input_event;
        e.synthesized = firing.synthesized;
        e.ok = applied.ok;
        if (applied.ok) {
          e.all_done = done;
          e.state_hash = cur_hash;
        }
        sink_->emit(e);
        fire_event = e.id;
      }
      if (!applied.ok) {
        merge_note(out.note, applied.note);
        continue;
      }

      frame.chosen =
          spec_.body()
              .transitions[static_cast<std::size_t>(firing.transition)]
              .name;
      path.push_back(frame.chosen);
      stats.max_depth = std::max(stats.max_depth, node_depth);

      if (done) {
        out.found = true;
        out.solution = path;
        out.witness = fire_event;
        if (!det_) {
          stop_.store(true);  // first conclusion cancels the pool
          wake_all();
        }
        break;
      }

      if (options_.hash_states) {
        const std::uint64_t h = cur_hash;
        const bool fresh = det_ ? local_visited->insert(h)
                                : shared_visited_->insert(h);
        if (!fresh) {
          ++stats.pruned_by_hash;
          if (sink_ != nullptr) {
            obs::Event e;
            e.kind = obs::EventKind::PruneVisited;
            e.parent = fire_event;
            e.worker = wid;
            e.depth = node_depth;
            e.state_hash = h;
            sink_->emit(e);
          }
          path.pop_back();
          frame.chosen.clear();
          continue;
        }
      }

      if (options_.max_depth != 0 && node_depth >= options_.max_depth) {
        depth_clipped_.store(true);
        path.pop_back();
        frame.chosen.clear();
        continue;
      }

      NodeFrame child;
      child.origin = fire_event;
      child.gen = generate(interp, trace_, ro_, cur, stats,
                           ObsCtx{sink_, fire_event, wid, node_depth});
      merge_note(out.note, child.gen.fault);
      if (child.gen.firings.size() > 1) {
        child.mark = ckpt->save(cur);
        ++stats.saves;
        emit_at_node(obs::EventKind::CheckpointSave, fire_event, wid,
                     node_depth, *child.mark);
      }
      stack.push_back(std::move(child));
    }

    if (local_visited != nullptr) {
      const std::uint64_t local_evictions = local_visited->evictions();
      stats.evictions += local_evictions;
      if (sink_ != nullptr && local_evictions > 0) {
        obs::Event e;
        e.kind = obs::EventKind::Evict;
        e.worker = wid;
        e.count = local_evictions;
        sink_->emit(e);
      }
    }
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    outcomes_.push_back(std::move(out));
  }

  const est::Spec& spec_;
  const tr::Trace& trace_;
  const Options& options_;
  PhaseMetrics phase_static_;  // declared before ro_: resolve_timed fills it
  ResolvedOptions ro_;
  const int jobs_;
  const bool det_;
  const std::size_t publish_watermark_;
  const ResourceGovernor governor_;  // copied per task; see run_task
  obs::Sink* sink_ = nullptr;

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::atomic<int> pending_{0};          // tasks queued or running
  std::atomic<std::size_t> queued_{0};   // queued only; hunger heuristic
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> out_of_budget_{false};
  std::atomic<bool> depth_clipped_{false};
  std::atomic<std::uint64_t> te_shared_{0};
  std::atomic<std::uint64_t> mem_shared_{0};
  /// First budget reason to trip in relaxed mode (InconclusiveReason).
  std::atomic<std::uint32_t> stop_reason_{0};
  std::unique_ptr<ShardedVisitedTable> shared_visited_;
  std::mutex outcomes_mu_;
  std::vector<Outcome> outcomes_;
  std::exception_ptr failure_;
};

}  // namespace

DfsResult analyze_parallel(const est::Spec& spec, const tr::Trace& trace,
                           const Options& options) {
  return ParallelEngine(spec, trace, options).run();
}

std::vector<BatchItemResult> analyze_batch(const est::Spec& spec,
                                           const std::vector<tr::Trace>& traces,
                                           const Options& options,
                                           const std::vector<obs::Sink*>& sinks) {
  std::vector<BatchItemResult> results(traces.size());
  const int max_attempts = 1 + std::max(0, options.item_retries);
  const auto analyze_one = [&](std::size_t i) {
    Options item_options = options;
    item_options.sink = i < sinks.size() ? sinks[i] : nullptr;
    // Thread-local fault-injection identity: a spec like
    // "deadline@item:1" fires only inside item 1's analysis.
    FaultScope scope("item:" + std::to_string(i));
    BatchItemResult& out = results[i];
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      out.attempts = attempt;
      out.error.clear();
      try {
        if (fault_probe(FaultSite::TraceRead)) {
          throw RuntimeFault({}, "fault injection: trace read failed");
        }
        out.result = analyze(spec, traces[i], item_options);
        return;
      } catch (const RuntimeFault& e) {
        out.error = e.what();  // transient: retry while the budget allows
      } catch (const std::exception& e) {
        out.error = e.what();  // permanent (bad trace, bad options): no retry
        return;
      } catch (...) {
        out.error = "unknown exception";
        return;
      }
    }
  };
  const int jobs = std::min<int>(resolve_jobs(options.jobs),
                                 static_cast<int>(traces.size()));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < traces.size(); ++i) analyze_one(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= traces.size()) return;
        analyze_one(i);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

}  // namespace tango::core
