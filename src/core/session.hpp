// Re-entrant analysis sessions (docs/SERVER.md §lifecycle). A session wraps
// the on-line analyzer in the shape a long-running host needs: pump a
// bounded number of search steps, observe interim-assessment *edges* (the
// paper's §3.1.2 "valid so far" / "likely invalid" signals, reported once
// per change rather than once per poll), and abort cooperatively when the
// host drains (SIGTERM) or the client cancels. The trace side stays a
// tr::TraceSource, so the same session runs against a growing file, a
// memory feed, or the server's socket-fed tr::ChunkSource.
#pragma once

#include <cstdint>

#include "core/mdfs.hpp"

namespace tango::core {

class AnalysisSession {
 public:
  AnalysisSession(const est::Spec& spec, tr::TraceSource& source,
                  OnlineConfig config)
      : analyzer_(spec, source, std::move(config)) {}

  /// Runs up to `steps` search steps (one OnlineAnalyzer round), polling
  /// the source as usual. Conclusive statuses are sticky.
  OnlineStatus pump(std::uint64_t steps) {
    return analyzer_.step_round(steps);
  }

  /// Concludes Inconclusive(`reason`) unless already conclusive. Use
  /// InconclusiveReason::Shutdown for drain/cancel.
  void abort(InconclusiveReason reason) { analyzer_.abort(reason); }

  /// Reports an assessment edge: true (and fills `now`) when the status
  /// differs from the one this method last reported. The first call
  /// reports the current status unless it is still Searching — callers
  /// forward these edges as interim `verdict` frames.
  [[nodiscard]] bool take_status_change(OnlineStatus& now) {
    const OnlineStatus s = analyzer_.status();
    if (s == last_reported_) return false;
    last_reported_ = s;
    now = s;
    return true;
  }

  [[nodiscard]] OnlineStatus status() const { return analyzer_.status(); }
  [[nodiscard]] bool conclusive() const { return analyzer_.conclusive(); }
  [[nodiscard]] const Stats& stats() const { return analyzer_.stats(); }
  [[nodiscard]] const tr::Trace& trace() const { return analyzer_.trace(); }
  [[nodiscard]] std::size_t pg_count() const { return analyzer_.pg_count(); }

  /// See OnlineAnalyzer::finalize_stream — idempotent, no-op without sink.
  void finalize_stream() { analyzer_.finalize_stream(); }

 private:
  OnlineAnalyzer analyzer_;
  OnlineStatus last_reported_ = OnlineStatus::Searching;
};

}  // namespace tango::core
