#include "core/governor.hpp"

#include <ctime>

#include "core/fault.hpp"

namespace tango::core {

namespace {

std::uint64_t mono_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

ResourceGovernor::ResourceGovernor(const Options& options)
    : max_memory_(options.max_memory) {
  if (options.deadline_ms != 0) {
    deadline_ns_ = mono_now_ns() + options.deadline_ms * 1'000'000;
  }
}

bool ResourceGovernor::deadline_expired() {
  if (deadline_ns_ == 0) return false;
  if (fault_probe(FaultSite::Deadline)) return true;
  if (until_sample_-- != 0) return false;
  until_sample_ = kDeadlineStride - 1;
  return mono_now_ns() >= deadline_ns_;
}

InconclusiveReason ResourceGovernor::check(const Stats& stats) {
  if (max_memory_ != 0 && memory_bytes(stats) > max_memory_) {
    return InconclusiveReason::Memory;
  }
  if (deadline_expired()) return InconclusiveReason::Deadline;
  return InconclusiveReason::None;
}

}  // namespace tango::core
