// Glue between the engines and the observability layer (src/obs/): the
// run-header / verdict emission both ends of every recorded stream share,
// the replay-relevant option fingerprint that rides in the header's
// `flags` object, and the tiny context the generator needs to attribute
// its prune events to the node being expanded.
#pragma once

#include <cstdint>
#include <string>

#include "core/options.hpp"
#include "core/stats.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"

namespace tango::core {

/// Where an emission happens: the node event (enter/fire id) being
/// expanded, the worker doing it, and the node's depth. Passed by value
/// into generate(); a default-constructed context (null sink) disables
/// emission entirely.
struct ObsCtx {
  obs::Sink* sink = nullptr;
  std::uint64_t node = 0;
  std::int32_t worker = -1;
  std::int32_t depth = 0;
};

/// The options that determine replay semantics, as a JSON object (sorted
/// keys, no whitespace). Excludes tuning that cannot change any event's
/// meaning (poll cadence, interpreter limits).
[[nodiscard]] std::string options_flags_json(const Options& options);

/// Inverse of options_flags_json: overlays the recorded flags onto
/// `out` (other fields keep their current values). Throws
/// std::runtime_error on a malformed flags object.
void options_from_flags(const obs::JsonValue& flags, Options& out);

/// Emits the stream's `run` header.
void emit_run_header(obs::Sink& sink, const est::Spec& spec,
                     const Options& options, const char* engine);

/// Emits the final `verdict` event. `witness` is the enter/fire event
/// whose state completed the trace (0 when there is none). The stats
/// snapshot is serialized without timing so deterministic runs stay
/// byte-stable. `reason` names the exhausted resource on an inconclusive
/// verdict ("" on every other verdict).
void emit_verdict(obs::Sink& sink, std::uint64_t witness,
                  std::string_view verdict, const Stats& stats,
                  std::string_view reason = "");

/// ResolvedOptions construction timed into `phase` (guard-solver cost) —
/// shaped for constructor init lists, where a scoped PhaseTimer can't go.
[[nodiscard]] ResolvedOptions resolve_timed(const est::Spec& spec,
                                            const Options& options,
                                            PhaseMetrics& phase);

}  // namespace tango::core
