#include "core/search_state.hpp"

#include <limits>

namespace tango::core {

std::uint32_t CursorSet::next_seq(const tr::Trace& trace, int ip,
                                  tr::Dir dir) const {
  const auto& list = trace.list(ip, dir);
  const std::uint32_t c = dir == tr::Dir::In
                              ? in_next[static_cast<std::size_t>(ip)]
                              : out_next[static_cast<std::size_t>(ip)];
  if (c >= list.size()) return std::numeric_limits<std::uint32_t>::max();
  return list[c];
}

std::uint32_t CursorSet::global_min_seq(const tr::Trace& trace, tr::Dir dir,
                                        const ResolvedOptions& ro) const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (int ip = 0; ip < trace.ip_count(); ++ip) {
    if (ro.is_disabled(ip)) continue;
    best = std::min(best, next_seq(trace, ip, dir));
  }
  return best;
}

bool CursorSet::all_done(const tr::Trace& trace,
                         const ResolvedOptions& ro) const {
  for (int ip = 0; ip < trace.ip_count(); ++ip) {
    if (ro.is_disabled(ip)) continue;
    const std::size_t i = static_cast<std::size_t>(ip);
    if (in_next[i] < trace.list(ip, tr::Dir::In).size()) return false;
    if (out_next[i] < trace.list(ip, tr::Dir::Out).size()) return false;
  }
  return true;
}

std::uint64_t CursorSet::hash() const {
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (std::uint32_t c : in_next) mix(c);
  for (std::uint32_t c : out_next) mix(~static_cast<std::uint64_t>(c));
  return h;
}

}  // namespace tango::core
