#include "core/search_state.hpp"

#include <limits>

#include "support/hash.hpp"

namespace tango::core {

namespace {

constexpr std::uint64_t kCursorSeed = 0x9ae16a3b2f90404fULL;

/// Placement of one cursor in the fold: `j` indexes the (dir, ip) pair —
/// inputs first, then outputs. XOR-composable, so advance/retreat patch
/// the fold in O(1).
std::uint64_t cursor_place(std::size_t j, std::uint32_t c) {
  return support::mix64((j + 1) * support::kGolden64 ^
                        (static_cast<std::uint64_t>(c) + kCursorSeed));
}

}  // namespace

CursorSet::CursorSet(int ip_count)
    : in_next_(static_cast<std::size_t>(ip_count), 0),
      out_next_(static_cast<std::size_t>(ip_count), 0) {
  const std::size_t n = in_next_.size();
  for (std::size_t j = 0; j < 2 * n; ++j) acc_ ^= cursor_place(j, 0);
}

void CursorSet::advance(tr::Dir dir, int ip) {
  const auto i = static_cast<std::size_t>(ip);
  std::uint32_t& c = dir == tr::Dir::In ? in_next_[i] : out_next_[i];
  const std::size_t j = dir == tr::Dir::In ? i : in_next_.size() + i;
  acc_ ^= cursor_place(j, c) ^ cursor_place(j, c + 1);
  ++c;
}

void CursorSet::retreat(tr::Dir dir, int ip) {
  const auto i = static_cast<std::size_t>(ip);
  std::uint32_t& c = dir == tr::Dir::In ? in_next_[i] : out_next_[i];
  const std::size_t j = dir == tr::Dir::In ? i : in_next_.size() + i;
  acc_ ^= cursor_place(j, c) ^ cursor_place(j, c - 1);
  --c;
}

std::uint32_t CursorSet::next_seq(const tr::Trace& trace, int ip,
                                  tr::Dir dir) const {
  const auto& list = trace.list(ip, dir);
  const std::uint32_t c = cursor(dir, ip);
  if (c >= list.size()) return std::numeric_limits<std::uint32_t>::max();
  return list[c];
}

std::uint32_t CursorSet::global_min_seq(const tr::Trace& trace, tr::Dir dir,
                                        const ResolvedOptions& ro) const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (int ip = 0; ip < trace.ip_count(); ++ip) {
    if (ro.is_disabled(ip)) continue;
    best = std::min(best, next_seq(trace, ip, dir));
  }
  return best;
}

bool CursorSet::all_done(const tr::Trace& trace,
                         const ResolvedOptions& ro) const {
  for (int ip = 0; ip < trace.ip_count(); ++ip) {
    if (ro.is_disabled(ip)) continue;
    const std::size_t i = static_cast<std::size_t>(ip);
    if (in_next_[i] < trace.list(ip, tr::Dir::In).size()) return false;
    if (out_next_[i] < trace.list(ip, tr::Dir::Out).size()) return false;
  }
  return true;
}

std::uint64_t CursorSet::hash() const {
  return support::mix64(acc_ ^ kCursorSeed);
}

std::uint64_t CursorSet::hash_full() const {
  std::uint64_t acc = 0;
  const std::size_t n = in_next_.size();
  for (std::size_t i = 0; i < n; ++i) acc ^= cursor_place(i, in_next_[i]);
  for (std::size_t i = 0; i < n; ++i) {
    acc ^= cursor_place(n + i, out_next_[i]);
  }
  return support::mix64(acc ^ kCursorSeed);
}

}  // namespace tango::core
