// Backtracking depth-first trace analysis for static (complete) traces —
// the paper's §2.2. A trace is valid iff some path of transitions from an
// initial state consumes every input and produces every output recorded in
// the trace (§2: "state space search ... a path from the root to a leaf").
#pragma once

#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/search_state.hpp"
#include "core/stats.hpp"
#include "core/verdict.hpp"
#include "trace/event.hpp"

namespace tango::core {

struct DfsResult {
  Verdict verdict = Verdict::Inconclusive;
  /// Which resource contract produced an Inconclusive verdict; None on
  /// every other verdict. Mirrored into stats.reason so it survives
  /// Stats-level merges and shows in Stats::to_json.
  InconclusiveReason reason = InconclusiveReason::None;
  Stats stats;
  /// For a valid trace: the transition names of one solution path, root to
  /// leaf (first entry is the initialize clause).
  std::vector<std::string> solution;
  /// Diagnostic: the first path-veto reason encountered (useful on invalid
  /// traces).
  std::string note;
};

/// Analyzes a complete trace against the specification. Throws CompileError
/// if the trace references disabled ips or carries inputs at unobservable
/// ips; runtime faults inside specification code kill only the offending
/// path (recorded in `note`).
[[nodiscard]] DfsResult analyze(const est::Spec& spec, const tr::Trace& trace,
                                const Options& options);

/// Convenience: parse the trace text, then analyze.
[[nodiscard]] DfsResult analyze_text(const est::Spec& spec,
                                     std::string_view trace_text,
                                     const Options& options);

/// Validates trace/option consistency (shared with the on-line analyzer):
/// no events at disabled ips, no inputs at unobservable ips.
void validate_trace_against_options(const est::Spec& spec,
                                    const tr::Trace& trace,
                                    const ResolvedOptions& ro);

}  // namespace tango::core
