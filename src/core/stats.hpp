// Search counters matching the columns of the paper's Figures 3 and 4:
// TE (transitions executed), GE (generates), RE (restores/backtracks),
// SA (state saves), plus CPU time and fanout, which §4.2 discusses.
#pragma once

#include <cstdint>
#include <string>

namespace tango::core {

struct Stats {
  std::uint64_t transitions_executed = 0;  // TE
  std::uint64_t generates = 0;             // GE
  std::uint64_t restores = 0;              // RE
  std::uint64_t saves = 0;                 // SA
  std::uint64_t pruned_by_hash = 0;        // state-hashing ablation
  /// Visited-state hashes dropped to honour --visited-max (0 when the
  /// table is unbounded). Eviction weakens pruning, never soundness.
  std::uint64_t evictions = 0;
  /// Frontier continuations published to the work-stealing pool and how
  /// many of them were executed by a worker other than their publisher
  /// (0 for the sequential engines).
  std::uint64_t tasks_published = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t fanout_sum = 0;            // sum of firing-list sizes
  std::uint64_t fanout_samples = 0;
  /// Candidate transitions skipped by guard-solver facts (static-prune
  /// skip set + mutual-exclusion matrix) before any guard evaluation.
  std::uint64_t static_skips = 0;
  /// Undo entries pushed by trail-mode checkpointing (0 in copy mode).
  /// Excluded from cross-mode differential comparisons, unlike TE..SA.
  std::uint64_t trail_entries = 0;
  /// Approximate bytes deep-copied by save()/snapshot() (shallow estimate:
  /// top-level containers, not nested record/array payloads).
  std::uint64_t checkpoint_bytes = 0;
  int max_depth = 0;
  double cpu_seconds = 0.0;

  [[nodiscard]] double average_fanout() const {
    return fanout_samples == 0
               ? 0.0
               : static_cast<double>(fanout_sum) /
                     static_cast<double>(fanout_samples);
  }
  [[nodiscard]] double transitions_per_second() const {
    return cpu_seconds <= 0.0
               ? 0.0
               : static_cast<double>(transitions_executed) / cpu_seconds;
  }

  /// Aggregation across analyses (differential/fuzz campaigns): counters
  /// and cpu time add, max_depth takes the maximum.
  Stats& operator+=(const Stats& other);

  /// One-line summary: "TE=… GE=… RE=… SA=… cpu=…s".
  [[nodiscard]] std::string summary() const;

  /// One-line JSON object with the Figure 3/4 counter names
  /// ({"te":…,"ge":…,"re":…,"sa":…,…}), for `tango fuzz --stats` output
  /// comparable with the bench/ figures.
  [[nodiscard]] std::string to_json() const;
};

/// Scoped CPU-time measurement (process CPU clock, like the paper's CPUT).
class CpuTimer {
 public:
  CpuTimer();
  /// Seconds of process CPU time since construction.
  [[nodiscard]] double elapsed() const;

 private:
  std::int64_t start_ns_;
};

}  // namespace tango::core
