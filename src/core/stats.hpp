// Search counters matching the columns of the paper's Figures 3 and 4:
// TE (transitions executed), GE (generates), RE (restores/backtracks),
// SA (state saves), plus CPU time and fanout, which §4.2 discusses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/verdict.hpp"

namespace tango::core {

/// Wall-clock and peak-RSS movement attributed to one phase of an analysis
/// (parse / static-analysis / search). Additive so Stats::operator+= stays
/// associative and commutative across worker merge orders; rss_delta_kb is
/// how far ru_maxrss moved while the phase ran (0 when the peak predates
/// the phase), a cheap allocation proxy that needs no allocator hooks.
struct PhaseMetrics {
  double wall_seconds = 0.0;
  std::int64_t rss_delta_kb = 0;

  PhaseMetrics& operator+=(const PhaseMetrics& other) {
    wall_seconds += other.wall_seconds;
    rss_delta_kb += other.rss_delta_kb;
    return *this;
  }
};

struct Stats {
  std::uint64_t transitions_executed = 0;  // TE
  std::uint64_t generates = 0;             // GE
  std::uint64_t restores = 0;              // RE
  std::uint64_t saves = 0;                 // SA
  std::uint64_t pruned_by_hash = 0;        // state-hashing ablation
  /// Visited-state hashes dropped to honour --visited-max (0 when the
  /// table is unbounded). Eviction weakens pruning, never soundness.
  std::uint64_t evictions = 0;
  /// Frontier continuations published to the work-stealing pool and how
  /// many of them were executed by a worker other than their publisher
  /// (0 for the sequential engines).
  std::uint64_t tasks_published = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t fanout_sum = 0;            // sum of firing-list sizes
  std::uint64_t fanout_samples = 0;
  /// Candidate transitions skipped by guard-solver facts (static-prune
  /// skip set + mutual-exclusion matrix) before any guard evaluation.
  std::uint64_t static_skips = 0;
  /// Undo entries pushed by trail-mode checkpointing (0 in copy mode).
  /// Excluded from cross-mode differential comparisons, unlike TE..SA.
  std::uint64_t trail_entries = 0;
  /// Approximate bytes deep-copied by save()/snapshot() (shallow estimate:
  /// top-level containers, not nested record/array payloads).
  std::uint64_t checkpoint_bytes = 0;
  int max_depth = 0;
  /// Why the analysis went Inconclusive (None otherwise). Rides on Stats
  /// so parallel Outcome merges carry it: operator+= keeps the first
  /// non-None reason in merge order, which in --deterministic mode is
  /// lineage order and therefore reproducible.
  InconclusiveReason reason = InconclusiveReason::None;
  double cpu_seconds = 0.0;
  /// Per-phase wall/RSS attribution: trace/spec parsing, option resolution
  /// including the guard solver, and the search proper.
  PhaseMetrics phase_parse;
  PhaseMetrics phase_static;
  PhaseMetrics phase_search;

  [[nodiscard]] double average_fanout() const {
    return fanout_samples == 0
               ? 0.0
               : static_cast<double>(fanout_sum) /
                     static_cast<double>(fanout_samples);
  }
  [[nodiscard]] double transitions_per_second() const {
    return cpu_seconds <= 0.0
               ? 0.0
               : static_cast<double>(transitions_executed) / cpu_seconds;
  }

  /// Aggregation across analyses (differential/fuzz campaigns): counters
  /// and cpu time add, max_depth takes the maximum.
  Stats& operator+=(const Stats& other);

  /// One-line summary: "TE=… GE=… RE=… SA=… cpu=…s".
  [[nodiscard]] std::string summary() const;

  /// One-line JSON object with the Figure 3/4 counter names
  /// ({"te":…,"ge":…,"re":…,"sa":…,…}), for `tango fuzz --stats` output
  /// comparable with the bench/ figures. Includes cpu_seconds and the
  /// per-phase wall/RSS block.
  [[nodiscard]] std::string to_json() const;

  /// The counters only — no cpu_seconds, no phases. This is what `verdict`
  /// events record: a stream from a deterministic run must be byte-stable,
  /// and timing never is.
  [[nodiscard]] std::string to_json_counters() const;

  /// Consistency checks over the counters; returns one message per
  /// violated invariant (empty = consistent).
  ///
  /// The default set holds for every engine by construction:
  ///   - fanout_samples == generates (generate() bumps both, exactly once)
  ///   - pruned_by_hash <= transitions_executed (each prune follows one
  ///     successful apply of the pruned state)
  ///
  /// `strict` adds the paper-model invariants, which hold for plain DFS
  /// runs but have documented exemptions (see docs/OBSERVABILITY.md):
  ///   - transitions_executed >= generates — violated by MDFS
  ///     re-generation (§3.1.1 re-generates parked nodes without firing)
  ///     and by --initial-state-search (one initializer apply seeds a
  ///     generate per start state)
  ///   - static_skips + evictions <= transitions_executed — can fail on
  ///     specs where most candidates are statically skippable, since
  ///     several skips can occur per executed transition
  [[nodiscard]] std::vector<std::string> invariant_violations(
      bool strict = false) const;
};

/// Scoped CPU-time measurement (process CPU clock, like the paper's CPUT).
class CpuTimer {
 public:
  CpuTimer();
  /// Seconds of process CPU time since construction.
  [[nodiscard]] double elapsed() const;

 private:
  std::int64_t start_ns_;
};

/// RAII phase measurement: on destruction ADDS the elapsed monotonic wall
/// time and the ru_maxrss movement to `target`, so one PhaseMetrics can
/// accumulate across repeated scopes (the on-line analyzer's rounds).
class PhaseTimer {
 public:
  explicit PhaseTimer(PhaseMetrics& target);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseMetrics& target_;
  std::int64_t start_ns_;
  std::int64_t start_rss_kb_;
};

}  // namespace tango::core
