#include "core/generator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace tango::core {

namespace {

/// Effective priority: Estelle priority clauses rank smaller-is-higher;
/// transitions without one rank below all prioritized transitions.
std::int64_t effective_priority(const est::Transition& tr) {
  return tr.priority.value_or(std::numeric_limits<std::int64_t>::max());
}

#ifndef NDEBUG
/// Fixpoint soundness oracle: every concrete state the search reaches must
/// be covered by the whole-spec invariant table — the occupied control
/// state reachable, every defined scalar module value inside its interval.
/// A violation here is an invariant-engine bug, never a spec bug.
bool invariants_hold(const analysis::GuardMatrix& gm, const SearchState& st) {
  if (!gm.has_invariants()) return true;
  const int s = st.machine.fsm_state;
  if (s < 0 || s >= gm.n_states) return true;  // pre-initialize
  if (!gm.state_reachable(s)) return false;
  const auto nv = static_cast<std::size_t>(gm.n_module_vars);
  const std::size_t limit = std::min(nv, st.machine.vars.size());
  for (std::size_t v = 0; v < limit; ++v) {
    const rt::Value& val = st.machine.vars[v];
    if (val.is_undefined() || !val.is_scalar()) continue;
    const std::size_t i = static_cast<std::size_t>(s) * nv + v;
    if (val.scalar() < gm.inv_lo_[i] || val.scalar() > gm.inv_hi_[i]) {
      return false;
    }
  }
  return true;
}
#endif

}  // namespace

GenResult generate(rt::Interp& interp, const tr::Trace& trace,
                   const ResolvedOptions& ro, SearchState& st, Stats& stats,
                   const ObsCtx& obs) {
  ++stats.generates;
  GenResult out;
  const est::Spec& spec = interp.spec();
  const auto& transitions = spec.body().transitions;
  const auto& applicable = spec.transitions_by_state[static_cast<std::size_t>(
      st.machine.fsm_state)];

  // Guard-solver facts (static-prune). `true_guards` collects candidates
  // whose provided clause evaluated true so far in this generate; a later
  // candidate proven mutually exclusive with any of them is skipped before
  // its when-queue is consulted (so it can't spuriously mark the node PG —
  // the skip is exactly the "provided is false" outcome, decided early).
  const analysis::GuardMatrix* gm = ro.guard_matrix.get();
  std::vector<int> true_guards;
  assert(gm == nullptr || invariants_hold(*gm, st));

  const auto emit_static_skip = [&](int ti) {
    if (obs.sink == nullptr) return;
    obs::Event e;
    e.kind = obs::EventKind::PruneStatic;
    e.parent = obs.node;
    e.worker = obs.worker;
    e.depth = obs.depth;
    e.transition = ti;
    obs.sink->emit(e);
  };

  // Doomed-output cut (invariant-prune): when the complete trace still has
  // a pending output that NO live code can ever emit on that ip, no
  // continuation from this node can consume it, so the whole subtree is
  // dead — every candidate is skipped up front. Only sound at eof: a
  // growing trace's unpruned search would instead mark nodes PG/incomplete
  // here, and the verdicts must match. Disabled ips are exempt (their
  // outputs are never checked, §2.4.3).
  if (gm != nullptr && gm->has_never_out() && trace.eof()) {
    for (int ip = 0; ip < gm->n_ips; ++ip) {
      if (ro.is_disabled(ip)) continue;
      const std::uint32_t seq =
          st.cursors.next_seq(trace, ip, tr::Dir::Out);
      if (seq == std::numeric_limits<std::uint32_t>::max()) continue;
      if (!gm->never_out(ip, trace.event(seq).interaction)) continue;
      for (int ti : applicable) {
        ++stats.static_skips;
        emit_static_skip(ti);
      }
      ++stats.fanout_samples;
      return out;
    }
  }

  const int fsm = st.machine.fsm_state;
  const bool state_facts = gm != nullptr && gm->has_state_facts() &&
                           fsm >= 0 && fsm < gm->n_states;

  for (int ti : applicable) {
    if (gm != nullptr) {
      if (gm->skippable(ti)) {
        ++stats.static_skips;
        emit_static_skip(ti);
        continue;
      }
      // Invariant-refuted pair: the provided clause is definitely false
      // under this control state's invariant — same outcome as evaluating
      // it, decided without touching the when-queue (so it can't mark the
      // node PG either, exactly like the mutex skip below).
      if (state_facts && gm->state_refuted(fsm, ti)) {
        ++stats.static_skips;
        emit_static_skip(ti);
        continue;
      }
      bool excluded = false;
      for (int held : true_guards) {
        if (gm->mutex(held, ti)) {
          excluded = true;
          break;
        }
      }
      if (excluded) {
        ++stats.static_skips;
        emit_static_skip(ti);
        continue;
      }
    }
    const est::Transition& tr = transitions[static_cast<std::size_t>(ti)];

    Firing firing;
    firing.transition = ti;

    if (tr.when) {
      const int ip = tr.when->ip_index;
      // An ip may be unobservable (inputs synthesized, §5.2) and disabled
      // (outputs unchecked, §2.4.3) at once — the lower-interface-only
      // analysis the paper wants for LAPD (§4.1). Unobservability wins for
      // the input side.
      if (ro.is_unobservable(ip)) {
        // §5.2: the when clause is assumed satisfiable; a fresh interaction
        // with undefined parameters is synthesized.
        firing.synthesized = true;
        firing.binding.assign(tr.when->param_types.size(), rt::Value{});
      } else if (ro.is_disabled(ip)) {
        continue;  // §3.2.1: never offered, never marks the node PG
      } else {
        const std::uint32_t seq = st.cursors.next_seq(trace, ip, tr::Dir::In);
        if (seq == std::numeric_limits<std::uint32_t>::max()) {
          // Input queue exhausted. If the trace can still grow, this
          // transition might become fireable later: the node is PG.
          if (!trace.eof()) out.incomplete = true;
          continue;
        }
        const tr::TraceEvent& ev = trace.event(seq);
        if (ev.interaction != tr.when->interaction_id) continue;

        // §2.4.2 input-wrt-output: the consumed input must precede every
        // pending output at the same ip.
        if (ro.base->check_input_wrt_output &&
            st.cursors.next_seq(trace, ip, tr::Dir::Out) < seq) {
          continue;
        }
        // §2.4.2 IP relative order: the consumed input must be the globally
        // earliest pending input.
        if (ro.base->check_ip_order &&
            st.cursors.global_min_seq(trace, tr::Dir::In, ro) < seq) {
          continue;
        }
        firing.input_event = static_cast<int>(seq);
        firing.binding = ev.params;
      }
    }

    bool holds = false;
    try {
      holds = interp.provided_holds(st.machine, tr, firing.binding);
    } catch (const RuntimeFault& fault) {
      // A faulting provided clause cannot be satisfied on this path; note
      // the first fault for diagnostics and treat the transition as not
      // offered.
      if (out.fault.empty()) out.fault = fault.what();
    }
    if (gm != nullptr) {
      if (gm->pure(ti)) {
        if (holds) true_guards.push_back(ti);
      } else {
        // An impure guard evaluation (any outcome, including a fault) may
        // have moved the module state; earlier held-guard facts no longer
        // describe it.
        true_guards.clear();
      }
    }
    if (!holds) continue;

    out.firings.push_back(std::move(firing));
  }

  // Keep only the highest-priority group.
  if (!out.firings.empty()) {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const Firing& f : out.firings) {
      best = std::min(best, effective_priority(
                                transitions[static_cast<std::size_t>(
                                    f.transition)]));
    }
    const std::size_t shadowed =
        static_cast<std::size_t>(std::erase_if(out.firings, [&](const Firing&
                                                                    f) {
          return effective_priority(
                     transitions[static_cast<std::size_t>(f.transition)]) !=
                 best;
        }));
    if (shadowed != 0 && obs.sink != nullptr) {
      obs::Event e;
      e.kind = obs::EventKind::PruneShadow;
      e.parent = obs.node;
      e.worker = obs.worker;
      e.depth = obs.depth;
      e.count = shadowed;
      obs.sink->emit(e);
    }
  }

  stats.fanout_sum += out.firings.size();
  ++stats.fanout_samples;
  return out;
}

}  // namespace tango::core
