#include "core/dfs.hpp"

#include <memory>
#include <optional>

#include "core/checkpoint.hpp"
#include "core/executor.hpp"
#include "core/generator.hpp"
#include "core/visited.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {

void validate_trace_against_options(const est::Spec& spec,
                                    const tr::Trace& trace,
                                    const ResolvedOptions& ro) {
  for (const tr::TraceEvent& e : trace.events()) {
    // Outputs recorded at a disabled ip are simply never checked (§2.4.3:
    // "not checked, but always considered valid"); inputs there contradict
    // the option's promise that no input ever arrives (§3.2.1).
    if (e.dir == tr::Dir::In && ro.is_disabled(e.ip)) {
      throw CompileError(e.loc,
                         "trace contains inputs at disabled ip '" +
                             spec.ips[static_cast<std::size_t>(e.ip)].name +
                             "'; disabling an ip asserts no input arrives "
                             "there");
    }
    if (e.dir == tr::Dir::In && ro.is_unobservable(e.ip)) {
      throw CompileError(e.loc,
                         "trace contains inputs at unobservable ip '" +
                             spec.ips[static_cast<std::size_t>(e.ip)].name +
                             "'");
    }
  }
}

namespace {

struct NodeFrame {
  GenResult gen;
  std::size_t next = 0;
  std::optional<std::size_t> mark;  // checkpoint; present iff node branches
  std::string chosen;               // name of the firing taken to descend
};

class DfsEngine {
 public:
  DfsEngine(const est::Spec& spec, const tr::Trace& trace,
            const Options& options)
      : spec_(spec),
        trace_(trace),
        options_(options),
        ro_(spec, options),
        interp_(spec,
                options.partial ? rt::EvalMode::Partial : rt::EvalMode::Strict,
                options.interp),
        visited_(options.visited_max) {}

  DfsResult run() {
    validate_trace_against_options(spec_, trace_, ro_);
    CpuTimer timer;
    DfsResult result;

    for (std::size_t ii = 0; ii < spec_.body().initializers.size(); ++ii) {
      InitResult init = apply_initializer(interp_, trace_, ro_, ii,
                                          result.stats);
      if (!init.ok) {
        note(result, init.note);
        continue;
      }
      std::vector<int> start_states{init.state.machine.fsm_state};
      if (options_.initial_state_search) {
        // §2.4.1: retry from every other FSM state, variables left exactly
        // as the initialize block set them.
        for (int s = 0; s < static_cast<int>(spec_.states.size()); ++s) {
          if (s != init.state.machine.fsm_state) start_states.push_back(s);
        }
      }
      for (int start : start_states) {
        SearchState root = init.state;
        root.machine.fsm_state = start;
        std::string root_label =
            "initialize to " + spec_.states[static_cast<std::size_t>(start)];
        if (search_from(root, std::move(root_label), result)) {
          result.stats.evictions = visited_.evictions();
          result.stats.cpu_seconds = timer.elapsed();
          return result;
        }
        if (out_of_budget_) break;
      }
      if (out_of_budget_) break;
    }

    result.verdict = (out_of_budget_ || depth_clipped_)
                         ? Verdict::Inconclusive
                         : Verdict::Invalid;
    result.stats.evictions = visited_.evictions();
    result.stats.cpu_seconds = timer.elapsed();
    return result;
  }

 private:
  static void note(DfsResult& result, const std::string& msg) {
    if (msg.empty()) return;
    // Keep the most diagnostic veto: a concrete parameter mismatch beats
    // ordering complaints from unrelated failed interleavings.
    const bool existing_param =
        result.note.find("parameter") != std::string::npos;
    const bool incoming_param = msg.find("parameter") != std::string::npos;
    if (result.note.empty() || (incoming_param && !existing_param)) {
      result.note = msg;
    }
  }

  bool budget_exceeded(const Stats& stats) {
    if (options_.max_transitions != 0 &&
        stats.transitions_executed >= options_.max_transitions) {
      out_of_budget_ = true;
    }
    return out_of_budget_;
  }

  /// DFS from one root. Returns true when a solution was found (verdict
  /// fields are filled in).
  bool search_from(SearchState root, std::string root_label,
                   DfsResult& result) {
    Stats& stats = result.stats;
    std::vector<std::string> path{std::move(root_label)};

    if (root.cursors.all_done(trace_, ro_)) {
      result.verdict = Verdict::Valid;
      result.solution = std::move(path);
      return true;
    }

    SearchState cur = std::move(root);
    // One checkpointer per root: the trail rewinds exactly to this root's
    // post-initializer state, never across roots.
    std::unique_ptr<Checkpointer> ckpt =
        make_checkpointer(options_.checkpoint, stats);
    std::vector<NodeFrame> stack;
    push_node(stack, cur, *ckpt, result);

    while (!stack.empty()) {
      NodeFrame& frame = stack.back();
      if (frame.next >= frame.gen.firings.size()) {
        if (frame.mark) ckpt->forget(*frame.mark);
        if (!frame.chosen.empty()) path.pop_back();
        stack.pop_back();
        continue;
      }
      if (budget_exceeded(stats)) return false;

      const std::size_t pick = frame.next++;
      if (pick > 0) {
        ckpt->restore(*frame.mark, cur);  // backtrack to the branching state
        ++stats.restores;
        if (!frame.chosen.empty()) path.pop_back();
        frame.chosen.clear();
      }

      const Firing& firing = frame.gen.firings[pick];
      ApplyResult applied =
          apply_firing(interp_, trace_, ro_, cur, firing, stats, ckpt.get());
      if (!applied.ok) {
        // cur is now dirty; the next sibling (or an ancestor's) restore
        // repairs it before anything else executes.
        note(result, applied.note);
        continue;
      }

      frame.chosen =
          spec_.body()
              .transitions[static_cast<std::size_t>(firing.transition)]
              .name;
      path.push_back(frame.chosen);
      stats.max_depth =
          std::max(stats.max_depth, static_cast<int>(stack.size()));

      if (cur.cursors.all_done(trace_, ro_)) {
        result.verdict = Verdict::Valid;
        result.solution = std::move(path);
        return true;
      }

      if (options_.hash_states) {
        // §4.2's proposed hash table of visited states: a revisited state
        // has an identical subtree, already explored or in progress.
        if (!visited_.insert(cur.hash())) {
          ++stats.pruned_by_hash;
          path.pop_back();
          frame.chosen.clear();
          continue;
        }
      }

      if (options_.max_depth != 0 &&
          static_cast<int>(stack.size()) >= options_.max_depth) {
        depth_clipped_ = true;
        path.pop_back();
        frame.chosen.clear();
        continue;
      }

      push_node(stack, cur, *ckpt, result);
    }
    return false;
  }

  void push_node(std::vector<NodeFrame>& stack, SearchState& cur,
                 Checkpointer& ckpt, DfsResult& result) {
    NodeFrame frame;
    frame.gen = generate(interp_, trace_, ro_, cur, result.stats);
    note(result, frame.gen.fault);
    if (frame.gen.firings.size() > 1) {
      frame.mark = ckpt.save(cur);  // save only when the node branches
      ++result.stats.saves;
    }
    stack.push_back(std::move(frame));
  }

  const est::Spec& spec_;
  const tr::Trace& trace_;
  const Options& options_;
  ResolvedOptions ro_;
  rt::Interp interp_;
  VisitedSet visited_;
  bool out_of_budget_ = false;
  bool depth_clipped_ = false;
};

}  // namespace

DfsResult analyze(const est::Spec& spec, const tr::Trace& trace,
                  const Options& options) {
  return DfsEngine(spec, trace, options).run();
}

DfsResult analyze_text(const est::Spec& spec, std::string_view trace_text,
                       const Options& options) {
  tr::Trace trace = tr::parse_trace(spec, trace_text);
  return analyze(spec, trace, options);
}

}  // namespace tango::core
