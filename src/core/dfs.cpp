#include "core/dfs.hpp"

#include <cassert>
#include <memory>
#include <optional>

#include "core/checkpoint.hpp"
#include "core/executor.hpp"
#include "core/generator.hpp"
#include "core/governor.hpp"
#include "core/obs_record.hpp"
#include "core/visited.hpp"
#include "trace/trace_io.hpp"

namespace tango::core {

void validate_trace_against_options(const est::Spec& spec,
                                    const tr::Trace& trace,
                                    const ResolvedOptions& ro) {
  for (const tr::TraceEvent& e : trace.events()) {
    // Outputs recorded at a disabled ip are simply never checked (§2.4.3:
    // "not checked, but always considered valid"); inputs there contradict
    // the option's promise that no input ever arrives (§3.2.1).
    if (e.dir == tr::Dir::In && ro.is_disabled(e.ip)) {
      throw CompileError(e.loc,
                         "trace contains inputs at disabled ip '" +
                             spec.ips[static_cast<std::size_t>(e.ip)].name +
                             "'; disabling an ip asserts no input arrives "
                             "there");
    }
    if (e.dir == tr::Dir::In && ro.is_unobservable(e.ip)) {
      throw CompileError(e.loc,
                         "trace contains inputs at unobservable ip '" +
                             spec.ips[static_cast<std::size_t>(e.ip)].name +
                             "'");
    }
  }
}

namespace {

struct NodeFrame {
  GenResult gen;
  std::size_t next = 0;
  std::optional<std::size_t> mark;  // checkpoint; present iff node branches
  std::string chosen;               // name of the firing taken to descend
  std::uint64_t origin = 0;         // enter/fire event that made this state
};

class DfsEngine {
 public:
  DfsEngine(const est::Spec& spec, const tr::Trace& trace,
            const Options& options)
      : spec_(spec),
        trace_(trace),
        options_(options),
        ro_(resolve_timed(spec, options, phase_static_)),
        interp_(spec,
                options.partial ? rt::EvalMode::Partial : rt::EvalMode::Strict,
                options.interp),
        visited_(options.visited_max),
        governor_(options),
        sink_(options.sink) {}

  DfsResult run() {
    DfsResult result;
    {
      PhaseTimer search_timer(result.stats.phase_search);
      run_impl(result);
    }
    result.stats.phase_static = phase_static_;
    assert(result.stats.invariant_violations(false).empty());
    return result;
  }

 private:
  void run_impl(DfsResult& result) {
    validate_trace_against_options(spec_, trace_, ro_);
    CpuTimer timer;
    if (sink_ != nullptr) emit_run_header(*sink_, spec_, options_, "dfs");

    bool found = false;
    for (std::size_t ii = 0;
         !found && ii < spec_.body().initializers.size(); ++ii) {
      InitResult init = apply_initializer(interp_, trace_, ro_, ii,
                                          result.stats);
      if (!init.ok) {
        emit_enter(static_cast<int>(ii), -1, init.executed, false, false, 0);
        note(result, init.note);
        continue;
      }
      std::vector<int> start_states{init.state.machine.fsm_state};
      if (options_.initial_state_search) {
        // §2.4.1: retry from every other FSM state, variables left exactly
        // as the initialize block set them.
        for (int s = 0; s < static_cast<int>(spec_.states.size()); ++s) {
          if (s != init.state.machine.fsm_state) start_states.push_back(s);
        }
      }
      bool first_root = true;
      for (int start : start_states) {
        SearchState root = init.state;
        root.machine.fsm_state = start;
        const std::uint64_t root_event =
            emit_enter(static_cast<int>(ii), start,
                       first_root && init.executed, true,
                       root.cursors.all_done(trace_, ro_),
                       sink_ != nullptr ? state_hash(root, options_) : 0);
        first_root = false;
        std::string root_label =
            "initialize to " + spec_.states[static_cast<std::size_t>(start)];
        if (search_from(root, std::move(root_label), root_event, result)) {
          found = true;
          break;
        }
        if (out_of_budget_) break;
      }
      if (out_of_budget_) break;
    }

    if (!found) {
      result.verdict = (out_of_budget_ || depth_clipped_)
                           ? Verdict::Inconclusive
                           : Verdict::Invalid;
      if (result.verdict == Verdict::Inconclusive) {
        result.reason =
            out_of_budget_ ? budget_reason_ : InconclusiveReason::Depth;
      }
    }
    result.stats.reason = result.reason;
    result.stats.evictions = visited_.evictions();
    result.stats.cpu_seconds = timer.elapsed();
    if (sink_ != nullptr) {
      if (result.stats.evictions > 0) {
        obs::Event e;
        e.kind = obs::EventKind::Evict;
        e.count = result.stats.evictions;
        sink_->emit(e);
      }
      emit_verdict(*sink_, witness_, to_string(result.verdict), result.stats,
                   to_string(result.reason));
    }
  }

 private:
  static void note(DfsResult& result, const std::string& msg) {
    if (msg.empty()) return;
    // Keep the most diagnostic veto: a concrete parameter mismatch beats
    // ordering complaints from unrelated failed interleavings.
    const bool existing_param =
        result.note.find("parameter") != std::string::npos;
    const bool incoming_param = msg.find("parameter") != std::string::npos;
    if (result.note.empty() || (incoming_param && !existing_param)) {
      result.note = msg;
    }
  }

  /// Cooperative budget check at the generate/backtrack boundary: the
  /// transition budget first, then the wall-clock/memory governor.
  bool budget_exceeded(const Stats& stats) {
    if (out_of_budget_) return true;
    if (options_.max_transitions != 0 &&
        stats.transitions_executed >= options_.max_transitions) {
      out_of_budget_ = true;
      budget_reason_ = InconclusiveReason::Transitions;
      return true;
    }
    if (governor_.armed()) {
      const InconclusiveReason r = governor_.check(stats);
      if (r != InconclusiveReason::None) {
        out_of_budget_ = true;
        budget_reason_ = r;
        return true;
      }
    }
    return false;
  }

  /// Emits an `enter` event for one search root (or failed initializer);
  /// returns its node id (0 when no sink is attached).
  std::uint64_t emit_enter(int init, int start_state, bool applied, bool ok,
                           bool all_done, std::uint64_t state_hash) {
    if (sink_ == nullptr) return 0;
    obs::Event e;
    e.kind = obs::EventKind::Enter;
    e.id = sink_->next_id();
    e.init = init;
    e.start_state = start_state;
    e.applied = applied;
    e.ok = ok;
    e.all_done = all_done;
    e.state_hash = state_hash;
    sink_->emit(e);
    return e.id;
  }

  void emit_at_node(obs::EventKind kind, std::uint64_t origin, int depth,
                    std::uint64_t count) {
    if (sink_ == nullptr) return;
    obs::Event e;
    e.kind = kind;
    e.parent = origin;
    e.depth = depth;
    e.count = count;
    sink_->emit(e);
  }

  /// DFS from one root. Returns true when a solution was found (verdict
  /// fields are filled in).
  bool search_from(SearchState root, std::string root_label,
                   std::uint64_t root_event, DfsResult& result) {
    Stats& stats = result.stats;
    std::vector<std::string> path{std::move(root_label)};

    if (root.cursors.all_done(trace_, ro_)) {
      result.verdict = Verdict::Valid;
      result.solution = std::move(path);
      witness_ = root_event;
      return true;
    }

    SearchState cur = std::move(root);
    // One checkpointer per root: the trail rewinds exactly to this root's
    // post-initializer state, never across roots.
    std::unique_ptr<Checkpointer> ckpt =
        make_checkpointer(options_.checkpoint, stats);
    std::vector<NodeFrame> stack;
    push_node(stack, cur, *ckpt, result, root_event);

    while (!stack.empty()) {
      NodeFrame& frame = stack.back();
      const int node_depth = static_cast<int>(stack.size()) - 1;
      if (frame.next >= frame.gen.firings.size()) {
        if (frame.mark) ckpt->forget(*frame.mark);
        if (!frame.chosen.empty()) path.pop_back();
        emit_at_node(obs::EventKind::Backtrack, frame.origin, node_depth, 0);
        stack.pop_back();
        continue;
      }
      if (budget_exceeded(stats)) return false;

      const std::size_t pick = frame.next++;
      if (pick > 0) {
        ckpt->restore(*frame.mark, cur);  // backtrack to the branching state
        ++stats.restores;
        emit_at_node(obs::EventKind::CheckpointRestore, frame.origin,
                     node_depth, *frame.mark);
        if (!frame.chosen.empty()) path.pop_back();
        frame.chosen.clear();
      }

      const Firing& firing = frame.gen.firings[pick];
      ApplyResult applied =
          apply_firing(interp_, trace_, ro_, cur, firing, stats, ckpt.get());
      const bool done = applied.ok && cur.cursors.all_done(trace_, ro_);
      // One hash per fired node, shared by the fire event and the visited
      // insert (with --events and --hash-states both on, this used to be
      // computed twice).
      std::uint64_t cur_hash = 0;
      if (applied.ok && (sink_ != nullptr || options_.hash_states)) {
        cur_hash = state_hash(cur, options_);
      }
      std::uint64_t fire_event = 0;
      if (sink_ != nullptr) {
        obs::Event e;
        e.kind = obs::EventKind::Fire;
        e.id = sink_->next_id();
        e.parent = frame.origin;
        e.depth = node_depth + 1;
        e.transition = firing.transition;
        e.input_event = firing.input_event;
        e.synthesized = firing.synthesized;
        e.ok = applied.ok;
        if (applied.ok) {
          e.all_done = done;
          e.state_hash = cur_hash;
        }
        sink_->emit(e);
        fire_event = e.id;
      }
      if (!applied.ok) {
        // cur is now dirty; the next sibling (or an ancestor's) restore
        // repairs it before anything else executes.
        note(result, applied.note);
        continue;
      }

      frame.chosen =
          spec_.body()
              .transitions[static_cast<std::size_t>(firing.transition)]
              .name;
      path.push_back(frame.chosen);
      stats.max_depth =
          std::max(stats.max_depth, static_cast<int>(stack.size()));

      if (done) {
        result.verdict = Verdict::Valid;
        result.solution = std::move(path);
        witness_ = fire_event;
        return true;
      }

      if (options_.hash_states) {
        // §4.2's proposed hash table of visited states: a revisited state
        // has an identical subtree, already explored or in progress.
        const std::uint64_t h = cur_hash;
        if (!visited_.insert(h)) {
          ++stats.pruned_by_hash;
          if (sink_ != nullptr) {
            obs::Event e;
            e.kind = obs::EventKind::PruneVisited;
            e.parent = fire_event;
            e.depth = node_depth + 1;
            e.state_hash = h;
            sink_->emit(e);
          }
          path.pop_back();
          frame.chosen.clear();
          continue;
        }
      }

      if (options_.max_depth != 0 &&
          static_cast<int>(stack.size()) >= options_.max_depth) {
        depth_clipped_ = true;
        path.pop_back();
        frame.chosen.clear();
        continue;
      }

      push_node(stack, cur, *ckpt, result, fire_event);
    }
    return false;
  }

  void push_node(std::vector<NodeFrame>& stack, SearchState& cur,
                 Checkpointer& ckpt, DfsResult& result, std::uint64_t origin) {
    NodeFrame frame;
    frame.origin = origin;
    const int depth = static_cast<int>(stack.size());
    frame.gen = generate(interp_, trace_, ro_, cur, result.stats,
                         ObsCtx{sink_, origin, -1, depth});
    note(result, frame.gen.fault);
    if (frame.gen.firings.size() > 1) {
      frame.mark = ckpt.save(cur);  // save only when the node branches
      ++result.stats.saves;
      emit_at_node(obs::EventKind::CheckpointSave, origin, depth,
                   *frame.mark);
    }
    stack.push_back(std::move(frame));
  }

  const est::Spec& spec_;
  const tr::Trace& trace_;
  const Options& options_;
  PhaseMetrics phase_static_;  // declared before ro_: resolve_timed fills it
  ResolvedOptions ro_;
  rt::Interp interp_;
  VisitedSet visited_;
  ResourceGovernor governor_;
  obs::Sink* sink_ = nullptr;
  std::uint64_t witness_ = 0;
  bool out_of_budget_ = false;
  InconclusiveReason budget_reason_ = InconclusiveReason::None;
  bool depth_clipped_ = false;
};

}  // namespace

DfsResult analyze(const est::Spec& spec, const tr::Trace& trace,
                  const Options& options) {
  return DfsEngine(spec, trace, options).run();
}

DfsResult analyze_text(const est::Spec& spec, std::string_view trace_text,
                       const Options& options) {
  PhaseMetrics parse_phase;
  tr::Trace trace = [&] {
    PhaseTimer timer(parse_phase);
    return tr::parse_trace(spec, trace_text);
  }();
  DfsResult result = analyze(spec, trace, options);
  result.stats.phase_parse += parse_phase;
  return result;
}

}  // namespace tango::core
