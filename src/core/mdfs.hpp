// Multi-threaded depth-first search (paper §3): on-line trace analysis over
// a dynamic (growing) trace. A node whose transition list was cut short by
// an exhausted-but-still-growing input queue is *partially generated* (PG)
// and is saved for re-generation when new input arrives (§3.1.1). A PG node
// that has consumed every input and verified every output observed so far
// is PGAV — the trace is "valid so far" (§3.1.2). With dynamic node
// reordering (§3.1.3, the default), newly re-enabled PG nodes are searched
// immediately, putting the rest of the tree on hold.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/dfs.hpp"
#include "core/generator.hpp"
#include "core/governor.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "core/verdict.hpp"
#include "trace/dynamic_source.hpp"

namespace tango::core {

enum class OnlineStatus {
  Searching,      // active nodes remain; no assessment yet
  ValidSoFar,     // a PGAV node exists
  LikelyInvalid,  // quiescent, only non-AV PG nodes remain (§3.1.2)
  Valid,          // conclusive (requires the eof marker)
  Invalid,        // conclusive: tree exhausted, no PG nodes remain
  Inconclusive,   // search budget exhausted
};

[[nodiscard]] constexpr std::string_view to_string(OnlineStatus s) {
  switch (s) {
    case OnlineStatus::Searching: return "searching";
    case OnlineStatus::ValidSoFar: return "valid so far";
    case OnlineStatus::LikelyInvalid: return "likely invalid";
    case OnlineStatus::Valid: return "valid";
    case OnlineStatus::Invalid: return "invalid";
    case OnlineStatus::Inconclusive: return "inconclusive";
  }
  return "?";
}

struct OnlineConfig {
  Options options;
  /// Search steps between polls of the trace source while the tree is busy.
  std::uint64_t poll_every = 64;
};

class OnlineAnalyzer {
 public:
  OnlineAnalyzer(const est::Spec& spec, tr::TraceSource& source,
                 OnlineConfig config);
  ~OnlineAnalyzer();
  OnlineAnalyzer(const OnlineAnalyzer&) = delete;
  OnlineAnalyzer& operator=(const OnlineAnalyzer&) = delete;

  /// Performs up to `steps` search steps, polling the source periodically.
  /// Returns the status after the round; conclusive statuses are sticky.
  OnlineStatus step_round(std::uint64_t steps);

  /// Pumps until conclusive, or until `idle_rounds` consecutive rounds make
  /// no progress and deliver no new trace data.
  OnlineStatus run(std::uint64_t steps_per_round = 4096, int idle_rounds = 2);

  /// Current assessment without searching.
  [[nodiscard]] OnlineStatus status() const;
  [[nodiscard]] bool conclusive() const;

  /// Concludes Inconclusive with `reason` unless already conclusive — the
  /// cancellation path for externally driven sessions (client `cancel`
  /// frames, server drain on SIGTERM). Call between step_round rounds; a
  /// sink gets the usual `verdict` event.
  void abort(InconclusiveReason reason);

  /// Emits a `verdict` event for the current status if the stream has none
  /// yet — an on-line run can end quiescent ("valid so far", "likely
  /// invalid") without ever concluding. No-op without a sink; idempotent.
  void finalize_stream();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const tr::Trace& trace() const { return trace_; }
  /// Number of PG nodes currently parked (the §3.2.1 memory concern).
  [[nodiscard]] std::size_t pg_count() const;

 private:
  struct MNode;

  bool poll_source();
  void compute_gen(MNode& node);  // generate() + trace-extent snapshot
  void reactivate_pg(bool all);
  void regenerate(std::unique_ptr<MNode> node);
  void seed_roots();
  bool do_step();  // one firing attempt / node service; false if none left
  [[nodiscard]] bool any_pgav() const;
  void prune_non_pgav();
  /// Records the conclusive status (sticky) and, with a sink attached,
  /// emits the `verdict` event naming `witness` as the completing node.
  /// `reason` names the exhausted resource for Inconclusive conclusions.
  void conclude(OnlineStatus status, std::uint64_t witness,
                InconclusiveReason reason = InconclusiveReason::None);
  std::uint64_t emit_enter(int init, int start_state, bool applied, bool ok,
                           bool all_done, std::uint64_t state_hash);

  const est::Spec& spec_;
  tr::TraceSource& source_;
  OnlineConfig config_;
  PhaseMetrics phase_static_;  // declared before ro_: resolve_timed fills it
  ResolvedOptions ro_;
  rt::Interp interp_;
  tr::Trace trace_;
  Stats stats_;
  ResourceGovernor governor_;
  /// MDFS parks whole states on PG nodes for §3.1.1 re-generation, so
  /// per-node saves go through snapshot() — a materialized deep copy in
  /// either checkpoint mode (trail marks cannot outlive the stack order).
  std::unique_ptr<Checkpointer> ckpt_;

  obs::Sink* sink_ = nullptr;

  std::vector<std::unique_ptr<MNode>> stack_;
  std::deque<std::unique_ptr<MNode>> pg_;
  std::vector<std::size_t> pending_roots_;  // initializers blocked on output
  std::size_t validated_events_ = 0;  // prefix checked against options
  std::uint64_t steps_since_poll_ = 0;
  bool seeded_ = false;
  bool verdict_emitted_ = false;
  bool concluded_ = false;
  OnlineStatus final_status_ = OnlineStatus::Searching;
};

}  // namespace tango::core
