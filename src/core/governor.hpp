// Cooperative resource governance (docs/ROBUSTNESS.md): the wall-clock
// deadline (Options::deadline_ms) and the checkpoint/heap byte budget
// (Options::max_memory) every engine checks at generate/backtrack
// boundaries. Exceeding either turns the verdict Inconclusive with a
// structured reason ("deadline" / "memory") instead of running away.
//
// The memory budget is enforced over a deterministic allocation proxy —
// cumulative bytes charged to state preservation (checkpoint copies and
// snapshots via Stats::checkpoint_bytes, plus trail undo entries) — not
// process RSS. Being a pure function of the search, it trips at the same
// point on every run and per task in --deterministic mode. The deadline is
// inherently wall-clock; the clock is sampled on the first check and every
// kDeadlineStride-th thereafter to keep the syscall off the hot path.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "core/stats.hpp"
#include "core/verdict.hpp"

namespace tango::core {

class ResourceGovernor {
 public:
  /// Checks between clock samples; one sample costs a clock_gettime.
  static constexpr std::uint32_t kDeadlineStride = 64;

  /// Captures the absolute deadline at construction — construct once per
  /// analysis (the batch front-end constructs per item, which is what
  /// makes the deadline per-item). Copyable: parallel workers copy the
  /// engine's governor so every task races the same absolute deadline.
  explicit ResourceGovernor(const Options& options);

  /// The first exceeded budget, or None while within both. Memory is
  /// checked before the deadline so mixed trips report deterministically.
  [[nodiscard]] InconclusiveReason check(const Stats& stats);

  /// True when a deadline is armed and has passed. Samples the clock on
  /// the first call and then every kDeadlineStride calls; a fault-injected
  /// deadline (FaultSite::Deadline) fires on any call while armed.
  [[nodiscard]] bool deadline_expired();

  [[nodiscard]] bool armed() const {
    return deadline_ns_ != 0 || max_memory_ != 0;
  }

  /// The deterministic allocation proxy the memory budget is enforced
  /// over: checkpoint/snapshot copy bytes plus trail undo entries at an
  /// estimated kTrailEntryBytes each.
  static constexpr std::uint64_t kTrailEntryBytes = 32;
  [[nodiscard]] static std::uint64_t memory_bytes(const Stats& stats) {
    return stats.checkpoint_bytes + kTrailEntryBytes * stats.trail_entries;
  }

 private:
  std::uint64_t deadline_ns_ = 0;  // absolute CLOCK_MONOTONIC; 0 = no limit
  std::uint64_t max_memory_ = 0;   // bytes; 0 = no limit
  std::uint32_t until_sample_ = 0;
};

}  // namespace tango::core
