// Trace-analysis verdicts. Static (batch) analysis yields Valid/Invalid
// (or Inconclusive when a search budget runs out); on-line analysis adds
// the paper's §3.1.2 intermediate verdicts: ValidSoFar (a PGAV node exists)
// and LikelyInvalid (only non-all-verified PG-nodes remain).
#pragma once

#include <string_view>

namespace tango::core {

enum class Verdict {
  Valid,          // a solution path consumes all inputs, verifies all outputs
  Invalid,        // search space exhausted with no solution
  ValidSoFar,     // on-line: everything observed so far is explained
  LikelyInvalid,  // on-line: no PGAV node; "likely to be invalid, but no
                  // conclusive result can be given" (paper §3.1.2)
  Inconclusive,   // search budget (transitions/depth) exhausted
};

[[nodiscard]] constexpr std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::Valid: return "valid";
    case Verdict::Invalid: return "invalid";
    case Verdict::ValidSoFar: return "valid so far";
    case Verdict::LikelyInvalid: return "likely invalid";
    case Verdict::Inconclusive: return "inconclusive";
  }
  return "?";
}

/// Which resource contract made a verdict Inconclusive. None on every other
/// verdict. Carried on Stats (so parallel outcome merges keep the first
/// reason in lineage order), in Stats::to_json, and in the `verdict.reason`
/// field of the search-event schema.
enum class InconclusiveReason : std::uint8_t {
  None,         // verdict is conclusive (or the engine never clipped)
  Transitions,  // --max-transitions budget exhausted
  Depth,        // --max-depth clipped at least one path
  Deadline,     // --deadline wall-clock expired
  Memory,       // --max-memory checkpoint/heap budget exceeded
  Shutdown,     // session terminated early: server drain or client cancel
};

[[nodiscard]] constexpr std::string_view to_string(InconclusiveReason r) {
  switch (r) {
    case InconclusiveReason::None: return "";
    case InconclusiveReason::Transitions: return "transitions";
    case InconclusiveReason::Depth: return "depth";
    case InconclusiveReason::Deadline: return "deadline";
    case InconclusiveReason::Memory: return "memory";
    case InconclusiveReason::Shutdown: return "shutdown";
  }
  return "";
}

/// Inverse of to_string; "" parses to None. Returns false on unknown names.
[[nodiscard]] constexpr bool parse_reason(std::string_view name,
                                          InconclusiveReason& out) {
  for (const InconclusiveReason r :
       {InconclusiveReason::None, InconclusiveReason::Transitions,
        InconclusiveReason::Depth, InconclusiveReason::Deadline,
        InconclusiveReason::Memory, InconclusiveReason::Shutdown}) {
    if (to_string(r) == name) {
      out = r;
      return true;
    }
  }
  return false;
}

}  // namespace tango::core
