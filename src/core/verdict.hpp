// Trace-analysis verdicts. Static (batch) analysis yields Valid/Invalid
// (or Inconclusive when a search budget runs out); on-line analysis adds
// the paper's §3.1.2 intermediate verdicts: ValidSoFar (a PGAV node exists)
// and LikelyInvalid (only non-all-verified PG-nodes remain).
#pragma once

#include <string_view>

namespace tango::core {

enum class Verdict {
  Valid,          // a solution path consumes all inputs, verifies all outputs
  Invalid,        // search space exhausted with no solution
  ValidSoFar,     // on-line: everything observed so far is explained
  LikelyInvalid,  // on-line: no PGAV node; "likely to be invalid, but no
                  // conclusive result can be given" (paper §3.1.2)
  Inconclusive,   // search budget (transitions/depth) exhausted
};

[[nodiscard]] constexpr std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::Valid: return "valid";
    case Verdict::Invalid: return "invalid";
    case Verdict::ValidSoFar: return "valid so far";
    case Verdict::LikelyInvalid: return "likely invalid";
    case Verdict::Inconclusive: return "inconclusive";
  }
  return "?";
}

}  // namespace tango::core
