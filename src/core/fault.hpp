// Debug-build fault injection (docs/ROBUSTNESS.md). The degradation paths
// of the resource governor and the batch front-end — allocation failure,
// trace-read errors, deadline expiry — are unreachable on healthy inputs,
// so tests and CI seed this hook to force them at chosen points.
//
// Disabled entirely in NDEBUG builds: every probe compiles to `false` with
// no singleton access, so release binaries carry no injection surface.
//
// Spec grammar (env TANGO_FAULT_INJECT, or FaultInjector::configure):
//   spec   := entry (',' entry)*
//   entry  := site               fire at every probe of that site
//           | site '@' scope     fire at every probe within that scope
//           | site ':' N         fire at the Nth probe of that site (1-based)
//   site   := alloc | trace-read | deadline
// Scopes are thread-local strings installed with FaultScope; analyze_batch
// wraps item i in scope "item:<i>", so "deadline@item:2" forces only the
// third corpus entry over its deadline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tango::core {

enum class FaultSite : std::uint8_t { Alloc, TraceRead, Deadline };

inline constexpr std::size_t kFaultSiteCount = 3;

[[nodiscard]] constexpr std::string_view to_string(FaultSite s) {
  switch (s) {
    case FaultSite::Alloc: return "alloc";
    case FaultSite::TraceRead: return "trace-read";
    case FaultSite::Deadline: return "deadline";
  }
  return "?";
}

#ifndef NDEBUG
inline constexpr bool kFaultInjectionAvailable = true;
#else
inline constexpr bool kFaultInjectionAvailable = false;
#endif

class FaultInjector {
 public:
  /// Process-wide instance; first access seeds it from TANGO_FAULT_INJECT.
  static FaultInjector& instance();

  /// Replaces the active spec (tests). Throws std::invalid_argument on a
  /// malformed spec. An empty spec disables every site and resets counters.
  void configure(std::string_view spec);

  /// Disables every entry and zeroes the per-site probe counters.
  void reset() { configure(""); }

  /// One probe: counts it and reports whether a configured entry fires
  /// here. Thread-safe; scope matching reads the calling thread's scope.
  [[nodiscard]] bool should_fire(FaultSite site);

  /// Probes counted for `site` since the last configure/reset.
  [[nodiscard]] std::uint64_t probes(FaultSite site) const;

  [[nodiscard]] bool armed() const;

 private:
  FaultInjector();
  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
};

/// RAII thread-local scope label for `site@scope` entries. analyze_batch
/// installs "item:<index>" around each corpus entry.
class FaultScope {
 public:
  explicit FaultScope(std::string scope);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// The calling thread's active scope ("" when none).
  [[nodiscard]] static const std::string& current();

 private:
  std::string previous_;
};

/// The probe the instrumented sites call. In NDEBUG builds this is a
/// constant false — no singleton, no env read, no counters.
[[nodiscard]] inline bool fault_probe(FaultSite site) {
#ifndef NDEBUG
  return FaultInjector::instance().should_fire(site);
#else
  (void)site;
  return false;
#endif
}

}  // namespace tango::core
