#include "core/stats.hpp"

#include <ctime>

#include <algorithm>

namespace tango::core {

Stats& Stats::operator+=(const Stats& other) {
  transitions_executed += other.transitions_executed;
  generates += other.generates;
  restores += other.restores;
  saves += other.saves;
  pruned_by_hash += other.pruned_by_hash;
  evictions += other.evictions;
  tasks_published += other.tasks_published;
  tasks_stolen += other.tasks_stolen;
  fanout_sum += other.fanout_sum;
  fanout_samples += other.fanout_samples;
  static_skips += other.static_skips;
  trail_entries += other.trail_entries;
  checkpoint_bytes += other.checkpoint_bytes;
  max_depth = std::max(max_depth, other.max_depth);
  cpu_seconds += other.cpu_seconds;
  return *this;
}

std::string Stats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "TE=%llu GE=%llu RE=%llu SA=%llu depth=%d cpu=%.3fs",
                static_cast<unsigned long long>(transitions_executed),
                static_cast<unsigned long long>(generates),
                static_cast<unsigned long long>(restores),
                static_cast<unsigned long long>(saves), max_depth,
                cpu_seconds);
  return buf;
}

std::string Stats::to_json() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"te\":%llu,\"ge\":%llu,\"re\":%llu,\"sa\":%llu,"
      "\"pruned_by_hash\":%llu,\"evictions\":%llu,"
      "\"tasks_published\":%llu,\"tasks_stolen\":%llu,"
      "\"fanout_sum\":%llu,\"fanout_samples\":%llu,"
      "\"static_skips\":%llu,"
      "\"trail_entries\":%llu,\"checkpoint_bytes\":%llu,"
      "\"max_depth\":%d,\"cpu_seconds\":%.6f}",
      static_cast<unsigned long long>(transitions_executed),
      static_cast<unsigned long long>(generates),
      static_cast<unsigned long long>(restores),
      static_cast<unsigned long long>(saves),
      static_cast<unsigned long long>(pruned_by_hash),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(tasks_published),
      static_cast<unsigned long long>(tasks_stolen),
      static_cast<unsigned long long>(fanout_sum),
      static_cast<unsigned long long>(fanout_samples),
      static_cast<unsigned long long>(static_skips),
      static_cast<unsigned long long>(trail_entries),
      static_cast<unsigned long long>(checkpoint_bytes), max_depth,
      cpu_seconds);
  return buf;
}

namespace {
std::int64_t cpu_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}
}  // namespace

CpuTimer::CpuTimer() : start_ns_(cpu_now_ns()) {}

double CpuTimer::elapsed() const {
  return static_cast<double>(cpu_now_ns() - start_ns_) / 1e9;
}

}  // namespace tango::core
