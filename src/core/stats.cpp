#include "core/stats.hpp"

#include <sys/resource.h>

#include <ctime>

#include <algorithm>

namespace tango::core {

Stats& Stats::operator+=(const Stats& other) {
  transitions_executed += other.transitions_executed;
  generates += other.generates;
  restores += other.restores;
  saves += other.saves;
  pruned_by_hash += other.pruned_by_hash;
  evictions += other.evictions;
  tasks_published += other.tasks_published;
  tasks_stolen += other.tasks_stolen;
  fanout_sum += other.fanout_sum;
  fanout_samples += other.fanout_samples;
  static_skips += other.static_skips;
  trail_entries += other.trail_entries;
  checkpoint_bytes += other.checkpoint_bytes;
  max_depth = std::max(max_depth, other.max_depth);
  if (reason == InconclusiveReason::None) reason = other.reason;
  cpu_seconds += other.cpu_seconds;
  phase_parse += other.phase_parse;
  phase_static += other.phase_static;
  phase_search += other.phase_search;
  return *this;
}

std::string Stats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "TE=%llu GE=%llu RE=%llu SA=%llu depth=%d cpu=%.3fs",
                static_cast<unsigned long long>(transitions_executed),
                static_cast<unsigned long long>(generates),
                static_cast<unsigned long long>(restores),
                static_cast<unsigned long long>(saves), max_depth,
                cpu_seconds);
  return buf;
}

std::string Stats::to_json_counters() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"te\":%llu,\"ge\":%llu,\"re\":%llu,\"sa\":%llu,"
      "\"pruned_by_hash\":%llu,\"evictions\":%llu,"
      "\"tasks_published\":%llu,\"tasks_stolen\":%llu,"
      "\"fanout_sum\":%llu,\"fanout_samples\":%llu,"
      "\"static_skips\":%llu,"
      "\"trail_entries\":%llu,\"checkpoint_bytes\":%llu,"
      "\"max_depth\":%d}",
      static_cast<unsigned long long>(transitions_executed),
      static_cast<unsigned long long>(generates),
      static_cast<unsigned long long>(restores),
      static_cast<unsigned long long>(saves),
      static_cast<unsigned long long>(pruned_by_hash),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(tasks_published),
      static_cast<unsigned long long>(tasks_stolen),
      static_cast<unsigned long long>(fanout_sum),
      static_cast<unsigned long long>(fanout_samples),
      static_cast<unsigned long long>(static_skips),
      static_cast<unsigned long long>(trail_entries),
      static_cast<unsigned long long>(checkpoint_bytes), max_depth);
  return buf;
}

std::string Stats::to_json() const {
  std::string out = to_json_counters();
  // The reason lives in the full JSON only: to_json_counters() feeds
  // byte-stable verdict events, and a deadline trip point never is.
  if (reason != InconclusiveReason::None) {
    out.pop_back();
    out += ",\"reason\":\"";
    out += to_string(reason);
    out += "\"}";
  }
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      ",\"cpu_seconds\":%.6f,\"phases\":{"
      "\"parse\":{\"wall_seconds\":%.6f,\"rss_delta_kb\":%lld},"
      "\"static\":{\"wall_seconds\":%.6f,\"rss_delta_kb\":%lld},"
      "\"search\":{\"wall_seconds\":%.6f,\"rss_delta_kb\":%lld}}}",
      cpu_seconds, phase_parse.wall_seconds,
      static_cast<long long>(phase_parse.rss_delta_kb),
      phase_static.wall_seconds,
      static_cast<long long>(phase_static.rss_delta_kb),
      phase_search.wall_seconds,
      static_cast<long long>(phase_search.rss_delta_kb));
  out.pop_back();  // drop the counters' closing '}'; the tail re-closes it
  out += buf;
  return out;
}

std::vector<std::string> Stats::invariant_violations(bool strict) const {
  std::vector<std::string> out;
  if (fanout_samples != generates) {
    out.push_back("fanout_samples (" + std::to_string(fanout_samples) +
                  ") != generates (" + std::to_string(generates) + ")");
  }
  if (pruned_by_hash > transitions_executed) {
    out.push_back("pruned_by_hash (" + std::to_string(pruned_by_hash) +
                  ") > transitions_executed (" +
                  std::to_string(transitions_executed) + ")");
  }
  if (strict) {
    if (transitions_executed < generates) {
      out.push_back("strict: transitions_executed (" +
                    std::to_string(transitions_executed) + ") < generates (" +
                    std::to_string(generates) + ")");
    }
    if (static_skips + evictions > transitions_executed) {
      out.push_back("strict: static_skips + evictions (" +
                    std::to_string(static_skips + evictions) +
                    ") > transitions_executed (" +
                    std::to_string(transitions_executed) + ")");
    }
  }
  return out;
}

namespace {
std::int64_t cpu_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}
}  // namespace

CpuTimer::CpuTimer() : start_ns_(cpu_now_ns()) {}

double CpuTimer::elapsed() const {
  return static_cast<double>(cpu_now_ns() - start_ns_) / 1e9;
}

namespace {
std::int64_t wall_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::int64_t max_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::int64_t>(ru.ru_maxrss);  // KiB on Linux
}
}  // namespace

PhaseTimer::PhaseTimer(PhaseMetrics& target)
    : target_(target), start_ns_(wall_now_ns()), start_rss_kb_(max_rss_kb()) {}

PhaseTimer::~PhaseTimer() {
  target_.wall_seconds +=
      static_cast<double>(wall_now_ns() - start_ns_) / 1e9;
  const std::int64_t delta = max_rss_kb() - start_rss_kb_;
  if (delta > 0) target_.rss_delta_kb += delta;
}

}  // namespace tango::core
