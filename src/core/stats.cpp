#include "core/stats.hpp"

#include <ctime>

namespace tango::core {

std::string Stats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "TE=%llu GE=%llu RE=%llu SA=%llu depth=%d cpu=%.3fs",
                static_cast<unsigned long long>(transitions_executed),
                static_cast<unsigned long long>(generates),
                static_cast<unsigned long long>(restores),
                static_cast<unsigned long long>(saves), max_depth,
                cpu_seconds);
  return buf;
}

namespace {
std::int64_t cpu_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}
}  // namespace

CpuTimer::CpuTimer() : start_ns_(cpu_now_ns()) {}

double CpuTimer::elapsed() const {
  return static_cast<double>(cpu_now_ns() - start_ns_) / 1e9;
}

}  // namespace tango::core
