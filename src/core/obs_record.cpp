#include "core/obs_record.hpp"

#include <stdexcept>

namespace tango::core {

namespace {

void flag_bool(std::string& out, const char* key, bool value) {
  out += '"';
  out += key;
  out += "\":";
  out += value ? "true" : "false";
  out += ',';
}

void flag_u64(std::string& out, const char* key, std::uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
  out += ',';
}

void flag_list(std::string& out, const char* key,
               const std::vector<std::string>& values) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += values[i];  // canonical ip names: no escaping needed
    out += '"';
  }
  out += "],";
}

bool read_bool(const obs::JsonValue& flags, const char* key, bool fallback) {
  const obs::JsonValue* f = flags.find(key);
  if (f == nullptr) return fallback;
  if (!f->is_bool()) {
    throw std::runtime_error(std::string("flags: '") + key +
                             "' is not a boolean");
  }
  return f->boolean;
}

std::int64_t read_int(const obs::JsonValue& flags, const char* key,
                      std::int64_t fallback) {
  const obs::JsonValue* f = flags.find(key);
  if (f == nullptr) return fallback;
  if (!f->is_number() || !f->is_integer) {
    throw std::runtime_error(std::string("flags: '") + key +
                             "' is not an integer");
  }
  return f->integer;
}

std::vector<std::string> read_list(const obs::JsonValue& flags,
                                   const char* key) {
  std::vector<std::string> out;
  const obs::JsonValue* f = flags.find(key);
  if (f == nullptr) return out;
  if (f->type != obs::JsonValue::Type::Array) {
    throw std::runtime_error(std::string("flags: '") + key +
                             "' is not an array");
  }
  for (const obs::JsonValue& item : f->array) {
    if (!item.is_string()) {
      throw std::runtime_error(std::string("flags: '") + key +
                               "' has a non-string element");
    }
    out.push_back(item.string);
  }
  return out;
}

}  // namespace

std::string options_flags_json(const Options& o) {
  // Alphabetical key order, matching obs::canonical, so a recorded header
  // compares equal to a freshly fingerprinted one byte-for-byte.
  std::string out = "{";
  flag_bool(out, "check_input_wrt_output", o.check_input_wrt_output);
  flag_bool(out, "check_ip_order", o.check_ip_order);
  flag_bool(out, "check_output_wrt_input", o.check_output_wrt_input);
  out += "\"checkpoint\":\"";
  out += to_string(o.checkpoint);
  out += "\",";
  flag_u64(out, "deadline_ms", o.deadline_ms);
  flag_bool(out, "deterministic", o.deterministic);
  flag_list(out, "disabled_ips", o.disabled_ips);
  flag_bool(out, "hash_states", o.hash_states);
  flag_bool(out, "initial_state_search", o.initial_state_search);
  flag_bool(out, "invariant_prune", o.invariant_prune);
  flag_u64(out, "jobs", static_cast<std::uint64_t>(o.jobs));
  flag_u64(out, "max_depth", static_cast<std::uint64_t>(o.max_depth));
  flag_u64(out, "max_memory", o.max_memory);
  flag_u64(out, "max_transitions", o.max_transitions);
  flag_bool(out, "partial", o.partial);
  flag_bool(out, "prune_on_pgav", o.prune_on_pgav);
  flag_bool(out, "reorder_pg_nodes", o.reorder_pg_nodes);
  flag_bool(out, "static_prune", o.static_prune);
  flag_list(out, "unobservable_ips", o.unobservable_ips);
  flag_u64(out, "visited_max", o.visited_max);
  out.back() = '}';  // replace the trailing comma
  return out;
}

void options_from_flags(const obs::JsonValue& flags, Options& out) {
  if (!flags.is_object()) {
    throw std::runtime_error("flags: not a JSON object");
  }
  out.check_input_wrt_output =
      read_bool(flags, "check_input_wrt_output", out.check_input_wrt_output);
  out.check_ip_order = read_bool(flags, "check_ip_order", out.check_ip_order);
  out.check_output_wrt_input =
      read_bool(flags, "check_output_wrt_input", out.check_output_wrt_input);
  if (const obs::JsonValue* cp = flags.find("checkpoint")) {
    if (!cp->is_string() || (cp->string != "copy" && cp->string != "trail")) {
      throw std::runtime_error("flags: bad 'checkpoint' value");
    }
    out.checkpoint =
        cp->string == "copy" ? CheckpointMode::Copy : CheckpointMode::Trail;
  }
  out.deadline_ms = static_cast<std::uint64_t>(
      read_int(flags, "deadline_ms",
               static_cast<std::int64_t>(out.deadline_ms)));
  out.deterministic = read_bool(flags, "deterministic", out.deterministic);
  out.disabled_ips = read_list(flags, "disabled_ips");
  out.hash_states = read_bool(flags, "hash_states", out.hash_states);
  out.initial_state_search =
      read_bool(flags, "initial_state_search", out.initial_state_search);
  out.invariant_prune =
      read_bool(flags, "invariant_prune", out.invariant_prune);
  out.jobs = static_cast<int>(read_int(flags, "jobs", out.jobs));
  out.max_depth = static_cast<int>(read_int(flags, "max_depth", out.max_depth));
  out.max_memory = static_cast<std::uint64_t>(
      read_int(flags, "max_memory",
               static_cast<std::int64_t>(out.max_memory)));
  out.max_transitions = static_cast<std::uint64_t>(
      read_int(flags, "max_transitions",
               static_cast<std::int64_t>(out.max_transitions)));
  out.partial = read_bool(flags, "partial", out.partial);
  out.prune_on_pgav = read_bool(flags, "prune_on_pgav", out.prune_on_pgav);
  out.reorder_pg_nodes =
      read_bool(flags, "reorder_pg_nodes", out.reorder_pg_nodes);
  out.static_prune = read_bool(flags, "static_prune", out.static_prune);
  out.unobservable_ips = read_list(flags, "unobservable_ips");
  out.visited_max = static_cast<std::uint64_t>(
      read_int(flags, "visited_max",
               static_cast<std::int64_t>(out.visited_max)));
}

void emit_run_header(obs::Sink& sink, const est::Spec& spec,
                     const Options& options, const char* engine) {
  obs::Event e;
  e.kind = obs::EventKind::Run;
  e.version = obs::kEventSchemaVersion;
  e.engine = engine;
  e.spec = spec.name;
  e.spec_ref = sink.spec_ref();
  e.trace_ref = sink.trace_ref();
  e.order = options.order_mode_name();
  e.flags = options_flags_json(options);
  sink.emit(e);
}

void emit_verdict(obs::Sink& sink, std::uint64_t witness,
                  std::string_view verdict, const Stats& stats,
                  std::string_view reason) {
  obs::Event e;
  e.kind = obs::EventKind::Verdict;
  e.parent = witness;
  e.verdict = std::string(verdict);
  e.reason = std::string(reason);
  e.stats_json = stats.to_json_counters();
  sink.emit(e);
}

ResolvedOptions resolve_timed(const est::Spec& spec, const Options& options,
                              PhaseMetrics& phase) {
  PhaseTimer timer(phase);
  return ResolvedOptions(spec, options);
}

}  // namespace tango::core
