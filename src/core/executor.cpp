#include "core/executor.hpp"

#include <algorithm>
#include <limits>

#include "trace/trace_io.hpp"

namespace tango::core {

TraceMatcher::TraceMatcher(const est::Spec& spec, const tr::Trace& trace,
                           const ResolvedOptions& ro, SearchState& st,
                           bool partial, Checkpointer* ckpt)
    : spec_(spec),
      trace_(trace),
      ro_(ro),
      st_(st),
      partial_(partial),
      ckpt_(ckpt),
      start_cursors_(st.cursors) {}

bool TraceMatcher::on_output(int ip, int interaction_id,
                             std::vector<rt::Value> params, SourceLoc loc) {
  if (ro_.is_disabled(ip)) return true;  // §2.4.3: always considered valid

  const std::uint32_t seq = st_.cursors.next_seq(trace_, ip, tr::Dir::Out);
  if (seq == std::numeric_limits<std::uint32_t>::max()) {
    failure_ = "produced an output at ip '" +
               spec_.ips[static_cast<std::size_t>(ip)].name +
               "' but the trace has no pending output there";
    retry_later_ = !trace_.eof();  // the matching event may still arrive
    return false;
  }
  const tr::TraceEvent& ev = trace_.event(seq);
  if (ev.interaction != interaction_id) {
    failure_ = "produced '" + spec_.interaction(interaction_id).name +
               "' at ip '" + spec_.ips[static_cast<std::size_t>(ip)].name +
               "' but the trace expects '" +
               spec_.interaction(ev.interaction).name + "' (trace line " +
               std::to_string(ev.loc.line) + ")";
    return false;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!partial_ && rt::contains_undefined(params[i])) {
      throw RuntimeFault(loc, "output parameter " + std::to_string(i + 1) +
                                  " of '" + spec_.interaction(interaction_id)
                                                .name +
                                  "' is undefined (strict mode)");
    }
    if (!rt::equals(params[i], ev.params[i], partial_)) {
      failure_ = "parameter " + std::to_string(i + 1) + " of '" +
                 spec_.interaction(interaction_id).name + "' is " +
                 params[i].to_string() + " but the trace has " +
                 ev.params[i].to_string() + " (trace line " +
                 std::to_string(ev.loc.line) + ")";
      return false;
    }
  }

  // §2.4.2 output-wrt-input: the produced output must precede every pending
  // input at the same ip.
  if (ro_.base->check_output_wrt_input &&
      st_.cursors.next_seq(trace_, ip, tr::Dir::In) < seq) {
    failure_ = "output ordering: an earlier input at the same ip is still "
               "pending";
    return false;
  }

  if (ckpt_ != nullptr) ckpt_->log_cursor_advance(tr::Dir::Out, ip);
  st_.cursors.advance(tr::Dir::Out, ip);
  matched_.push_back(seq);
  return true;
}

bool TraceMatcher::finish() {
  if (!ro_.base->check_ip_order || matched_.empty()) return true;

  // The outputs of this block must occupy the globally-earliest pending
  // output slots as of the start of the transition — in any order among
  // themselves (§2.4.2: outputs of one block to different ips may be
  // permuted in the trace).
  std::vector<std::uint32_t> expected;
  CursorSet probe = start_cursors_;
  for (std::size_t k = 0; k < matched_.size(); ++k) {
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    int best_ip = -1;
    for (int ip = 0; ip < trace_.ip_count(); ++ip) {
      if (ro_.is_disabled(ip)) continue;
      const std::uint32_t s = probe.next_seq(trace_, ip, tr::Dir::Out);
      if (s < best) {
        best = s;
        best_ip = ip;
      }
    }
    if (best_ip < 0) break;
    expected.push_back(best);
    probe.advance(tr::Dir::Out, best_ip);
  }

  std::vector<std::uint32_t> got = matched_;
  std::sort(got.begin(), got.end());
  if (got != expected) {
    failure_ = "IP relative order: the block's outputs are not the "
               "globally-earliest pending outputs";
    return false;
  }
  return true;
}

ApplyResult apply_firing(rt::Interp& interp, const tr::Trace& trace,
                         const ResolvedOptions& ro, SearchState& st,
                         const Firing& firing, Stats& stats,
                         Checkpointer* ckpt) {
  ++stats.transitions_executed;
  const est::Transition& tr =
      interp.spec().body().transitions[static_cast<std::size_t>(
          firing.transition)];

  if (firing.input_event >= 0) {
    const tr::TraceEvent& ev =
        trace.event(static_cast<std::uint32_t>(firing.input_event));
    if (ckpt != nullptr) ckpt->log_cursor_advance(tr::Dir::In, ev.ip);
    st.cursors.advance(tr::Dir::In, ev.ip);
  }

  TraceMatcher matcher(interp.spec(), trace, ro, st,
                       ro.base->partial, ckpt);
  try {
    if (!interp.fire(st.machine, tr, firing.binding, matcher,
                     ckpt != nullptr ? ckpt->trail() : nullptr)) {
      return {false, matcher.retry_later(), matcher.failure()};
    }
  } catch (const RuntimeFault& fault) {
    return {false, false, fault.what()};
  }
  if (!matcher.finish()) {
    return {false, false, matcher.failure()};
  }
  return {true, false, {}};
}

InitResult apply_initializer(rt::Interp& interp, const tr::Trace& trace,
                             const ResolvedOptions& ro, std::size_t index,
                             Stats& stats) {
  InitResult out;
  out.state.machine = rt::make_initial_machine(interp.spec());
  out.state.cursors = CursorSet(trace.ip_count());
  const est::Initializer& init = interp.spec().body().initializers[index];

  try {
    if (!interp.provided_holds(out.state.machine, init)) {
      out.note = "initialize provided clause is false";
      return out;
    }
    ++stats.transitions_executed;
    out.executed = true;
    TraceMatcher matcher(interp.spec(), trace, ro, out.state,
                         ro.base->partial);
    if (!interp.run_initializer(out.state.machine, init, matcher)) {
      out.note = matcher.failure();
      out.retry_later = matcher.retry_later();
      return out;
    }
    if (!matcher.finish()) {
      out.note = matcher.failure();
      return out;
    }
  } catch (const RuntimeFault& fault) {
    out.note = fault.what();
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace tango::core
