// Parallel work-stealing version of the §2.2 backtracking DFS. The branch
// tree of a nondeterministic trace decomposes into independent subtrees:
// each worker owns its own MachineState + rt::Trail and explores
// depth-first exactly like core::analyze, but at a branching node it may
// *publish* the untaken siblings as one continuation task — a materialized
// snapshot() of the node state plus the remaining firing list — onto its
// own deque. Idle workers steal continuations (FIFO, so they take the
// shallowest = largest subtrees), giving intra-trace parallelism without
// any shared mutable search state.
//
// Two scheduling modes (docs/PARALLEL.md):
//   relaxed (default)  — publication is adaptive (only while the pool is
//     hungry), the §4.2 visited table is shared through a sharded
//     concurrent table, the transition budget is a global atomic, and the
//     first Valid conclusion cancels the pool cooperatively. Verdicts are
//     stable up to budget races; counters depend on the schedule.
//   deterministic (--deterministic) — branch ownership is a fixed function
//     of the tree (publication happens at every branching node above a
//     fixed depth), pruning and budgets are per-task, nothing cancels
//     early, and per-task results merge in lineage order: verdict,
//     solution and every counter are run-to-run identical for any --jobs.
#pragma once

#include <string>
#include <vector>

#include "core/dfs.hpp"

namespace tango::core {

/// Analyzes a complete trace with options.jobs workers (0 = one per
/// hardware thread). Reaches the same verdict as core::analyze on every
/// trace: Valid iff some path consumes/produces the whole trace, Invalid
/// iff the full branch tree was refuted, Inconclusive on budget/depth
/// clips. Counters are exact (per-task Stats merged via operator+=), but
/// RE/SA differ from the sequential engine's by construction: a stolen
/// continuation starts at its node state, so the first sibling it explores
/// needs no restore. Throws CompileError exactly like core::analyze.
[[nodiscard]] DfsResult analyze_parallel(const est::Spec& spec,
                                         const tr::Trace& trace,
                                         const Options& options);

/// One corpus entry's outcome in batch mode. `error` is nonempty when the
/// analysis threw (e.g. the trace references a disabled ip); the verdict
/// is then Inconclusive and the other fields are meaningless. A throwing
/// or over-budget item never aborts the batch: every other entry still
/// carries its own result. `attempts` counts analysis attempts — more
/// than 1 when Options::item_retries re-ran the item after a transient
/// RuntimeFault.
struct BatchItemResult {
  DfsResult result;
  std::string error;
  int attempts = 1;
};

/// Inter-trace parallelism for `tango analyze --batch`: schedules whole
/// traces across options.jobs workers, each analyzed with the sequential
/// engine (one trace is one unit of work; combine with analyze_parallel
/// by hand if a single giant trace dominates the corpus). Results are in
/// input order regardless of completion order. `sinks`, when nonempty,
/// must parallel `traces`: item i records its event stream into sinks[i]
/// (null entries record nothing), overriding options.sink — a shared sink
/// would interleave streams from concurrent items.
[[nodiscard]] std::vector<BatchItemResult> analyze_batch(
    const est::Spec& spec, const std::vector<tr::Trace>& traces,
    const Options& options, const std::vector<obs::Sink*>& sinks = {});

}  // namespace tango::core
