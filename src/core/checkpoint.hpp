// The §2.2 save/restore primitives behind one interface, in two
// implementations:
//
//   CopyCheckpointer  — save() deep-copies the composite SearchState
//                       (machine vars + heap map + cursors). This is the
//                       paper's own cost model (§3.2.2) and stays as the
//                       differential oracle for the trail mode.
//   TrailCheckpointer — save() is an O(1) mark on an undo log. The
//                       interpreter pushes one undo entry per mutation
//                       (via the rt::Trail it exposes through trail()),
//                       the executor logs cursor advances here, and
//                       restore() rewinds both logs to the mark.
//
// Marks are LIFO: restore(m) may be called repeatedly while m is the
// newest live mark (once per remaining sibling of a branching node), and
// forget(m) drops it when its node is popped. MDFS does not use marks at
// all — §3.1.1 re-generation parks whole states on PG nodes, so it calls
// snapshot(), which deep-copies in either mode.
//
// Both implementations count SA/RE identically (the engines own those
// counters); they differ only in the trail_entries / checkpoint_bytes
// accounting, which is what bench_ablation_savecost compares.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/search_state.hpp"
#include "core/stats.hpp"
#include "runtime/trail.hpp"

namespace tango::core {

class Checkpointer {
 public:
  virtual ~Checkpointer() = default;

  /// Checkpoints `st`; returns a mark for restore()/forget(). LIFO.
  virtual std::size_t save(const SearchState& st) = 0;

  /// Rewinds `st` to the state checkpointed at `mark`. Every mark newer
  /// than `mark` must already have been forgotten; `mark` itself stays
  /// valid for further restores.
  virtual void restore(std::size_t mark, SearchState& st) = 0;

  /// Drops the newest mark (must equal the most recent un-forgotten save).
  virtual void forget(std::size_t mark) = 0;

  /// Materialized deep copy for MDFS per-node states (§3.1.1).
  [[nodiscard]] SearchState snapshot(const SearchState& st);

  /// Undo log for the interpreter to push mutations onto; nullptr in copy
  /// mode (the interpreter then skips all logging).
  [[nodiscard]] virtual rt::Trail* trail() { return nullptr; }

  /// Records a cursor advance at (dir, ip) so trail restore can undo it.
  virtual void log_cursor_advance(tr::Dir dir, int ip);

 protected:
  explicit Checkpointer(Stats& stats) : stats_(stats) {}

  /// Shallow byte estimate of one deep copy of `st`.
  static std::uint64_t copy_cost_bytes(const SearchState& st);

  Stats& stats_;
};

class CopyCheckpointer final : public Checkpointer {
 public:
  explicit CopyCheckpointer(Stats& stats) : Checkpointer(stats) {}

  std::size_t save(const SearchState& st) override;
  void restore(std::size_t mark, SearchState& st) override;
  void forget(std::size_t mark) override;

 private:
  std::vector<SearchState> snapshots_;
};

class TrailCheckpointer final : public Checkpointer {
 public:
  explicit TrailCheckpointer(Stats& stats) : Checkpointer(stats) {}
  ~TrailCheckpointer() override;

  std::size_t save(const SearchState& st) override;
  void restore(std::size_t mark, SearchState& st) override;
  void forget(std::size_t mark) override;
  rt::Trail* trail() override { return &trail_; }
  void log_cursor_advance(tr::Dir dir, int ip) override;

 private:
  struct CursorUndo {
    tr::Dir dir;
    int ip;
  };
  struct Mark {
    rt::Trail::Mark trail;
    std::size_t cursors;
  };

  void sync_stats();

  rt::Trail trail_;
  std::vector<CursorUndo> cursor_log_;
  std::uint64_t cursor_logged_total_ = 0;
  std::uint64_t synced_ = 0;
  std::vector<Mark> marks_;
};

[[nodiscard]] std::unique_ptr<Checkpointer> make_checkpointer(
    CheckpointMode mode, Stats& stats);

}  // namespace tango::core
