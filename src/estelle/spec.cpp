#include "estelle/spec.hpp"

#include "estelle/parser.hpp"
#include "estelle/sema.hpp"

namespace tango::est {

int Spec::state_ordinal(std::string_view name) const {
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int Spec::ip_index(std::string_view name) const {
  for (std::size_t i = 0; i < ips.size(); ++i) {
    if (ips[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Spec::input_id(int ip, const std::string& name) const {
  const auto& table = ips.at(static_cast<std::size_t>(ip)).inputs;
  auto it = table.find(name);
  return it == table.end() ? -1 : it->second;
}

int Spec::output_id(int ip, const std::string& name) const {
  const auto& table = ips.at(static_cast<std::size_t>(ip)).outputs;
  auto it = table.find(name);
  return it == table.end() ? -1 : it->second;
}

Spec compile_spec(std::string_view source, DiagnosticSink& sink) {
  Spec spec;
  spec.ast = parse(source);
  analyze(spec, sink);
  return spec;
}

Spec compile_spec(std::string_view source) {
  DiagnosticSink sink;
  return compile_spec(source, sink);
}

}  // namespace tango::est
