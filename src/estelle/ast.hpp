// Abstract syntax tree for the Estelle dialect. The parser builds the tree;
// the semantic analyzer annotates it in place (resolved slots, types,
// interaction ids) so the interpreter and the code generator can execute or
// translate it without further name lookups.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "estelle/types.hpp"
#include "support/source_location.hpp"

namespace tango::est {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit,
  BoolLit,   // synthesized by sema for `true`/`false`
  CharLit,
  NilLit,
  Name,
  Field,
  Index,
  Deref,
  Unary,
  Binary,
  Call,
};

enum class UnOp : std::uint8_t { Neg, Plus, Not };

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, IntDiv, Mod,
  And, Or,
  Eq, Neq, Lt, Leq, Gt, Geq,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// How a Name expression was resolved by sema.
enum class NameRef : std::uint8_t {
  Unresolved,
  ModuleVar,   // slot into the machine's module-variable vector
  Local,       // slot into the active routine/transition frame
  WhenParam,   // slot into the fired interaction's parameter vector
  ConstInt,    // declared constant folded to an integer/char/bool payload
  ConstBool,
  ConstChar,
  EnumConst,   // enumeration literal; payload = ordinal, type = the enum
  Call0,       // parameterless function reference (Pascal allows `f`)
};

/// Builtin routines (Pascal standard identifiers, not keywords).
enum class Builtin : std::uint8_t {
  None,
  Ord, Chr, Abs, Succ, Pred, Odd,  // functions
  New, Dispose,                    // procedures
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // --- sema annotations ---
  const Type* type = nullptr;

  // IntLit / CharLit / BoolLit payload; Name const payloads.
  std::int64_t int_value = 0;

  // Name
  std::string name;            // canonical (lower-case)
  NameRef ref = NameRef::Unresolved;
  int slot = -1;               // ModuleVar/Local/WhenParam slot, Call0 routine

  // Field
  std::string field;           // canonical
  int field_index = -1;

  // Unary / Binary
  UnOp un_op = UnOp::Plus;
  BinOp bin_op = BinOp::Add;

  // Call
  Builtin builtin = Builtin::None;
  int routine_index = -1;

  // Children: Field/Deref/Unary use [0]; Index/Binary use [0],[1];
  // Call uses all as arguments.
  std::vector<ExprPtr> children;

  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

[[nodiscard]] ExprPtr make_expr(ExprKind k, SourceLoc loc);

/// Deep copy (annotations included). Declared here, defined in ast.cpp.
struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
struct TypeExpr;
using TypeExprPtr = std::unique_ptr<TypeExpr>;
[[nodiscard]] ExprPtr clone(const Expr& e);
[[nodiscard]] StmtPtr clone(const Stmt& s);
[[nodiscard]] TypeExprPtr clone(const TypeExpr& t);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Empty,
  Assign,
  If,
  While,
  Repeat,
  For,
  Case,
  Compound,
  Call,     // procedure call (user routine or builtin new/dispose)
  Output,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct CaseArm {
  std::vector<ExprPtr> labels;  // constant expressions; sema folds to ints
  std::vector<std::int64_t> label_values;  // sema
  StmtPtr body;
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  // Assign: target/value. If: cond/then/else. While: cond/body.
  // Repeat: body list + cond. For: control var, from, to, body.
  ExprPtr e0, e1;      // generic expression operands
  StmtPtr s0, s1;      // generic statement operands
  std::vector<StmtPtr> body;  // Compound, Repeat bodies

  // For
  bool downto = false;

  // Case
  std::vector<CaseArm> arms;
  std::vector<StmtPtr> otherwise;  // empty unless `otherwise` present
  bool has_otherwise = false;

  // Call
  std::string callee;  // canonical
  Builtin builtin = Builtin::None;
  int routine_index = -1;
  std::vector<ExprPtr> args;

  // Output: e.g. `output U.DatReq(x, true)`
  std::string out_ip;          // canonical
  std::string out_interaction; // canonical
  int ip_index = -1;           // sema
  int interaction_id = -1;     // sema (global interaction id)

  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

[[nodiscard]] StmtPtr make_stmt(StmtKind k, SourceLoc loc);

// ---------------------------------------------------------------------------
// Type expressions (syntactic; sema resolves to canonical Type*)
// ---------------------------------------------------------------------------

enum class TypeExprKind : std::uint8_t {
  Named,     // integer, boolean, char, or a declared type name
  Enum,      // (a, b, c)
  Subrange,  // lo .. hi (constant expressions)
  Array,     // array [lo..hi] of T
  Record,    // record f: T; ... end
  Pointer,   // ^T (T may be declared later)
};

struct TypeExpr;
using TypeExprPtr = std::unique_ptr<TypeExpr>;

struct FieldGroup {
  std::vector<std::string> names;  // canonical
  TypeExprPtr type;
};

struct TypeExpr {
  TypeExprKind kind;
  SourceLoc loc;
  std::string name;                      // Named / Pointer target
  std::vector<std::string> enum_values;  // Enum
  ExprPtr lo, hi;                        // Subrange / Array bounds
  TypeExprPtr element;                   // Array
  std::vector<FieldGroup> fields;        // Record

  const Type* resolved = nullptr;  // sema

  explicit TypeExpr(TypeExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct ConstDecl {
  SourceLoc loc;
  std::string name;  // canonical
  ExprPtr value;     // constant expression
};

struct TypeDecl {
  SourceLoc loc;
  std::string name;  // canonical
  TypeExprPtr type;
};

struct VarDecl {
  SourceLoc loc;
  std::vector<std::string> names;  // canonical
  TypeExprPtr type;
  // sema: slot of names[i] is first_slot + i (module or frame scope)
  int first_slot = -1;
};

struct ParamGroup {
  SourceLoc loc;
  bool by_ref = false;             // `var` parameter
  std::vector<std::string> names;  // canonical
  TypeExprPtr type;
};

struct Routine {
  SourceLoc loc;
  bool is_function = false;
  bool is_primitive = false;  // parsed but rejected by sema (as in Tango)
  std::string name;           // canonical
  std::vector<ParamGroup> params;
  TypeExprPtr result_type;    // functions only
  std::vector<VarDecl> locals;
  StmtPtr body;               // Compound

  // sema
  int frame_size = 0;   // params + result + locals
  int result_slot = -1; // functions: slot holding the return value
  std::vector<const Type*> param_types;  // flattened, in call order
  std::vector<bool> param_by_ref;        // flattened
};

// ---------------------------------------------------------------------------
// Channel / module structure
// ---------------------------------------------------------------------------

struct InteractionParam {
  SourceLoc loc;
  std::string name;  // canonical
  TypeExprPtr type;
  const Type* resolved = nullptr;  // sema
};

struct InteractionDef {
  SourceLoc loc;
  std::string name;  // canonical
  std::vector<InteractionParam> params;
  // sema: which roles (0/1) may send this interaction
  bool by_role[2] = {false, false};
  int global_id = -1;  // sema: unique across the whole specification
};

struct ChannelDef {
  SourceLoc loc;
  std::string name;             // canonical
  std::string roles[2];         // canonical role identifiers
  std::vector<InteractionDef> interactions;
};

struct IpDecl {
  SourceLoc loc;
  std::string name;     // canonical
  std::string channel;  // canonical
  std::string role;     // canonical: the role THIS module plays at the ip
  // sema
  int channel_index = -1;
  int role_index = -1;  // 0 or 1 within the channel
};

struct ModuleHeader {
  SourceLoc loc;
  std::string name;  // canonical
  std::vector<IpDecl> ips;
};

// ---------------------------------------------------------------------------
// Transitions
// ---------------------------------------------------------------------------

struct WhenClause {
  SourceLoc loc;
  std::string ip;           // canonical
  std::string interaction;  // canonical
  // sema
  int ip_index = -1;
  int interaction_id = -1;
  std::vector<const Type*> param_types;  // of the interaction
};

struct Transition {
  SourceLoc loc;
  std::vector<std::string> from_states;  // canonical; may name statesets
  std::string to_state;                  // canonical; empty means `same`
  bool to_same = false;
  std::optional<WhenClause> when;
  ExprPtr provided;                      // may be null
  std::optional<std::int64_t> priority;  // smaller value = higher priority
  bool has_delay = false;                // parsed; rejected by sema
  SourceLoc delay_loc;
  std::string name;                      // `name T:`; auto-generated if absent
  std::vector<VarDecl> locals;
  StmtPtr block;                         // Compound

  // sema
  std::vector<int> from_ordinals;  // expanded state ordinals, sorted
  int to_ordinal = -1;             // -1 for `same`
  int frame_size = 0;              // transition-local frame (locals only)
};

struct Initializer {
  SourceLoc loc;
  std::string to_state;  // canonical
  ExprPtr provided;      // may be null (evaluated against default state)
  std::vector<VarDecl> locals;
  StmtPtr block;         // may be null (no statement part)

  // sema
  int to_ordinal = -1;
  int frame_size = 0;
};

struct StateSetDecl {
  SourceLoc loc;
  std::string name;                 // canonical
  std::vector<std::string> members; // canonical state names
};

// ---------------------------------------------------------------------------
// Whole specification
// ---------------------------------------------------------------------------

struct BodyDef {
  SourceLoc loc;
  std::string name;        // canonical
  std::string for_module;  // canonical
  std::vector<ConstDecl> consts;
  std::vector<TypeDecl> types;
  std::vector<VarDecl> vars;
  std::vector<Routine> routines;
  std::vector<std::string> states;  // canonical, in declaration order
  std::vector<SourceLoc> state_locs;  // parallel to `states`
  std::vector<StateSetDecl> statesets;
  std::vector<Initializer> initializers;
  std::vector<Transition> transitions;
};

struct SpecAst {
  SourceLoc loc;
  std::string name;  // canonical
  std::vector<ChannelDef> channels;
  std::vector<ModuleHeader> modules;  // sema enforces exactly one
  std::vector<BodyDef> bodies;        // sema enforces exactly one
};

}  // namespace tango::est
