#include "estelle/printer.hpp"

namespace tango::est {

namespace {

std::string ind(int n) { return std::string(static_cast<std::size_t>(n) * 2, ' '); }

const char* bin_op_text(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::IntDiv: return "div";
    case BinOp::Mod: return "mod";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
    case BinOp::Eq: return "=";
    case BinOp::Neq: return "<>";
    case BinOp::Lt: return "<";
    case BinOp::Leq: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Geq: return ">=";
  }
  return "?";
}

int precedence(const Expr& e) {
  if (e.kind == ExprKind::Binary) {
    switch (e.bin_op) {
      case BinOp::Eq: case BinOp::Neq: case BinOp::Lt: case BinOp::Leq:
      case BinOp::Gt: case BinOp::Geq:
        return 1;
      case BinOp::Add: case BinOp::Sub: case BinOp::Or:
        return 2;
      default:
        return 3;
    }
  }
  if (e.kind == ExprKind::Unary) return e.un_op == UnOp::Not ? 4 : 2;
  return 5;
}

std::string expr_text(const Expr& e, int parent_prec) {
  std::string out;
  switch (e.kind) {
    case ExprKind::IntLit: out = std::to_string(e.int_value); break;
    case ExprKind::BoolLit: out = e.int_value != 0 ? "true" : "false"; break;
    case ExprKind::CharLit:
      out = std::string("'") + static_cast<char>(e.int_value) + "'";
      break;
    case ExprKind::NilLit: out = "nil"; break;
    case ExprKind::Name: out = e.name; break;
    case ExprKind::Field:
      out = expr_text(*e.children[0], 5) + "." + e.field;
      break;
    case ExprKind::Index:
      out = expr_text(*e.children[0], 5) + "[" +
            expr_text(*e.children[1], 0) + "]";
      break;
    case ExprKind::Deref:
      out = expr_text(*e.children[0], 5) + "^";
      break;
    case ExprKind::Unary: {
      const char* op = e.un_op == UnOp::Not ? "not "
                       : e.un_op == UnOp::Neg ? "-"
                                              : "+";
      out = std::string(op) + expr_text(*e.children[0], 4);
      break;
    }
    case ExprKind::Binary:
      out = expr_text(*e.children[0], precedence(e)) + " " +
            bin_op_text(e.bin_op) + " " +
            expr_text(*e.children[1], precedence(e) + 1);
      break;
    case ExprKind::Call: {
      out = e.name + "(";
      for (std::size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += ", ";
        out += expr_text(*e.children[i], 0);
      }
      out += ")";
      break;
    }
  }
  if (precedence(e) < parent_prec &&
      (e.kind == ExprKind::Binary || e.kind == ExprKind::Unary)) {
    return "(" + out + ")";
  }
  return out;
}

std::string type_expr_text(const TypeExpr& t) {
  switch (t.kind) {
    case TypeExprKind::Named:
      return t.name;
    case TypeExprKind::Enum: {
      std::string out = "(";
      for (std::size_t i = 0; i < t.enum_values.size(); ++i) {
        if (i != 0) out += ", ";
        out += t.enum_values[i];
      }
      return out + ")";
    }
    case TypeExprKind::Subrange:
      return expr_text(*t.lo, 0) + " .. " + expr_text(*t.hi, 0);
    case TypeExprKind::Array:
      return "array [" + expr_text(*t.lo, 0) + " .. " + expr_text(*t.hi, 0) +
             "] of " + type_expr_text(*t.element);
    case TypeExprKind::Record: {
      std::string out = "record ";
      for (const FieldGroup& g : t.fields) {
        for (std::size_t i = 0; i < g.names.size(); ++i) {
          if (i != 0) out += ", ";
          out += g.names[i];
        }
        out += ": " + type_expr_text(*g.type) + "; ";
      }
      return out + "end";
    }
    case TypeExprKind::Pointer:
      return "^" + t.name;
  }
  return "?";
}

std::string stmt_text(const Stmt& s, int n);

std::string stmt_list_text(const std::vector<StmtPtr>& list, int n) {
  std::string out;
  for (std::size_t i = 0; i < list.size(); ++i) {
    out += stmt_text(*list[i], n);
    if (i + 1 != list.size()) out += ";";
    out += "\n";
  }
  return out;
}

std::string stmt_text(const Stmt& s, int n) {
  switch (s.kind) {
    case StmtKind::Empty:
      return ind(n);
    case StmtKind::Compound:
      return ind(n) + "begin\n" + stmt_list_text(s.body, n + 1) + ind(n) +
             "end";
    case StmtKind::Assign:
      return ind(n) + expr_text(*s.e0, 0) + " := " + expr_text(*s.e1, 0);
    case StmtKind::If: {
      std::string out = ind(n) + "if " + expr_text(*s.e0, 0) + " then\n" +
                        stmt_text(*s.s0, n + 1);
      if (s.s1) out += "\n" + ind(n) + "else\n" + stmt_text(*s.s1, n + 1);
      return out;
    }
    case StmtKind::While:
      return ind(n) + "while " + expr_text(*s.e0, 0) + " do\n" +
             stmt_text(*s.s0, n + 1);
    case StmtKind::Repeat:
      return ind(n) + "repeat\n" + stmt_list_text(s.body, n + 1) + ind(n) +
             "until " + expr_text(*s.e0, 0);
    case StmtKind::For:
      return ind(n) + "for " + expr_text(*s.e0, 0) + " := " +
             expr_text(*s.e1, 0) + (s.downto ? " downto " : " to ") +
             expr_text(*s.args[0], 0) + " do\n" + stmt_text(*s.s0, n + 1);
    case StmtKind::Case: {
      std::string out = ind(n) + "case " + expr_text(*s.e0, 0) + " of\n";
      for (const CaseArm& arm : s.arms) {
        out += ind(n + 1);
        for (std::size_t i = 0; i < arm.labels.size(); ++i) {
          if (i != 0) out += ", ";
          out += expr_text(*arm.labels[i], 0);
        }
        out += ":\n" + stmt_text(*arm.body, n + 2) + ";\n";
      }
      if (s.has_otherwise) {
        out += ind(n + 1) + "otherwise\n" + stmt_list_text(s.otherwise, n + 2);
      }
      return out + ind(n) + "end";
    }
    case StmtKind::Call: {
      std::string out = ind(n) + s.callee;
      if (!s.args.empty()) {
        out += "(";
        for (std::size_t i = 0; i < s.args.size(); ++i) {
          if (i != 0) out += ", ";
          out += expr_text(*s.args[i], 0);
        }
        out += ")";
      }
      return out;
    }
    case StmtKind::Output: {
      std::string out = ind(n) + "output " + s.out_ip + "." +
                        s.out_interaction;
      if (!s.args.empty()) {
        out += "(";
        for (std::size_t i = 0; i < s.args.size(); ++i) {
          if (i != 0) out += ", ";
          out += expr_text(*s.args[i], 0);
        }
        out += ")";
      }
      return out;
    }
  }
  return ind(n) + "{?}";
}

void print_vars(std::string& out, const std::vector<VarDecl>& vars, int n) {
  if (vars.empty()) return;
  out += ind(n) + "var\n";
  for (const VarDecl& v : vars) {
    out += ind(n + 1);
    for (std::size_t i = 0; i < v.names.size(); ++i) {
      if (i != 0) out += ", ";
      out += v.names[i];
    }
    out += ": " + type_expr_text(*v.type) + ";\n";
  }
}

}  // namespace

std::string print_expr(const Expr& e) { return expr_text(e, 0); }
std::string print_stmt(const Stmt& s, int indent) {
  return stmt_text(s, indent);
}

std::string print_spec(const SpecAst& spec) {
  std::string out = "specification " + spec.name + ";\n\n";

  for (const ChannelDef& ch : spec.channels) {
    out += "channel " + ch.name + "(" + ch.roles[0] + ", " + ch.roles[1] +
           ");\n";
    for (int role = 0; role < 2; ++role) {
      bool header = false;
      for (const InteractionDef& def : ch.interactions) {
        // Interactions listed under both roles are emitted under role 0 as
        // `by A, B:` to keep the round trip faithful.
        const bool both = def.by_role[0] && def.by_role[1];
        if (!def.by_role[role] || (both && role == 1)) continue;
        if (!header) {
          out += "  by " + ch.roles[role] +
                 (both ? ", " + ch.roles[1 - role] : "") + ":\n";
          header = true;
        }
        out += "    " + def.name;
        if (!def.params.empty()) {
          out += "(";
          for (std::size_t i = 0; i < def.params.size(); ++i) {
            if (i != 0) out += "; ";
            out += def.params[i].name + ": " +
                   type_expr_text(*def.params[i].type);
          }
          out += ")";
        }
        out += ";\n";
      }
    }
  }
  out += "\n";

  for (const ModuleHeader& mod : spec.modules) {
    out += "module " + mod.name + " systemprocess;\n";
    for (const IpDecl& ip : mod.ips) {
      out += "  ip " + ip.name + ": " + ip.channel + "(" + ip.role + ");\n";
    }
    out += "end;\n\n";
  }

  for (const BodyDef& body : spec.bodies) {
    out += "body " + body.name + " for " + body.for_module + ";\n\n";
    if (!body.consts.empty()) {
      out += "const\n";
      for (const ConstDecl& c : body.consts) {
        out += "  " + c.name + " = " + print_expr(*c.value) + ";\n";
      }
    }
    if (!body.types.empty()) {
      out += "type\n";
      for (const TypeDecl& t : body.types) {
        out += "  " + t.name + " = " + type_expr_text(*t.type) + ";\n";
      }
    }
    print_vars(out, body.vars, 0);

    for (const Routine& r : body.routines) {
      out += r.is_function ? "function " : "procedure ";
      out += r.name;
      if (!r.params.empty()) {
        out += "(";
        for (std::size_t i = 0; i < r.params.size(); ++i) {
          if (i != 0) out += "; ";
          const ParamGroup& g = r.params[i];
          if (g.by_ref) out += "var ";
          for (std::size_t k = 0; k < g.names.size(); ++k) {
            if (k != 0) out += ", ";
            out += g.names[k];
          }
          out += ": " + type_expr_text(*g.type);
        }
        out += ")";
      }
      if (r.is_function) out += ": " + type_expr_text(*r.result_type);
      out += ";\n";
      print_vars(out, r.locals, 0);
      out += stmt_text(*r.body, 0) + ";\n\n";
    }

    if (!body.states.empty()) {
      out += "state ";
      for (std::size_t i = 0; i < body.states.size(); ++i) {
        if (i != 0) out += ", ";
        out += body.states[i];
      }
      out += ";\n";
    }
    for (const StateSetDecl& ss : body.statesets) {
      out += "stateset " + ss.name + " = [";
      for (std::size_t i = 0; i < ss.members.size(); ++i) {
        if (i != 0) out += ", ";
        out += ss.members[i];
      }
      out += "];\n";
    }
    out += "\n";

    for (const Initializer& init : body.initializers) {
      out += "initialize to " + init.to_state;
      if (init.provided) out += " provided " + print_expr(*init.provided);
      out += "\n";
      print_vars(out, init.locals, 1);
      out += init.block ? stmt_text(*init.block, 1) : ind(1) + "begin end";
      out += ";\n\n";
    }

    out += "trans\n\n";
    for (const Transition& tr : body.transitions) {
      out += "  from ";
      for (std::size_t i = 0; i < tr.from_states.size(); ++i) {
        if (i != 0) out += ", ";
        out += tr.from_states[i];
      }
      out += " to " + (tr.to_same ? std::string("same") : tr.to_state) + "\n";
      if (tr.when) {
        out += "    when " + tr.when->ip + "." + tr.when->interaction + "\n";
      }
      if (tr.provided) {
        out += "    provided " + print_expr(*tr.provided) + "\n";
      }
      if (tr.priority) {
        out += "    priority " + std::to_string(*tr.priority) + "\n";
      }
      if (!tr.name.empty()) out += "    name " + tr.name + ":\n";
      print_vars(out, tr.locals, 2);
      out += stmt_text(*tr.block, 2) + ";\n\n";
    }
    out += "end;\n\n";
  }
  out += "end.\n";
  return out;
}

}  // namespace tango::est
