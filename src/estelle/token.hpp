// Token definitions for the Estelle dialect. Estelle is a set of extensions
// to ISO Pascal, so the token set is Pascal's plus the Estelle keywords
// (specification, channel, module, ip, trans, when, provided, ...).
// Identifiers and keywords are case-insensitive, as in Pascal.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace tango::est {

enum class Tok : std::uint8_t {
  // Sentinels
  End,  // end of input

  // Literals and identifiers
  Ident,
  IntLit,
  StringLit,  // quoted; single-character strings double as char literals

  // Punctuation
  Semi,        // ;
  Colon,       // :
  Comma,       // ,
  Dot,         // .
  DotDot,      // ..
  LParen,      // (
  RParen,      // )
  LBracket,    // [
  RBracket,    // ]
  Caret,       // ^
  Assign,      // :=
  Plus,        // +
  Minus,       // -
  Star,        // *
  Slash,       // /
  Eq,          // =
  Neq,         // <>
  Lt,          // <
  Leq,         // <=
  Gt,          // >
  Geq,         // >=

  // Pascal keywords
  KwAnd, KwArray, KwBegin, KwCase, KwConst, KwDiv, KwDo, KwDownto, KwElse,
  KwEnd, KwFor, KwFunction, KwIf, KwMod, KwNil, KwNot, KwOf, KwOr,
  KwOtherwise, KwProcedure, KwRecord, KwRepeat, KwThen, KwTo, KwType,
  KwUntil, KwVar, KwWhile,

  // Estelle keywords
  KwSpecification, KwChannel, KwBy, KwModule, KwSystemprocess, KwProcess,
  KwSystemactivity, KwActivity, KwIp, KwIndividual, KwCommon, KwQueue,
  KwDefault, KwBody, KwState, KwStateset, KwInitialize, KwTrans, KwFrom,
  KwWhen, KwProvided, KwPriority, KwDelay, KwName, KwSame, KwOutput,
  KwPrimitive, KwAny, KwAll, KwForone, KwExist,
};

/// Human-readable token-kind name, for diagnostics ("expected ';'").
[[nodiscard]] std::string_view tok_name(Tok t);

struct Token {
  Tok kind = Tok::End;
  std::string text;       // identifier/literal spelling (original case)
  std::int64_t int_value = 0;
  SourceLoc loc;

  [[nodiscard]] bool is(Tok t) const { return kind == t; }
};

/// Maps a (case-insensitive) identifier spelling to a keyword token, or
/// Tok::Ident if it is not a keyword.
[[nodiscard]] Tok classify_ident(std::string_view spelling);

}  // namespace tango::est
