// Recursive-descent parser for the Estelle dialect (see DESIGN.md §6 for the
// accepted grammar). Produces an unresolved SpecAst; semantic analysis
// (sema.hpp) resolves names and types afterwards.
#pragma once

#include <string_view>

#include "estelle/ast.hpp"

namespace tango::est {

/// Parses a complete specification. Throws CompileError on the first syntax
/// error (Pascal-family grammars recover poorly; one precise error beats a
/// cascade).
[[nodiscard]] SpecAst parse(std::string_view source);

/// Parses a single expression (used by tests and by the trace tooling for
/// constant expressions).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace tango::est
