#include "estelle/lexer.hpp"

#include <cctype>
#include <limits>
#include <unordered_map>

#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace tango::est {

namespace {

const std::unordered_map<std::string, Tok>& keyword_table() {
  static const std::unordered_map<std::string, Tok> table = {
      {"and", Tok::KwAnd},
      {"array", Tok::KwArray},
      {"begin", Tok::KwBegin},
      {"case", Tok::KwCase},
      {"const", Tok::KwConst},
      {"div", Tok::KwDiv},
      {"do", Tok::KwDo},
      {"downto", Tok::KwDownto},
      {"else", Tok::KwElse},
      {"end", Tok::KwEnd},
      {"for", Tok::KwFor},
      {"function", Tok::KwFunction},
      {"if", Tok::KwIf},
      {"mod", Tok::KwMod},
      {"nil", Tok::KwNil},
      {"not", Tok::KwNot},
      {"of", Tok::KwOf},
      {"or", Tok::KwOr},
      {"otherwise", Tok::KwOtherwise},
      {"procedure", Tok::KwProcedure},
      {"record", Tok::KwRecord},
      {"repeat", Tok::KwRepeat},
      {"then", Tok::KwThen},
      {"to", Tok::KwTo},
      {"type", Tok::KwType},
      {"until", Tok::KwUntil},
      {"var", Tok::KwVar},
      {"while", Tok::KwWhile},
      {"specification", Tok::KwSpecification},
      {"channel", Tok::KwChannel},
      {"by", Tok::KwBy},
      {"module", Tok::KwModule},
      {"systemprocess", Tok::KwSystemprocess},
      {"process", Tok::KwProcess},
      {"systemactivity", Tok::KwSystemactivity},
      {"activity", Tok::KwActivity},
      {"ip", Tok::KwIp},
      {"individual", Tok::KwIndividual},
      {"common", Tok::KwCommon},
      {"queue", Tok::KwQueue},
      {"default", Tok::KwDefault},
      {"body", Tok::KwBody},
      {"state", Tok::KwState},
      {"stateset", Tok::KwStateset},
      {"initialize", Tok::KwInitialize},
      {"trans", Tok::KwTrans},
      {"from", Tok::KwFrom},
      {"when", Tok::KwWhen},
      {"provided", Tok::KwProvided},
      {"priority", Tok::KwPriority},
      {"delay", Tok::KwDelay},
      {"name", Tok::KwName},
      {"same", Tok::KwSame},
      {"output", Tok::KwOutput},
      {"primitive", Tok::KwPrimitive},
      {"any", Tok::KwAny},
      {"all", Tok::KwAll},
      {"forone", Tok::KwForone},
      {"exist", Tok::KwExist},
  };
  return table;
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] SourceLoc loc() const { return {line_, col_}; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::StringLit: return "string literal";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Comma: return "','";
    case Tok::Dot: return "'.'";
    case Tok::DotDot: return "'..'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Caret: return "'^'";
    case Tok::Assign: return "':='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Eq: return "'='";
    case Tok::Neq: return "'<>'";
    case Tok::Lt: return "'<'";
    case Tok::Leq: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Geq: return "'>='";
    case Tok::KwAnd: return "'and'";
    case Tok::KwArray: return "'array'";
    case Tok::KwBegin: return "'begin'";
    case Tok::KwCase: return "'case'";
    case Tok::KwConst: return "'const'";
    case Tok::KwDiv: return "'div'";
    case Tok::KwDo: return "'do'";
    case Tok::KwDownto: return "'downto'";
    case Tok::KwElse: return "'else'";
    case Tok::KwEnd: return "'end'";
    case Tok::KwFor: return "'for'";
    case Tok::KwFunction: return "'function'";
    case Tok::KwIf: return "'if'";
    case Tok::KwMod: return "'mod'";
    case Tok::KwNil: return "'nil'";
    case Tok::KwNot: return "'not'";
    case Tok::KwOf: return "'of'";
    case Tok::KwOr: return "'or'";
    case Tok::KwOtherwise: return "'otherwise'";
    case Tok::KwProcedure: return "'procedure'";
    case Tok::KwRecord: return "'record'";
    case Tok::KwRepeat: return "'repeat'";
    case Tok::KwThen: return "'then'";
    case Tok::KwTo: return "'to'";
    case Tok::KwType: return "'type'";
    case Tok::KwUntil: return "'until'";
    case Tok::KwVar: return "'var'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwSpecification: return "'specification'";
    case Tok::KwChannel: return "'channel'";
    case Tok::KwBy: return "'by'";
    case Tok::KwModule: return "'module'";
    case Tok::KwSystemprocess: return "'systemprocess'";
    case Tok::KwProcess: return "'process'";
    case Tok::KwSystemactivity: return "'systemactivity'";
    case Tok::KwActivity: return "'activity'";
    case Tok::KwIp: return "'ip'";
    case Tok::KwIndividual: return "'individual'";
    case Tok::KwCommon: return "'common'";
    case Tok::KwQueue: return "'queue'";
    case Tok::KwDefault: return "'default'";
    case Tok::KwBody: return "'body'";
    case Tok::KwState: return "'state'";
    case Tok::KwStateset: return "'stateset'";
    case Tok::KwInitialize: return "'initialize'";
    case Tok::KwTrans: return "'trans'";
    case Tok::KwFrom: return "'from'";
    case Tok::KwWhen: return "'when'";
    case Tok::KwProvided: return "'provided'";
    case Tok::KwPriority: return "'priority'";
    case Tok::KwDelay: return "'delay'";
    case Tok::KwName: return "'name'";
    case Tok::KwSame: return "'same'";
    case Tok::KwOutput: return "'output'";
    case Tok::KwPrimitive: return "'primitive'";
    case Tok::KwAny: return "'any'";
    case Tok::KwAll: return "'all'";
    case Tok::KwForone: return "'forone'";
    case Tok::KwExist: return "'exist'";
  }
  return "token";
}

Tok classify_ident(std::string_view spelling) {
  const auto& table = keyword_table();
  auto it = table.find(to_lower(spelling));
  return it == table.end() ? Tok::Ident : it->second;
}

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  Cursor cur(source);

  auto push = [&out](Tok kind, SourceLoc loc, std::string text = {},
                     std::int64_t value = 0) {
    out.push_back(Token{kind, std::move(text), value, loc});
  };

  while (!cur.done()) {
    const SourceLoc loc = cur.loc();
    const char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }

    // Comments: { ... } and (* ... *).
    if (c == '{') {
      cur.advance();
      while (!cur.done() && cur.peek() != '}') cur.advance();
      if (cur.done()) throw CompileError(loc, "unterminated '{' comment");
      cur.advance();
      continue;
    }
    if (c == '(' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      for (;;) {
        if (cur.done()) throw CompileError(loc, "unterminated '(*' comment");
        if (cur.peek() == '*' && cur.peek(1) == ')') {
          cur.advance();
          cur.advance();
          break;
        }
        cur.advance();
      }
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string spelling;
      while (!cur.done() &&
             (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
              cur.peek() == '_')) {
        spelling.push_back(cur.advance());
      }
      const Tok kind = classify_ident(spelling);
      push(kind, loc, std::move(spelling));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = 0;
      std::string spelling;
      while (!cur.done() &&
             std::isdigit(static_cast<unsigned char>(cur.peek()))) {
        const int digit = cur.peek() - '0';
        if (value > (std::numeric_limits<std::int64_t>::max() - digit) / 10) {
          throw CompileError(loc, "integer literal overflows 64 bits");
        }
        value = value * 10 + digit;
        spelling.push_back(cur.advance());
      }
      push(Tok::IntLit, loc, std::move(spelling), value);
      continue;
    }

    if (c == '\'') {
      cur.advance();
      std::string text;
      for (;;) {
        if (cur.done()) throw CompileError(loc, "unterminated string literal");
        char d = cur.advance();
        if (d == '\'') {
          if (cur.peek() == '\'') {  // doubled quote escapes a quote
            text.push_back('\'');
            cur.advance();
            continue;
          }
          break;
        }
        if (d == '\n') throw CompileError(loc, "string literal spans a line");
        text.push_back(d);
      }
      push(Tok::StringLit, loc, std::move(text));
      continue;
    }

    cur.advance();
    switch (c) {
      case ';': push(Tok::Semi, loc); break;
      case ',': push(Tok::Comma, loc); break;
      case '(': push(Tok::LParen, loc); break;
      case ')': push(Tok::RParen, loc); break;
      case '[': push(Tok::LBracket, loc); break;
      case ']': push(Tok::RBracket, loc); break;
      case '^': push(Tok::Caret, loc); break;
      case '+': push(Tok::Plus, loc); break;
      case '-': push(Tok::Minus, loc); break;
      case '*': push(Tok::Star, loc); break;
      case '/': push(Tok::Slash, loc); break;
      case '=': push(Tok::Eq, loc); break;
      case '.':
        if (cur.peek() == '.') {
          cur.advance();
          push(Tok::DotDot, loc);
        } else {
          push(Tok::Dot, loc);
        }
        break;
      case ':':
        if (cur.peek() == '=') {
          cur.advance();
          push(Tok::Assign, loc);
        } else {
          push(Tok::Colon, loc);
        }
        break;
      case '<':
        if (cur.peek() == '=') {
          cur.advance();
          push(Tok::Leq, loc);
        } else if (cur.peek() == '>') {
          cur.advance();
          push(Tok::Neq, loc);
        } else {
          push(Tok::Lt, loc);
        }
        break;
      case '>':
        if (cur.peek() == '=') {
          cur.advance();
          push(Tok::Geq, loc);
        } else {
          push(Tok::Gt, loc);
        }
        break;
      default:
        throw CompileError(loc, std::string("stray character '") + c + "'");
    }
  }

  push(Tok::End, cur.loc());
  return out;
}

}  // namespace tango::est
