#include "estelle/sema.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace tango::est {

namespace {

constexpr std::int64_t kMaxArrayElems = 1 << 20;

struct ConstInfo {
  const Type* type = nullptr;
  std::int64_t value = 0;
  NameRef ref = NameRef::ConstInt;  // ConstInt/ConstBool/ConstChar/EnumConst
};

struct LocalInfo {
  int slot = -1;
  const Type* type = nullptr;
  bool by_ref = false;
};

struct WhenParamInfo {
  int index = -1;
  const Type* type = nullptr;
};

class Sema {
 public:
  Sema(Spec& spec, DiagnosticSink& sink) : spec_(spec), sink_(sink) {}

  void run() {
    check_structure();
    resolve_consts_and_types();
    resolve_channels();
    resolve_ips();
    resolve_states();
    resolve_module_vars();
    resolve_routine_signatures();
    resolve_routine_bodies();
    resolve_initializers();
    resolve_transitions();
    index_transitions_by_state();
    warn_non_progress();
  }

 private:
  // -------------------------------------------------------------------
  // Structure
  // -------------------------------------------------------------------
  void check_structure() {
    SpecAst& ast = spec_.ast;
    spec_.name = ast.name;
    if (ast.modules.size() != 1 || ast.bodies.size() != 1) {
      // The paper, §2.1: "The current version of Tango does not support
      // trace analysis of multiple concurrent module specifications."
      throw CompileError(
          ast.loc,
          "Tango requires exactly one module header and one module body "
          "(single-process specifications only); found " +
              std::to_string(ast.modules.size()) + " module(s) and " +
              std::to_string(ast.bodies.size()) + " body(ies)");
    }
    if (ast.bodies[0].for_module != ast.modules[0].name) {
      throw CompileError(ast.bodies[0].loc,
                         "body '" + ast.bodies[0].name + "' is for module '" +
                             ast.bodies[0].for_module +
                             "', but the declared module is '" +
                             ast.modules[0].name + "'");
    }
  }

  // -------------------------------------------------------------------
  // Constants and types (fixpoint: the two sections may reference each
  // other — array bounds use constants, constants use enum literals)
  // -------------------------------------------------------------------
  void resolve_consts_and_types() {
    type_env_["integer"] = spec_.types.integer();
    type_env_["boolean"] = spec_.types.boolean();
    type_env_["char"] = spec_.types.char_type();

    const_env_["true"] = ConstInfo{spec_.types.boolean(), 1, NameRef::ConstBool};
    const_env_["false"] =
        ConstInfo{spec_.types.boolean(), 0, NameRef::ConstBool};
    const_env_["maxint"] =
        ConstInfo{spec_.types.integer(),
                  std::numeric_limits<std::int32_t>::max(), NameRef::ConstInt};

    BodyDef& body = spec_.ast.bodies[0];
    std::vector<ConstDecl*> pending_consts;
    std::vector<TypeDecl*> pending_types;
    for (ConstDecl& c : body.consts) pending_consts.push_back(&c);
    for (TypeDecl& t : body.types) pending_types.push_back(&t);

    bool progress = true;
    while (progress && (!pending_consts.empty() || !pending_types.empty())) {
      progress = false;
      for (auto it = pending_consts.begin(); it != pending_consts.end();) {
        if (try_resolve_const(**it)) {
          it = pending_consts.erase(it);
          progress = true;
        } else {
          ++it;
        }
      }
      for (auto it = pending_types.begin(); it != pending_types.end();) {
        if (try_resolve_type_decl(**it)) {
          it = pending_types.erase(it);
          progress = true;
        } else {
          ++it;
        }
      }
    }
    if (!pending_consts.empty()) {
      // Re-run to surface the underlying error.
      fold_const(*pending_consts.front()->value);
    }
    if (!pending_types.empty()) {
      resolve_type_expr(*pending_types.front()->type);
    }
    patch_pointers();
  }

  bool try_resolve_const(ConstDecl& decl) {
    if (const_env_.count(decl.name) || type_env_.count(decl.name)) {
      throw CompileError(decl.loc, "redefinition of '" + decl.name + "'");
    }
    try {
      ConstInfo info = fold_const(*decl.value);
      const_env_[decl.name] = info;
      return true;
    } catch (const CompileError&) {
      return false;
    }
  }

  bool try_resolve_type_decl(TypeDecl& decl) {
    if (const_env_.count(decl.name) || type_env_.count(decl.name)) {
      throw CompileError(decl.loc, "redefinition of '" + decl.name + "'");
    }
    try {
      const Type* t = resolve_type_expr(*decl.type);
      Type* named = const_cast<Type*>(t);
      if (named->name.empty()) named->name = decl.name;
      type_env_[decl.name] = t;
      return true;
    } catch (const CompileError&) {
      return false;
    }
  }

  /// Resolves a syntactic type expression to a canonical type. Pointer
  /// targets may be forward references; they are patched afterwards.
  const Type* resolve_type_expr(TypeExpr& te) {
    if (te.resolved != nullptr) return te.resolved;
    switch (te.kind) {
      case TypeExprKind::Named: {
        auto it = type_env_.find(te.name);
        if (it == type_env_.end()) {
          throw CompileError(te.loc, "unknown type '" + te.name + "'");
        }
        te.resolved = it->second;
        break;
      }
      case TypeExprKind::Enum: {
        Type* t = spec_.types.make(TypeKind::Enum);
        t->enum_values = te.enum_values;
        for (std::size_t i = 0; i < te.enum_values.size(); ++i) {
          const std::string& lit = te.enum_values[i];
          if (const_env_.count(lit)) {
            throw CompileError(te.loc,
                               "enum literal '" + lit + "' redefines a name");
          }
          const_env_[lit] =
              ConstInfo{t, static_cast<std::int64_t>(i), NameRef::EnumConst};
        }
        te.resolved = t;
        break;
      }
      case TypeExprKind::Subrange: {
        ConstInfo lo = fold_const(*te.lo);
        ConstInfo hi = fold_const(*te.hi);
        if (!lo.type->is_integer_like() || !hi.type->is_integer_like()) {
          throw CompileError(te.loc, "subrange bounds must be integers");
        }
        if (lo.value > hi.value) {
          throw CompileError(te.loc, "empty subrange");
        }
        Type* t = spec_.types.make(TypeKind::Subrange);
        t->lo = lo.value;
        t->hi = hi.value;
        te.resolved = t;
        break;
      }
      case TypeExprKind::Array: {
        ConstInfo lo = fold_const(*te.lo);
        ConstInfo hi = fold_const(*te.hi);
        if (!lo.type->is_integer_like() || !hi.type->is_integer_like()) {
          throw CompileError(te.loc, "array bounds must be integers");
        }
        if (lo.value > hi.value || hi.value - lo.value + 1 > kMaxArrayElems) {
          throw CompileError(te.loc, "invalid array bounds");
        }
        const Type* elem = resolve_type_expr(*te.element);
        Type* t = spec_.types.make(TypeKind::Array);
        t->lo = lo.value;
        t->hi = hi.value;
        t->element = elem;
        te.resolved = t;
        break;
      }
      case TypeExprKind::Record: {
        Type* t = spec_.types.make(TypeKind::Record);
        std::set<std::string> seen;
        for (FieldGroup& g : te.fields) {
          const Type* ft = resolve_type_expr(*g.type);
          for (const std::string& n : g.names) {
            if (!seen.insert(n).second) {
              throw CompileError(te.loc, "duplicate field '" + n + "'");
            }
            t->fields.push_back(RecordField{n, ft});
          }
        }
        te.resolved = t;
        break;
      }
      case TypeExprKind::Pointer: {
        Type* t = spec_.types.make(TypeKind::Pointer);
        // pointee patched in patch_pointers(); remember the target name.
        t->name = "";
        pending_pointers_.emplace_back(t, te.name, te.loc);
        te.resolved = t;
        break;
      }
    }
    return te.resolved;
  }

  void patch_pointers() {
    for (auto& [ptr, target, loc] : pending_pointers_) {
      auto it = type_env_.find(target);
      if (it == type_env_.end()) {
        throw CompileError(loc, "unknown pointer target type '" + target + "'");
      }
      ptr->pointee = it->second;
    }
    pending_pointers_.clear();
  }

  // -------------------------------------------------------------------
  // Constant folding
  // -------------------------------------------------------------------
  ConstInfo fold_const(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        e.type = spec_.types.integer();
        return {e.type, e.int_value, NameRef::ConstInt};
      case ExprKind::CharLit:
        e.type = spec_.types.char_type();
        return {e.type, e.int_value, NameRef::ConstChar};
      case ExprKind::Name: {
        auto it = const_env_.find(e.name);
        if (it == const_env_.end()) {
          throw CompileError(e.loc, "'" + e.name + "' is not a constant");
        }
        e.type = it->second.type;
        e.ref = it->second.ref;
        e.int_value = it->second.value;
        return it->second;
      }
      case ExprKind::Unary: {
        ConstInfo v = fold_const(*e.children[0]);
        switch (e.un_op) {
          case UnOp::Neg:
            if (!v.type->is_integer_like()) {
              throw CompileError(e.loc, "unary '-' needs an integer");
            }
            return {spec_.types.integer(), -v.value, NameRef::ConstInt};
          case UnOp::Plus:
            return v;
          case UnOp::Not:
            if (v.type->kind != TypeKind::Boolean) {
              throw CompileError(e.loc, "'not' needs a boolean");
            }
            return {spec_.types.boolean(), v.value == 0 ? 1 : 0,
                    NameRef::ConstBool};
        }
        break;
      }
      case ExprKind::Binary: {
        ConstInfo a = fold_const(*e.children[0]);
        ConstInfo b = fold_const(*e.children[1]);
        auto need_int = [&] {
          if (!a.type->is_integer_like() || !b.type->is_integer_like()) {
            throw CompileError(e.loc, "constant operator needs integers");
          }
        };
        switch (e.bin_op) {
          case BinOp::Add: need_int(); return {spec_.types.integer(), a.value + b.value, NameRef::ConstInt};
          case BinOp::Sub: need_int(); return {spec_.types.integer(), a.value - b.value, NameRef::ConstInt};
          case BinOp::Mul: need_int(); return {spec_.types.integer(), a.value * b.value, NameRef::ConstInt};
          case BinOp::IntDiv:
            need_int();
            if (b.value == 0) throw CompileError(e.loc, "division by zero");
            return {spec_.types.integer(), a.value / b.value, NameRef::ConstInt};
          case BinOp::Mod:
            need_int();
            if (b.value == 0) throw CompileError(e.loc, "mod by zero");
            return {spec_.types.integer(), a.value % b.value, NameRef::ConstInt};
          default:
            throw CompileError(e.loc, "operator not allowed in constants");
        }
      }
      default:
        break;
    }
    throw CompileError(e.loc, "expression is not constant");
  }

  // -------------------------------------------------------------------
  // Channels and interaction points
  // -------------------------------------------------------------------
  void resolve_channels() {
    for (std::size_t ci = 0; ci < spec_.ast.channels.size(); ++ci) {
      ChannelDef& ch = spec_.ast.channels[ci];
      if (ch.roles[0] == ch.roles[1]) {
        throw CompileError(ch.loc, "channel roles must differ");
      }
      std::set<std::string> seen;
      for (InteractionDef& def : ch.interactions) {
        if (!seen.insert(def.name).second) {
          throw CompileError(def.loc,
                             "duplicate interaction '" + def.name + "'");
        }
        InteractionInfo info;
        info.name = def.name;
        info.channel_index = static_cast<int>(ci);
        for (InteractionParam& p : def.params) {
          p.resolved = resolve_type_expr(*p.type);
          info.param_names.push_back(p.name);
          info.param_types.push_back(p.resolved);
        }
        patch_pointers();
        def.global_id = static_cast<int>(spec_.interactions.size());
        spec_.interactions.push_back(std::move(info));
      }
    }
  }

  void resolve_ips() {
    ModuleHeader& mod = spec_.ast.modules[0];
    std::set<std::string> seen;
    for (IpDecl& decl : mod.ips) {
      if (!seen.insert(decl.name).second) {
        throw CompileError(decl.loc, "duplicate ip '" + decl.name + "'");
      }
      int ci = -1;
      for (std::size_t i = 0; i < spec_.ast.channels.size(); ++i) {
        if (spec_.ast.channels[i].name == decl.channel) {
          ci = static_cast<int>(i);
          break;
        }
      }
      if (ci < 0) {
        throw CompileError(decl.loc, "unknown channel '" + decl.channel + "'");
      }
      const ChannelDef& ch = spec_.ast.channels[static_cast<std::size_t>(ci)];
      int role = decl.role == ch.roles[0] ? 0
                 : decl.role == ch.roles[1] ? 1
                                            : -1;
      if (role < 0) {
        throw CompileError(decl.loc, "'" + decl.role +
                                         "' is not a role of channel '" +
                                         decl.channel + "'");
      }
      decl.channel_index = ci;
      decl.role_index = role;

      IpInfo info;
      info.name = decl.name;
      info.channel_index = ci;
      info.role_index = role;
      for (const InteractionDef& def : ch.interactions) {
        // Messages sendable by the module's own role leave through the ip
        // (outputs); messages sendable by the peer role arrive (inputs).
        if (def.by_role[role]) info.outputs[def.name] = def.global_id;
        if (def.by_role[1 - role]) info.inputs[def.name] = def.global_id;
      }
      spec_.ips.push_back(std::move(info));
    }
    if (spec_.ips.empty()) {
      throw CompileError(mod.loc, "module declares no interaction points");
    }
  }

  // -------------------------------------------------------------------
  // States and module variables
  // -------------------------------------------------------------------
  void resolve_states() {
    BodyDef& body = spec_.ast.bodies[0];
    if (body.states.empty()) {
      throw CompileError(body.loc, "module body declares no states");
    }
    std::set<std::string> seen;
    for (std::size_t i = 0; i < body.states.size(); ++i) {
      const std::string& s = body.states[i];
      if (!seen.insert(s).second) {
        throw CompileError(body.loc, "duplicate state '" + s + "'");
      }
      spec_.states.push_back(s);
      spec_.state_locs.push_back(i < body.state_locs.size()
                                     ? body.state_locs[i]
                                     : SourceLoc{});
    }
    for (StateSetDecl& ss : body.statesets) {
      std::vector<int> members;
      for (const std::string& m : ss.members) {
        int ord = spec_.state_ordinal(m);
        if (ord < 0) {
          throw CompileError(ss.loc, "stateset member '" + m +
                                         "' is not a declared state");
        }
        members.push_back(ord);
      }
      if (!stateset_env_.emplace(ss.name, std::move(members)).second) {
        throw CompileError(ss.loc, "duplicate stateset '" + ss.name + "'");
      }
    }
  }

  void resolve_module_vars() {
    BodyDef& body = spec_.ast.bodies[0];
    for (VarDecl& decl : body.vars) {
      const Type* t = resolve_type_expr(*decl.type);
      patch_pointers();
      decl.first_slot = static_cast<int>(spec_.module_vars.size());
      for (const std::string& n : decl.names) {
        if (var_env_.count(n) || const_env_.count(n)) {
          throw CompileError(decl.loc, "redefinition of '" + n + "'");
        }
        var_env_[n] = static_cast<int>(spec_.module_vars.size());
        spec_.module_vars.push_back(ModuleVarInfo{n, t});
      }
    }
  }

  // -------------------------------------------------------------------
  // Routines
  // -------------------------------------------------------------------
  void resolve_routine_signatures() {
    BodyDef& body = spec_.ast.bodies[0];
    for (std::size_t i = 0; i < body.routines.size(); ++i) {
      Routine& r = body.routines[i];
      if (r.is_primitive) {
        // Matches Tango's restriction: primitive routines have no body to
        // execute, so a trace analyzer cannot simulate them.
        throw CompileError(
            r.loc, "primitive functions and procedures are not supported "
                   "by the trace analyzer (no body to execute)");
      }
      if (routine_env_.count(r.name) || var_env_.count(r.name) ||
          const_env_.count(r.name)) {
        throw CompileError(r.loc, "redefinition of '" + r.name + "'");
      }
      for (ParamGroup& g : r.params) {
        const Type* t = resolve_type_expr(*g.type);
        patch_pointers();
        for (std::size_t k = 0; k < g.names.size(); ++k) {
          r.param_types.push_back(t);
          r.param_by_ref.push_back(g.by_ref);
        }
      }
      if (r.is_function) {
        const Type* rt = resolve_type_expr(*r.result_type);
        patch_pointers();
        if (rt->kind == TypeKind::Array || rt->kind == TypeKind::Record) {
          throw CompileError(r.loc,
                             "function results must be scalar or pointer");
        }
      }
      routine_env_[r.name] = static_cast<int>(i);
    }
  }

  void resolve_routine_bodies() {
    BodyDef& body = spec_.ast.bodies[0];
    for (Routine& r : body.routines) {
      std::map<std::string, LocalInfo> locals;
      int slot = 0;
      for (ParamGroup& g : r.params) {
        for (const std::string& n : g.names) {
          if (locals.count(n)) {
            throw CompileError(g.loc, "duplicate parameter '" + n + "'");
          }
          locals[n] = LocalInfo{slot++, g.type->resolved, g.by_ref};
        }
      }
      if (r.is_function) {
        r.result_slot = slot++;
      }
      for (VarDecl& decl : r.locals) {
        const Type* t = resolve_type_expr(*decl.type);
        patch_pointers();
        decl.first_slot = slot;
        for (const std::string& n : decl.names) {
          if (locals.count(n)) {
            throw CompileError(decl.loc, "redefinition of local '" + n + "'");
          }
          locals[n] = LocalInfo{slot++, t, false};
        }
      }
      r.frame_size = slot;

      locals_ = &locals;
      when_params_ = nullptr;
      current_function_ = &r;
      check_stmt(*r.body);
      current_function_ = nullptr;
      locals_ = nullptr;
    }
  }

  // -------------------------------------------------------------------
  // Initializers and transitions
  // -------------------------------------------------------------------
  int resolve_locals_frame(std::vector<VarDecl>& decls,
                           std::map<std::string, LocalInfo>& locals) {
    int slot = 0;
    for (VarDecl& decl : decls) {
      const Type* t = resolve_type_expr(*decl.type);
      patch_pointers();
      decl.first_slot = slot;
      for (const std::string& n : decl.names) {
        if (locals.count(n)) {
          throw CompileError(decl.loc, "redefinition of local '" + n + "'");
        }
        locals[n] = LocalInfo{slot++, t, false};
      }
    }
    return slot;
  }

  void resolve_initializers() {
    BodyDef& body = spec_.ast.bodies[0];
    if (body.initializers.empty()) {
      throw CompileError(body.loc, "module body has no initialize clause");
    }
    for (Initializer& init : body.initializers) {
      init.to_ordinal = spec_.state_ordinal(init.to_state);
      if (init.to_ordinal < 0) {
        throw CompileError(init.loc,
                           "unknown initial state '" + init.to_state + "'");
      }
      std::map<std::string, LocalInfo> locals;
      init.frame_size = resolve_locals_frame(init.locals, locals);
      locals_ = &locals;
      when_params_ = nullptr;
      if (init.provided) {
        const Type* t = check_expr(*init.provided);
        require_boolean(t, init.provided->loc, "initialize provided clause");
      }
      if (init.block) check_stmt(*init.block);
      locals_ = nullptr;
    }
  }

  void resolve_transitions() {
    BodyDef& body = spec_.ast.bodies[0];
    std::set<std::string> names;
    for (Transition& tr : body.transitions) {
      if (!tr.name.empty() && !names.insert(tr.name).second) {
        throw CompileError(tr.loc, "duplicate transition name '" + tr.name +
                                       "'");
      }
    }
    int counter = 0;
    for (Transition& tr : body.transitions) {
      ++counter;
      if (tr.name.empty()) {
        std::string auto_name = "t" + std::to_string(counter);
        while (names.count(auto_name)) auto_name += "_";
        names.insert(auto_name);
        tr.name = auto_name;
      }

      if (tr.has_delay) {
        // The paper, §2.1: delay is unsupported because trace files carry no
        // time stamps and the search does not model simulated time.
        throw CompileError(tr.delay_loc,
                           "delay clauses are not supported: trace files "
                           "contain no time stamps (see Tango paper, §2.1)");
      }

      if (tr.from_states.empty()) {
        throw CompileError(tr.loc, "transition '" + tr.name +
                                       "' has no 'from' clause");
      }
      std::set<int> from;
      for (const std::string& s : tr.from_states) {
        int ord = spec_.state_ordinal(s);
        if (ord >= 0) {
          from.insert(ord);
          continue;
        }
        auto it = stateset_env_.find(s);
        if (it == stateset_env_.end()) {
          throw CompileError(tr.loc, "unknown state or stateset '" + s + "'");
        }
        from.insert(it->second.begin(), it->second.end());
      }
      tr.from_ordinals.assign(from.begin(), from.end());

      if (tr.to_same) {
        tr.to_ordinal = -1;
      } else {
        if (tr.to_state.empty()) {
          throw CompileError(tr.loc, "transition '" + tr.name +
                                         "' has no 'to' clause");
        }
        tr.to_ordinal = spec_.state_ordinal(tr.to_state);
        if (tr.to_ordinal < 0) {
          throw CompileError(tr.loc, "unknown state '" + tr.to_state + "'");
        }
      }

      std::map<std::string, WhenParamInfo> when_params;
      if (tr.when) {
        WhenClause& w = *tr.when;
        w.ip_index = spec_.ip_index(w.ip);
        if (w.ip_index < 0) {
          throw CompileError(w.loc, "unknown ip '" + w.ip + "'");
        }
        w.interaction_id = spec_.input_id(w.ip_index, w.interaction);
        if (w.interaction_id < 0) {
          throw CompileError(
              w.loc, "'" + w.interaction + "' is not an input interaction of "
                                           "ip '" + w.ip + "'");
        }
        const InteractionInfo& info = spec_.interaction(w.interaction_id);
        w.param_types = info.param_types;
        for (std::size_t i = 0; i < info.param_names.size(); ++i) {
          when_params[info.param_names[i]] =
              WhenParamInfo{static_cast<int>(i), info.param_types[i]};
        }
      }

      std::map<std::string, LocalInfo> locals;
      tr.frame_size = resolve_locals_frame(tr.locals, locals);

      locals_ = &locals;
      when_params_ = &when_params;
      if (tr.provided) {
        const Type* t = check_expr(*tr.provided);
        require_boolean(t, tr.provided->loc, "provided clause");
      }
      check_stmt(*tr.block);
      when_params_ = nullptr;
      locals_ = nullptr;
    }
  }

  void index_transitions_by_state() {
    spec_.transitions_by_state.assign(spec_.states.size(), {});
    const auto& transitions = spec_.ast.bodies[0].transitions;
    for (std::size_t ti = 0; ti < transitions.size(); ++ti) {
      for (int s : transitions[ti].from_ordinals) {
        spec_.transitions_by_state[static_cast<std::size_t>(s)].push_back(
            static_cast<int>(ti));
      }
    }
  }

  // -------------------------------------------------------------------
  // Warning: likely non-progress cycles (paper §2.1 footnote 1)
  // -------------------------------------------------------------------
  static bool contains_output(const Stmt& s) {
    if (s.kind == StmtKind::Output) return true;
    for (const StmtPtr& c : s.body) {
      if (c && contains_output(*c)) return true;
    }
    for (const StmtPtr& c : s.otherwise) {
      if (c && contains_output(*c)) return true;
    }
    for (const CaseArm& arm : s.arms) {
      if (arm.body && contains_output(*arm.body)) return true;
    }
    if (s.s0 && contains_output(*s.s0)) return true;
    if (s.s1 && contains_output(*s.s1)) return true;
    return false;
  }

  void warn_non_progress() {
    for (const Transition& tr : spec_.ast.bodies[0].transitions) {
      if (tr.when || tr.provided) continue;
      const bool loops_back =
          tr.to_same ||
          std::find(tr.from_ordinals.begin(), tr.from_ordinals.end(),
                    tr.to_ordinal) != tr.from_ordinals.end();
      if (loops_back && !contains_output(*tr.block)) {
        sink_.warn(tr.loc,
                   "transition '" + tr.name +
                       "' is spontaneous, loops back to a source state and "
                       "produces no output: possible non-progress cycle "
                       "(these foil depth-first trace analysis)");
      }
    }
  }

  // -------------------------------------------------------------------
  // Statements
  // -------------------------------------------------------------------
  void require_boolean(const Type* t, SourceLoc loc, const std::string& what) {
    if (t->kind != TypeKind::Boolean) {
      throw CompileError(loc, what + " must be boolean, got " +
                                  type_to_string(t));
    }
  }

  void check_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::Empty:
        return;
      case StmtKind::Compound:
        for (StmtPtr& c : s.body) check_stmt(*c);
        return;
      case StmtKind::Assign: {
        const Type* target = check_lvalue(*s.e0);
        const Type* value = check_expr(*s.e1);
        if (!assignable(target, value, *s.e1)) {
          throw CompileError(s.loc, "cannot assign " + type_to_string(value) +
                                        " to " + type_to_string(target));
        }
        return;
      }
      case StmtKind::If: {
        require_boolean(check_expr(*s.e0), s.e0->loc, "if condition");
        check_stmt(*s.s0);
        if (s.s1) check_stmt(*s.s1);
        return;
      }
      case StmtKind::While: {
        require_boolean(check_expr(*s.e0), s.e0->loc, "while condition");
        check_stmt(*s.s0);
        return;
      }
      case StmtKind::Repeat: {
        for (StmtPtr& c : s.body) check_stmt(*c);
        require_boolean(check_expr(*s.e0), s.e0->loc, "until condition");
        return;
      }
      case StmtKind::For: {
        const Type* var = check_lvalue(*s.e0);
        if (s.e0->kind != ExprKind::Name || !var->is_integer_like()) {
          throw CompileError(s.loc,
                             "for control variable must be a simple integer "
                             "variable");
        }
        const Type* from = check_expr(*s.e1);
        const Type* to = check_expr(*s.args[0]);
        if (!from->is_integer_like() || !to->is_integer_like()) {
          throw CompileError(s.loc, "for bounds must be integers");
        }
        check_stmt(*s.s0);
        return;
      }
      case StmtKind::Case: {
        const Type* sel = check_expr(*s.e0);
        if (!sel->is_ordinal()) {
          throw CompileError(s.loc, "case selector must be ordinal");
        }
        std::set<std::int64_t> seen;
        for (CaseArm& arm : s.arms) {
          for (ExprPtr& label : arm.labels) {
            ConstInfo info = fold_const(*label);
            if (!compatible_ordinal(sel, info.type)) {
              throw CompileError(label->loc,
                                 "case label type does not match selector");
            }
            if (!seen.insert(info.value).second) {
              throw CompileError(label->loc, "duplicate case label");
            }
            arm.label_values.push_back(info.value);
          }
          check_stmt(*arm.body);
        }
        for (StmtPtr& c : s.otherwise) check_stmt(*c);
        return;
      }
      case StmtKind::Call:
        check_call_stmt(s);
        return;
      case StmtKind::Output:
        check_output(s);
        return;
    }
  }

  static bool compatible_ordinal(const Type* sel, const Type* label) {
    if (sel->is_integer_like() && label->is_integer_like()) return true;
    if (sel->kind == TypeKind::Char && label->kind == TypeKind::Char) {
      return true;
    }
    if (sel->kind == TypeKind::Boolean && label->kind == TypeKind::Boolean) {
      return true;
    }
    return sel == label;  // enums by identity
  }

  bool assignable(const Type* to, const Type* from, const Expr& value_expr) {
    if (compatible(to, from)) return true;
    // nil literal assigns to any pointer.
    if (to->kind == TypeKind::Pointer && value_expr.kind == ExprKind::NilLit) {
      return true;
    }
    // Whole record/array assignment requires the identical type node
    // (Pascal name equivalence).
    return to == from;
  }

  void check_call_stmt(Stmt& s) {
    if (s.callee == "new" || s.callee == "dispose") {
      s.builtin = s.callee == "new" ? Builtin::New : Builtin::Dispose;
      if (s.args.size() != 1) {
        throw CompileError(s.loc, s.callee + " takes exactly one argument");
      }
      const Type* t = check_lvalue(*s.args[0]);
      if (t->kind != TypeKind::Pointer) {
        throw CompileError(s.loc, s.callee + " needs a pointer variable");
      }
      return;
    }
    auto it = routine_env_.find(s.callee);
    if (it == routine_env_.end()) {
      throw CompileError(s.loc, "unknown procedure '" + s.callee + "'");
    }
    Routine& r = spec_.ast.bodies[0].routines[static_cast<std::size_t>(
        it->second)];
    if (r.is_function) {
      throw CompileError(s.loc, "'" + s.callee +
                                    "' is a function; its result must be used");
    }
    s.routine_index = it->second;
    check_args(r, s.args, s.loc);
  }

  void check_args(const Routine& r, std::vector<ExprPtr>& args,
                  SourceLoc loc) {
    if (args.size() != r.param_types.size()) {
      throw CompileError(loc, "'" + r.name + "' expects " +
                                  std::to_string(r.param_types.size()) +
                                  " argument(s), got " +
                                  std::to_string(args.size()));
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (r.param_by_ref[i]) {
        const Type* t = check_lvalue(*args[i]);
        if (t != r.param_types[i]) {
          throw CompileError(args[i]->loc,
                             "var parameter needs an exact-type variable");
        }
      } else {
        const Type* t = check_expr(*args[i]);
        if (!assignable(r.param_types[i], t, *args[i])) {
          throw CompileError(args[i]->loc,
                             "argument type mismatch: cannot pass " +
                                 type_to_string(t) + " as " +
                                 type_to_string(r.param_types[i]));
        }
      }
    }
  }

  void check_output(Stmt& s) {
    s.ip_index = spec_.ip_index(s.out_ip);
    if (s.ip_index < 0) {
      throw CompileError(s.loc, "unknown ip '" + s.out_ip + "'");
    }
    s.interaction_id = spec_.output_id(s.ip_index, s.out_interaction);
    if (s.interaction_id < 0) {
      throw CompileError(s.loc, "'" + s.out_interaction +
                                    "' is not an output interaction of ip '" +
                                    s.out_ip + "'");
    }
    const InteractionInfo& info = spec_.interaction(s.interaction_id);
    if (s.args.size() != info.param_types.size()) {
      throw CompileError(s.loc, "output '" + s.out_interaction + "' expects " +
                                    std::to_string(info.param_types.size()) +
                                    " parameter(s), got " +
                                    std::to_string(s.args.size()));
    }
    for (std::size_t i = 0; i < s.args.size(); ++i) {
      const Type* t = check_expr(*s.args[i]);
      if (!assignable(info.param_types[i], t, *s.args[i])) {
        throw CompileError(s.args[i]->loc,
                           "output parameter type mismatch: cannot pass " +
                               type_to_string(t) + " as " +
                               type_to_string(info.param_types[i]));
      }
    }
  }

  // -------------------------------------------------------------------
  // Expressions
  // -------------------------------------------------------------------
  const Type* check_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return e.type = spec_.types.integer();
      case ExprKind::BoolLit:
        return e.type = spec_.types.boolean();
      case ExprKind::CharLit:
        return e.type = spec_.types.char_type();
      case ExprKind::NilLit: {
        // Typed as a fresh pointer-to-nothing; assignable to any pointer.
        Type* t = spec_.types.make(TypeKind::Pointer);
        t->pointee = nullptr;
        return e.type = t;
      }
      case ExprKind::Name:
        return check_name(e);
      case ExprKind::Field: {
        const Type* base = check_expr(*e.children[0]);
        if (base->kind != TypeKind::Record) {
          throw CompileError(e.loc, "'." + e.field + "' applied to non-record");
        }
        e.field_index = base->field_index(e.field);
        if (e.field_index < 0) {
          throw CompileError(e.loc, "no field '" + e.field + "' in " +
                                        type_to_string(base));
        }
        return e.type = base->fields[static_cast<std::size_t>(e.field_index)]
                            .type;
      }
      case ExprKind::Index: {
        const Type* base = check_expr(*e.children[0]);
        if (base->kind != TypeKind::Array) {
          throw CompileError(e.loc, "indexing a non-array");
        }
        const Type* ix = check_expr(*e.children[1]);
        if (!ix->is_integer_like()) {
          throw CompileError(e.loc, "array index must be an integer");
        }
        return e.type = base->element;
      }
      case ExprKind::Deref: {
        const Type* base = check_expr(*e.children[0]);
        if (base->kind != TypeKind::Pointer || base->pointee == nullptr) {
          throw CompileError(e.loc, "'^' applied to a non-pointer");
        }
        return e.type = base->pointee;
      }
      case ExprKind::Unary: {
        const Type* t = check_expr(*e.children[0]);
        switch (e.un_op) {
          case UnOp::Neg:
          case UnOp::Plus:
            if (!t->is_integer_like()) {
              throw CompileError(e.loc, "unary sign needs an integer");
            }
            return e.type = spec_.types.integer();
          case UnOp::Not:
            require_boolean(t, e.loc, "'not' operand");
            return e.type = spec_.types.boolean();
        }
        break;
      }
      case ExprKind::Binary:
        return check_binary(e);
      case ExprKind::Call:
        return check_call_expr(e);
    }
    throw CompileError(e.loc, "internal: unhandled expression kind");
  }

  const Type* check_name(Expr& e) {
    if (when_params_ != nullptr) {
      auto it = when_params_->find(e.name);
      if (it != when_params_->end()) {
        e.ref = NameRef::WhenParam;
        e.slot = it->second.index;
        return e.type = it->second.type;
      }
    }
    if (locals_ != nullptr) {
      auto it = locals_->find(e.name);
      if (it != locals_->end()) {
        e.ref = NameRef::Local;
        e.slot = it->second.slot;
        return e.type = it->second.type;
      }
    }
    {
      auto it = var_env_.find(e.name);
      if (it != var_env_.end()) {
        e.ref = NameRef::ModuleVar;
        e.slot = it->second;
        return e.type = spec_.module_vars[static_cast<std::size_t>(it->second)]
                            .type;
      }
    }
    {
      auto it = const_env_.find(e.name);
      if (it != const_env_.end()) {
        e.ref = it->second.ref;
        e.int_value = it->second.value;
        return e.type = it->second.type;
      }
    }
    {
      auto it = routine_env_.find(e.name);
      if (it != routine_env_.end()) {
        const Routine& r = spec_.ast.bodies[0]
                               .routines[static_cast<std::size_t>(it->second)];
        if (!r.is_function || !r.param_types.empty()) {
          throw CompileError(e.loc, "'" + e.name +
                                        "' is not a parameterless function");
        }
        e.ref = NameRef::Call0;
        e.slot = it->second;
        return e.type = r.result_type->resolved;
      }
    }
    throw CompileError(e.loc, "unknown identifier '" + e.name + "'");
  }

  const Type* check_binary(Expr& e) {
    const Type* a = check_expr(*e.children[0]);
    const Type* b = check_expr(*e.children[1]);
    switch (e.bin_op) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
      case BinOp::IntDiv:
      case BinOp::Mod:
        if (!a->is_integer_like() || !b->is_integer_like()) {
          throw CompileError(e.loc, "arithmetic needs integer operands");
        }
        return e.type = spec_.types.integer();
      case BinOp::And:
      case BinOp::Or:
        require_boolean(a, e.loc, "boolean operator operand");
        require_boolean(b, e.loc, "boolean operator operand");
        return e.type = spec_.types.boolean();
      case BinOp::Eq:
      case BinOp::Neq:
      case BinOp::Lt:
      case BinOp::Leq:
      case BinOp::Gt:
      case BinOp::Geq: {
        const bool ok =
            (a->is_integer_like() && b->is_integer_like()) ||
            (a->kind == TypeKind::Char && b->kind == TypeKind::Char) ||
            (a->kind == TypeKind::Boolean && b->kind == TypeKind::Boolean) ||
            (a->kind == TypeKind::Enum && a == b) ||
            (a->kind == TypeKind::Pointer && b->kind == TypeKind::Pointer &&
             (e.bin_op == BinOp::Eq || e.bin_op == BinOp::Neq));
        if (!ok) {
          throw CompileError(e.loc, "cannot compare " + type_to_string(a) +
                                        " with " + type_to_string(b));
        }
        if (a->kind == TypeKind::Pointer &&
            !(compatible(a, b) || b->pointee == nullptr ||
              a->pointee == nullptr)) {
          throw CompileError(e.loc, "comparing unrelated pointer types");
        }
        return e.type = spec_.types.boolean();
      }
    }
    throw CompileError(e.loc, "internal: unhandled binary operator");
  }

  const Type* check_call_expr(Expr& e) {
    // Builtins first.
    const std::string& n = e.name;
    auto unary_builtin = [&](Builtin b, auto&& check) -> const Type* {
      if (e.children.size() != 1) {
        throw CompileError(e.loc, n + " takes exactly one argument");
      }
      const Type* t = check_expr(*e.children[0]);
      e.builtin = b;
      return check(t);
    };
    if (n == "ord") {
      return e.type = unary_builtin(Builtin::Ord, [&](const Type* t) {
        if (!t->is_ordinal()) {
          throw CompileError(e.loc, "ord needs an ordinal value");
        }
        return spec_.types.integer();
      });
    }
    if (n == "chr") {
      return e.type = unary_builtin(Builtin::Chr, [&](const Type* t) {
        if (!t->is_integer_like()) {
          throw CompileError(e.loc, "chr needs an integer");
        }
        return spec_.types.char_type();
      });
    }
    if (n == "abs") {
      return e.type = unary_builtin(Builtin::Abs, [&](const Type* t) {
        if (!t->is_integer_like()) {
          throw CompileError(e.loc, "abs needs an integer");
        }
        return spec_.types.integer();
      });
    }
    if (n == "odd") {
      return e.type = unary_builtin(Builtin::Odd, [&](const Type* t) {
        if (!t->is_integer_like()) {
          throw CompileError(e.loc, "odd needs an integer");
        }
        return spec_.types.boolean();
      });
    }
    if (n == "succ" || n == "pred") {
      return e.type = unary_builtin(
                 n == "succ" ? Builtin::Succ : Builtin::Pred,
                 [&](const Type* t) {
                   if (!t->is_ordinal()) {
                     throw CompileError(e.loc, n + " needs an ordinal value");
                   }
                   return t;
                 });
    }

    auto it = routine_env_.find(n);
    if (it == routine_env_.end()) {
      throw CompileError(e.loc, "unknown function '" + n + "'");
    }
    Routine& r =
        spec_.ast.bodies[0].routines[static_cast<std::size_t>(it->second)];
    if (!r.is_function) {
      throw CompileError(e.loc, "'" + n + "' is a procedure, not a function");
    }
    e.routine_index = it->second;
    check_args(r, e.children, e.loc);
    return e.type = r.result_type->resolved;
  }

  /// Like check_expr but requires the expression to denote a mutable
  /// location. When-clause parameters and constants are read-only.
  const Type* check_lvalue(Expr& e) {
    // Function-result assignment: `f := expr` inside function f.
    if (e.kind == ExprKind::Name && current_function_ != nullptr &&
        current_function_->is_function &&
        e.name == current_function_->name) {
      e.ref = NameRef::Local;
      e.slot = current_function_->result_slot;
      return e.type = current_function_->result_type->resolved;
    }
    const Type* t = check_expr(e);
    if (!is_lvalue(e)) {
      throw CompileError(e.loc, "expression is not assignable");
    }
    return t;
  }

  static bool is_lvalue(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Name:
        return e.ref == NameRef::ModuleVar || e.ref == NameRef::Local;
      case ExprKind::Field:
      case ExprKind::Index:
        return is_lvalue(*e.children[0]);
      case ExprKind::Deref:
        return true;  // heap cells are always mutable
      default:
        return false;
    }
  }

  Spec& spec_;
  DiagnosticSink& sink_;

  std::map<std::string, const Type*> type_env_;
  std::map<std::string, ConstInfo> const_env_;
  std::map<std::string, int> var_env_;
  std::map<std::string, int> routine_env_;
  std::map<std::string, std::vector<int>> stateset_env_;
  std::vector<std::tuple<Type*, std::string, SourceLoc>> pending_pointers_;

  std::map<std::string, LocalInfo>* locals_ = nullptr;
  std::map<std::string, WhenParamInfo>* when_params_ = nullptr;
  const Routine* current_function_ = nullptr;
};

}  // namespace

void analyze(Spec& spec, DiagnosticSink& sink) { Sema(spec, sink).run(); }

}  // namespace tango::est
