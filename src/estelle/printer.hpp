// Pretty-printer: renders a SpecAst back to Estelle source text. Used by
// the normal-form transform (tango normal-form) and by golden tests. The
// printer works on both unresolved (freshly parsed) and resolved ASTs.
#pragma once

#include <string>

#include "estelle/ast.hpp"

namespace tango::est {

[[nodiscard]] std::string print_spec(const SpecAst& spec);
[[nodiscard]] std::string print_expr(const Expr& e);
[[nodiscard]] std::string print_stmt(const Stmt& s, int indent = 0);

}  // namespace tango::est
