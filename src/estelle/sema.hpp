// Semantic analysis: resolves names and types on the parsed AST (in place),
// builds the Spec symbol tables, enforces Tango's input requirements from
// the paper's §2.1 (single module, no delay clauses, no primitive routines)
// and emits warnings for likely non-progress cycles.
#pragma once

#include "estelle/spec.hpp"
#include "support/diagnostics.hpp"

namespace tango::est {

/// Analyzes `spec.ast` and fills the Spec tables. Throws CompileError on the
/// first semantic error; warnings/notes accumulate in `sink`.
void analyze(Spec& spec, DiagnosticSink& sink);

}  // namespace tango::est
