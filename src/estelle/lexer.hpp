// Lexer for the Estelle dialect. Produces the complete token stream for a
// specification text in one pass. Comments are Pascal-style: { ... } and
// (* ... *), non-nesting, and may span lines.
#pragma once

#include <string_view>
#include <vector>

#include "estelle/token.hpp"

namespace tango::est {

/// Tokenizes `source`. Throws CompileError on malformed input (unterminated
/// comment or string, stray character, integer overflow).
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace tango::est
