// Compiled specification: the annotated AST plus the resolved symbol tables
// (states, interaction points, interactions, module variables) that the
// runtime, the trace tooling and the analyzer operate on.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "estelle/ast.hpp"
#include "support/diagnostics.hpp"

namespace tango::est {

/// One interaction kind (channel + message name), identified globally.
struct InteractionInfo {
  std::string name;       // canonical
  int channel_index = -1;
  std::vector<std::string> param_names;  // canonical
  std::vector<const Type*> param_types;
};

/// One interaction point of the module.
struct IpInfo {
  std::string name;  // canonical
  int channel_index = -1;
  int role_index = -1;  // role the MODULE plays at this ip (0 or 1)
  // interaction name -> global id, split by direction as seen by the module
  std::map<std::string, int> inputs;   // peer-role messages arriving here
  std::map<std::string, int> outputs;  // module-role messages leaving here
};

struct ModuleVarInfo {
  std::string name;  // canonical
  const Type* type = nullptr;
};

/// A fully compiled single-module Estelle specification. Move-only; Type*
/// and AST pointers remain valid for the Spec's lifetime.
class Spec {
 public:
  Spec() = default;
  Spec(const Spec&) = delete;
  Spec& operator=(const Spec&) = delete;
  Spec(Spec&&) = default;
  Spec& operator=(Spec&&) = default;

  std::string name;
  SpecAst ast;
  TypeArena types;

  std::vector<std::string> states;       // ordinal = index
  std::vector<SourceLoc> state_locs;     // declaration sites, by ordinal
  std::vector<IpInfo> ips;
  std::vector<InteractionInfo> interactions;  // indexed by global id
  std::vector<ModuleVarInfo> module_vars;     // slot = index
  /// For each state ordinal: indices of transitions whose from-set
  /// includes it, in declaration order (built by sema; the analyzer's
  /// generate operation is a hot path).
  std::vector<std::vector<int>> transitions_by_state;

  [[nodiscard]] const ModuleHeader& module() const { return ast.modules.at(0); }
  [[nodiscard]] const BodyDef& body() const { return ast.bodies.at(0); }

  /// -1 when not found. Names are canonical (lower-case).
  [[nodiscard]] int state_ordinal(std::string_view name) const;
  [[nodiscard]] int ip_index(std::string_view name) const;

  /// Interaction id for `name` arriving at / leaving `ip`; -1 if invalid.
  [[nodiscard]] int input_id(int ip, const std::string& name) const;
  [[nodiscard]] int output_id(int ip, const std::string& name) const;

  [[nodiscard]] const InteractionInfo& interaction(int id) const {
    return interactions.at(static_cast<std::size_t>(id));
  }
};

/// Parses and semantically analyzes `source`. Non-fatal warnings accumulate
/// in `sink`; errors throw CompileError (the first error) after recording
/// everything found so far.
[[nodiscard]] Spec compile_spec(std::string_view source, DiagnosticSink& sink);

/// Convenience overload that discards warnings.
[[nodiscard]] Spec compile_spec(std::string_view source);

}  // namespace tango::est
