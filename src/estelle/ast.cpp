#include "estelle/ast.hpp"

namespace tango::est {

ExprPtr make_expr(ExprKind k, SourceLoc loc) {
  return std::make_unique<Expr>(k, loc);
}

StmtPtr make_stmt(StmtKind k, SourceLoc loc) {
  return std::make_unique<Stmt>(k, loc);
}

ExprPtr clone(const Expr& e) {
  ExprPtr out = make_expr(e.kind, e.loc);
  out->type = e.type;
  out->int_value = e.int_value;
  out->name = e.name;
  out->ref = e.ref;
  out->slot = e.slot;
  out->field = e.field;
  out->field_index = e.field_index;
  out->un_op = e.un_op;
  out->bin_op = e.bin_op;
  out->builtin = e.builtin;
  out->routine_index = e.routine_index;
  out->children.reserve(e.children.size());
  for (const ExprPtr& c : e.children) out->children.push_back(clone(*c));
  return out;
}

StmtPtr clone(const Stmt& s) {
  StmtPtr out = make_stmt(s.kind, s.loc);
  if (s.e0) out->e0 = clone(*s.e0);
  if (s.e1) out->e1 = clone(*s.e1);
  if (s.s0) out->s0 = clone(*s.s0);
  if (s.s1) out->s1 = clone(*s.s1);
  out->body.reserve(s.body.size());
  for (const StmtPtr& c : s.body) out->body.push_back(clone(*c));
  out->downto = s.downto;
  for (const CaseArm& arm : s.arms) {
    CaseArm copy;
    for (const ExprPtr& l : arm.labels) copy.labels.push_back(clone(*l));
    copy.label_values = arm.label_values;
    if (arm.body) copy.body = clone(*arm.body);
    out->arms.push_back(std::move(copy));
  }
  for (const StmtPtr& c : s.otherwise) out->otherwise.push_back(clone(*c));
  out->has_otherwise = s.has_otherwise;
  out->callee = s.callee;
  out->builtin = s.builtin;
  out->routine_index = s.routine_index;
  for (const ExprPtr& a : s.args) out->args.push_back(clone(*a));
  out->out_ip = s.out_ip;
  out->out_interaction = s.out_interaction;
  out->ip_index = s.ip_index;
  out->interaction_id = s.interaction_id;
  return out;
}

TypeExprPtr clone(const TypeExpr& t) {
  auto out = std::make_unique<TypeExpr>(t.kind, t.loc);
  out->name = t.name;
  out->enum_values = t.enum_values;
  if (t.lo) out->lo = clone(*t.lo);
  if (t.hi) out->hi = clone(*t.hi);
  if (t.element) out->element = clone(*t.element);
  for (const FieldGroup& g : t.fields) {
    FieldGroup copy;
    copy.names = g.names;
    copy.type = clone(*g.type);
    out->fields.push_back(std::move(copy));
  }
  out->resolved = t.resolved;
  return out;
}

}  // namespace tango::est
