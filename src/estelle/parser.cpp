#include "estelle/parser.hpp"

#include <utility>

#include "estelle/lexer.hpp"
#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace tango::est {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  SpecAst parse_spec() {
    SpecAst spec;
    spec.loc = peek().loc;
    expect(Tok::KwSpecification);
    spec.name = ident();
    expect(Tok::Semi);

    // Optional `default individual|common queue;`
    if (accept(Tok::KwDefault)) {
      if (!accept(Tok::KwIndividual)) expect(Tok::KwCommon);
      expect(Tok::KwQueue);
      expect(Tok::Semi);
    }

    for (;;) {
      if (at(Tok::KwChannel)) {
        spec.channels.push_back(parse_channel());
      } else if (at(Tok::KwModule)) {
        spec.modules.push_back(parse_module());
      } else if (at(Tok::KwBody)) {
        spec.bodies.push_back(parse_body());
      } else {
        break;
      }
    }

    expect(Tok::KwEnd);
    expect(Tok::Dot);
    if (!at(Tok::End)) {
      throw CompileError(peek().loc, "text after final 'end.'");
    }
    return spec;
  }

  ExprPtr parse_expression_only() {
    ExprPtr e = parse_expr();
    if (!at(Tok::End)) {
      throw CompileError(peek().loc, "trailing tokens after expression");
    }
    return e;
  }

 private:
  // --- token helpers ---
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    if (i >= toks_.size()) i = toks_.size() - 1;  // Tok::End sentinel
    return toks_[i];
  }
  [[nodiscard]] bool at(Tok t) const { return peek().kind == t; }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Tok t) {
    if (!at(t)) return false;
    advance();
    return true;
  }
  const Token& expect(Tok t) {
    if (!at(t)) {
      throw CompileError(peek().loc,
                         "expected " + std::string(tok_name(t)) + ", found " +
                             std::string(tok_name(peek().kind)) +
                             (peek().kind == Tok::Ident
                                  ? " '" + peek().text + "'"
                                  : ""));
    }
    return advance();
  }
  std::string ident() {
    const Token& t = expect(Tok::Ident);
    return to_lower(t.text);
  }
  std::vector<std::string> ident_list() {
    std::vector<std::string> names;
    names.push_back(ident());
    while (accept(Tok::Comma)) names.push_back(ident());
    return names;
  }

  // --- channels ---
  ChannelDef parse_channel() {
    ChannelDef ch;
    ch.loc = expect(Tok::KwChannel).loc;
    ch.name = ident();
    expect(Tok::LParen);
    ch.roles[0] = ident();
    expect(Tok::Comma);
    ch.roles[1] = ident();
    expect(Tok::RParen);
    expect(Tok::Semi);

    while (at(Tok::KwBy)) {
      advance();
      std::vector<std::string> roles = ident_list();
      expect(Tok::Colon);
      // One or more interaction definitions, each `name [(params)] ;`.
      do {
        InteractionDef def;
        def.loc = peek().loc;
        def.name = ident();
        if (accept(Tok::LParen)) {
          parse_interaction_params(def);
          expect(Tok::RParen);
        }
        expect(Tok::Semi);
        attach_roles(ch, std::move(def), roles);
      } while (at(Tok::Ident));
    }
    return ch;
  }

  void parse_interaction_params(InteractionDef& def) {
    do {
      SourceLoc loc = peek().loc;
      std::vector<std::string> names = ident_list();
      expect(Tok::Colon);
      TypeExprPtr type = parse_type_expr();
      for (std::string& n : names) {
        InteractionParam p;
        p.loc = loc;
        p.name = std::move(n);
        p.type = clone_type_expr(*type);
        def.params.push_back(std::move(p));
      }
    } while (accept(Tok::Semi));
  }

  // Merges `def` into the channel: the same interaction may be listed under
  // several `by` clauses (e.g. `by A: m;` then `by B: m;`), which is how
  // `by A, B:` is normalized too.
  void attach_roles(ChannelDef& ch, InteractionDef def,
                    const std::vector<std::string>& roles) {
    for (const std::string& r : roles) {
      int idx = r == ch.roles[0] ? 0 : (r == ch.roles[1] ? 1 : -1);
      if (idx < 0) {
        throw CompileError(def.loc, "role '" + r + "' is not a role of channel '" +
                                        ch.name + "'");
      }
      def.by_role[idx] = true;
    }
    for (InteractionDef& existing : ch.interactions) {
      if (existing.name == def.name) {
        existing.by_role[0] = existing.by_role[0] || def.by_role[0];
        existing.by_role[1] = existing.by_role[1] || def.by_role[1];
        return;
      }
    }
    ch.interactions.push_back(std::move(def));
  }

  // --- module header ---
  ModuleHeader parse_module() {
    ModuleHeader mod;
    mod.loc = expect(Tok::KwModule).loc;
    mod.name = ident();
    if (!accept(Tok::KwSystemprocess) && !accept(Tok::KwProcess) &&
        !accept(Tok::KwSystemactivity)) {
      accept(Tok::KwActivity);
    }
    expect(Tok::Semi);
    while (accept(Tok::KwIp)) {
      do {
        std::vector<std::string> names = ident_list();
        expect(Tok::Colon);
        std::string channel = ident();
        expect(Tok::LParen);
        std::string role = ident();
        expect(Tok::RParen);
        // Optional queue discipline.
        if (accept(Tok::KwIndividual) || accept(Tok::KwCommon)) {
          expect(Tok::KwQueue);
        }
        expect(Tok::Semi);
        for (std::string& n : names) {
          IpDecl ip;
          ip.loc = mod.loc;
          ip.name = std::move(n);
          ip.channel = channel;
          ip.role = role;
          mod.ips.push_back(std::move(ip));
        }
      } while (at(Tok::Ident));
    }
    expect(Tok::KwEnd);
    expect(Tok::Semi);
    return mod;
  }

  // --- body ---
  BodyDef parse_body() {
    BodyDef body;
    body.loc = expect(Tok::KwBody).loc;
    body.name = ident();
    expect(Tok::KwFor);
    body.for_module = ident();
    expect(Tok::Semi);

    for (;;) {
      if (at(Tok::KwConst)) {
        parse_const_section(body.consts);
      } else if (at(Tok::KwType)) {
        parse_type_section(body.types);
      } else if (at(Tok::KwVar)) {
        parse_var_section(body.vars);
      } else if (at(Tok::KwFunction) || at(Tok::KwProcedure)) {
        body.routines.push_back(parse_routine());
      } else if (at(Tok::KwState)) {
        advance();
        do {
          body.state_locs.push_back(peek().loc);
          body.states.push_back(ident());
        } while (accept(Tok::Comma));
        expect(Tok::Semi);
      } else if (at(Tok::KwStateset)) {
        body.statesets.push_back(parse_stateset());
      } else if (at(Tok::KwInitialize)) {
        body.initializers.push_back(parse_initializer());
      } else if (at(Tok::KwTrans)) {
        advance();
        parse_transitions(body.transitions);
      } else {
        break;
      }
    }

    expect(Tok::KwEnd);
    expect(Tok::Semi);
    return body;
  }

  void parse_const_section(std::vector<ConstDecl>& out) {
    expect(Tok::KwConst);
    do {
      ConstDecl c;
      c.loc = peek().loc;
      c.name = ident();
      expect(Tok::Eq);
      c.value = parse_expr();
      expect(Tok::Semi);
      out.push_back(std::move(c));
    } while (at(Tok::Ident));
  }

  void parse_type_section(std::vector<TypeDecl>& out) {
    expect(Tok::KwType);
    do {
      TypeDecl t;
      t.loc = peek().loc;
      t.name = ident();
      expect(Tok::Eq);
      t.type = parse_type_expr();
      expect(Tok::Semi);
      out.push_back(std::move(t));
    } while (at(Tok::Ident));
  }

  void parse_var_section(std::vector<VarDecl>& out) {
    expect(Tok::KwVar);
    do {
      VarDecl v;
      v.loc = peek().loc;
      v.names = ident_list();
      expect(Tok::Colon);
      v.type = parse_type_expr();
      expect(Tok::Semi);
      out.push_back(std::move(v));
    } while (at(Tok::Ident));
  }

  StateSetDecl parse_stateset() {
    StateSetDecl ss;
    ss.loc = expect(Tok::KwStateset).loc;
    ss.name = ident();
    expect(Tok::Eq);
    expect(Tok::LBracket);
    ss.members = ident_list();
    expect(Tok::RBracket);
    expect(Tok::Semi);
    return ss;
  }

  Routine parse_routine() {
    Routine r;
    r.loc = peek().loc;
    r.is_function = at(Tok::KwFunction);
    advance();  // function/procedure
    r.name = ident();
    if (accept(Tok::LParen)) {
      do {
        ParamGroup g;
        g.loc = peek().loc;
        g.by_ref = accept(Tok::KwVar);
        g.names = ident_list();
        expect(Tok::Colon);
        g.type = parse_type_expr();
        r.params.push_back(std::move(g));
      } while (accept(Tok::Semi));
      expect(Tok::RParen);
    }
    if (r.is_function) {
      expect(Tok::Colon);
      r.result_type = parse_type_expr();
    }
    expect(Tok::Semi);
    if (accept(Tok::KwPrimitive)) {
      r.is_primitive = true;
      expect(Tok::Semi);
      return r;
    }
    while (at(Tok::KwVar)) parse_var_section(r.locals);
    r.body = parse_compound();
    expect(Tok::Semi);
    return r;
  }

  Initializer parse_initializer() {
    Initializer init;
    init.loc = expect(Tok::KwInitialize).loc;
    expect(Tok::KwTo);
    init.to_state = ident();
    if (accept(Tok::KwProvided)) init.provided = parse_expr();
    while (at(Tok::KwVar)) parse_var_section(init.locals);
    if (at(Tok::KwBegin)) init.block = parse_compound();
    expect(Tok::Semi);
    return init;
  }

  void parse_transitions(std::vector<Transition>& out) {
    // Transitions continue while the next token can start a transition.
    while (at(Tok::KwFrom) || at(Tok::KwWhen) || at(Tok::KwProvided) ||
           at(Tok::KwPriority) || at(Tok::KwDelay) || at(Tok::KwName) ||
           at(Tok::KwTo) || at(Tok::KwAny) || at(Tok::KwBegin) ||
           at(Tok::KwVar)) {
      out.push_back(parse_transition());
    }
  }

  Transition parse_transition() {
    Transition tr;
    tr.loc = peek().loc;
    for (;;) {
      if (accept(Tok::KwFrom)) {
        tr.from_states = ident_list();
      } else if (accept(Tok::KwTo)) {
        if (accept(Tok::KwSame)) {
          tr.to_same = true;
        } else {
          tr.to_state = ident();
        }
      } else if (accept(Tok::KwWhen)) {
        WhenClause w;
        w.loc = peek().loc;
        w.ip = ident();
        expect(Tok::Dot);
        w.interaction = ident();
        tr.when = std::move(w);
      } else if (accept(Tok::KwProvided)) {
        tr.provided = parse_expr();
      } else if (accept(Tok::KwPriority)) {
        const Token& t = expect(Tok::IntLit);
        tr.priority = t.int_value;
      } else if (at(Tok::KwDelay)) {
        tr.delay_loc = advance().loc;
        tr.has_delay = true;
        expect(Tok::LParen);
        int depth = 1;  // skip the argument list; sema rejects the clause
        while (depth > 0) {
          if (at(Tok::End)) {
            throw CompileError(tr.delay_loc, "unterminated delay clause");
          }
          if (at(Tok::LParen)) ++depth;
          if (at(Tok::RParen)) --depth;
          advance();
        }
      } else if (at(Tok::KwAny)) {
        throw CompileError(peek().loc,
                           "'any' transition clauses are not supported");
      } else if (accept(Tok::KwName)) {
        tr.name = ident();
        expect(Tok::Colon);
      } else {
        break;
      }
    }
    while (at(Tok::KwVar)) parse_var_section(tr.locals);
    tr.block = parse_compound();
    expect(Tok::Semi);
    return tr;
  }

  // --- type expressions ---
  TypeExprPtr parse_type_expr() {
    SourceLoc loc = peek().loc;
    if (accept(Tok::Caret)) {
      auto t = std::make_unique<TypeExpr>(TypeExprKind::Pointer, loc);
      t->name = ident();
      return t;
    }
    if (accept(Tok::KwArray)) {
      auto t = std::make_unique<TypeExpr>(TypeExprKind::Array, loc);
      expect(Tok::LBracket);
      t->lo = parse_expr();
      expect(Tok::DotDot);
      t->hi = parse_expr();
      expect(Tok::RBracket);
      expect(Tok::KwOf);
      t->element = parse_type_expr();
      return t;
    }
    if (accept(Tok::KwRecord)) {
      auto t = std::make_unique<TypeExpr>(TypeExprKind::Record, loc);
      while (!at(Tok::KwEnd)) {
        FieldGroup g;
        g.names = ident_list();
        expect(Tok::Colon);
        g.type = parse_type_expr();
        t->fields.push_back(std::move(g));
        if (!accept(Tok::Semi)) break;
      }
      expect(Tok::KwEnd);
      return t;
    }
    if (at(Tok::LParen)) {
      advance();
      auto t = std::make_unique<TypeExpr>(TypeExprKind::Enum, loc);
      t->enum_values = ident_list();
      expect(Tok::RParen);
      return t;
    }
    // Named type or subrange. A subrange starts with a constant expression;
    // distinguish by what follows an identifier, or by a leading literal/sign.
    if (at(Tok::Ident) && peek(1).kind != Tok::DotDot) {
      auto t = std::make_unique<TypeExpr>(TypeExprKind::Named, loc);
      t->name = ident();
      return t;
    }
    auto t = std::make_unique<TypeExpr>(TypeExprKind::Subrange, loc);
    t->lo = parse_expr();
    expect(Tok::DotDot);
    t->hi = parse_expr();
    return t;
  }

  TypeExprPtr clone_type_expr(const TypeExpr& src) {
    auto t = std::make_unique<TypeExpr>(src.kind, src.loc);
    t->name = src.name;
    t->enum_values = src.enum_values;
    if (src.lo) t->lo = clone_expr(*src.lo);
    if (src.hi) t->hi = clone_expr(*src.hi);
    if (src.element) t->element = clone_type_expr(*src.element);
    for (const FieldGroup& g : src.fields) {
      FieldGroup copy;
      copy.names = g.names;
      copy.type = clone_type_expr(*g.type);
      t->fields.push_back(std::move(copy));
    }
    return t;
  }

 public:
  /// Deep-copies an expression tree (unresolved parser output only).
  static ExprPtr clone_expr(const Expr& src) {
    ExprPtr e = make_expr(src.kind, src.loc);
    e->int_value = src.int_value;
    e->name = src.name;
    e->field = src.field;
    e->un_op = src.un_op;
    e->bin_op = src.bin_op;
    for (const ExprPtr& c : src.children) {
      e->children.push_back(clone_expr(*c));
    }
    return e;
  }

 private:
  // --- statements ---
  StmtPtr parse_compound() {
    SourceLoc loc = expect(Tok::KwBegin).loc;
    StmtPtr s = make_stmt(StmtKind::Compound, loc);
    while (!at(Tok::KwEnd)) {
      s->body.push_back(parse_stmt());
      if (!accept(Tok::Semi)) break;
    }
    expect(Tok::KwEnd);
    return s;
  }

  StmtPtr parse_stmt() {
    SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case Tok::KwBegin:
        return parse_compound();
      case Tok::KwIf: {
        advance();
        StmtPtr s = make_stmt(StmtKind::If, loc);
        s->e0 = parse_expr();
        expect(Tok::KwThen);
        s->s0 = parse_stmt();
        if (accept(Tok::KwElse)) s->s1 = parse_stmt();
        return s;
      }
      case Tok::KwWhile: {
        advance();
        StmtPtr s = make_stmt(StmtKind::While, loc);
        s->e0 = parse_expr();
        expect(Tok::KwDo);
        s->s0 = parse_stmt();
        return s;
      }
      case Tok::KwRepeat: {
        advance();
        StmtPtr s = make_stmt(StmtKind::Repeat, loc);
        while (!at(Tok::KwUntil)) {
          s->body.push_back(parse_stmt());
          if (!accept(Tok::Semi)) break;
        }
        expect(Tok::KwUntil);
        s->e0 = parse_expr();
        return s;
      }
      case Tok::KwFor: {
        advance();
        StmtPtr s = make_stmt(StmtKind::For, loc);
        s->e0 = parse_designator();  // control variable
        expect(Tok::Assign);
        s->e1 = parse_expr();
        if (accept(Tok::KwDownto)) {
          s->downto = true;
        } else {
          expect(Tok::KwTo);
        }
        // Reuse s1 slot for the bound via a wrapper statement? Keep the bound
        // in args[0] instead: For uses e0=var, e1=from, args[0]=to.
        s->args.push_back(parse_expr());
        expect(Tok::KwDo);
        s->s0 = parse_stmt();
        return s;
      }
      case Tok::KwCase: {
        advance();
        StmtPtr s = make_stmt(StmtKind::Case, loc);
        s->e0 = parse_expr();
        expect(Tok::KwOf);
        while (!at(Tok::KwEnd) && !at(Tok::KwOtherwise)) {
          CaseArm arm;
          arm.labels.push_back(parse_expr());
          while (accept(Tok::Comma)) arm.labels.push_back(parse_expr());
          expect(Tok::Colon);
          arm.body = parse_stmt();
          s->arms.push_back(std::move(arm));
          if (!accept(Tok::Semi)) break;
        }
        if (accept(Tok::KwOtherwise)) {
          s->has_otherwise = true;
          while (!at(Tok::KwEnd)) {
            s->otherwise.push_back(parse_stmt());
            if (!accept(Tok::Semi)) break;
          }
        }
        expect(Tok::KwEnd);
        return s;
      }
      case Tok::KwOutput: {
        advance();
        StmtPtr s = make_stmt(StmtKind::Output, loc);
        s->out_ip = ident();
        expect(Tok::Dot);
        s->out_interaction = ident();
        if (accept(Tok::LParen)) {
          if (!at(Tok::RParen)) {
            s->args.push_back(parse_expr());
            while (accept(Tok::Comma)) s->args.push_back(parse_expr());
          }
          expect(Tok::RParen);
        }
        return s;
      }
      case Tok::Ident: {
        // Assignment or procedure call.
        ExprPtr lhs = parse_designator();
        if (accept(Tok::Assign)) {
          StmtPtr s = make_stmt(StmtKind::Assign, loc);
          s->e0 = std::move(lhs);
          s->e1 = parse_expr();
          return s;
        }
        // Procedure call: designator must be a bare name, possibly with args.
        StmtPtr s = make_stmt(StmtKind::Call, loc);
        if (lhs->kind == ExprKind::Name) {
          s->callee = lhs->name;
        } else if (lhs->kind == ExprKind::Call) {
          s->callee = lhs->name;
          s->args = std::move(lhs->children);
        } else {
          throw CompileError(loc, "expected ':=' after designator");
        }
        return s;
      }
      default:
        // Empty statement (e.g. `begin end` or `;;`).
        if (at(Tok::Semi) || at(Tok::KwEnd) || at(Tok::KwUntil) ||
            at(Tok::KwElse)) {
          return make_stmt(StmtKind::Empty, loc);
        }
        throw CompileError(loc, "expected statement, found " +
                                    std::string(tok_name(peek().kind)));
    }
  }

  // --- expressions ---
  ExprPtr parse_expr() {
    ExprPtr lhs = parse_simple();
    for (;;) {
      BinOp op;
      switch (peek().kind) {
        case Tok::Eq: op = BinOp::Eq; break;
        case Tok::Neq: op = BinOp::Neq; break;
        case Tok::Lt: op = BinOp::Lt; break;
        case Tok::Leq: op = BinOp::Leq; break;
        case Tok::Gt: op = BinOp::Gt; break;
        case Tok::Geq: op = BinOp::Geq; break;
        default: return lhs;
      }
      SourceLoc loc = advance().loc;
      ExprPtr e = make_expr(ExprKind::Binary, loc);
      e->bin_op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_simple());
      lhs = std::move(e);
    }
  }

  ExprPtr parse_simple() {
    ExprPtr lhs;
    if (at(Tok::Minus) || at(Tok::Plus)) {
      SourceLoc loc = peek().loc;
      UnOp op = at(Tok::Minus) ? UnOp::Neg : UnOp::Plus;
      advance();
      ExprPtr e = make_expr(ExprKind::Unary, loc);
      e->un_op = op;
      e->children.push_back(parse_term());
      lhs = std::move(e);
    } else {
      lhs = parse_term();
    }
    for (;;) {
      BinOp op;
      switch (peek().kind) {
        case Tok::Plus: op = BinOp::Add; break;
        case Tok::Minus: op = BinOp::Sub; break;
        case Tok::KwOr: op = BinOp::Or; break;
        default: return lhs;
      }
      SourceLoc loc = advance().loc;
      ExprPtr e = make_expr(ExprKind::Binary, loc);
      e->bin_op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_term());
      lhs = std::move(e);
    }
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    for (;;) {
      BinOp op;
      switch (peek().kind) {
        case Tok::Star: op = BinOp::Mul; break;
        case Tok::Slash: op = BinOp::IntDiv; break;  // treated as `div`
        case Tok::KwDiv: op = BinOp::IntDiv; break;
        case Tok::KwMod: op = BinOp::Mod; break;
        case Tok::KwAnd: op = BinOp::And; break;
        default: return lhs;
      }
      SourceLoc loc = advance().loc;
      ExprPtr e = make_expr(ExprKind::Binary, loc);
      e->bin_op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_factor());
      lhs = std::move(e);
    }
  }

  ExprPtr parse_factor() {
    SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case Tok::KwNot: {
        advance();
        ExprPtr e = make_expr(ExprKind::Unary, loc);
        e->un_op = UnOp::Not;
        e->children.push_back(parse_factor());
        return e;
      }
      case Tok::Minus: {
        advance();
        ExprPtr e = make_expr(ExprKind::Unary, loc);
        e->un_op = UnOp::Neg;
        e->children.push_back(parse_factor());
        return e;
      }
      case Tok::IntLit: {
        ExprPtr e = make_expr(ExprKind::IntLit, loc);
        e->int_value = advance().int_value;
        return e;
      }
      case Tok::StringLit: {
        const Token& t = advance();
        if (t.text.size() != 1) {
          throw CompileError(loc,
                             "only single-character string literals are "
                             "supported (char values)");
        }
        ExprPtr e = make_expr(ExprKind::CharLit, loc);
        e->int_value = static_cast<unsigned char>(t.text[0]);
        return e;
      }
      case Tok::KwNil:
        advance();
        return make_expr(ExprKind::NilLit, loc);
      case Tok::LParen: {
        advance();
        ExprPtr e = parse_expr();
        expect(Tok::RParen);
        return e;
      }
      case Tok::Ident:
        return parse_designator();
      default:
        throw CompileError(loc, "expected expression, found " +
                                    std::string(tok_name(peek().kind)));
    }
  }

  /// Identifier followed by any number of suffixes: `.f`, `[i]`, `^`, `(...)`.
  ExprPtr parse_designator() {
    SourceLoc loc = peek().loc;
    ExprPtr e = make_expr(ExprKind::Name, loc);
    e->name = ident();
    for (;;) {
      if (accept(Tok::Dot)) {
        ExprPtr f = make_expr(ExprKind::Field, peek().loc);
        f->field = ident();
        f->children.push_back(std::move(e));
        e = std::move(f);
      } else if (accept(Tok::LBracket)) {
        ExprPtr ix = make_expr(ExprKind::Index, peek().loc);
        ix->children.push_back(std::move(e));
        ix->children.push_back(parse_expr());
        expect(Tok::RBracket);
        e = std::move(ix);
      } else if (accept(Tok::Caret)) {
        ExprPtr d = make_expr(ExprKind::Deref, loc);
        d->children.push_back(std::move(e));
        e = std::move(d);
      } else if (at(Tok::LParen) && e->kind == ExprKind::Name) {
        advance();
        ExprPtr call = make_expr(ExprKind::Call, e->loc);
        call->name = e->name;
        if (!at(Tok::RParen)) {
          call->children.push_back(parse_expr());
          while (accept(Tok::Comma)) call->children.push_back(parse_expr());
        }
        expect(Tok::RParen);
        e = std::move(call);
      } else {
        break;
      }
    }
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

SpecAst parse(std::string_view source) {
  Parser p(lex(source));
  return p.parse_spec();
}

ExprPtr parse_expression(std::string_view source) {
  Parser p(lex(source));
  return p.parse_expression_only();
}

}  // namespace tango::est
