#include "estelle/types.hpp"

namespace tango::est {

int Type::field_index(const std::string& canonical_name) const {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == canonical_name) return static_cast<int>(i);
  }
  return -1;
}

bool compatible(const Type* to, const Type* from) {
  if (to == nullptr || from == nullptr) return false;
  if (to == from) return true;
  if (to->is_integer_like() && from->is_integer_like()) return true;
  // Subranges of char/enum are not supported; enums compare by identity.
  if (to->kind == TypeKind::Pointer && from->kind == TypeKind::Pointer) {
    return to->pointee == from->pointee;
  }
  return false;
}

std::string type_to_string(const Type* t) {
  if (t == nullptr) return "<error>";
  if (!t->name.empty()) return t->name;
  switch (t->kind) {
    case TypeKind::Integer: return "integer";
    case TypeKind::Boolean: return "boolean";
    case TypeKind::Char: return "char";
    case TypeKind::Enum: return "<enum>";
    case TypeKind::Subrange:
      return std::to_string(t->lo) + ".." + std::to_string(t->hi);
    case TypeKind::Array:
      return "array [" + std::to_string(t->lo) + ".." + std::to_string(t->hi) +
             "] of " + type_to_string(t->element);
    case TypeKind::Record: return "<record>";
    case TypeKind::Pointer: return "^" + type_to_string(t->pointee);
  }
  return "<type>";
}

TypeArena::TypeArena() {
  Type* i = make(TypeKind::Integer);
  i->name = "integer";
  integer_ = i;
  Type* b = make(TypeKind::Boolean);
  b->name = "boolean";
  boolean_ = b;
  Type* c = make(TypeKind::Char);
  c->name = "char";
  char_ = c;
}

Type* TypeArena::make(TypeKind kind) {
  nodes_.emplace_back();
  nodes_.back().kind = kind;
  return &nodes_.back();
}

}  // namespace tango::est
