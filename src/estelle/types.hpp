// Canonical (resolved) types for the Estelle dialect. The semantic analyzer
// converts syntactic type expressions into Type nodes owned by a TypeArena;
// Type pointers are stable for the lifetime of the compiled Spec.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace tango::est {

enum class TypeKind : std::uint8_t {
  Integer,
  Boolean,
  Char,
  Enum,
  Subrange,  // integer subrange lo..hi
  Array,
  Record,
  Pointer,
};

struct Type;

struct RecordField {
  std::string name;  // canonical (lower-case) spelling
  const Type* type = nullptr;
};

struct Type {
  TypeKind kind = TypeKind::Integer;
  std::string name;  // declared name if any (for diagnostics/printing)

  // Enum
  std::vector<std::string> enum_values;  // canonical spellings, by ordinal

  // Subrange / Array index bounds
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  // Array
  const Type* element = nullptr;

  // Record
  std::vector<RecordField> fields;

  // Pointer
  const Type* pointee = nullptr;  // filled late (forward references allowed)

  [[nodiscard]] bool is_ordinal() const {
    return kind == TypeKind::Integer || kind == TypeKind::Boolean ||
           kind == TypeKind::Char || kind == TypeKind::Enum ||
           kind == TypeKind::Subrange;
  }
  [[nodiscard]] bool is_integer_like() const {
    return kind == TypeKind::Integer || kind == TypeKind::Subrange;
  }
  /// Index of a record field, or -1.
  [[nodiscard]] int field_index(const std::string& canonical_name) const;
};

/// True when a value of type `from` may be assigned/compared to `to`.
/// Integer and subrange are mutually compatible; enums must be identical
/// declarations; pointers must have identical pointees (or one side nil).
[[nodiscard]] bool compatible(const Type* to, const Type* from);

/// Renders the type for diagnostics (named types by name).
[[nodiscard]] std::string type_to_string(const Type* t);

/// Owns every Type node of one compiled specification. Provides the three
/// builtin types as shared singletons per arena.
class TypeArena {
 public:
  TypeArena();

  Type* make(TypeKind kind);
  [[nodiscard]] const Type* integer() const { return integer_; }
  [[nodiscard]] const Type* boolean() const { return boolean_; }
  [[nodiscard]] const Type* char_type() const { return char_; }

 private:
  std::deque<Type> nodes_;  // deque: stable addresses
  const Type* integer_ = nullptr;
  const Type* boolean_ = nullptr;
  const Type* char_ = nullptr;
};

}  // namespace tango::est
