// tam_runtime.hpp — support runtime for TANGO-GENERATED trace analyzers.
//
// A generated TAM is a standalone C++ translation unit (no dependency on
// the tango libraries): the specification's states, variables and
// transition blocks are compiled to native C++, and this header supplies
// the generic machinery — trace parsing, the backtracking depth-first
// search with the paper's relative-order checking options, and a small
// command-line driver. Generated tools support static (batch) analysis in
// strict mode; on-line and partial-trace analysis remain interpreter
// features.
//
// This header is self-contained and intentionally dependency-free so a
// generated file plus this header compile anywhere with C++20.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace tam {

// ---------------------------------------------------------------------
// Faults and values
// ---------------------------------------------------------------------

class Fault : public std::runtime_error {
 public:
  explicit Fault(const std::string& msg) : std::runtime_error(msg) {}
};

/// All interaction parameters are scalars in generated tools; every scalar
/// is carried as a 64-bit ordinal (bool 0/1, char code, enum ordinal).
using Value = long long;

/// Pascal div/mod semantics (mod result is non-negative).
inline long long pdiv(long long a, long long b) {
  if (b == 0) throw Fault("division by zero");
  return a / b;
}
inline long long pmod(long long a, long long b) {
  if (b == 0) throw Fault("mod by zero");
  return ((a % b) + b) % b;
}
inline long long pabs(long long a) { return a < 0 ? -a : a; }

/// Bounds-checked array access for `array [lo..hi] of T`.
template <typename A>
auto& idx(A& arr, long long i, long long lo, long long hi) {
  if (i < lo || i > hi) {
    throw Fault("array index " + std::to_string(i) + " out of bounds " +
                std::to_string(lo) + ".." + std::to_string(hi));
  }
  return arr[static_cast<std::size_t>(i - lo)];
}

// ---------------------------------------------------------------------
// Dynamic memory: one typed heap per pointee type. Copyable by value so
// save/restore of the whole State struct is a plain copy — and that copy
// is cheap: the cell map is copy-on-write (shared between a saved State
// and the live one until the next mutating access clones it). This is the
// generated-tool counterpart of the interpreter's trail checkpointing:
// save cost stops scaling with heap size (§3.2.2).
// ---------------------------------------------------------------------

using Ref = std::uint32_t;  // 0 is nil

template <typename T>
class Heap {
 public:
  Heap() : cells_(std::make_shared<Cells>()) {}

  Ref alloc() {
    mut();
    const Ref r = next_++;
    cells_->emplace(r, T{});
    return r;
  }
  void release(Ref r) {
    if (r == 0) throw Fault("dispose of nil");
    if (cells_->find(r) == cells_->end()) {
      throw Fault("double dispose: cell ^" + std::to_string(r) +
                  " was already released");
    }
    mut();
    cells_->erase(r);
  }
  T& at(Ref r) {
    // Clone BEFORE handing out the reference: mutable access may write.
    // References never outlive a firing, and saves only happen between
    // firings, so a returned reference is never invalidated by a clone.
    mut();
    auto it = cells_->find(check(r));
    if (it == cells_->end()) throw Fault("dangling pointer");
    return it->second;
  }
  const T& at(Ref r) const {
    auto it = cells_->find(check(r));
    if (it == cells_->end()) throw Fault("dangling pointer");
    return it->second;
  }
  bool operator==(const Heap& o) const {
    return next_ == o.next_ && (cells_ == o.cells_ || *cells_ == *o.cells_);
  }

 private:
  using Cells = std::map<Ref, T>;

  static Ref check(Ref r) {
    if (r == 0) throw Fault("nil pointer dereference");
    return r;
  }
  void mut() {
    if (cells_.use_count() > 1) cells_ = std::make_shared<Cells>(*cells_);
  }

  std::shared_ptr<Cells> cells_;
  Ref next_ = 1;
};

// ---------------------------------------------------------------------
// Interaction/ip descriptor tables (generated as static data)
// ---------------------------------------------------------------------

enum class ParamKind : std::uint8_t { Int, Bool, Char, Enum };

struct ParamDesc {
  ParamKind kind = ParamKind::Int;
  const char* const* enum_values = nullptr;  // Enum only
  int enum_count = 0;
};

struct InteractionDesc {
  const char* name;
  std::vector<ParamDesc> params;
};

struct IpDesc {
  const char* name;
  std::map<std::string, int> inputs;   // interaction name -> id
  std::map<std::string, int> outputs;
};

struct Tables {
  std::vector<IpDesc> ips;
  std::vector<InteractionDesc> interactions;
  std::vector<const char*> states;
};

// ---------------------------------------------------------------------
// Trace model (mirrors the tango text format: `in ip.msg(v, ...)`)
// ---------------------------------------------------------------------

enum class Dir : std::uint8_t { In, Out };

struct Event {
  Dir dir;
  int ip;
  int interaction;
  std::vector<Value> params;
  std::uint32_t seq;
  int line;
};

class Trace {
 public:
  explicit Trace(int ip_count) : index_(static_cast<std::size_t>(ip_count) * 2) {}

  void append(Event e) {
    e.seq = static_cast<std::uint32_t>(events_.size());
    index_[static_cast<std::size_t>(e.ip) * 2 + (e.dir == Dir::Out ? 1 : 0)]
        .push_back(e.seq);
    events_.push_back(std::move(e));
  }
  const std::vector<Event>& events() const { return events_; }
  const std::vector<std::uint32_t>& list(int ip, Dir d) const {
    return index_[static_cast<std::size_t>(ip) * 2 + (d == Dir::Out ? 1 : 0)];
  }
  int ip_count() const { return static_cast<int>(index_.size() / 2); }

 private:
  std::vector<Event> events_;
  std::vector<std::vector<std::uint32_t>> index_;
};

namespace detail {

inline std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

inline void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

inline std::string read_ident(const std::string& s, std::size_t& i, int line) {
  skip_ws(s, i);
  std::size_t start = i;
  while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                          s[i] == '_')) {
    ++i;
  }
  if (start == i) {
    throw Fault("trace line " + std::to_string(line) + ": expected a name");
  }
  return lower(s.substr(start, i - start));
}

inline Value parse_value(const std::string& s, std::size_t& i,
                         const ParamDesc& desc, int line) {
  skip_ws(s, i);
  if (i < s.size() && (s[i] == '-' || std::isdigit(static_cast<unsigned char>(s[i])))) {
    bool neg = s[i] == '-';
    if (neg) ++i;
    long long v = 0;
    bool any = false;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      v = v * 10 + (s[i++] - '0');
      any = true;
    }
    if (!any) throw Fault("trace line " + std::to_string(line) + ": bad number");
    return neg ? -v : v;
  }
  if (i < s.size() && s[i] == '\'') {
    if (i + 2 >= s.size() || s[i + 2] != '\'') {
      throw Fault("trace line " + std::to_string(line) + ": bad char literal");
    }
    Value v = static_cast<unsigned char>(s[i + 1]);
    i += 3;
    return v;
  }
  std::string word = read_ident(s, i, line);
  if (word == "true") return 1;
  if (word == "false") return 0;
  if (desc.kind == ParamKind::Enum) {
    for (int k = 0; k < desc.enum_count; ++k) {
      if (word == desc.enum_values[k]) return k;
    }
  }
  throw Fault("trace line " + std::to_string(line) + ": bad value '" + word +
              "'");
}

}  // namespace detail

/// Parses the tango trace text format against the generated tables.
inline Trace parse_trace(const Tables& tables, const std::string& text) {
  Trace trace(static_cast<int>(tables.ips.size()));
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::size_t i = 0;
    detail::skip_ws(raw, i);
    if (i >= raw.size() || raw[i] == '#') continue;
    std::string dir_word = detail::read_ident(raw, i, line_no);
    if (dir_word == "eof") break;  // static tools treat eof as end of text
    Event e{};
    e.line = line_no;
    if (dir_word == "in") {
      e.dir = Dir::In;
    } else if (dir_word == "out") {
      e.dir = Dir::Out;
    } else {
      throw Fault("trace line " + std::to_string(line_no) +
                  ": expected in/out");
    }
    std::string ip_name = detail::read_ident(raw, i, line_no);
    e.ip = -1;
    for (std::size_t k = 0; k < tables.ips.size(); ++k) {
      if (ip_name == tables.ips[k].name) e.ip = static_cast<int>(k);
    }
    if (e.ip < 0) {
      throw Fault("trace line " + std::to_string(line_no) + ": unknown ip '" +
                  ip_name + "'");
    }
    detail::skip_ws(raw, i);
    if (i >= raw.size() || raw[i] != '.') {
      throw Fault("trace line " + std::to_string(line_no) + ": expected '.'");
    }
    ++i;
    std::string msg = detail::read_ident(raw, i, line_no);
    const IpDesc& ip = tables.ips[static_cast<std::size_t>(e.ip)];
    const auto& table = e.dir == Dir::In ? ip.inputs : ip.outputs;
    auto it = table.find(msg);
    if (it == table.end()) {
      throw Fault("trace line " + std::to_string(line_no) + ": '" + msg +
                  "' is not a valid " +
                  (e.dir == Dir::In ? "input" : "output") + " at ip '" +
                  ip_name + "'");
    }
    e.interaction = it->second;
    const InteractionDesc& info =
        tables.interactions[static_cast<std::size_t>(e.interaction)];
    detail::skip_ws(raw, i);
    if (i < raw.size() && raw[i] == '(') {
      ++i;
      for (std::size_t p = 0; p < info.params.size(); ++p) {
        if (p != 0) {
          detail::skip_ws(raw, i);
          if (i >= raw.size() || raw[i] != ',') {
            throw Fault("trace line " + std::to_string(line_no) +
                        ": expected ','");
          }
          ++i;
        }
        e.params.push_back(
            detail::parse_value(raw, i, info.params[p], line_no));
      }
      detail::skip_ws(raw, i);
      if (i >= raw.size() || raw[i] != ')') {
        throw Fault("trace line " + std::to_string(line_no) +
                    ": expected ')'");
      }
      ++i;
    } else if (!info.params.empty()) {
      throw Fault("trace line " + std::to_string(line_no) + ": '" + msg +
                  "' expects " + std::to_string(info.params.size()) +
                  " parameter(s)");
    }
    trace.append(std::move(e));
  }
  return trace;
}

// ---------------------------------------------------------------------
// Generated-model interface
// ---------------------------------------------------------------------

struct TransInfo {
  const char* name;
  std::vector<int> from;  // sorted state ordinals
  int to;                 // -1 = same
  int when_ip = -1;       // -1 = spontaneous
  int when_interaction = -1;
  long long priority = std::numeric_limits<long long>::max();
};

using OutputFn = bool (*)(void* ctx, int ip, int interaction,
                          const std::vector<Value>& params);

/// Implemented by the generated code. The model owns the State struct;
/// save/restore copy it by value (cheap: native members + typed heaps).
class Model {
 public:
  virtual ~Model() = default;
  virtual const Tables& tables() const = 0;
  virtual const std::vector<TransInfo>& transitions() const = 0;
  virtual int initializer_count() const = 0;
  virtual void init(int initializer) = 0;  // reset + run initialize block
  virtual int fsm_state() const = 0;
  virtual void set_fsm_state(int state) = 0;
  virtual std::shared_ptr<void> save() const = 0;
  virtual void restore(const std::shared_ptr<void>& snapshot) = 0;
  virtual bool provided(int t, const std::vector<Value>& args) = 0;
  /// Runs the block; outputs go through emit. False when emit vetoed.
  virtual bool fire(int t, const std::vector<Value>& args, OutputFn emit,
                    void* emit_ctx) = 0;
};

// ---------------------------------------------------------------------
// Backtracking DFS with relative-order checking (paper §2.2, §2.4.2)
// ---------------------------------------------------------------------

struct Options {
  bool check_input_wrt_output = false;
  bool check_output_wrt_input = false;
  bool check_ip_order = false;
  bool initial_state_search = false;
  std::uint64_t max_transitions = 0;
  std::vector<int> disabled_ips;  // outputs unchecked, inputs never offered

  static Options from_mode(const std::string& mode) {
    Options o;
    if (mode == "io" || mode == "full") {
      o.check_input_wrt_output = true;
      o.check_output_wrt_input = true;
    }
    if (mode == "ip" || mode == "full") o.check_ip_order = true;
    return o;
  }
};

struct Stats {
  std::uint64_t transitions_executed = 0;
  std::uint64_t generates = 0;
  std::uint64_t restores = 0;
  std::uint64_t saves = 0;
};

enum class Verdict { Valid, Invalid, Inconclusive };

inline const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Valid: return "valid";
    case Verdict::Invalid: return "invalid";
    case Verdict::Inconclusive: return "inconclusive";
  }
  return "?";
}

struct Result {
  Verdict verdict = Verdict::Inconclusive;
  Stats stats;
  std::vector<std::string> solution;
};

class Analyzer {
 public:
  Analyzer(Model& model, const Trace& trace, Options options)
      : model_(model), trace_(trace), options_(std::move(options)),
        disabled_(static_cast<std::size_t>(trace.ip_count()), 0) {
    for (int ip : options_.disabled_ips) {
      if (ip >= 0 && ip < trace.ip_count()) {
        disabled_[static_cast<std::size_t>(ip)] = 1;
      }
    }
  }

  Result run() {
    // Mirror the interpreter's rule: disabling an ip asserts no input ever
    // arrives there; outputs recorded there are simply ignored.
    for (const Event& e : trace_.events()) {
      if (e.dir == Dir::In && disabled_[static_cast<std::size_t>(e.ip)]) {
        throw Fault("trace line " + std::to_string(e.line) +
                    ": input at disabled ip");
      }
    }
    Result result;
    for (int init = 0; init < model_.initializer_count(); ++init) {
      std::vector<int> starts;
      model_.init(init);
      starts.push_back(model_.fsm_state());
      if (options_.initial_state_search) {
        const int n = static_cast<int>(model_.tables().states.size());
        for (int s = 0; s < n; ++s) {
          if (s != starts[0]) starts.push_back(s);
        }
      }
      for (int start : starts) {
        model_.init(init);
        model_.set_fsm_state(start);
        Cursors cursors(trace_.ip_count());
        if (search(cursors, result)) return result;
        if (out_of_budget_) {
          result.verdict = Verdict::Inconclusive;
          return result;
        }
      }
    }
    result.verdict = Verdict::Invalid;
    return result;
  }

 private:
  struct Cursors {
    std::vector<std::uint32_t> in_next, out_next;
    explicit Cursors(int ips)
        : in_next(static_cast<std::size_t>(ips), 0),
          out_next(static_cast<std::size_t>(ips), 0) {}
  };

  struct Firing {
    int transition;
    int input_event;  // -1 spontaneous
    const std::vector<Value>* params;
  };

  struct Frame {
    std::vector<Firing> firings;
    std::size_t next = 0;
    std::shared_ptr<void> saved_model;
    Cursors saved_cursors;
    std::string chosen;
  };

  static const std::vector<Value>& no_params() {
    static const std::vector<Value> empty;
    return empty;
  }

  std::uint32_t next_seq(const Cursors& c, int ip, Dir d) const {
    const auto& list = trace_.list(ip, d);
    const std::uint32_t cur = d == Dir::In
                                  ? c.in_next[static_cast<std::size_t>(ip)]
                                  : c.out_next[static_cast<std::size_t>(ip)];
    return cur >= list.size() ? std::numeric_limits<std::uint32_t>::max()
                              : list[cur];
  }

  std::uint32_t global_min(const Cursors& c, Dir d) const {
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    for (int ip = 0; ip < trace_.ip_count(); ++ip) {
      if (disabled_[static_cast<std::size_t>(ip)]) continue;
      best = std::min(best, next_seq(c, ip, d));
    }
    return best;
  }

  bool all_done(const Cursors& c) const {
    for (int ip = 0; ip < trace_.ip_count(); ++ip) {
      if (disabled_[static_cast<std::size_t>(ip)]) continue;
      if (c.in_next[static_cast<std::size_t>(ip)] <
              trace_.list(ip, Dir::In).size() ||
          c.out_next[static_cast<std::size_t>(ip)] <
              trace_.list(ip, Dir::Out).size()) {
        return false;
      }
    }
    return true;
  }

  std::vector<Firing> generate(const Cursors& cursors, Stats& stats) {
    ++stats.generates;
    std::vector<Firing> firings;
    const auto& transitions = model_.transitions();
    long long best_priority = std::numeric_limits<long long>::max();
    for (std::size_t t = 0; t < transitions.size(); ++t) {
      const TransInfo& info = transitions[t];
      if (!std::binary_search(info.from.begin(), info.from.end(),
                              model_.fsm_state())) {
        continue;
      }
      Firing firing{static_cast<int>(t), -1, &no_params()};
      if (info.when_ip >= 0) {
        if (disabled_[static_cast<std::size_t>(info.when_ip)]) continue;
        const std::uint32_t seq = next_seq(cursors, info.when_ip, Dir::In);
        if (seq == std::numeric_limits<std::uint32_t>::max()) continue;
        const Event& ev = trace_.events()[seq];
        if (ev.interaction != info.when_interaction) continue;
        if (options_.check_input_wrt_output &&
            next_seq(cursors, info.when_ip, Dir::Out) < seq) {
          continue;
        }
        if (options_.check_ip_order && global_min(cursors, Dir::In) < seq) {
          continue;
        }
        firing.input_event = static_cast<int>(seq);
        firing.params = &ev.params;
      }
      try {
        if (!model_.provided(static_cast<int>(t), *firing.params)) continue;
      } catch (const Fault&) {
        continue;  // a faulting guard cannot be satisfied on this path
      }
      if (info.priority < best_priority) {
        best_priority = info.priority;
        firings.clear();
      }
      if (info.priority == best_priority) firings.push_back(firing);
    }
    return firings;
  }

  struct EmitCtx {
    Analyzer* self;
    Cursors* cursors;
    std::vector<std::uint32_t> matched;
    Cursors start;
    EmitCtx(Analyzer* a, Cursors* c) : self(a), cursors(c), start(*c) {}
  };

  static bool emit_cb(void* raw, int ip, int interaction,
                      const std::vector<Value>& params) {
    auto* ctx = static_cast<EmitCtx*>(raw);
    Analyzer& self = *ctx->self;
    Cursors& cursors = *ctx->cursors;
    if (self.disabled_[static_cast<std::size_t>(ip)]) return true;
    const std::uint32_t seq = self.next_seq(cursors, ip, Dir::Out);
    if (seq == std::numeric_limits<std::uint32_t>::max()) return false;
    const Event& ev = self.trace_.events()[seq];
    if (ev.interaction != interaction || ev.params != params) return false;
    if (self.options_.check_output_wrt_input &&
        self.next_seq(cursors, ip, Dir::In) < seq) {
      return false;
    }
    cursors.out_next[static_cast<std::size_t>(ip)]++;
    ctx->matched.push_back(seq);
    return true;
  }

  bool finish_block(EmitCtx& ctx) const {
    if (!options_.check_ip_order || ctx.matched.empty()) return true;
    std::vector<std::uint32_t> expected;
    Cursors probe = ctx.start;
    for (std::size_t k = 0; k < ctx.matched.size(); ++k) {
      std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
      int best_ip = -1;
      for (int ip = 0; ip < trace_.ip_count(); ++ip) {
        if (disabled_[static_cast<std::size_t>(ip)]) continue;
        const std::uint32_t s = next_seq(probe, ip, Dir::Out);
        if (s < best) {
          best = s;
          best_ip = ip;
        }
      }
      if (best_ip < 0) break;
      expected.push_back(best);
      probe.out_next[static_cast<std::size_t>(best_ip)]++;
    }
    std::vector<std::uint32_t> got = ctx.matched;
    std::sort(got.begin(), got.end());
    return got == expected;
  }

  bool apply(Cursors& cursors, const Firing& firing, Stats& stats) {
    ++stats.transitions_executed;
    if (firing.input_event >= 0) {
      const Event& ev =
          trace_.events()[static_cast<std::size_t>(firing.input_event)];
      cursors.in_next[static_cast<std::size_t>(ev.ip)]++;
    }
    EmitCtx ctx(this, &cursors);
    try {
      if (!model_.fire(firing.transition, *firing.params, &emit_cb, &ctx)) {
        return false;
      }
    } catch (const Fault&) {
      return false;
    }
    return finish_block(ctx);
  }

  bool search(Cursors root_cursors, Result& result) {
    Stats& stats = result.stats;
    std::vector<std::string> path;
    if (all_done(root_cursors)) {
      result.verdict = Verdict::Valid;
      result.solution = path;
      return true;
    }
    Cursors cur = root_cursors;
    std::vector<Frame> stack;
    push_frame(stack, cur, stats);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next >= frame.firings.size()) {
        if (!frame.chosen.empty()) path.pop_back();
        stack.pop_back();
        continue;
      }
      if (options_.max_transitions != 0 &&
          stats.transitions_executed >= options_.max_transitions) {
        out_of_budget_ = true;
        return false;
      }
      const std::size_t pick = frame.next++;
      if (pick > 0) {
        model_.restore(frame.saved_model);
        cur = frame.saved_cursors;
        ++stats.restores;
        if (!frame.chosen.empty()) path.pop_back();
        frame.chosen.clear();
      }
      const Firing firing = frame.firings[pick];
      if (!apply(cur, firing, stats)) continue;
      frame.chosen = model_.transitions()[static_cast<std::size_t>(
                                              firing.transition)]
                         .name;
      path.push_back(frame.chosen);
      if (all_done(cur)) {
        result.verdict = Verdict::Valid;
        result.solution = path;
        return true;
      }
      push_frame(stack, cur, stats);
    }
    return false;
  }

  void push_frame(std::vector<Frame>& stack, Cursors& cur, Stats& stats) {
    Frame frame{generate(cur, stats), 0, nullptr, cur, {}};
    if (frame.firings.size() > 1) {
      frame.saved_model = model_.save();
      ++stats.saves;
    }
    stack.push_back(std::move(frame));
  }

  Model& model_;
  const Trace& trace_;
  Options options_;
  std::vector<char> disabled_;
  bool out_of_budget_ = false;
};

// ---------------------------------------------------------------------
// Command-line driver for generated tools
// ---------------------------------------------------------------------

inline int run_cli(Model& model, int argc, char** argv) {
  std::string trace_path;
  std::string mode = "io";
  Options options;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--order=", 0) == 0) {
      mode = a.substr(8);
    } else if (a == "--initial-state-search") {
      options.initial_state_search = true;
    } else if (a.rfind("--disable-ip=", 0) == 0) {
      const std::string name = detail::lower(a.substr(13));
      const Tables& tables = model.tables();
      int found = -1;
      for (std::size_t k = 0; k < tables.ips.size(); ++k) {
        if (name == tables.ips[k].name) found = static_cast<int>(k);
      }
      if (found < 0) {
        std::fprintf(stderr, "unknown ip '%s'\n", name.c_str());
        return 2;
      }
      options.disabled_ips.push_back(found);
    } else if (a.rfind("--max-transitions=", 0) == 0) {
      options.max_transitions = std::stoull(a.substr(18));
    } else if (a == "--verbose") {
      verbose = true;
    } else if (a[0] != '-') {
      trace_path = a;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <trace-file> [--order=none|io|ip|full] "
                 "[--initial-state-search] [--max-transitions=N] "
                 "[--verbose]\n",
                 argv[0]);
    return 2;
  }
  Options from_mode = Options::from_mode(mode);
  from_mode.initial_state_search = options.initial_state_search;
  from_mode.max_transitions = options.max_transitions;
  from_mode.disabled_ips = options.disabled_ips;

  std::ifstream in(trace_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    Trace trace = parse_trace(model.tables(), text.str());
    Analyzer analyzer(model, trace, from_mode);
    Result result = analyzer.run();
    std::printf("verdict: %s\n", to_string(result.verdict));
    std::printf("stats:   TE=%llu GE=%llu RE=%llu SA=%llu\n",
                static_cast<unsigned long long>(
                    result.stats.transitions_executed),
                static_cast<unsigned long long>(result.stats.generates),
                static_cast<unsigned long long>(result.stats.restores),
                static_cast<unsigned long long>(result.stats.saves));
    if (verbose && !result.solution.empty()) {
      std::printf("solution:");
      for (const std::string& s : result.solution) {
        std::printf(" %s", s.c_str());
      }
      std::printf("\n");
    }
    return result.verdict == Verdict::Valid ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace tam
