// Estelle-to-C++ code generator (the Dingo heritage): translates a
// compiled specification into a standalone C++ translation unit that,
// together with tam_runtime.hpp, builds into a batch-mode trace analyzer
// for that protocol — the "tool generator" half of Tango.
//
// Scope: static (batch) analysis in strict mode. Interaction parameters
// must be scalars (integer/boolean/char/enum); record- or array-valued
// parameters are rejected with a diagnostic. Undefined-use and subrange
// checks of the interpreter are elided in generated code (module variables
// start zero-initialized), matching what a Dingo-produced implementation
// would do.
#pragma once

#include <string>

#include "estelle/spec.hpp"

namespace tango::codegen {

struct GenOptions {
  /// Include directive used for the runtime header.
  std::string runtime_header = "tam_runtime.hpp";
  /// Emit a main() wrapping tam::run_cli (on by default: a generated file
  /// is a complete command-line tool).
  bool emit_main = true;
};

/// Generates the C++ source for `spec`. Throws CompileError when the
/// specification uses a feature outside the generator's scope.
[[nodiscard]] std::string generate_cpp(const est::Spec& spec,
                                       const GenOptions& options = {});

}  // namespace tango::codegen
