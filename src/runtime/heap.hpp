// Dynamic memory for Estelle `new`/`dispose`. The heap is part of the TAM
// state (paper §2.3), so save/restore must cover it: either by wholesale
// copy of the std::map (the deep-copy checkpointing mode, whose §3.2.2 cost
// bench_ablation_savecost measures) or by replaying per-cell undo entries
// from the rt::Trail (the revert_* hooks below).
#pragma once

#include <cstdint>
#include <map>

#include "runtime/thread_affinity.hpp"
#include "runtime/value.hpp"

namespace tango::rt {

class Heap {
 public:
  /// Allocates a fresh cell; addresses are never reused within one run,
  /// which keeps allocation deterministic across restores.
  std::uint32_t allocate(Value initial);

  /// Releases a cell. Returns false if the address was not live (double
  /// dispose or wild pointer).
  bool release(std::uint32_t addr);

  /// Live cell lookup; nullptr when the address is not allocated. The
  /// non-const overload counts as a mutation (the caller may write through
  /// the returned pointer) and bumps the epoch; pure reads must go through
  /// the const overload or they thrash the heap hash cache.
  [[nodiscard]] Value* cell(std::uint32_t addr);
  [[nodiscard]] const Value* cell(std::uint32_t addr) const;

  [[nodiscard]] std::size_t live_cells() const { return cells_.size(); }

  /// Mutation epoch: bumped by allocate/release/revert_* and by every
  /// non-const cell() lookup. The MachineState hash cache records the
  /// epoch it last hashed at; a mismatch means the heap component must be
  /// rehashed. This catches writes made *through* a cell pointer, which
  /// the heap itself never sees.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// All live cells in address order (for hashing/equality walks).
  [[nodiscard]] const std::map<std::uint32_t, Value>& cells() const {
    return cells_;
  }

  /// Trail undo of `allocate`: `addr` must be the most recent live
  /// allocation. Rewinds the allocation cursor so a re-run allocates the
  /// same address — bit-identical to what a deep-copy restore yields.
  void revert_allocate(std::uint32_t addr);

  /// Trail undo of `release`: re-inserts the cell with its old contents.
  void revert_release(std::uint32_t addr, Value old_value);

 private:
  std::map<std::uint32_t, Value> cells_;
  std::uint32_t next_ = 1;
  std::uint64_t epoch_ = 0;
  /// Debug-only: whichever thread mutates the heap first owns it; copying
  /// (snapshot for a stolen continuation) unbinds the copy.
  ThreadAffinity affinity_;
};

}  // namespace tango::rt
