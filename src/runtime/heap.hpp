// Dynamic memory for Estelle `new`/`dispose`. The heap is part of the TAM
// state (paper §2.3), so it must be cheaply copyable for save/restore: we
// use a std::map keyed by address and copy it wholesale. The cost of these
// deep copies is exactly the §3.2.2 concern, measured by
// bench_ablation_savecost.
#pragma once

#include <cstdint>
#include <map>

#include "runtime/value.hpp"

namespace tango::rt {

class Heap {
 public:
  /// Allocates a fresh cell; addresses are never reused within one run,
  /// which keeps allocation deterministic across restores.
  std::uint32_t allocate(Value initial);

  /// Releases a cell. Returns false if the address was not live (double
  /// dispose or wild pointer).
  bool release(std::uint32_t addr);

  /// Live cell lookup; nullptr when the address is not allocated.
  [[nodiscard]] Value* cell(std::uint32_t addr);
  [[nodiscard]] const Value* cell(std::uint32_t addr) const;

  [[nodiscard]] std::size_t live_cells() const { return cells_.size(); }

  void hash_into(std::uint64_t& h) const;

 private:
  std::map<std::uint32_t, Value> cells_;
  std::uint32_t next_ = 1;
};

}  // namespace tango::rt
