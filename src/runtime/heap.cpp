#include "runtime/heap.hpp"

namespace tango::rt {

std::uint32_t Heap::allocate(Value initial) {
  const std::uint32_t addr = next_++;
  cells_.emplace(addr, std::move(initial));
  return addr;
}

bool Heap::release(std::uint32_t addr) { return cells_.erase(addr) != 0; }

Value* Heap::cell(std::uint32_t addr) {
  auto it = cells_.find(addr);
  return it == cells_.end() ? nullptr : &it->second;
}

const Value* Heap::cell(std::uint32_t addr) const {
  auto it = cells_.find(addr);
  return it == cells_.end() ? nullptr : &it->second;
}

void Heap::hash_into(std::uint64_t& h) const {
  auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(cells_.size());
  for (const auto& [addr, value] : cells_) {
    mix(addr);
    value.hash_into(h);
  }
}

}  // namespace tango::rt
