#include "runtime/heap.hpp"

namespace tango::rt {

std::uint32_t Heap::allocate(Value initial) {
  affinity_.bind_or_check();
  ++epoch_;
  const std::uint32_t addr = next_++;
  cells_.emplace(addr, std::move(initial));
  return addr;
}

bool Heap::release(std::uint32_t addr) {
  affinity_.bind_or_check();
  ++epoch_;
  return cells_.erase(addr) != 0;
}

Value* Heap::cell(std::uint32_t addr) {
  affinity_.bind_or_check();  // non-const access can mutate
  ++epoch_;
  auto it = cells_.find(addr);
  return it == cells_.end() ? nullptr : &it->second;
}

const Value* Heap::cell(std::uint32_t addr) const {
  auto it = cells_.find(addr);
  return it == cells_.end() ? nullptr : &it->second;
}

void Heap::revert_allocate(std::uint32_t addr) {
  affinity_.bind_or_check();
  ++epoch_;
  cells_.erase(addr);
  // Undoing allocations newest-first lands the cursor back on the value it
  // had at the trail mark.
  next_ = addr;
}

void Heap::revert_release(std::uint32_t addr, Value old_value) {
  affinity_.bind_or_check();
  ++epoch_;
  cells_.emplace(addr, std::move(old_value));
}

}  // namespace tango::rt
