#include "runtime/machine.hpp"

namespace tango::rt {

MachineState make_initial_machine(const est::Spec& spec) {
  MachineState m;
  m.vars.reserve(spec.module_vars.size());
  for (const est::ModuleVarInfo& var : spec.module_vars) {
    m.vars.push_back(default_value(var.type));
  }
  return m;
}

}  // namespace tango::rt
