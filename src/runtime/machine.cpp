#include "runtime/machine.hpp"

#include <map>

namespace tango::rt {

namespace {

void mix(std::uint64_t& h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

// Hashes `v`, renumbering pointer targets by first-visit order so the hash
// is invariant under allocation-address shifts. `canon` maps live heap
// address -> canonical id; a cell's contents are hashed only on first
// visit, which also terminates cyclic structures.
void hash_value(const Value& v, const Heap& heap,
                std::map<std::uint32_t, std::uint32_t>& canon,
                std::uint64_t& h) {
  mix(h, static_cast<std::uint64_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::Undefined:
      break;
    case Value::Kind::Pointer: {
      const std::uint32_t addr = v.address();
      if (addr == 0) {
        mix(h, 0x6e696cULL);  // nil
        break;
      }
      const Value* cell = heap.cell(addr);
      if (cell == nullptr) {
        mix(h, 0x64616e67ULL);  // dangling
        break;
      }
      auto [it, fresh] = canon.emplace(
          addr, static_cast<std::uint32_t>(canon.size() + 1));
      mix(h, it->second);
      if (fresh) hash_value(*cell, heap, canon, h);
      break;
    }
    case Value::Kind::Int:
    case Value::Kind::Bool:
    case Value::Kind::Char:
    case Value::Kind::Enum:
      mix(h, static_cast<std::uint64_t>(v.scalar()));
      break;
    case Value::Kind::Record:
    case Value::Kind::Array:
      mix(h, v.elems().size());
      for (const Value& e : v.elems()) hash_value(e, heap, canon, h);
      break;
  }
}

}  // namespace

std::uint64_t MachineState::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h ^= static_cast<std::uint64_t>(fsm_state) * 0x100000001b3ULL;
  std::map<std::uint32_t, std::uint32_t> canon;
  for (const Value& v : vars) hash_value(v, heap, canon, h);
  // Cells no root reaches (leaked memory) still distinguish states: a
  // leaked cell changes what future allocations may alias, and the paper's
  // state is the whole memory. Hash them after the reachable region, in
  // address order, contents only.
  if (canon.size() != heap.live_cells()) {
    mix(h, 0x6c65616bULL);  // leaked-region separator
    for (const auto& [addr, value] : heap.cells()) {
      if (canon.find(addr) != canon.end()) continue;
      hash_value(value, heap, canon, h);
    }
  }
  return h;
}

MachineState make_initial_machine(const est::Spec& spec) {
  MachineState m;
  m.vars.reserve(spec.module_vars.size());
  for (const est::ModuleVarInfo& var : spec.module_vars) {
    m.vars.push_back(default_value(var.type));
  }
  return m;
}

}  // namespace tango::rt
