#include "runtime/machine.hpp"

#include "support/hash.hpp"

namespace tango::rt {

namespace {

using support::mix64;
using support::place64;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

void mix(std::uint64_t& h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

/// Pointer-canonicalization table for the reachability walk: live heap
/// address -> canonical id in first-visit order. A flat open-addressing
/// table reused across calls through a thread_local instance — clear() is
/// an O(1) stamp bump, so neither the full-hash oracle nor the heap-dirty
/// rehash path allocates per node (the std::map this replaces did).
class CanonTable {
 public:
  /// Canonical id of `addr`, inserting a fresh id on first visit.
  std::uint32_t canon(std::uint32_t addr, bool& fresh) {
    grow_if_loaded();
    std::size_t i = probe(addr);
    if (slots_[i].stamp == stamp_ && slots_[i].key == addr) {
      fresh = false;
      return slots_[i].id;
    }
    fresh = true;
    slots_[i] = Slot{addr, ++count_, stamp_};
    return count_;
  }

  [[nodiscard]] bool contains(std::uint32_t addr) const {
    if (slots_.empty()) return false;
    const std::size_t i = probe(addr);
    return slots_[i].stamp == stamp_ && slots_[i].key == addr;
  }

  [[nodiscard]] std::size_t size() const { return count_; }

  /// O(1): entries from earlier generations just stop matching the stamp.
  void clear() {
    count_ = 0;
    if (++stamp_ == 0) {  // stamp wrapped: really wipe once per 2^32 clears
      for (Slot& s : slots_) s.stamp = 0;
      stamp_ = 1;
    }
  }

 private:
  struct Slot {
    std::uint32_t key = 0;
    std::uint32_t id = 0;
    std::uint32_t stamp = 0;
  };

  /// First slot that holds `addr` in the current generation, or the empty
  /// slot where it belongs (linear probing; capacity is a power of two).
  [[nodiscard]] std::size_t probe(std::uint32_t addr) const {
    const std::size_t msk = slots_.size() - 1;
    std::size_t i = (static_cast<std::size_t>(addr) * 0x9e3779b9u) & msk;
    while (slots_[i].stamp == stamp_ && slots_[i].key != addr) {
      i = (i + 1) & msk;
    }
    return i;
  }

  void grow_if_loaded() {
    if (slots_.empty()) {
      slots_.resize(64);
      stamp_ = 1;
      return;
    }
    if ((count_ + 1) * 4 < slots_.size() * 3) return;  // < 75% load
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    for (const Slot& s : old) {
      if (s.stamp != stamp_) continue;
      const std::size_t msk = slots_.size() - 1;
      std::size_t i = (static_cast<std::size_t>(s.key) * 0x9e3779b9u) & msk;
      while (slots_[i].stamp == stamp_) i = (i + 1) & msk;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t stamp_ = 0;
  std::uint32_t count_ = 0;
};

CanonTable& canon_table() {
  thread_local CanonTable table;
  return table;
}

// Hashes `v`, renumbering pointer targets by first-visit order so the hash
// is invariant under allocation-address shifts. `canon` maps live heap
// address -> canonical id; a cell's contents are hashed only on first
// visit, which also terminates cyclic structures.
void hash_value(const Value& v, const Heap& heap, CanonTable& canon,
                std::uint64_t& h) {
  mix(h, static_cast<std::uint64_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::Undefined:
      break;
    case Value::Kind::Pointer: {
      const std::uint32_t addr = v.address();
      if (addr == 0) {
        mix(h, 0x6e696cULL);  // nil
        break;
      }
      const Value* cell = heap.cell(addr);
      if (cell == nullptr) {
        mix(h, 0x64616e67ULL);  // dangling
        break;
      }
      bool fresh = false;
      mix(h, canon.canon(addr, fresh));
      if (fresh) hash_value(*cell, heap, canon, h);
      break;
    }
    case Value::Kind::Int:
    case Value::Kind::Bool:
    case Value::Kind::Char:
    case Value::Kind::Enum:
      mix(h, static_cast<std::uint64_t>(v.scalar()));
      break;
    case Value::Kind::Record:
    case Value::Kind::Array:
      mix(h, v.elems().size());
      for (const Value& e : v.elems()) hash_value(e, heap, canon, h);
      break;
  }
}

/// Component of one pointer-free slot: a pure value-tree hash.
std::uint64_t slot_component(const Value& v) {
  std::uint64_t h = kFnvOffset;
  v.hash_into(h);
  return h;
}

/// acc covers the variables and the heap; the FSM ordinal is mixed fresh
/// at the end so engines may overwrite fsm_state without a hook (§2.4.1
/// root enumeration does exactly that).
std::uint64_t combine(std::uint64_t acc, int fsm_state) {
  return mix64(acc ^
               mix64(static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(fsm_state))));
}

bool type_contains_pointer(const est::Type* t) {
  if (t == nullptr) return false;
  switch (t->kind) {
    case est::TypeKind::Pointer:
      return true;
    case est::TypeKind::Array:
      return type_contains_pointer(t->element);
    case est::TypeKind::Record:
      for (const est::RecordField& f : t->fields) {
        if (type_contains_pointer(f.type)) return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

std::uint64_t MachineState::heap_component() const {
  // Every pointer-bearing root in ascending slot order through ONE canon
  // pass: first-visit numbering is then a pure function of the reachable
  // shape, and two roots aliasing a cell hash differently from two roots
  // owning isomorphic copies (DESIGN.md §4).
  std::uint64_t h = kFnvOffset;
  CanonTable& canon = canon_table();
  canon.clear();
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (!pointer_bearing(i)) continue;
    hash_value(vars[i], heap, canon, h);
  }
  // Cells no root reaches (leaked memory) still distinguish states: a
  // leaked cell changes what future allocations may alias, and the paper's
  // state is the whole memory. Hash them after the reachable region, in
  // address order, contents only.
  if (canon.size() != heap.live_cells()) {
    mix(h, 0x6c65616bULL);  // leaked-region separator
    for (const auto& [addr, value] : heap.cells()) {
      if (canon.contains(addr)) continue;
      hash_value(value, heap, canon, h);
    }
  }
  return h;
}

std::uint64_t MachineState::hash() const {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (pointer_bearing(i)) continue;
    acc ^= place64(i, slot_component(vars[i]));
  }
  acc ^= place64(vars.size(), heap_component());
  return combine(acc, fsm_state);
}

std::uint64_t MachineState::hash_cached() const {
  if (!cache_live()) {
    rebuild_cache();
  } else {
    while (!cache_.dirty.empty()) {
      const std::uint32_t i = cache_.dirty.back();
      cache_.dirty.pop_back();
      if (cache_.slot[i].valid) continue;  // restored or duplicate entry
      set_slot_cache(i, CompCache{slot_component(vars[i]), true});
    }
    if (!cache_.heap.valid || cache_.heap_epoch_seen != heap.epoch()) {
      set_heap_cache(CompCache{heap_component(), true});
    }
  }
  return combine(cache_.acc, fsm_state);
}

void MachineState::rebuild_cache() const {
  cache_.slot.assign(vars.size(), CompCache{});
  cache_.dirty.clear();
  cache_.acc = 0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (pointer_bearing(i)) continue;
    cache_.slot[i] = CompCache{slot_component(vars[i]), true};
    cache_.acc ^= place64(i, cache_.slot[i].hash);
  }
  cache_.heap = CompCache{heap_component(), true};
  cache_.heap_epoch_seen = heap.epoch();
  cache_.acc ^= place64(vars.size(), cache_.heap.hash);
  cache_.ready = true;
}

void MachineState::set_slot_cache(std::size_t slot, CompCache next) const {
  cache_.acc ^= place64(slot, cache_.slot[slot].hash) ^
                place64(slot, next.hash);
  cache_.slot[slot] = next;
}

void MachineState::set_heap_cache(CompCache next) const {
  cache_.acc ^= place64(vars.size(), cache_.heap.hash) ^
                place64(vars.size(), next.hash);
  cache_.heap = next;
  cache_.heap_epoch_seen = heap.epoch();
}

void MachineState::set_pointer_flags(std::vector<char> flags) {
  pointer_flags_ = std::move(flags);
  cache_.ready = false;  // classification changed; cache layout with it
}

void MachineState::note_var_write(int slot) {
  if (!cache_live()) return;
  const auto i = static_cast<std::size_t>(slot);
  if (pointer_bearing(i)) {
    // The store can change which cells are reachable even though no heap
    // cell's content moved (and the heap epoch therefore did not).
    cache_.heap.valid = false;
    return;
  }
  if (cache_.slot[i].valid) {
    cache_.slot[i].valid = false;
    cache_.dirty.push_back(static_cast<std::uint32_t>(i));
  }
}

CompCache MachineState::var_cache_entry(int slot) const {
  if (!cache_live()) return CompCache{};
  const auto i = static_cast<std::size_t>(slot);
  if (pointer_bearing(i)) return heap_cache_entry();
  return cache_.slot[i];
}

void MachineState::restore_var_cache(int slot, const CompCache& prior) {
  if (!cache_live()) return;
  const auto i = static_cast<std::size_t>(slot);
  if (pointer_bearing(i)) {
    restore_heap_cache(prior);
    return;
  }
  set_slot_cache(i, prior);
  if (!prior.valid) cache_.dirty.push_back(static_cast<std::uint32_t>(i));
}

CompCache MachineState::heap_cache_entry() const {
  if (!cache_live()) return CompCache{};
  return CompCache{cache_.heap.hash,
                   cache_.heap.valid &&
                       cache_.heap_epoch_seen == heap.epoch()};
}

void MachineState::restore_heap_cache(const CompCache& prior) {
  if (!cache_live()) return;
  // Re-syncs heap_epoch_seen: the undone heap matches `prior` again (an
  // invalid prior just forces the recompute it already forced at log
  // time).
  set_heap_cache(prior);
}

MachineState make_initial_machine(const est::Spec& spec) {
  MachineState m;
  m.vars.reserve(spec.module_vars.size());
  std::vector<char> flags;
  flags.reserve(spec.module_vars.size());
  for (const est::ModuleVarInfo& var : spec.module_vars) {
    m.vars.push_back(default_value(var.type));
    flags.push_back(type_contains_pointer(var.type) ? 1 : 0);
  }
  m.set_pointer_flags(std::move(flags));
  return m;
}

}  // namespace tango::rt
