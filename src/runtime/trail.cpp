#include "runtime/trail.hpp"

#include "runtime/heap.hpp"

namespace tango::rt {

void Trail::log_fsm(int old_state) {
  affinity_.bind_or_check();
  Entry e;
  e.kind = Kind::Fsm;
  e.fsm_old = old_state;
  entries_.push_back(std::move(e));
  ++total_logged_;
}

void Trail::log_var(int slot, const Value& old_value, CompCache prior) {
  affinity_.bind_or_check();
  Entry e;
  e.kind = Kind::Var;
  e.index = static_cast<std::uint32_t>(slot);
  e.old = old_value;
  e.cache = prior;
  entries_.push_back(std::move(e));
  ++total_logged_;
}

void Trail::log_heap_write(std::uint32_t addr, const Value& old_value,
                           CompCache prior) {
  affinity_.bind_or_check();
  Entry e;
  e.kind = Kind::HeapWrite;
  e.index = addr;
  e.old = old_value;
  e.cache = prior;
  entries_.push_back(std::move(e));
  ++total_logged_;
}

void Trail::log_heap_alloc(std::uint32_t addr, CompCache prior) {
  affinity_.bind_or_check();
  Entry e;
  e.kind = Kind::HeapAlloc;
  e.index = addr;
  e.cache = prior;
  entries_.push_back(std::move(e));
  ++total_logged_;
}

void Trail::log_heap_release(std::uint32_t addr, Value old_value,
                             CompCache prior) {
  affinity_.bind_or_check();
  Entry e;
  e.kind = Kind::HeapRelease;
  e.index = addr;
  e.old = std::move(old_value);
  e.cache = prior;
  entries_.push_back(std::move(e));
  ++total_logged_;
}

void Trail::undo_to(Mark m, MachineState& state) {
  affinity_.bind_or_check();
  // Each revert reinstates the hash-cache entry its mutation clobbered;
  // undone newest-first, the oldest entry's snapshot lands last, which is
  // exactly the cache as of the mark — restore stays hash-free.
  while (entries_.size() > m) {
    Entry& e = entries_.back();
    switch (e.kind) {
      case Kind::Fsm:
        state.fsm_state = e.fsm_old;
        break;
      case Kind::Var:
        state.vars[e.index] = std::move(e.old);
        state.restore_var_cache(static_cast<int>(e.index), e.cache);
        break;
      case Kind::HeapWrite: {
        Value* cell = state.heap.cell(e.index);
        // The cell must be live: an alloc/release of the same address
        // logged *after* this write has already been undone.
        if (cell != nullptr) *cell = std::move(e.old);
        state.restore_heap_cache(e.cache);
        break;
      }
      case Kind::HeapAlloc:
        state.heap.revert_allocate(e.index);
        state.restore_heap_cache(e.cache);
        break;
      case Kind::HeapRelease:
        state.heap.revert_release(e.index, std::move(e.old));
        state.restore_heap_cache(e.cache);
        break;
    }
    entries_.pop_back();
  }
}

}  // namespace tango::rt
