#include "runtime/interp.hpp"

#include <utility>

namespace tango::rt {

namespace {

using est::BinOp;
using est::Builtin;
using est::Expr;
using est::ExprKind;
using est::NameRef;
using est::Stmt;
using est::StmtKind;
using est::Type;
using est::TypeKind;
using est::UnOp;

/// Thrown when the sink vetoes an output; unwinds the whole firing.
struct PathAbort {};

struct Frame {
  struct Slot {
    Value v;
    Value* ref = nullptr;  // set for var-parameters
  };
  std::vector<Slot> slots;
  const std::vector<Value>* when_params = nullptr;

  Value& slot_value(int i) {
    Slot& s = slots[static_cast<std::size_t>(i)];
    return s.ref != nullptr ? *s.ref : s.v;
  }
};

class Exec {
 public:
  Exec(const est::Spec& spec, MachineState& m, EvalMode mode,
       const InterpLimits& limits, OutputSink* sink, bool read_only,
       Trail* trail = nullptr)
      : spec_(spec),
        m_(m),
        mode_(mode),
        limits_(limits),
        sink_(sink),
        read_only_(read_only),
        trail_(trail),
        budget_(limits.max_statements) {}

  void init_locals(Frame& f, const std::vector<est::VarDecl>& decls) {
    for (const est::VarDecl& d : decls) {
      for (std::size_t i = 0; i < d.names.size(); ++i) {
        f.slots[static_cast<std::size_t>(d.first_slot) + i].v =
            default_value(d.type->resolved);
      }
    }
  }

  // -----------------------------------------------------------------
  // Statements
  // -----------------------------------------------------------------
  void exec(const Stmt& s, Frame& f) {
    if (budget_ == 0) {
      throw RuntimeFault(s.loc,
                         "statement budget exceeded: possible infinite loop "
                         "in a transition block (non-progress within update)");
    }
    --budget_;
    switch (s.kind) {
      case StmtKind::Empty:
        return;
      case StmtKind::Compound:
        for (const est::StmtPtr& c : s.body) exec(*c, f);
        return;
      case StmtKind::Assign: {
        Value v = eval(*s.e1, f);
        Value* dst = lvalue(*s.e0, f);
        range_check(s.e0->type, v, s.loc);
        *dst = std::move(v);
        return;
      }
      case StmtKind::If:
        if (need_bool(eval(*s.e0, f), s.e0->loc)) {
          exec(*s.s0, f);
        } else if (s.s1) {
          exec(*s.s1, f);
        }
        return;
      case StmtKind::While:
        while (need_bool(eval(*s.e0, f), s.e0->loc)) {
          if (budget_ == 0) {
            throw RuntimeFault(s.loc, "statement budget exceeded in while");
          }
          --budget_;
          exec(*s.s0, f);
        }
        return;
      case StmtKind::Repeat:
        do {
          for (const est::StmtPtr& c : s.body) exec(*c, f);
          if (budget_ == 0) {
            throw RuntimeFault(s.loc, "statement budget exceeded in repeat");
          }
          --budget_;
        } while (!need_bool(eval(*s.e0, f), s.e0->loc));
        return;
      case StmtKind::For: {
        const std::int64_t from = need_scalar(eval(*s.e1, f), s.e1->loc);
        const std::int64_t to = need_scalar(eval(*s.args[0], f),
                                            s.args[0]->loc);
        Value* var = lvalue(*s.e0, f);
        if (s.downto) {
          for (std::int64_t i = from; i >= to; --i) {
            *var = Value::make_int(i);
            exec(*s.s0, f);
          }
        } else {
          for (std::int64_t i = from; i <= to; ++i) {
            *var = Value::make_int(i);
            exec(*s.s0, f);
          }
        }
        return;
      }
      case StmtKind::Case: {
        const std::int64_t sel = need_scalar(eval(*s.e0, f), s.e0->loc);
        for (const est::CaseArm& arm : s.arms) {
          for (std::int64_t label : arm.label_values) {
            if (label == sel) {
              exec(*arm.body, f);
              return;
            }
          }
        }
        if (s.has_otherwise) {
          for (const est::StmtPtr& c : s.otherwise) exec(*c, f);
          return;
        }
        throw RuntimeFault(s.loc, "case selector matches no label");
      }
      case StmtKind::Call:
        exec_call(s, f);
        return;
      case StmtKind::Output:
        exec_output(s, f);
        return;
    }
  }

  // -----------------------------------------------------------------
  // Expressions
  // -----------------------------------------------------------------
  Value eval(const Expr& e, Frame& f) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return Value::make_int(e.int_value);
      case ExprKind::BoolLit:
        return Value::make_bool(e.int_value != 0);
      case ExprKind::CharLit:
        return Value::make_char(static_cast<char>(e.int_value));
      case ExprKind::NilLit:
        return Value::nil();
      case ExprKind::Name:
        return eval_name(e, f);
      case ExprKind::Field: {
        Value base = eval(*e.children[0], f);
        if (base.is_undefined()) {
          if (mode_ == EvalMode::Partial) return Value{};
          throw RuntimeFault(e.loc, "field access on undefined record");
        }
        return base.elems().at(static_cast<std::size_t>(e.field_index));
      }
      case ExprKind::Index: {
        Value base = eval(*e.children[0], f);
        const std::int64_t ix =
            need_scalar(eval(*e.children[1], f), e.children[1]->loc);
        const Type* at = e.children[0]->type;
        if (ix < at->lo || ix > at->hi) {
          throw RuntimeFault(e.loc, "array index " + std::to_string(ix) +
                                        " out of bounds " +
                                        std::to_string(at->lo) + ".." +
                                        std::to_string(at->hi));
        }
        if (base.is_undefined()) {
          if (mode_ == EvalMode::Partial) return Value{};
          throw RuntimeFault(e.loc, "indexing an undefined array");
        }
        return base.elems().at(static_cast<std::size_t>(ix - at->lo));
      }
      case ExprKind::Deref: {
        Value p = eval(*e.children[0], f);
        if (p.is_undefined()) {
          if (mode_ == EvalMode::Partial) return Value{};
          throw RuntimeFault(e.loc, "dereference of undefined pointer");
        }
        return *deref_const(p, e.loc);
      }
      case ExprKind::Unary: {
        Value v = eval(*e.children[0], f);
        switch (e.un_op) {
          case UnOp::Plus:
            return v;
          case UnOp::Neg:
            if (v.is_undefined()) return undef_or_fault(e.loc);
            return Value::make_int(-v.scalar());
          case UnOp::Not:
            if (v.is_undefined()) return undef_or_fault(e.loc);
            return Value::make_bool(!v.as_bool());
        }
        break;
      }
      case ExprKind::Binary:
        return eval_binary(e, f);
      case ExprKind::Call:
        return eval_call(e, f);
    }
    throw RuntimeFault(e.loc, "internal: unhandled expression");
  }

  Value* lvalue(const Expr& e, Frame& f) {
    switch (e.kind) {
      case ExprKind::Name:
        switch (e.ref) {
          case NameRef::ModuleVar: {
            check_writable(e.loc, "module variable");
            // Log the whole root slot: a field/index lvalue resolves
            // through here first, and a slot index stays valid however the
            // value is later reassigned (interior pointers would not).
            Value* root = &m_.vars[static_cast<std::size_t>(e.slot)];
            if (trail_ != nullptr) {
              trail_->log_var(e.slot, *root, m_.var_cache_entry(e.slot));
            }
            m_.note_var_write(e.slot);
            return root;
          }
          case NameRef::Local:
            return &f.slot_value(e.slot);
          default:
            throw RuntimeFault(e.loc, "'" + e.name + "' is not assignable");
        }
      case ExprKind::Field: {
        Value* base = lvalue(*e.children[0], f);
        if (base->is_undefined()) {
          throw RuntimeFault(e.loc, "field access on undefined record");
        }
        return &base->elems().at(static_cast<std::size_t>(e.field_index));
      }
      case ExprKind::Index: {
        Value* base = lvalue(*e.children[0], f);
        const std::int64_t ix =
            need_scalar(eval(*e.children[1], f), e.children[1]->loc);
        const Type* at = e.children[0]->type;
        if (ix < at->lo || ix > at->hi) {
          throw RuntimeFault(e.loc, "array index " + std::to_string(ix) +
                                        " out of bounds");
        }
        if (base->is_undefined()) {
          throw RuntimeFault(e.loc, "indexing an undefined array");
        }
        return &base->elems().at(static_cast<std::size_t>(ix - at->lo));
      }
      case ExprKind::Deref: {
        check_writable(e.loc, "dynamic memory");
        Value p = eval(*e.children[0], f);
        if (p.is_undefined()) {
          throw RuntimeFault(e.loc, "dereference of undefined pointer");
        }
        // Capture the cache entry before deref(): the non-const cell
        // lookup bumps the heap epoch for the write about to happen.
        const CompCache heap_prior = m_.heap_cache_entry();
        Value* cell = deref(p, e.loc);
        if (trail_ != nullptr) {
          trail_->log_heap_write(p.address(), *cell, heap_prior);
        }
        return cell;
      }
      default:
        throw RuntimeFault(e.loc, "expression is not assignable");
    }
  }

  std::uint64_t budget() const { return budget_; }

 private:
  Value undef_or_fault(SourceLoc loc) {
    if (mode_ == EvalMode::Partial) return Value{};
    throw RuntimeFault(loc, "use of an undefined value (strict mode)");
  }

  /// Extracts a defined scalar payload; undefined faults in BOTH modes —
  /// callers are the contexts where the paper says partial analysis cannot
  /// proceed (branch conditions, array indexes, loop bounds; §5.3–§5.4).
  std::int64_t need_scalar(const Value& v, SourceLoc loc) {
    if (v.is_undefined()) {
      if (mode_ == EvalMode::Partial) {
        throw RuntimeFault(
            loc,
            "an undefined value controls a branch, loop or index; apply the "
            "normal-form transformation first (paper §5.3)");
      }
      throw RuntimeFault(loc, "use of an undefined value (strict mode)");
    }
    return v.scalar();
  }

  bool need_bool(const Value& v, SourceLoc loc) {
    return need_scalar(v, loc) != 0;
  }

  Value* deref(const Value& p, SourceLoc loc) {
    if (p.address() == 0) {
      throw RuntimeFault(loc, "nil pointer dereference");
    }
    Value* cell = m_.heap.cell(p.address());
    if (cell == nullptr) {
      throw RuntimeFault(loc, "dangling pointer (cell was disposed)");
    }
    return cell;
  }

  /// Read-side deref: const cell lookup, so evaluating `p^` does not bump
  /// the heap epoch (which would dirty the incremental hash's heap
  /// component on every pointer read).
  const Value* deref_const(const Value& p, SourceLoc loc) {
    if (p.address() == 0) {
      throw RuntimeFault(loc, "nil pointer dereference");
    }
    const Heap& heap = m_.heap;
    const Value* cell = heap.cell(p.address());
    if (cell == nullptr) {
      throw RuntimeFault(loc, "dangling pointer (cell was disposed)");
    }
    return cell;
  }

  void check_writable(SourceLoc loc, const char* what) {
    if (read_only_) {
      throw RuntimeFault(loc, std::string("provided clauses must be "
                                          "side-effect free: attempted to "
                                          "modify ") +
                                  what);
    }
  }

  void range_check(const Type* target, const Value& v, SourceLoc loc) {
    if (target != nullptr && target->kind == TypeKind::Subrange &&
        !v.is_undefined() && (v.scalar() < target->lo ||
                              v.scalar() > target->hi)) {
      throw RuntimeFault(loc, "value " + std::to_string(v.scalar()) +
                                  " outside subrange " +
                                  std::to_string(target->lo) + ".." +
                                  std::to_string(target->hi));
    }
  }

  Value eval_name(const Expr& e, Frame& f) {
    switch (e.ref) {
      case NameRef::ModuleVar:
        return m_.vars[static_cast<std::size_t>(e.slot)];
      case NameRef::Local:
        return f.slot_value(e.slot);
      case NameRef::WhenParam:
        if (f.when_params == nullptr) {
          throw RuntimeFault(e.loc, "internal: when-parameter outside "
                                    "transition scope");
        }
        return (*f.when_params)[static_cast<std::size_t>(e.slot)];
      case NameRef::ConstInt:
        return Value::make_int(e.int_value);
      case NameRef::ConstBool:
        return Value::make_bool(e.int_value != 0);
      case NameRef::ConstChar:
        return Value::make_char(static_cast<char>(e.int_value));
      case NameRef::EnumConst:
        return Value::make_enum(e.type, e.int_value);
      case NameRef::Call0:
        return call_routine(routine(e.slot), {}, f, e.loc);
      case NameRef::Unresolved:
        break;
    }
    throw RuntimeFault(e.loc, "internal: unresolved name '" + e.name + "'");
  }

  Value eval_binary(const Expr& e, Frame& f) {
    Value a = eval(*e.children[0], f);

    // Kleene three-valued logic for and/or so that partial mode gets the
    // paper's "assume true" behaviour without losing definite answers.
    if (e.bin_op == BinOp::And || e.bin_op == BinOp::Or) {
      Value b = eval(*e.children[1], f);
      const bool is_or = e.bin_op == BinOp::Or;
      if (!a.is_undefined() && a.as_bool() == is_or) {
        return Value::make_bool(is_or);
      }
      if (!b.is_undefined() && b.as_bool() == is_or) {
        return Value::make_bool(is_or);
      }
      if (a.is_undefined() || b.is_undefined()) return undef_or_fault(e.loc);
      return Value::make_bool(is_or ? (a.as_bool() || b.as_bool())
                                    : (a.as_bool() && b.as_bool()));
    }

    Value b = eval(*e.children[1], f);
    if (a.is_undefined() || b.is_undefined()) return undef_or_fault(e.loc);

    const std::int64_t x = a.scalar();
    const std::int64_t y = b.scalar();
    switch (e.bin_op) {
      case BinOp::Add: return Value::make_int(x + y);
      case BinOp::Sub: return Value::make_int(x - y);
      case BinOp::Mul: return Value::make_int(x * y);
      case BinOp::IntDiv:
        if (y == 0) throw RuntimeFault(e.loc, "division by zero");
        return Value::make_int(x / y);
      case BinOp::Mod:
        if (y == 0) throw RuntimeFault(e.loc, "mod by zero");
        return Value::make_int(((x % y) + y) % y);
      case BinOp::Eq: return Value::make_bool(x == y);
      case BinOp::Neq: return Value::make_bool(x != y);
      case BinOp::Lt: return Value::make_bool(x < y);
      case BinOp::Leq: return Value::make_bool(x <= y);
      case BinOp::Gt: return Value::make_bool(x > y);
      case BinOp::Geq: return Value::make_bool(x >= y);
      case BinOp::And:
      case BinOp::Or:
        break;  // handled above
    }
    throw RuntimeFault(e.loc, "internal: unhandled operator");
  }

  Value eval_call(const Expr& e, Frame& f) {
    if (e.builtin != Builtin::None) {
      Value v = eval(*e.children[0], f);
      if (v.is_undefined()) return undef_or_fault(e.loc);
      switch (e.builtin) {
        case Builtin::Ord: return Value::make_int(v.scalar());
        case Builtin::Chr:
          return Value::make_char(static_cast<char>(v.scalar()));
        case Builtin::Abs:
          return Value::make_int(v.scalar() < 0 ? -v.scalar() : v.scalar());
        case Builtin::Odd:
          return Value::make_bool((v.scalar() & 1) != 0);
        case Builtin::Succ:
        case Builtin::Pred: {
          const std::int64_t d = e.builtin == Builtin::Succ ? 1 : -1;
          const std::int64_t nv = v.scalar() + d;
          if (v.kind() == Value::Kind::Enum) {
            const auto limit = static_cast<std::int64_t>(
                v.enum_type()->enum_values.size());
            if (nv < 0 || nv >= limit) {
              throw RuntimeFault(e.loc, "succ/pred out of enum range");
            }
            return Value::make_enum(v.enum_type(), nv);
          }
          if (v.kind() == Value::Kind::Char) {
            return Value::make_char(static_cast<char>(nv));
          }
          if (v.kind() == Value::Kind::Bool) {
            if (nv < 0 || nv > 1) {
              throw RuntimeFault(e.loc, "succ/pred out of boolean range");
            }
            return Value::make_bool(nv != 0);
          }
          return Value::make_int(nv);
        }
        default:
          throw RuntimeFault(e.loc, "internal: bad builtin in expression");
      }
    }
    return call_routine(routine(e.routine_index), e.children, f, e.loc);
  }

  const est::Routine& routine(int index) const {
    return spec_.body().routines[static_cast<std::size_t>(index)];
  }

  Value call_routine(const est::Routine& r,
                     const std::vector<est::ExprPtr>& args, Frame& caller,
                     SourceLoc loc) {
    if (depth_ >= limits_.max_call_depth) {
      throw RuntimeFault(loc, "call depth limit exceeded (runaway recursion "
                              "in '" + r.name + "')");
    }
    Frame f;
    f.slots.resize(static_cast<std::size_t>(r.frame_size));
    std::size_t slot = 0;
    for (std::size_t i = 0; i < args.size(); ++i, ++slot) {
      if (r.param_by_ref[i]) {
        f.slots[slot].ref = lvalue(*args[i], caller);
      } else {
        f.slots[slot].v = eval(*args[i], caller);
        range_check(r.param_types[i], f.slots[slot].v, args[i]->loc);
      }
    }
    init_locals(f, r.locals);
    ++depth_;
    exec(*r.body, f);
    --depth_;
    return r.is_function
               ? f.slots[static_cast<std::size_t>(r.result_slot)].v
               : Value{};
  }

  void exec_call(const Stmt& s, Frame& f) {
    if (s.builtin == Builtin::New) {
      check_writable(s.loc, "dynamic memory");
      Value* p = lvalue(*s.args[0], f);
      const Type* pt = s.args[0]->type;  // pointer type
      const CompCache heap_prior = m_.heap_cache_entry();  // pre-alloc
      const std::uint32_t addr = m_.heap.allocate(default_value(pt->pointee));
      if (trail_ != nullptr) trail_->log_heap_alloc(addr, heap_prior);
      *p = Value::make_pointer(addr);
      return;
    }
    if (s.builtin == Builtin::Dispose) {
      check_writable(s.loc, "dynamic memory");
      Value* p = lvalue(*s.args[0], f);
      if (p->is_undefined()) {
        throw RuntimeFault(s.loc, "dispose of an undefined pointer");
      }
      if (p->address() == 0) {
        throw RuntimeFault(s.loc, "dispose of nil");
      }
      const std::uint32_t addr = p->address();
      const CompCache heap_prior = m_.heap_cache_entry();  // pre-release
      Value* cell = m_.heap.cell(addr);
      if (cell == nullptr) {
        // The analyzer surfaces this fault as an Invalid verdict with the
        // note attached — a spec bug in the dynamic-memory discipline, not
        // a mismatch between trace and behaviour.
        throw RuntimeFault(s.loc,
                           "double dispose: cell ^" + std::to_string(addr) +
                               " was already released (dispose of a dangling "
                               "pointer)");
      }
      if (trail_ != nullptr) {
        trail_->log_heap_release(addr, std::move(*cell), heap_prior);
      }
      m_.heap.release(addr);
      *p = Value{};  // Pascal leaves the pointer undefined
      return;
    }
    call_routine(routine(s.routine_index), s.args, f, s.loc);
  }

  void exec_output(const Stmt& s, Frame& f) {
    if (read_only_ || sink_ == nullptr) {
      throw RuntimeFault(s.loc,
                         "output statement not allowed in this context");
    }
    std::vector<Value> params;
    params.reserve(s.args.size());
    for (const est::ExprPtr& a : s.args) params.push_back(eval(*a, f));
    if (!sink_->on_output(s.ip_index, s.interaction_id, std::move(params),
                          s.loc)) {
      throw PathAbort{};
    }
  }

  const est::Spec& spec_;
  MachineState& m_;
  EvalMode mode_;
  const InterpLimits& limits_;
  OutputSink* sink_;
  bool read_only_;
  Trail* trail_;
  std::uint64_t budget_;
  int depth_ = 0;
};

}  // namespace

Interp::Interp(const est::Spec& spec, EvalMode mode, InterpLimits limits)
    : spec_(spec), mode_(mode), limits_(limits) {}

bool Interp::run_initializer(MachineState& m, const est::Initializer& init,
                             OutputSink& sink, Trail* trail) {
  Exec exec(spec_, m, mode_, limits_, &sink, /*read_only=*/false, trail);
  Frame f;
  f.slots.resize(static_cast<std::size_t>(init.frame_size));
  exec.init_locals(f, init.locals);
  try {
    if (init.block) exec.exec(*init.block, f);
  } catch (const PathAbort&) {
    return false;
  }
  if (trail != nullptr) trail->log_fsm(m.fsm_state);
  m.fsm_state = init.to_ordinal;
  return true;
}

bool Interp::fire(MachineState& m, const est::Transition& tr,
                  const std::vector<Value>& when_args, OutputSink& sink,
                  Trail* trail) {
  Exec exec(spec_, m, mode_, limits_, &sink, /*read_only=*/false, trail);
  Frame f;
  f.slots.resize(static_cast<std::size_t>(tr.frame_size));
  f.when_params = &when_args;
  exec.init_locals(f, tr.locals);
  try {
    exec.exec(*tr.block, f);
  } catch (const PathAbort&) {
    return false;
  }
  if (tr.to_ordinal >= 0) {
    if (trail != nullptr) trail->log_fsm(m.fsm_state);
    m.fsm_state = tr.to_ordinal;
  }
  return true;
}

bool Interp::provided_holds(MachineState& m, const est::Transition& tr,
                            const std::vector<Value>& when_args) {
  if (!tr.provided) return true;
  Exec exec(spec_, m, mode_, limits_, nullptr, /*read_only=*/true);
  Frame f;
  f.slots.resize(static_cast<std::size_t>(tr.frame_size));
  f.when_params = &when_args;
  Value v = exec.eval(*tr.provided, f);
  if (v.is_undefined()) {
    if (mode_ == EvalMode::Partial) return true;  // paper §5.1
    throw RuntimeFault(tr.provided->loc,
                       "provided clause evaluates to an undefined value "
                       "(strict mode)");
  }
  return v.as_bool();
}

bool Interp::provided_holds(MachineState& m, const est::Initializer& init) {
  if (!init.provided) return true;
  Exec exec(spec_, m, mode_, limits_, nullptr, /*read_only=*/true);
  Frame f;
  f.slots.resize(static_cast<std::size_t>(init.frame_size));
  Value v = exec.eval(*init.provided, f);
  if (v.is_undefined()) {
    if (mode_ == EvalMode::Partial) return true;
    throw RuntimeFault(init.provided->loc,
                       "initialize provided clause evaluates to an undefined "
                       "value (strict mode)");
  }
  return v.as_bool();
}

}  // namespace tango::rt
