// The module-state part of a TAM state (paper §2.3): the Estelle FSM state
// as an ordinal, the module variables, and the dynamic memory. Trace-queue
// cursors live in core/search_state.hpp; together they form the full
// composite search state.
#pragma once

#include <cstdint>
#include <vector>

#include "estelle/spec.hpp"
#include "runtime/heap.hpp"
#include "runtime/value.hpp"

namespace tango::rt {

struct MachineState {
  int fsm_state = -1;  // -1 before the initialize transition has fired
  std::vector<Value> vars;
  Heap heap;

  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h ^= static_cast<std::uint64_t>(fsm_state) * 0x100000001b3ULL;
    for (const Value& v : vars) v.hash_into(h);
    heap.hash_into(h);
    return h;
  }
};

/// Fresh machine: every module variable gets its type's default value
/// (structure in place, scalar leaves undefined), no FSM state yet.
[[nodiscard]] MachineState make_initial_machine(const est::Spec& spec);

}  // namespace tango::rt
