// The module-state part of a TAM state (paper §2.3): the Estelle FSM state
// as an ordinal, the module variables, and the dynamic memory. Trace-queue
// cursors live in core/search_state.hpp; together they form the full
// composite search state.
//
// State hashing comes in two bit-identical flavours:
//
//   hash()        — the full recursive walk (the differential oracle).
//   hash_cached() — the incremental path: per-component hashes kept
//                   current by the same mutation hooks that feed
//                   rt::Trail, combined in O(dirty) instead of O(state).
//
// The state decomposes into independent components, XOR-folded under a
// position salt (support/hash.hpp):
//
//   * one component per pointer-free module variable (a pure value-tree
//     hash — no heap access, so a store to slot i dirties only slot i);
//   * ONE joint component for every pointer-bearing variable plus the
//     heap, hashed by pointer reachability with addresses renumbered in
//     first-visit order (DESIGN.md §4). Pointer roots must share one
//     canonicalization pass or cross-root aliasing would stop being
//     observable, so they degrade together: any heap mutation (tracked by
//     Heap::epoch()) or store to a pointer-bearing root rehashes the
//     whole component;
//   * the FSM ordinal, mixed fresh at combine time (O(1), never cached —
//     engines overwrite fsm_state directly for §2.4.1 root enumeration).
//
// The cache invariant: once built, `acc` always equals the XOR-fold of
// the *cached* component values, valid or stale. Mutation hooks only flip
// validity; everything that changes a cached value (recompute, trail
// restore) patches `acc` in the same step. Trail entries snapshot the
// component entry they clobber, so Checkpointer::restore is hash-free.
#pragma once

#include <cstdint>
#include <vector>

#include "estelle/spec.hpp"
#include "runtime/heap.hpp"
#include "runtime/value.hpp"

namespace tango::rt {

/// One cached component hash. `valid` false means the value is stale and
/// the component must be rehashed before the next combine.
struct CompCache {
  std::uint64_t hash = 0;
  bool valid = false;
};

struct MachineState {
  int fsm_state = -1;  // -1 before the initialize transition has fired
  std::vector<Value> vars;
  Heap heap;

  /// Canonical state hash for §4.2 visited-state pruning, computed by a
  /// full recursive walk. Heap cells are hashed in pointer-reachability
  /// order from the module variables, with addresses renumbered by
  /// first-visit order, so two runs that reach structurally identical
  /// states through different new/dispose interleavings hash equal even
  /// though their absolute addresses differ. Never touches the cache —
  /// this is the oracle the incremental path is asserted against.
  [[nodiscard]] std::uint64_t hash() const;

  /// Incremental hash: identical value to hash(), but untouched
  /// components reuse their cached subhash. First call builds the cache
  /// (one full walk); later calls rehash only what the mutation hooks
  /// dirtied since.
  [[nodiscard]] std::uint64_t hash_cached() const;

  /// Per-slot pointer classification (true = the slot's type can reach
  /// the heap). Filled from the spec by make_initial_machine; when the
  /// flags are absent (hand-built states), every slot is conservatively
  /// treated as pointer-bearing.
  void set_pointer_flags(std::vector<char> flags);

  // --- mutation hooks (the interpreter and trail call these) ---

  /// Module variable `slot` is about to be (or may be) written. Dirties
  /// the slot's component — or the joint heap component when the slot is
  /// pointer-bearing, since the store can change reachability.
  void note_var_write(int slot);

  /// Cache entry a Trail var entry for `slot` must restore (the heap
  /// component's entry when the slot is pointer-bearing). Capture BEFORE
  /// the mutation dirties anything.
  [[nodiscard]] CompCache var_cache_entry(int slot) const;

  /// Undo of note_var_write + the write itself: reinstates the entry
  /// captured by var_cache_entry (the restored value matches it again).
  void restore_var_cache(int slot, const CompCache& prior);

  /// Cache entry a Trail heap entry must restore. Validity accounts for
  /// the current Heap::epoch(), so capture BEFORE the mutation bumps it.
  [[nodiscard]] CompCache heap_cache_entry() const;

  /// Undo of one heap mutation: reinstates the captured entry and re-syncs
  /// the cached epoch (the heap content matches the entry again).
  void restore_heap_cache(const CompCache& prior);

 private:
  struct HashCache {
    std::vector<CompCache> slot;  // pointer-free slots only; others unused
    CompCache heap;               // joint pointer-roots + heap component
    std::uint64_t heap_epoch_seen = 0;
    std::uint64_t acc = 0;        // XOR-fold of place64()-mapped components
    std::vector<std::uint32_t> dirty;  // pointer-free slots to rehash
    bool ready = false;
  };

  [[nodiscard]] bool pointer_bearing(std::size_t slot) const {
    return slot >= pointer_flags_.size() || pointer_flags_[slot] != 0;
  }
  /// Hooks no-op until the first hash_cached() builds the cache (and
  /// after structural changes a hand-built test state may make).
  [[nodiscard]] bool cache_live() const {
    return cache_.ready && cache_.slot.size() == vars.size();
  }
  [[nodiscard]] std::uint64_t heap_component() const;
  void rebuild_cache() const;
  void set_slot_cache(std::size_t slot, CompCache next) const;
  void set_heap_cache(CompCache next) const;

  std::vector<char> pointer_flags_;
  mutable HashCache cache_;
};

/// Fresh machine: every module variable gets its type's default value
/// (structure in place, scalar leaves undefined), no FSM state yet.
[[nodiscard]] MachineState make_initial_machine(const est::Spec& spec);

}  // namespace tango::rt
