// The module-state part of a TAM state (paper §2.3): the Estelle FSM state
// as an ordinal, the module variables, and the dynamic memory. Trace-queue
// cursors live in core/search_state.hpp; together they form the full
// composite search state.
#pragma once

#include <cstdint>
#include <vector>

#include "estelle/spec.hpp"
#include "runtime/heap.hpp"
#include "runtime/value.hpp"

namespace tango::rt {

struct MachineState {
  int fsm_state = -1;  // -1 before the initialize transition has fired
  std::vector<Value> vars;
  Heap heap;

  /// Canonical state hash for §4.2 visited-state pruning. Heap cells are
  /// hashed in pointer-reachability order from the module variables, with
  /// addresses renumbered by first-visit order, so two runs that reach
  /// structurally identical states through different new/dispose
  /// interleavings hash equal even though their absolute addresses differ.
  [[nodiscard]] std::uint64_t hash() const;
};

/// Fresh machine: every module variable gets its type's default value
/// (structure in place, scalar leaves undefined), no FSM state yet.
[[nodiscard]] MachineState make_initial_machine(const est::Spec& spec);

}  // namespace tango::rt
