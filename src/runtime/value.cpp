#include "runtime/value.hpp"

namespace tango::rt {

Value Value::make_int(std::int64_t v) {
  Value out;
  out.kind_ = Kind::Int;
  out.scalar_ = v;
  return out;
}

Value Value::make_bool(bool v) {
  Value out;
  out.kind_ = Kind::Bool;
  out.scalar_ = v ? 1 : 0;
  return out;
}

Value Value::make_char(char v) {
  Value out;
  out.kind_ = Kind::Char;
  out.scalar_ = static_cast<unsigned char>(v);
  return out;
}

Value Value::make_enum(const est::Type* enum_type, std::int64_t ordinal) {
  Value out;
  out.kind_ = Kind::Enum;
  out.scalar_ = ordinal;
  out.enum_type_ = enum_type;
  return out;
}

Value Value::make_pointer(std::uint32_t addr) {
  Value out;
  out.kind_ = Kind::Pointer;
  out.scalar_ = addr;
  return out;
}

Value Value::make_record(std::vector<Value> fields) {
  Value out;
  out.kind_ = Kind::Record;
  out.elems_ = std::move(fields);
  return out;
}

Value Value::make_array(std::vector<Value> elems) {
  Value out;
  out.kind_ = Kind::Array;
  out.elems_ = std::move(elems);
  return out;
}

void Value::hash_into(std::uint64_t& h) const {
  auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(kind_));
  if (is_scalar()) {
    mix(static_cast<std::uint64_t>(scalar_));
  } else {
    mix(elems_.size());
    for (const Value& e : elems_) e.hash_into(h);
  }
}

std::string Value::to_string() const {
  switch (kind_) {
    case Kind::Undefined:
      return "_";
    case Kind::Int:
      return std::to_string(scalar_);
    case Kind::Bool:
      return scalar_ != 0 ? "true" : "false";
    case Kind::Char:
      return std::string("'") + static_cast<char>(scalar_) + "'";
    case Kind::Enum:
      if (enum_type_ != nullptr && scalar_ >= 0 &&
          scalar_ < static_cast<std::int64_t>(
                        enum_type_->enum_values.size())) {
        return enum_type_->enum_values[static_cast<std::size_t>(scalar_)];
      }
      return "enum#" + std::to_string(scalar_);
    case Kind::Pointer:
      return scalar_ == 0 ? "nil" : "^" + std::to_string(scalar_);
    case Kind::Record: {
      std::string out = "{";
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        if (i != 0) out += ", ";
        out += elems_[i].to_string();
      }
      return out + "}";
    }
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        if (i != 0) out += ", ";
        out += elems_[i].to_string();
      }
      return out + "]";
    }
  }
  return "?";
}

bool equals(const Value& a, const Value& b, bool undefined_wildcard) {
  if (undefined_wildcard && (a.is_undefined() || b.is_undefined())) {
    return true;
  }
  if (a.kind() != b.kind()) return false;
  if (a.is_scalar()) return a.scalar() == b.scalar();
  const auto& ae = a.elems();
  const auto& be = b.elems();
  if (ae.size() != be.size()) return false;
  for (std::size_t i = 0; i < ae.size(); ++i) {
    if (!equals(ae[i], be[i], undefined_wildcard)) return false;
  }
  return true;
}

bool contains_undefined(const Value& v) {
  if (v.is_undefined()) return true;
  if (v.is_scalar()) return false;
  for (const Value& e : v.elems()) {
    if (contains_undefined(e)) return true;
  }
  return false;
}

Value default_value(const est::Type* type) {
  using est::TypeKind;
  if (type == nullptr) return Value{};
  switch (type->kind) {
    case TypeKind::Record: {
      std::vector<Value> fields;
      fields.reserve(type->fields.size());
      for (const est::RecordField& f : type->fields) {
        fields.push_back(default_value(f.type));
      }
      return Value::make_record(std::move(fields));
    }
    case TypeKind::Array: {
      std::vector<Value> elems;
      elems.resize(static_cast<std::size_t>(type->hi - type->lo + 1));
      for (Value& e : elems) e = default_value(type->element);
      return Value::make_array(std::move(elems));
    }
    default:
      return Value{};  // undefined scalar
  }
}

}  // namespace tango::rt
