// Tree-walking interpreter for compiled specifications. Implements the
// *update* operation of the paper's §2.2 (execute a transition) plus
// provided-clause evaluation for *generate*. Outputs produced by `output`
// statements are streamed to an OutputSink; the trace analyzer's sink
// matches them against the trace and vetoes mismatching paths.
#pragma once

#include <cstdint>
#include <vector>

#include "estelle/spec.hpp"
#include "runtime/machine.hpp"
#include "runtime/trail.hpp"
#include "support/diagnostics.hpp"

namespace tango::rt {

/// Receives interactions produced while executing a transition block.
class OutputSink {
 public:
  virtual ~OutputSink() = default;

  /// Return false to veto the current execution path (the transition is
  /// aborted and fire() returns false). The analyzer uses this to reject
  /// outputs that do not match the trace.
  virtual bool on_output(int ip_index, int interaction_id,
                         std::vector<Value> params, SourceLoc loc) = 0;
};

/// Accepts and ignores every output (useful for warm-up and tests).
class NullSink final : public OutputSink {
 public:
  bool on_output(int, int, std::vector<Value>, SourceLoc) override {
    return true;
  }
};

/// Strict mode faults on any *use* of an undefined value. Partial mode
/// implements the paper's §5 semantics: undefined propagates through
/// expressions, provided clauses that evaluate to undefined are assumed
/// true, and undefined output parameters compare equal to anything.
enum class EvalMode : std::uint8_t { Strict, Partial };

struct InterpLimits {
  /// Statement budget per transition firing; guards against runaway loops
  /// inside transition blocks.
  std::uint64_t max_statements = 1'000'000;
  int max_call_depth = 256;
};

class Interp {
 public:
  explicit Interp(const est::Spec& spec, EvalMode mode = EvalMode::Strict,
                  InterpLimits limits = {});

  /// Executes an initialize clause: runs its block against `m` and enters
  /// its target state. Returns false if an output was vetoed by the sink.
  /// With a non-null `trail`, every mutation of `m` (module-variable root,
  /// heap cell, allocate/release, FSM state) pushes an undo entry first, so
  /// the caller can restore by rewinding instead of deep-copying (§3.2.2).
  bool run_initializer(MachineState& m, const est::Initializer& init,
                       OutputSink& sink, Trail* trail = nullptr);

  /// Fires a transition whose when-parameters are bound to `when_args`
  /// (empty for spontaneous transitions). Returns false if vetoed; in that
  /// case `m` is left partially updated and must be restored by the caller
  /// (deep-copy restore, or Trail::undo_to when a trail was passed).
  bool fire(MachineState& m, const est::Transition& tr,
            const std::vector<Value>& when_args, OutputSink& sink,
            Trail* trail = nullptr);

  /// Evaluates a transition's provided clause read-only (writes to module
  /// variables or the heap fault). Missing clause means true; an undefined
  /// result is true in partial mode (paper §5.1) and faults in strict mode.
  bool provided_holds(MachineState& m, const est::Transition& tr,
                      const std::vector<Value>& when_args);
  bool provided_holds(MachineState& m, const est::Initializer& init);

  [[nodiscard]] const est::Spec& spec() const { return spec_; }
  [[nodiscard]] EvalMode mode() const { return mode_; }

 private:
  const est::Spec& spec_;
  EvalMode mode_;
  InterpLimits limits_;
};

}  // namespace tango::rt
