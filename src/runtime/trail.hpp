// Undo-log (trail) for the paper's §2.2 save/restore primitives. Instead of
// deep-copying the whole module state at every branching node (the §3.2.2
// cost the paper measures as SA), *save* records the current trail length
// and every subsequent mutation of the machine state pushes one undo entry;
// *restore* pops entries back to the mark, reverting them in reverse order.
//
// Granularity: module variables are logged per top-level slot and heap
// cells per address (a write through a field/index path captures the whole
// root value). Interior Value pointers are never stored — an entry is keyed
// by slot index or heap address, so it survives wholesale reassignment of
// the value it reverts.
//
// Entries must be undone in exact reverse mutation order; that is what
// makes the allocate/release entries safe to replay against the std::map
// heap and keeps the allocation cursor (`Heap::next_`) bit-identical to
// what a deep-copy restore would have produced.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/thread_affinity.hpp"
#include "runtime/value.hpp"

namespace tango::rt {

class Trail {
 public:
  /// A position in the log; save = mark(), restore = undo_to(mark).
  using Mark = std::size_t;

  [[nodiscard]] Mark mark() const { return entries_.size(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Monotone count of entries ever logged (undo does not decrease it);
  /// feeds the Stats trail-entry counter.
  [[nodiscard]] std::uint64_t total_logged() const { return total_logged_; }

  /// The FSM state ordinal is about to change. (No cache entry: the FSM
  /// component is never cached — machine.hpp.)
  void log_fsm(int old_state);
  /// Module variable `slot` is about to be written (whole-slot old value).
  /// `prior` is the hash-cache entry the write clobbers
  /// (MachineState::var_cache_entry, captured before the mutation);
  /// undo_to hands it back so backtracking never rehashes.
  void log_var(int slot, const Value& old_value, CompCache prior = {});
  /// Heap cell `addr` is about to be written. `prior` is
  /// MachineState::heap_cache_entry() captured before the epoch bump.
  void log_heap_write(std::uint32_t addr, const Value& old_value,
                      CompCache prior = {});
  /// Heap cell `addr` was just allocated (`prior` from before the
  /// allocation).
  void log_heap_alloc(std::uint32_t addr, CompCache prior = {});
  /// Heap cell `addr` is about to be released (its last value moves in).
  void log_heap_release(std::uint32_t addr, Value old_value,
                        CompCache prior = {});

  /// Reverts every mutation logged after `m`, newest first.
  void undo_to(Mark m, MachineState& state);

  void clear() {
    affinity_.bind_or_check();
    entries_.clear();
  }

 private:
  enum class Kind : std::uint8_t {
    Fsm,
    Var,
    HeapWrite,
    HeapAlloc,
    HeapRelease,
  };

  struct Entry {
    Kind kind;
    int fsm_old = 0;         // Fsm only
    std::uint32_t index = 0; // var slot or heap address
    Value old;               // previous contents (unused for Fsm/HeapAlloc)
    CompCache cache;         // hash-cache entry clobbered by the mutation
  };

  std::vector<Entry> entries_;
  std::uint64_t total_logged_ = 0;
  /// Debug-only: a trail belongs to exactly one worker for its whole life
  /// (trails are never snapshotted — only machine states are).
  ThreadAffinity affinity_;
};

}  // namespace tango::rt
