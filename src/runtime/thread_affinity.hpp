// Debug-only ownership check for the parallel engine's thread model: a
// Heap or Trail is mutated by exactly one thread for its whole life. The
// work-stealing pool never shares mutable runtime state — a stolen
// continuation carries a deep *copy* of the publisher's state — so any
// cross-thread mutation is a bug (a leaked pointer or a missed snapshot),
// and this assert catches it mechanically under the plain Debug build
// before TSan has to.
//
// Semantics are rebind-on-copy: copying (a snapshot) produces an unbound
// object, and whichever thread mutates the copy first becomes its owner.
// That matches the steal protocol, where the publishing thread deep-copies
// a state it owns and the stealing thread adopts the copy.
//
// Compiles to an empty struct under NDEBUG; release builds pay nothing.
#pragma once

#ifndef NDEBUG
#include <cassert>
#include <thread>
#endif

namespace tango::rt {

#ifndef NDEBUG
class ThreadAffinity {
 public:
  ThreadAffinity() = default;
  ThreadAffinity(const ThreadAffinity&) noexcept {}  // copies start unbound
  ThreadAffinity& operator=(const ThreadAffinity&) noexcept {
    bound_ = false;
    return *this;
  }

  /// Call at the top of every mutating method of the guarded object.
  void bind_or_check() {
    if (!bound_) {
      owner_ = std::this_thread::get_id();
      bound_ = true;
      return;
    }
    assert(owner_ == std::this_thread::get_id() &&
           "runtime state mutated from a second thread; parallel workers "
           "must only mutate snapshot copies they own");
  }

 private:
  std::thread::id owner_;
  bool bound_ = false;
};
#else
struct ThreadAffinity {
  void bind_or_check() {}
};
#endif

}  // namespace tango::rt
