// Runtime values for the EFSM interpreter. Every Estelle variable is a
// Value tree; scalar leaves may be *undefined*, which is the cornerstone of
// partial-trace analysis (paper §5.1): constructors initialize the
// undefined attribute, assignment clears it, and comparisons against an
// undefined value succeed when the analyzer runs in partial mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "estelle/types.hpp"

namespace tango::rt {

class Value {
 public:
  enum class Kind : std::uint8_t {
    Undefined,
    Int,
    Bool,
    Char,
    Enum,
    Pointer,  // scalar payload = heap address; 0 is nil
    Record,
    Array,
  };

  Value() = default;  // undefined

  static Value make_int(std::int64_t v);
  static Value make_bool(bool v);
  static Value make_char(char v);
  static Value make_enum(const est::Type* enum_type, std::int64_t ordinal);
  static Value make_pointer(std::uint32_t addr);
  static Value nil() { return make_pointer(0); }
  static Value make_record(std::vector<Value> fields);
  static Value make_array(std::vector<Value> elems);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_undefined() const { return kind_ == Kind::Undefined; }
  [[nodiscard]] bool is_scalar() const {
    return kind_ != Kind::Record && kind_ != Kind::Array;
  }

  /// Raw payload of a defined scalar (int value, bool 0/1, char code,
  /// enum ordinal, pointer address).
  [[nodiscard]] std::int64_t scalar() const { return scalar_; }
  [[nodiscard]] bool as_bool() const { return scalar_ != 0; }
  [[nodiscard]] std::uint32_t address() const {
    return static_cast<std::uint32_t>(scalar_);
  }
  [[nodiscard]] const est::Type* enum_type() const { return enum_type_; }

  [[nodiscard]] std::vector<Value>& elems() { return elems_; }
  [[nodiscard]] const std::vector<Value>& elems() const { return elems_; }

  /// Mixes this value (structure and payload) into `h` (FNV-1a style).
  void hash_into(std::uint64_t& h) const;

  /// Renders for trace files and diagnostics: `42`, `true`, `'c'`,
  /// enum literal name, `nil`, `^3`, `{a, b}` for records, `[x, y]` for
  /// arrays, `_` for undefined.
  [[nodiscard]] std::string to_string() const;

 private:
  Kind kind_ = Kind::Undefined;
  std::int64_t scalar_ = 0;
  const est::Type* enum_type_ = nullptr;
  std::vector<Value> elems_;
};

/// Deep structural equality. When `undefined_wildcard` is set (partial-trace
/// mode), an undefined value on either side matches anything (paper §5.1).
/// Otherwise undefined equals only undefined.
[[nodiscard]] bool equals(const Value& a, const Value& b,
                          bool undefined_wildcard);

/// True if the value or any nested element is undefined.
[[nodiscard]] bool contains_undefined(const Value& v);

/// Default (freshly declared) value of a type: undefined scalars; records
/// and arrays get their structure with undefined leaves.
[[nodiscard]] Value default_value(const est::Type* type);

}  // namespace tango::rt
