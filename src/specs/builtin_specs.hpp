// Built-in specification texts: the paper's examples (Figures 1 and 2),
// the two evaluation protocols (TP0 §4.2 and a Q.921/LAPD subset §4.1) and
// an alternating-bit protocol used by examples and tests. The same texts
// are shipped as standalone files under specs/ (a test keeps them in sync).
#pragma once

#include <string_view>
#include <utility>
#include <vector>

namespace tango::specs {

[[nodiscard]] std::string_view ack();       // paper Figure 1
[[nodiscard]] std::string_view ip3();       // paper Figure 2 (all transitions)
[[nodiscard]] std::string_view ip3prime();  // Figure 2 minus t4/t5 (§3.1.2)
[[nodiscard]] std::string_view abp();       // alternating-bit sender
[[nodiscard]] std::string_view inres();     // INRES initiator
[[nodiscard]] std::string_view tp0();       // ISO Class 0 Transport (§4.2)
[[nodiscard]] std::string_view lapd();      // CCITT Q.921 subset (§4.1)

/// All built-ins: {name, text}. Names: ack, ip3, ip3prime, abp, inres,
/// tp0, lapd.
[[nodiscard]] const std::vector<std::pair<std::string_view, std::string_view>>&
all_builtin_specs();

/// Empty view when unknown.
[[nodiscard]] std::string_view builtin_spec(std::string_view name);

}  // namespace tango::specs
