#include "specs/builtin_specs.hpp"

namespace tango::specs {

namespace {

// ---------------------------------------------------------------------
// Paper Figure 1: specification `ack`.
// ---------------------------------------------------------------------
constexpr std::string_view kAck = R"est(
{ Paper Figure 1: pseudo-Estelle specification "ack".
  The module consumes x interactions at A and y at B; after taking the
  nondeterministic T2 branch and then T3 it acknowledges at A. }
specification ack_spec;

channel CA(Env, Sys);
  by Env: x;
  by Sys: ack;

channel CB(Env, Sys);
  by Env: y;

module M systemprocess;
  ip A: CA(Sys);
     B: CB(Sys);
end;

body MB for M;

state S1, S2;

initialize to S1 begin end;

trans

from S1 to S1 when A.x name T1:
begin end;

from S1 to S2 when A.x name T2:
begin end;

from S2 to S1 when B.y name T3:
begin
  output A.ack;
end;

end;

end.
)est";

// ---------------------------------------------------------------------
// Paper Figure 2: specification `ip3` (and ip3' without t4/t5).
// ---------------------------------------------------------------------
constexpr std::string_view kIp3 = R"est(
{ Paper Figure 2: specification "ip3". B and C relay data to each other;
  output o at A is only reachable after "finished" arrives at B. }
specification ip3_spec;

channel CA(Env, Sys);
  by Env: x;
  by Sys: p; o;

channel CB(Env, Sys);
  by Env: data; finished;
  by Sys: data;

channel CC(Env, Sys);
  by Env, Sys: data;

module M systemprocess;
  ip A: CA(Sys);
     B: CB(Sys);
     C: CC(Sys);
end;

body MB for M;

state s1, s2;

initialize to s1 begin end;

trans

from s1 to s1 when B.data name t1:
begin output C.data; end;

from s1 to s1 when C.data name t2:
begin output B.data; end;

from s1 to s1 when A.x name t3:
begin output A.p; end;

from s1 to s2 when B.finished name t4:
begin end;

from s2 to s1 when A.x name t5:
begin output A.o; end;

end;

end.
)est";

constexpr std::string_view kIp3Prime = R"est(
{ Paper Figure 2 variant "ip3'": only t1, t2 and t3 are defined, so output
  o can never be produced and on-line analysis cycles through PG-nodes
  without ever detecting the invalid o (paper section 3.1.2). }
specification ip3prime_spec;

channel CA(Env, Sys);
  by Env: x;
  by Sys: p; o;

channel CB(Env, Sys);
  by Env: data; finished;
  by Sys: data;

channel CC(Env, Sys);
  by Env, Sys: data;

module M systemprocess;
  ip A: CA(Sys);
     B: CB(Sys);
     C: CC(Sys);
end;

body MB for M;

state s1;

initialize to s1 begin end;

trans

from s1 to s1 when B.data name t1:
begin output C.data; end;

from s1 to s1 when C.data name t2:
begin output B.data; end;

from s1 to s1 when A.x name t3:
begin output A.p; end;

end;

end.
)est";

// ---------------------------------------------------------------------
// Alternating-bit protocol sender (examples/tests).
// ---------------------------------------------------------------------
constexpr std::string_view kAbp = R"est(
{ Alternating-bit protocol sender. Retransmission is modelled as a
  spontaneous transition (Estelle delay clauses are not supported by the
  trace analyzer, exactly as in Tango). }
specification abp_spec;

channel UCH(User, Provider);
  by User: send(msg: integer);
  by Provider: confirm;

channel MCH(Station, Medium);
  by Station: frame(seq: integer; msg: integer);
  by Medium: ack(seq: integer);

module S systemprocess;
  ip U: UCH(Provider);
     M: MCH(Station);
end;

body SB for S;

var
  vs: integer;
  buf: integer;

state idle, wait_ack;

initialize to idle
begin
  vs := 0;
  buf := 0;
end;

trans

from idle to wait_ack when U.send name snd:
begin
  buf := msg;
  output M.frame(vs, buf);
end;

from wait_ack to wait_ack name retransmit:
begin
  output M.frame(vs, buf);
end;

from wait_ack to idle when M.ack provided seq = vs name acked:
begin
  vs := 1 - vs;
  output U.confirm;
end;

from wait_ack to wait_ack when M.ack provided seq <> vs name badack:
begin end;

end;

end.
)est";

// ---------------------------------------------------------------------
// TP0 — ISO Class 0 Transport (paper §4.2). Infinite buffers implemented
// as heap-allocated linked lists, exercising dynamic-memory save/restore
// (§3.2.2). Transition names t13..t17 match the paper's description.
// ---------------------------------------------------------------------
constexpr std::string_view kTp0 = R"est(
specification tp0_spec;

channel UCH(User, Provider);
  by User:
    tconreq;
    tdtreq(data: integer);
    tdisreq;
  by Provider:
    tconcnf;
    tconind;
    tdtind(data: integer);
    tdisind;

channel NCH(Station, Peer);
  by Station, Peer:
    cr;
    cc;
    dt(data: integer);
    dr;

module TP0 systemprocess;
  ip U: UCH(Provider);
     N: NCH(Station);
end;

body TP0Body for TP0;

type
  CellPtr = ^Cell;
  Cell = record
    data: integer;
    next: CellPtr;
  end;

var
  b1head, b1tail: CellPtr;   { network -> user buffer (buffer1) }
  b2head, b2tail: CellPtr;   { user -> network buffer (buffer2) }

procedure enq(var head: CellPtr; var tail: CellPtr; d: integer);
var c: CellPtr;
begin
  new(c);
  c^.data := d;
  c^.next := nil;
  if tail = nil then
    begin head := c; tail := c; end
  else
    begin tail^.next := c; tail := c; end;
end;

procedure deq(var head: CellPtr; var tail: CellPtr);
var c: CellPtr;
begin
  c := head;
  head := c^.next;
  if head = nil then tail := nil;
  dispose(c);
end;

procedure clearbuf(var head: CellPtr; var tail: CellPtr);
begin
  while head <> nil do deq(head, tail);
end;

state closed, wfcc, data_state;

initialize to closed
begin
  b1head := nil; b1tail := nil;
  b2head := nil; b2tail := nil;
end;

trans

{ --- connection establishment --- }

from closed to wfcc when U.tconreq name t1:
begin output N.cr; end;

from wfcc to data_state when N.cc name t2:
begin output U.tconcnf; end;

from closed to data_state when N.cr name t3:
begin output N.cc; output U.tconind; end;

from wfcc to closed when N.dr name t4:
begin output U.tdisind; end;

{ --- data transfer (paper transitions T13..T17) --- }

from data_state to data_state when U.tdtreq name t13:
begin enq(b2head, b2tail, data); end;

from data_state to data_state provided b2head <> nil name t14:
begin
  output N.dt(b2head^.data);
  deq(b2head, b2tail);
end;

from data_state to data_state when N.dt name t15:
begin enq(b1head, b1tail, data); end;

from data_state to data_state provided b1head <> nil name t16:
begin
  output U.tdtind(b1head^.data);
  deq(b1head, b1tail);
end;

from data_state to closed when U.tdisreq name t17:
begin
  clearbuf(b1head, b1tail);
  clearbuf(b2head, b2tail);
  output N.dr;
end;

{ --- disconnection from the network side --- }

from data_state to closed when N.dr name t18:
begin
  clearbuf(b1head, b1tail);
  clearbuf(b2head, b2tail);
  output U.tdisind;
end;

from closed to closed when N.dr name t19:
begin end;

end;

end.
)est";

// ---------------------------------------------------------------------
// LAPD — CCITT Recommendation Q.921 subset (paper §4.1): mod-8 sequence
// numbering with V(S)/V(A)/V(R), SABME/UA/DM/DISC establishment and
// release, I-frame data transfer with RR/RNR/REJ supervision and
// go-back-N retransmission. Timer-driven behaviour (T200/T203) is absent
// because delay clauses are unsupported (paper §2.1).
// ---------------------------------------------------------------------
constexpr std::string_view kLapd = R"est(
specification lapd_spec;

channel DLS(User, Provider);
  by User:
    dl_establish_req;
    dl_release_req;
    dl_data_req(data: integer);
  by Provider:
    dl_establish_ind;
    dl_establish_cnf;
    dl_release_ind;
    dl_release_cnf;
    dl_data_ind(data: integer);

channel PHS(Station, Peer);
  by Station, Peer:
    sabme;
    ua;
    dm;
    disc;
    frmr;
    iframe(ns: integer; nr: integer; data: integer);
    rr(nr: integer);
    rnr(nr: integer);
    rej(nr: integer);

module LAPD systemprocess;
  ip U: DLS(Provider);
     L: PHS(Station);
end;

body LAPDBody for LAPD;

const
  modulus = 8;     { sequence numbers are mod 8 (basic operation) }
  window = 7;      { k: maximum outstanding I frames }
  qsize = 128;

var
  vs, va, vr: integer;
  peer_busy: boolean;
  sentbuf: array [0 .. 7] of integer;   { retransmission buffer, by N(S) }
  pend: array [0 .. 127] of integer;    { layer-3 outgoing queue }
  phead, ptail, pcount: integer;

function outstanding: integer;
begin
  outstanding := (vs - va + modulus) mod modulus;
end;

function inwindow(n: integer): boolean;
begin
  { n acknowledges va..n-1; legal iff va <= n <= vs, mod 8 }
  inwindow := ((n - va + modulus) mod modulus) <= outstanding;
end;

procedure resetlink;
begin
  vs := 0; va := 0; vr := 0;
  peer_busy := false;
  phead := 0; ptail := 0; pcount := 0;
end;

state tei_assigned, awaiting_establishment, awaiting_release,
      multiple_frame_established;

stateset anystate = [tei_assigned, awaiting_establishment,
                     awaiting_release, multiple_frame_established];

initialize to tei_assigned
var i: integer;
begin
  resetlink;
  for i := 0 to 7 do sentbuf[i] := 0;
  for i := 0 to qsize - 1 do pend[i] := 0;
end;

trans

{ --- establishment --- }

from tei_assigned to awaiting_establishment
  when U.dl_establish_req name est_req:
begin
  output L.sabme;
end;

from tei_assigned to multiple_frame_established
  when L.sabme name passive_open:
begin
  resetlink;
  output L.ua;
  output U.dl_establish_ind;
end;

from awaiting_establishment to multiple_frame_established
  when L.ua name est_confirmed:
begin
  resetlink;
  output U.dl_establish_cnf;
end;

from awaiting_establishment to tei_assigned
  when L.dm name est_refused:
begin
  output U.dl_release_ind;
end;

from awaiting_establishment to same
  when L.sabme name est_collision:
begin
  output L.ua;
end;

{ --- release --- }

from multiple_frame_established to awaiting_release
  when U.dl_release_req name rel_req:
begin
  output L.disc;
end;

from awaiting_release to tei_assigned
  when L.ua name rel_confirmed:
begin
  output U.dl_release_cnf;
end;

from awaiting_release to tei_assigned
  when L.dm name rel_dm:
begin
  output U.dl_release_cnf;
end;

from multiple_frame_established to tei_assigned
  when L.disc name peer_release:
begin
  output L.ua;
  output U.dl_release_ind;
end;

from tei_assigned to same
  when L.disc name disc_while_down:
begin
  output L.dm;
end;

{ --- data transfer --- }

from multiple_frame_established to same
  when U.dl_data_req
  provided pcount < qsize
  name t_enq:
begin
  pend[ptail] := data;
  ptail := (ptail + 1) mod qsize;
  pcount := pcount + 1;
end;

from multiple_frame_established to same
  provided (pcount > 0) and (outstanding < window) and (not peer_busy)
  name t_send:
begin
  sentbuf[vs] := pend[phead];
  output L.iframe(vs, vr, pend[phead]);
  phead := (phead + 1) mod qsize;
  pcount := pcount - 1;
  vs := (vs + 1) mod modulus;
end;

from multiple_frame_established to same
  when L.iframe
  provided ns = vr
  name t_recv:
begin
  vr := (vr + 1) mod modulus;
  if inwindow(nr) then va := nr;
  output U.dl_data_ind(data);
  output L.rr(vr);
end;

from multiple_frame_established to same
  when L.iframe
  provided ns <> vr
  name t_recv_oos:
begin
  if inwindow(nr) then va := nr;
  output L.rej(vr);
end;

from multiple_frame_established to same
  when L.rr
  provided inwindow(nr)
  name t_ack:
begin
  va := nr;
  peer_busy := false;
end;

from multiple_frame_established to same
  when L.rr
  provided not inwindow(nr)
  name t_ack_bad:
begin end;

from multiple_frame_established to same
  when L.rnr
  provided inwindow(nr)
  name t_peer_busy:
begin
  va := nr;
  peer_busy := true;
end;

from multiple_frame_established to same
  when L.rnr
  provided not inwindow(nr)
  name t_rnr_bad:
begin end;

from multiple_frame_established to same
  when L.rej
  provided inwindow(nr)
  name t_rej:
var i, cnt: integer;
begin
  va := nr;
  cnt := (vs - nr + modulus) mod modulus;
  vs := nr;
  for i := 1 to cnt do
  begin
    output L.iframe(vs, vr, sentbuf[vs]);
    vs := (vs + 1) mod modulus;
  end;
end;

from multiple_frame_established to same
  when L.rej
  provided not inwindow(nr)
  name t_rej_bad:
begin end;

from anystate to tei_assigned
  when L.frmr name t_frmr:
begin
  output U.dl_release_ind;
end;

{ stray supervisory frames outside multiple-frame operation are discarded }

from tei_assigned to same when L.rr name drop_rr: begin end;
from tei_assigned to same when L.rej name drop_rej: begin end;
from tei_assigned to same when L.rnr name drop_rnr: begin end;
from tei_assigned to same when L.iframe name drop_i: begin end;
from tei_assigned to same when L.ua name drop_ua: begin end;
from tei_assigned to same when L.dm name drop_dm: begin end;

end;

end.
)est";

// ---------------------------------------------------------------------
// INRES initiator (Hogrefe's classic conformance-testing protocol): a
// connection-oriented, alternating-bit data transfer over an unreliable
// medium. Retransmissions are spontaneous transitions (no delay support,
// as in Tango). Used by tests as a fourth realistic protocol.
// ---------------------------------------------------------------------
constexpr std::string_view kInres = R"est(
specification inres_spec;

channel ISAP(User, Provider);
  by User:
    iconreq;
    idatreq(data: integer);
  by Provider:
    iconconf;
    idisind;

channel MSAP(Station, Medium);
  by Station:
    cr;
    dt(seq: integer; data: integer);
  by Medium:
    cc;
    ak(seq: integer);
    dr;

module Initiator systemprocess;
  ip U: ISAP(Provider);
     M: MSAP(Station);
end;

body InitiatorBody for Initiator;

var
  number: integer;   { alternating sequence bit of the next DT }
  buf: integer;      { last user data, kept for retransmission }

state disconnected, wait_cc, connected, sending;

stateset anywhere = [disconnected, wait_cc, connected, sending];

initialize to disconnected
begin
  number := 1;
  buf := 0;
end;

trans

from disconnected to wait_cc when U.iconreq name conn_req:
begin
  output M.cr;
end;

from wait_cc to same name repeat_cr:
begin
  output M.cr;
end;

from wait_cc to connected when M.cc name conn_conf:
begin
  number := 1;
  output U.iconconf;
end;

from connected to sending when U.idatreq name data_req:
begin
  buf := data;
  output M.dt(number, buf);
end;

from sending to same name repeat_dt:
begin
  output M.dt(number, buf);
end;

from sending to connected when M.ak provided seq = number name acked:
begin
  number := 1 - number;
end;

from sending to same when M.ak provided seq <> number name wrong_ak:
begin
  output M.dt(number, buf);
end;

from anywhere to disconnected when M.dr name disconnected_by_peer:
begin
  output U.idisind;
end;

end;

end.
)est";

}  // namespace

std::string_view ack() { return kAck; }
std::string_view ip3() { return kIp3; }
std::string_view ip3prime() { return kIp3Prime; }
std::string_view abp() { return kAbp; }
std::string_view inres() { return kInres; }
std::string_view tp0() { return kTp0; }
std::string_view lapd() { return kLapd; }

const std::vector<std::pair<std::string_view, std::string_view>>&
all_builtin_specs() {
  static const std::vector<std::pair<std::string_view, std::string_view>>
      table = {
          {"ack", kAck},     {"ip3", kIp3},     {"ip3prime", kIp3Prime},
          {"abp", kAbp},     {"inres", kInres}, {"tp0", kTp0},
          {"lapd", kLapd},
      };
  return table;
}

std::string_view builtin_spec(std::string_view name) {
  for (const auto& [n, text] : all_builtin_specs()) {
    if (n == name) return text;
  }
  return {};
}

}  // namespace tango::specs
