// tango — trace analysis tool generator for Estelle specifications.
//
//   tango check <spec>                      syntax/semantic check
//   tango analyze <spec> <trace> [opts]     batch (static) trace analysis
//   tango online <spec> <trace> [opts]      on-line analysis, following the
//                                           file as it grows (MDFS)
//   tango simulate <spec> --script <file>   implementation-generation mode
//   tango generate-cpp <spec> [-o out.cpp]  emit a standalone C++ TAM
//   tango normal-form <spec>                §5.3 transformation, to stdout
//   tango workload <lapd|tp0> [--size=N]    emit a benchmark workload trace
//   tango fuzz [spec...] [--seed=N]         differential conformance fuzzing
//                                           across DFS / hash-DFS / MDFS
//   tango lint <spec>                       reachability / non-progress checks
//   tango events <check|stats|diff|replay>  search-event stream tooling
//   tango coverage <spec> <trace...>        transition coverage of a campaign
//   tango print <spec>                      parse + pretty-print round trip
//   tango specs                             list built-in specifications
//   tango cat <builtin>                     dump a built-in specification
//   tango serve --listen <host:port>        on-line analysis server (TCP,
//                                           framed sessions; docs/SERVER.md)
//   tango submit <trace> --connect <h:p>    run one session against a server
//   tango --version                         build / protocol / schema info
//
// <spec> is a file path or `builtin:<name>` (see `tango specs`).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/lint.hpp"
#include "codegen/cpp_generator.hpp"
#include "core/dfs.hpp"
#include "core/mdfs.hpp"
#include "core/parallel_dfs.hpp"
#include "estelle/parser.hpp"
#include "fuzz/fuzz.hpp"
#include "obs/json.hpp"
#include "obs/replay.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "obs/stream.hpp"
#include "estelle/printer.hpp"
#include "server/client.hpp"
#include "server/framing.hpp"
#include "server/server.hpp"
#include "sim/mutate.hpp"
#include "sim/simulator.hpp"
#include "sim/workloads.hpp"
#include "specs/builtin_specs.hpp"
#include "support/text.hpp"
#include "support/version.hpp"
#include "trace/dynamic_source.hpp"
#include "trace/trace_io.hpp"
#include "transform/normal_form.hpp"

namespace {

using namespace tango;

int usage() {
  std::cerr << "usage: tango <check|analyze|online|serve|submit|simulate|"
               "normal-form|print|specs|cat> ...\n"
               "run `tango help` for details, `tango --version` for build "
               "info\n";
  return 2;
}

int print_version() {
  std::cout << "tango " << kTangoVersion << " (" << kTangoBuildType
            << ", server protocol " << srv::kProtocolVersion
            << ", events schema " << obs::kEventSchemaVersion << ")\n";
  return 0;
}

int help() {
  std::cout <<
      R"(tango — trace analysis tool generator for Estelle specifications

commands:
  check <spec>                      compile the specification, report errors
  analyze <spec> <trace> [options]  static trace analysis (DFS)
  online <spec> <trace> [options]   on-line analysis following a growing file
  simulate <spec> --script <file> [--seed N] [-o <trace>]
                                    execute the spec, record the trace
  generate-cpp <spec> [-o out.cpp]  emit a standalone C++ trace analyzer
                                    (compile with tam_runtime.hpp on the
                                    include path; see src/codegen/)
  normal-form <spec>                print the normal-form transformation
  workload <lapd|tp0> [--size=N] [--invalid] [--seed=N] [-o <trace>]
                                    emit the paper's evaluation workloads
                                    (Figure 3 / Figure 4 traces)
  fuzz [spec...] [--seed=N] [--iterations=N] [--engines=dfs,hash,mdfs,par]
       [--chunk=N] [--jobs=N] [--stats <file>] [--out-dir <dir>]
       [--max-transitions=N]
                                    differential conformance fuzzing: random
                                    environments -> simulated + mutated
                                    traces -> cross-check DFS, hash-pruned
                                    DFS and on-line MDFS under all order
                                    presets; disagreements are shrunk and
                                    written as reproducer bundles
                                    (see docs/FUZZING.md)
  events check <stream...>          schema-validate search-event streams
  events stats <stream>             per-kind counts and headline figures
  events diff <a> <b> [--ignore=k1,k2]
                                    field-order-insensitive stream diff
  events replay <stream...>         replay oracle: re-execute a recorded
                                    stream against a fresh machine, check
                                    every fire was enabled, hashes match
                                    and the verdict balances the stream
                                    (docs/OBSERVABILITY.md); streams with
                                    spec_ref/trace_ref are self-describing,
                                    else: events replay <spec> <tr> <stream>
  lint <spec> [--passes=a,b] [--format=text|json|sarif]
                                    static analysis: reachability, non-
                                    progress cycles, dead interactions,
                                    definite assignment, value ranges,
                                    unreachable statements, provided-clause
                                    purity, guard implication, whole-spec
                                    control-state invariants (docs/LINT.md);
                                    exit 1 iff any error-level finding
  coverage <spec> <trace...> [--format=text|json]
                                    transition coverage over valid traces;
                                    statically-dead transitions are
                                    annotated and excluded from the ratio
  print <spec>                      parse and pretty-print
  specs                             list built-in specifications
  cat <builtin>                     print a built-in specification
  serve [spec...] --listen=<host:port> [--workers=N] [--queue-max=N]
        [--max-sessions=N] [--events-dir=<dir>] [analysis options]
                                    long-running on-line analysis server:
                                    framed TCP sessions drive MDFS from
                                    network streams (docs/SERVER.md). All
                                    built-ins are preloaded; extra spec
                                    files are preloaded under their path.
                                    Analysis options set the per-session
                                    defaults; hello frames override them
  submit <trace> --connect=<host:port> --spec=<ref> [--order=...]
         [--static] [--chunk-size=N] [--chunk-delay=<ms>]
                                    run one session against a server.
                                    <trace> may be - (stdin). --chunk-size
                                    trickles N events per chunk (0 = whole
                                    trace at once); --static buffers at the
                                    server and runs the one-shot DFS engine
  --version                         print build, protocol and event-schema
                                    versions

<spec> is a file path or builtin:<name> (ack, ip3, ip3prime, abp, inres, tp0, lapd).

analysis options:
  --order=none|io|ip|full           relative order checking mode (default io)
  --disable-ip=<name>               do not check outputs at this ip (§2.4.3)
  --unobservable-ip=<name>          partial trace: no inputs at this ip (§5)
  --partial                         undefined-tolerant partial-trace mode
  --initial-state-search            try all initial FSM states (§2.4.1)
  --hash-states                     prune revisited states (hash table)
  --checkpoint=copy|trail           save/restore implementation: deep-copy
                                    states (§3.2.2 oracle) or undo-log
                                    trail marks (default trail)
  --hash-impl=incremental|full      state-hash implementation: trail-
                                    maintained component hashes combined in
                                    O(dirty) (default), or the full
                                    recursive walk (differential oracle);
                                    both yield identical hash values
  --jobs=<n>                        worker threads (default 1; 0 = one per
                                    hardware thread). For analyze, >1 runs
                                    the work-stealing parallel DFS; for
                                    fuzz, iterations run concurrently
  --deterministic                   with --jobs>1: fixed branch ownership +
                                    per-task pruning/budgets so verdict and
                                    every counter are run-to-run identical
                                    (slower; see docs/PARALLEL.md)
  --visited-max=<n>                 bound the --hash-states table to n
                                    entries; overflow evicts a random hash
                                    (0 = unlimited, the default)
  --no-static-prune                 do not consume guard-solver facts during
                                    generate (on by default; pruning never
                                    changes verdicts — see docs/LINT.md)
  --no-invariant-prune              keep the pairwise guard-solver facts but
                                    drop the whole-spec invariant facts
                                    (state-refuted candidates, doomed-output
                                    cuts) — for ablation/differential runs;
                                    implied off by --no-static-prune and
                                    under --initial-state-search
  --batch <dir>                     analyze every *.tr file in <dir>,
                                    scheduling whole traces across --jobs
                                    workers; exit 0 iff all are valid. One
                                    failing/over-budget item never aborts
                                    the rest; --format=json emits the
                                    per-item report as JSON
  --no-reorder                      disable MDFS dynamic node reordering
  --max-transitions=<n>             search budget (reason "transitions")
  --max-depth=<n>                   depth bound (reason "depth")
  --deadline=<ms>                   wall-clock budget; expiry yields an
                                    inconclusive verdict with reason
                                    "deadline". Applies per item in --batch
  --max-memory=<bytes>              checkpoint/trail allocation budget — a
                                    deterministic proxy, not process RSS;
                                    reason "memory" (docs/ROBUSTNESS.md)
  --item-retries=<n>                --batch: retry an item up to n extra
                                    times after a transient runtime fault
  --events=<file>                   record a structured search-event stream
                                    (JSONL, docs/EVENTS.md) for analyze and
                                    online runs; inspect with tango events
  --events-dir=<dir>                per-item event streams for --batch and
                                    fuzz campaigns (one .jsonl per matrix
                                    cell, plus .tr sidecars for replay)
  --all-orders                      analyze under all four order modes and
                                    print a Figure-3-style comparison row
  --size=<n>                        workload size (data interactions)
  --invalid                         mutate the workload's last data parameter
  --verbose                         print the solution path / failure notes

simulate script lines:  <step> <ip>.<msg>(<params>)   (and # comments)
)";
  return 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CompileError({}, "cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Strict numeric flag parsing: the whole value must be decimal digits and
/// fit below `max_value`. A typo'd "--jobs=abc" becomes a usage error
/// naming the flag instead of a bare "stoi" exception, and a negative
/// "--max-depth=-1" is rejected instead of wrapping to a huge unsigned.
std::uint64_t parse_u64_flag(const char* flag, const std::string& text,
                             std::uint64_t max_value) {
  if (text.empty()) {
    throw CompileError({}, std::string(flag) + " needs a number");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw CompileError({}, std::string("bad ") + flag + " value '" + text +
                                 "' (expected a non-negative integer)");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (max_value - digit) / 10) {
      throw CompileError({}, std::string(flag) + " value '" + text +
                                 "' is out of range (max " +
                                 std::to_string(max_value) + ")");
    }
    value = value * 10 + digit;
  }
  return value;
}

std::uint64_t parse_u64_flag(const char* flag, const std::string& text) {
  return parse_u64_flag(flag, text,
                        std::numeric_limits<std::uint64_t>::max());
}

int parse_int_flag(const char* flag, const std::string& text) {
  return static_cast<int>(parse_u64_flag(
      flag, text,
      static_cast<std::uint64_t>(std::numeric_limits<int>::max())));
}

std::string load_spec_text(const std::string& arg) {
  if (starts_with(arg, "builtin:")) {
    std::string_view text = specs::builtin_spec(arg.substr(8));
    if (text.empty()) {
      throw CompileError({}, "unknown built-in spec '" + arg.substr(8) + "'");
    }
    return std::string(text);
  }
  return read_file(arg);
}

struct Cli {
  core::Options options = core::Options::io();
  bool verbose = false;
  bool all_orders = false;
  bool invalid = false;  // workload: mutate the last data parameter
  int size = 10;
  std::string script;
  std::string output;
  std::uint32_t seed = 1;
  // fuzz
  int iterations = 100;
  std::string engines;
  std::size_t chunk = 3;
  std::string stats_path;
  std::string out_dir;
  std::string batch_dir;
  // observability
  std::string events_path;         // --events=<file> (analyze/online)
  std::string events_dir;          // --events-dir=<dir> (batch/fuzz)
  std::string ignore_keys;         // events diff --ignore=k1,k2
  // lint / coverage
  std::string passes;              // --passes=a,b,... (empty = all)
  std::string format = "text";     // --format=text|json|sarif
  // serve / submit
  std::string listen;              // serve --listen=<host:port>
  std::string connect;             // submit --connect=<host:port>
  std::string spec_ref;            // submit --spec=<registry ref>
  std::string order_name = "io";   // --order token, for the hello frame
  bool static_mode = false;        // submit --static
  int workers = 4;                 // serve --workers=N
  std::size_t queue_max = 16;      // serve --queue-max=N
  std::uint64_t max_sessions = 0;  // serve --max-sessions=N (0 = forever)
  std::size_t chunk_size = 0;      // submit --chunk-size=N (0 = one chunk)
  std::uint64_t chunk_delay_ms = 0;  // submit --chunk-delay=<ms>
  std::vector<std::string> positional;
};

/// Levenshtein distance, for unknown-flag suggestions. Flag names are
/// short, so the O(n*m) table is nothing.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

/// A typo'd flag ("--no-static-prun", "--invariant-prune") dies with the
/// nearest real flag named instead of a bare "unknown option".
[[noreturn]] void unknown_option(const std::string& a) {
  static const char* kFlags[] = {
      "--verbose",         "--all-orders",       "--invalid",
      "--size=",           "--order=",           "--disable-ip=",
      "--unobservable-ip=", "--partial",         "--initial-state-search",
      "--hash-states",     "--checkpoint=",      "--hash-impl=",
      "--no-reorder",      "--max-transitions=", "--max-depth=",
      "--deadline=",       "--max-memory=",      "--item-retries=",
      "--jobs=",           "--deterministic",    "--no-static-prune",
      "--no-invariant-prune", "--passes=",       "--format=",
      "--visited-max=",    "--batch",            "--script",
      "--seed=",           "--iterations=",      "--engines=",
      "--chunk=",          "--stats",            "--out-dir",
      "--events-dir",      "--events",           "--ignore=",
      "--listen=",         "--connect=",         "--spec=",
      "--static",          "--workers=",         "--queue-max=",
      "--max-sessions=",   "--chunk-size=",      "--chunk-delay=",
      "--version"};
  const std::string name = a.substr(0, a.find('='));
  std::string best;
  std::size_t best_d = std::string::npos;
  for (const char* f : kFlags) {
    std::string candidate = f;
    if (!candidate.empty() && candidate.back() == '=') candidate.pop_back();
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_d) {
      best_d = d;
      best = f;
    }
  }
  std::string msg = "unknown option '" + a + "'";
  // Suggest only when the typo is close enough to be a plausible slip.
  if (best_d <= std::max<std::size_t>(2, name.size() / 4)) {
    msg += " (did you mean '" + best + "'?)";
  }
  throw CompileError({}, msg);
}

Cli parse_cli(int argc, char** argv, int first) {
  Cli cli;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const std::string& prefix) {
      return a.substr(prefix.size());
    };
    if (a == "--verbose") {
      cli.verbose = true;
    } else if (a == "--all-orders") {
      cli.all_orders = true;
    } else if (a == "--invalid") {
      cli.invalid = true;
    } else if (starts_with(a, "--size=")) {
      cli.size = parse_int_flag("--size", value("--size="));
    } else if (starts_with(a, "--order=")) {
      std::string m = value("--order=");
      if (m == "none") cli.options = core::Options::none();
      else if (m == "io") cli.options = core::Options::io();
      else if (m == "ip") cli.options = core::Options::ip();
      else if (m == "full") cli.options = core::Options::full();
      else throw CompileError({}, "bad --order value '" + m + "'");
      cli.order_name = m;
    } else if (starts_with(a, "--disable-ip=")) {
      cli.options.disabled_ips.push_back(to_lower(value("--disable-ip=")));
    } else if (starts_with(a, "--unobservable-ip=")) {
      cli.options.unobservable_ips.push_back(
          to_lower(value("--unobservable-ip=")));
      cli.options.partial = true;
    } else if (a == "--partial") {
      cli.options.partial = true;
    } else if (a == "--initial-state-search") {
      cli.options.initial_state_search = true;
    } else if (a == "--hash-states") {
      cli.options.hash_states = true;
    } else if (starts_with(a, "--checkpoint=")) {
      std::string m = value("--checkpoint=");
      if (m == "copy") cli.options.checkpoint = core::CheckpointMode::Copy;
      else if (m == "trail") {
        cli.options.checkpoint = core::CheckpointMode::Trail;
      } else {
        throw CompileError({}, "bad --checkpoint value '" + m +
                                   "' (expected copy or trail)");
      }
    } else if (starts_with(a, "--hash-impl=")) {
      std::string m = value("--hash-impl=");
      if (m == "incremental") {
        cli.options.hash_impl = core::HashImpl::Incremental;
      } else if (m == "full") {
        cli.options.hash_impl = core::HashImpl::Full;
      } else {
        throw CompileError({}, "bad --hash-impl value '" + m +
                                   "' (expected incremental or full)");
      }
    } else if (a == "--no-reorder") {
      cli.options.reorder_pg_nodes = false;
    } else if (starts_with(a, "--max-transitions=")) {
      cli.options.max_transitions =
          parse_u64_flag("--max-transitions", value("--max-transitions="));
    } else if (starts_with(a, "--max-depth=")) {
      cli.options.max_depth =
          parse_int_flag("--max-depth", value("--max-depth="));
    } else if (starts_with(a, "--deadline=")) {
      cli.options.deadline_ms =
          parse_u64_flag("--deadline", value("--deadline="));
    } else if (starts_with(a, "--max-memory=")) {
      cli.options.max_memory =
          parse_u64_flag("--max-memory", value("--max-memory="));
    } else if (starts_with(a, "--item-retries=")) {
      cli.options.item_retries =
          parse_int_flag("--item-retries", value("--item-retries="));
    } else if (starts_with(a, "--jobs=")) {
      cli.options.jobs = parse_int_flag("--jobs", value("--jobs="));
    } else if (a == "--deterministic") {
      cli.options.deterministic = true;
    } else if (a == "--no-static-prune") {
      cli.options.static_prune = false;
    } else if (a == "--no-invariant-prune") {
      cli.options.invariant_prune = false;
    } else if (starts_with(a, "--passes=")) {
      cli.passes = value("--passes=");
    } else if (starts_with(a, "--format=")) {
      cli.format = value("--format=");
      if (cli.format != "text" && cli.format != "json" &&
          cli.format != "sarif") {
        throw CompileError({}, "bad --format value '" + cli.format +
                                   "' (expected text, json or sarif)");
      }
    } else if (starts_with(a, "--visited-max=")) {
      cli.options.visited_max =
          parse_u64_flag("--visited-max", value("--visited-max="));
    } else if (starts_with(a, "--batch")) {
      if (a == "--batch" && i + 1 >= argc) {
        throw CompileError({}, "--batch needs a directory");
      }
      cli.batch_dir = a == "--batch" ? argv[++i] : value("--batch=");
    } else if (starts_with(a, "--script")) {
      cli.script = a == "--script" ? argv[++i] : value("--script=");
    } else if (starts_with(a, "--seed=")) {
      cli.seed = static_cast<std::uint32_t>(
          parse_u64_flag("--seed", value("--seed="),
                         std::numeric_limits<std::uint32_t>::max()));
    } else if (starts_with(a, "--iterations=")) {
      cli.iterations = parse_int_flag("--iterations", value("--iterations="));
    } else if (starts_with(a, "--engines=")) {
      cli.engines = value("--engines=");
    } else if (starts_with(a, "--chunk=")) {
      cli.chunk = parse_u64_flag("--chunk", value("--chunk="));
    } else if (starts_with(a, "--stats")) {
      if (a == "--stats" && i + 1 >= argc) {
        throw CompileError({}, "--stats needs a file name");
      }
      cli.stats_path = a == "--stats" ? argv[++i] : value("--stats=");
    } else if (starts_with(a, "--out-dir")) {
      if (a == "--out-dir" && i + 1 >= argc) {
        throw CompileError({}, "--out-dir needs a directory");
      }
      cli.out_dir = a == "--out-dir" ? argv[++i] : value("--out-dir=");
    } else if (starts_with(a, "--events-dir")) {
      if (a == "--events-dir" && i + 1 >= argc) {
        throw CompileError({}, "--events-dir needs a directory");
      }
      cli.events_dir =
          a == "--events-dir" ? argv[++i] : value("--events-dir=");
    } else if (starts_with(a, "--events")) {
      if (a == "--events" && i + 1 >= argc) {
        throw CompileError({}, "--events needs a file name");
      }
      cli.events_path = a == "--events" ? argv[++i] : value("--events=");
    } else if (starts_with(a, "--ignore=")) {
      cli.ignore_keys = value("--ignore=");
    } else if (starts_with(a, "--listen=")) {
      cli.listen = value("--listen=");
    } else if (starts_with(a, "--connect=")) {
      cli.connect = value("--connect=");
    } else if (starts_with(a, "--spec=")) {
      cli.spec_ref = value("--spec=");
    } else if (a == "--static") {
      cli.static_mode = true;
    } else if (starts_with(a, "--workers=")) {
      cli.workers = parse_int_flag("--workers", value("--workers="));
    } else if (starts_with(a, "--queue-max=")) {
      cli.queue_max = static_cast<std::size_t>(
          parse_u64_flag("--queue-max", value("--queue-max=")));
    } else if (starts_with(a, "--max-sessions=")) {
      cli.max_sessions =
          parse_u64_flag("--max-sessions", value("--max-sessions="));
    } else if (starts_with(a, "--chunk-size=")) {
      cli.chunk_size = static_cast<std::size_t>(
          parse_u64_flag("--chunk-size", value("--chunk-size=")));
    } else if (starts_with(a, "--chunk-delay=")) {
      cli.chunk_delay_ms =
          parse_u64_flag("--chunk-delay", value("--chunk-delay="));
    } else if (a == "-o") {
      if (i + 1 >= argc) throw CompileError({}, "-o needs a file name");
      cli.output = argv[++i];
    } else if (starts_with(a, "--")) {
      unknown_option(a);
    } else {
      cli.positional.push_back(a);
    }
  }
  return cli;
}

est::Spec compile_with_warnings(const std::string& text) {
  DiagnosticSink sink;
  est::Spec spec = est::compile_spec(text, sink);
  if (!sink.all().empty()) std::cerr << sink.render();
  return spec;
}

int cmd_check(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[0]));
  std::cout << "ok: specification '" << spec.name << "' — "
            << spec.states.size() << " states, " << spec.ips.size()
            << " ips, " << spec.body().transitions.size()
            << " transitions, " << spec.module_vars.size()
            << " module variables\n";
  return 0;
}

/// A run header's trace_ref is resolved relative to the stream's own
/// directory on replay, so it must be recorded that way too — a stream
/// written into --events-dir stays replayable from any cwd. Falls back to
/// the raw path when no relative form exists (different filesystem root).
std::string trace_ref_for(const std::string& stream_path,
                          const std::string& trace_path) {
  if (trace_path == "-") return "<stdin>";  // not a replayable file
  std::filesystem::path base =
      std::filesystem::path(stream_path).parent_path();
  if (base.empty()) base = ".";
  std::error_code ec;
  std::filesystem::path rel =
      std::filesystem::proximate(trace_path, base, ec);
  if (ec || rel.empty()) return trace_path;
  return rel.generic_string();
}

/// `tango analyze <spec> --batch <dir>`: every *.tr in <dir> (sorted by
/// name, so output order is stable), whole traces scheduled across the
/// worker pool.
int cmd_analyze_batch(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[0]));

  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(cli.batch_dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tr") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "tango: no *.tr files in '" << cli.batch_dir << "'\n";
    return 2;
  }

  // Per-item parse isolation: one unreadable or malformed trace file is
  // that item's error, never a reason to abort the other items.
  std::vector<tr::Trace> traces;
  std::vector<std::string> parse_errors(files.size());
  std::vector<std::ptrdiff_t> slot(files.size(), -1);  // file -> batch index
  std::vector<std::size_t> good;
  for (std::size_t i = 0; i < files.size(); ++i) {
    try {
      tr::Trace t = tr::parse_trace(spec, read_file(files[i]));
      slot[i] = static_cast<std::ptrdiff_t>(traces.size());
      traces.push_back(std::move(t));
      good.push_back(i);
    } catch (const std::exception& e) {
      parse_errors[i] = e.what();
    }
  }

  // --events-dir: one stream per corpus entry, named after the trace file.
  std::vector<std::unique_ptr<obs::JsonlSink>> sink_storage;
  std::vector<obs::Sink*> sinks;
  if (!cli.events_dir.empty()) {
    std::filesystem::create_directories(cli.events_dir);
    for (const std::size_t i : good) {
      const std::string stem =
          std::filesystem::path(files[i]).stem().string();
      const std::string stream_path = cli.events_dir + "/" + stem + ".jsonl";
      auto sink = std::make_unique<obs::JsonlSink>(stream_path);
      sink->set_refs(cli.positional[0], trace_ref_for(stream_path, files[i]));
      sinks.push_back(sink.get());
      sink_storage.push_back(std::move(sink));
    }
  }
  std::vector<core::BatchItemResult> results =
      core::analyze_batch(spec, traces, cli.options, sinks);

  std::size_t valid = 0;
  std::size_t errors = 0;
  const bool json = cli.format == "json";
  std::string out;
  if (json) out = "{\"items\":[";
  for (std::size_t i = 0; i < files.size(); ++i) {
    static const core::BatchItemResult kEmpty;
    const bool parsed = slot[i] >= 0;
    const core::BatchItemResult& r =
        parsed ? results[static_cast<std::size_t>(slot[i])] : kEmpty;
    const std::string& error = parsed ? r.error : parse_errors[i];
    const core::InconclusiveReason reason = r.result.reason;
    if (error.empty() && r.result.verdict == core::Verdict::Valid) ++valid;
    if (!error.empty()) ++errors;
    if (json) {
      if (i != 0) out += ',';
      out += "{\"file\":";
      obs::escape_json_into(out, files[i]);
      out += ",\"verdict\":\"";
      out += error.empty() ? core::to_string(r.result.verdict)
                           : std::string_view("error");
      out += '"';
      if (reason != core::InconclusiveReason::None) {
        out += ",\"reason\":\"";
        out += core::to_string(reason);
        out += '"';
      }
      if (!error.empty()) {
        out += ",\"error\":";
        obs::escape_json_into(out, error);
      }
      out += ",\"attempts\":" + std::to_string(r.attempts);
      if (error.empty()) out += ",\"stats\":" + r.result.stats.to_json();
      out += '}';
      continue;
    }
    if (!error.empty()) {
      std::cout << files[i] << ": error: " << error;
      if (r.attempts > 1) std::cout << " (attempts: " << r.attempts << ")";
      std::cout << "\n";
      continue;
    }
    std::cout << files[i] << ": " << core::to_string(r.result.verdict);
    if (reason != core::InconclusiveReason::None) {
      std::cout << " (reason: " << core::to_string(reason) << ")";
    }
    if (r.attempts > 1) std::cout << " (attempts: " << r.attempts << ")";
    if (cli.verbose) std::cout << " (" << r.result.stats.summary() << ")";
    std::cout << "\n";
  }
  if (json) {
    out += "],\"summary\":{\"total\":" + std::to_string(files.size()) +
           ",\"valid\":" + std::to_string(valid) +
           ",\"errors\":" + std::to_string(errors) + "}}";
    std::cout << out << "\n";
  } else {
    std::cout << "batch: " << valid << "/" << files.size() << " valid\n";
  }
  return valid == files.size() ? 0 : 1;
}

int cmd_analyze(const Cli& cli) {
  // --visited-max bounds the --hash-states table; without the table it
  // would be a silent no-op, which has bitten users expecting a memory cap.
  if (cli.options.visited_max != 0 && !cli.options.hash_states) {
    throw CompileError({}, "--visited-max has no effect without "
                           "--hash-states (add --hash-states, or drop "
                           "--visited-max)");
  }
  if (!cli.batch_dir.empty()) return cmd_analyze_batch(cli);
  if (cli.positional.size() < 2) return usage();
  est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[0]));
  // `tango analyze <spec> -` reads the trace from stdin — the same
  // tr::load_trace path `tango submit` uses, so pipelines compose:
  //   tango workload tp0 | tango analyze builtin:tp0 -
  tr::Trace trace = tr::load_trace(spec, cli.positional[1]);
  if (cli.all_orders) {
    std::printf("%-6s %-12s %10s %10s %10s %10s %8s\n", "mode", "verdict",
                "TE", "GE", "RE", "SA", "cpu(ms)");
    for (const auto& [name, opts] :
         {std::pair{"NR", core::Options::none()},
          std::pair{"IO", core::Options::io()},
          std::pair{"IP", core::Options::ip()},
          std::pair{"FULL", core::Options::full()}}) {
      core::Options o = opts;
      o.max_transitions = cli.options.max_transitions;
      core::DfsResult r = core::analyze(spec, trace, o);
      std::printf("%-6s %-12s %10llu %10llu %10llu %10llu %8.2f\n", name,
                  std::string(core::to_string(r.verdict)).c_str(),
                  static_cast<unsigned long long>(
                      r.stats.transitions_executed),
                  static_cast<unsigned long long>(r.stats.generates),
                  static_cast<unsigned long long>(r.stats.restores),
                  static_cast<unsigned long long>(r.stats.saves),
                  r.stats.cpu_seconds * 1e3);
    }
    return 0;
  }
  std::unique_ptr<obs::JsonlSink> events;
  core::Options options = cli.options;
  if (!cli.events_path.empty()) {
    events = std::make_unique<obs::JsonlSink>(cli.events_path);
    events->set_refs(cli.positional[0],
                     trace_ref_for(cli.events_path, cli.positional[1]));
    options.sink = events.get();
  }
  core::DfsResult result = options.jobs != 1
                               ? core::analyze_parallel(spec, trace, options)
                               : core::analyze(spec, trace, options);
  if (events != nullptr) {
    events.reset();  // flush the stream before reporting
    std::cerr << "events:  " << cli.events_path << "\n";
  }
  std::cout << "verdict: " << core::to_string(result.verdict) << "\n";
  if (result.reason != core::InconclusiveReason::None) {
    std::cout << "reason:  " << core::to_string(result.reason) << "\n";
  }
  std::cout << "stats:   " << result.stats.summary() << "\n";
  if (cli.verbose) {
    if (!result.solution.empty()) {
      std::cout << "solution:";
      for (const std::string& t : result.solution) std::cout << ' ' << t;
      std::cout << "\n";
    }
    if (!result.note.empty()) std::cout << "note:    " << result.note << "\n";
  }
  return result.verdict == core::Verdict::Valid ? 0 : 1;
}

int cmd_online(const Cli& cli) {
  if (cli.positional.size() < 2) return usage();
  est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[0]));
  tr::FileFollower follower(spec, cli.positional[1]);
  core::OnlineConfig config;
  config.options = cli.options;
  std::unique_ptr<obs::JsonlSink> events;
  if (!cli.events_path.empty()) {
    events = std::make_unique<obs::JsonlSink>(cli.events_path);
    events->set_refs(cli.positional[0],
                     trace_ref_for(cli.events_path, cli.positional[1]));
    config.options.sink = events.get();
  }
  core::OnlineAnalyzer analyzer(spec, follower, config);
  core::OnlineStatus last = core::OnlineStatus::Searching;
  while (!analyzer.conclusive()) {
    core::OnlineStatus s = analyzer.step_round(8192);
    if (s != last && cli.verbose) {
      std::cerr << "status: " << core::to_string(s) << " (events so far: "
                << analyzer.trace().events().size() << ")\n";
      last = s;
    }
    if (analyzer.conclusive()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  analyzer.finalize_stream();
  if (events != nullptr) {
    events.reset();
    std::cerr << "events:  " << cli.events_path << "\n";
  }
  std::cout << "verdict: " << core::to_string(analyzer.status()) << "\n"
            << "stats:   " << analyzer.stats().summary() << "\n";
  return analyzer.status() == core::OnlineStatus::Valid ? 0 : 1;
}

int cmd_simulate(const Cli& cli) {
  if (cli.positional.empty() || cli.script.empty()) return usage();
  est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[0]));

  std::vector<sim::Feed> feeds;
  std::uint32_t line_no = 0;
  for (std::string_view raw : split(read_file(cli.script), '\n')) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    // "<step> <ip>.<msg>(params)" — reuse the trace-event parser by
    // prefixing the direction keyword.
    std::size_t sp = line.find(' ');
    if (sp == std::string_view::npos) {
      throw CompileError({line_no, 1}, "script: expected '<step> <event>'");
    }
    const std::string step_text(line.substr(0, sp));
    std::uint64_t step = 0;
    std::size_t used = 0;
    try {
      if (!step_text.empty() && step_text.front() != '-') {
        step = std::stoull(step_text, &used);
      }
    } catch (const std::exception&) {
      used = 0;  // reported below with position info
    }
    if (used == 0 || used != step_text.size()) {
      throw CompileError({line_no, 1},
                         "script: step must be a non-negative integer, got '" +
                             step_text + "'");
    }
    tr::TraceEvent e = tr::parse_event_line(
        spec, "in " + std::string(trim(line.substr(sp))), line_no);
    sim::Feed f;
    f.at_step = step;
    f.ip = e.ip;
    f.interaction = e.interaction;
    f.params = std::move(e.params);
    feeds.push_back(std::move(f));
  }

  sim::SimOptions so;
  so.seed = cli.seed;
  sim::SimResult result = sim::simulate(spec, std::move(feeds), so);
  const std::string text = tr::to_text(spec, result.trace);
  if (cli.output.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(cli.output, std::ios::binary);
    out << text;
  }
  std::cerr << "simulated " << result.steps << " steps, final state "
            << (result.final_state >= 0
                    ? spec.states[static_cast<std::size_t>(result.final_state)]
                    : std::string("?"))
            << (result.completed ? "" : " (incomplete: " + result.note + ")")
            << "\n";
  return result.completed ? 0 : 1;
}

int cmd_generate_cpp(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[0]));
  const std::string code = codegen::generate_cpp(spec);
  if (cli.output.empty()) {
    std::cout << code;
  } else {
    std::ofstream out(cli.output, std::ios::binary);
    out << code;
    std::cerr << "wrote " << cli.output
              << " (build with -I pointing at tam_runtime.hpp)\n";
  }
  return 0;
}

int cmd_normal_form(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  std::vector<std::string> residual;
  std::cout << transform::normal_form_source(
      load_spec_text(cli.positional[0]), &residual);
  for (const std::string& r : residual) {
    std::cerr << "warning: transition '" << r
              << "' still contains control statements (not liftable)\n";
  }
  return 0;
}

int cmd_workload(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  const std::string which = cli.positional[0];
  est::Spec spec = compile_with_warnings(load_spec_text("builtin:" + which));
  tr::Trace trace(0);
  if (which == "lapd") {
    trace = sim::lapd_trace(spec, cli.size, cli.seed);
  } else if (which == "tp0") {
    trace = cli.invalid ? sim::tp0_paper_trace(spec, cli.size)
                        : sim::tp0_trace(spec, cli.size, cli.size, true,
                                         cli.seed);
  } else {
    throw CompileError({}, "workload must be 'lapd' or 'tp0'");
  }
  if (cli.invalid) trace = sim::mutate_last_output_param(trace);
  const std::string text = tr::to_text(spec, trace);
  if (cli.output.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(cli.output, std::ios::binary);
    out << text;
  }
  return 0;
}

int cmd_fuzz(const Cli& cli) {
  fuzz::FuzzConfig config;
  config.seed = cli.seed;
  config.iterations = cli.iterations;
  config.specs = cli.positional;  // empty = all fuzzable builtins
  config.engines = fuzz::parse_engines(cli.engines);
  config.chunk = cli.chunk;
  config.jobs = cli.options.jobs;
  config.out_dir = cli.out_dir;
  config.events_dir = cli.events_dir;
  config.verbose = cli.verbose;
  config.checkpoint = cli.options.checkpoint;
  config.static_prune = cli.options.static_prune;
  if (cli.options.max_transitions != 0) {
    config.max_transitions = cli.options.max_transitions;
  }
  config.deadline_ms = cli.options.deadline_ms;

  fuzz::FuzzReport report = fuzz::run_fuzz(config, &std::cerr);
  std::cout << report.summary();
  if (!cli.stats_path.empty()) {
    std::ofstream out(cli.stats_path, std::ios::binary);
    out << report.to_json() << "\n";
    std::cerr << "wrote " << cli.stats_path << "\n";
  }
  if (!report.clean()) {
    std::cout << "result: " << report.disagreements.size()
              << " disagreement(s) — see reproducer bundle(s)"
              << (config.out_dir.empty() ? " (rerun with --out-dir to save)"
                                         : "")
              << "\n";
    return 1;
  }
  std::cout << "result: all engines agree on all verdicts\n";
  return 0;
}

int cmd_lint(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[0]));
  analysis::LintOptions lo;
  lo.passes = cli.passes;
  lo.source_name = cli.positional[0];
  analysis::LintReport report = analysis::lint(spec, lo);
  if (cli.format == "json") {
    std::cout << report.render_json(cli.positional[0]);
  } else if (cli.format == "sarif") {
    std::cout << report.render_sarif(cli.positional[0]);
  } else {
    std::cout << report.render();
  }
  return report.has_errors() ? 1 : 0;
}

int cmd_coverage(const Cli& cli) {
  if (cli.positional.size() < 2) return usage();
  est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[0]));
  std::vector<tr::Trace> traces;
  for (std::size_t i = 1; i < cli.positional.size(); ++i) {
    traces.push_back(tr::parse_trace(spec, read_file(cli.positional[i])));
  }
  analysis::CoverageReport report =
      analysis::coverage(spec, traces, cli.options);
  if (cli.format == "json") {
    std::cout << report.render_json();
  } else {
    std::cout << report.render();
  }
  return report.traces_valid == report.traces_total ? 0 : 1;
}

// ---- tango events ---------------------------------------------------------

int events_usage() {
  std::cerr
      << "usage: tango events <check|stats|diff|replay> ...\n"
         "  check <stream...>                 schema-validate JSONL streams\n"
         "  stats <stream>                    per-kind counts, as JSON\n"
         "  diff <a> <b> [--ignore=k1,k2]     field-order-insensitive diff\n"
         "  replay <stream...>                re-execute each stream against\n"
         "                                    its run header's spec_ref /\n"
         "                                    trace_ref (fuzz captures)\n"
         "  replay <spec> <trace> <stream>    explicit replay\n";
  return 2;
}

int cmd_events_check(const Cli& cli) {
  bool clean = true;
  for (std::size_t i = 1; i < cli.positional.size(); ++i) {
    const std::string& path = cli.positional[i];
    std::vector<obs::SchemaError> errors;
    if (obs::validate_stream(read_file(path), errors)) {
      std::cout << path << ": ok\n";
      continue;
    }
    clean = false;
    for (const obs::SchemaError& e : errors) {
      std::cout << path << ":" << e.line << ": " << e.message << "\n";
    }
  }
  return clean ? 0 : 1;
}

int cmd_events_stats(const Cli& cli) {
  obs::ReadResult rr = obs::read_events_file(cli.positional[1]);
  for (const obs::ReadError& e : rr.errors) {
    std::cerr << cli.positional[1] << ":" << e.line << ": " << e.message
              << "\n";
  }
  std::cout << obs::stats_to_json(obs::summarize(rr.events)) << "\n";
  return rr.errors.empty() ? 0 : 1;
}

/// Canonicalizes every JSONL line (keys sorted, --ignore keys dropped) so
/// two recordings of the same run compare equal regardless of field order.
std::vector<std::string> canonical_lines(const std::string& text,
                                         const std::vector<std::string>& ignore,
                                         const std::string& path) {
  std::vector<std::string> out;
  std::size_t line_no = 0;
  for (std::string_view raw : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty()) continue;
    try {
      out.push_back(obs::canonical(obs::parse_json(line), ignore));
    } catch (const std::exception& e) {
      throw CompileError({static_cast<std::uint32_t>(line_no), 1},
                         path + ": " + e.what());
    }
  }
  return out;
}

int cmd_events_diff(const Cli& cli) {
  if (cli.positional.size() < 3) return events_usage();
  std::vector<std::string> ignore;
  for (std::string_view part : split(cli.ignore_keys, ',')) {
    if (!trim(part).empty()) ignore.emplace_back(trim(part));
  }
  const std::vector<std::string> a =
      canonical_lines(read_file(cli.positional[1]), ignore, cli.positional[1]);
  const std::vector<std::string> b =
      canonical_lines(read_file(cli.positional[2]), ignore, cli.positional[2]);
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;
    std::cout << "streams differ at event " << i + 1 << ":\n- " << a[i]
              << "\n+ " << b[i] << "\n";
    return 1;
  }
  if (a.size() != b.size()) {
    std::cout << "streams differ in length: " << a.size() << " vs "
              << b.size() << " events\n";
    return 1;
  }
  std::cout << "streams are equivalent (" << a.size() << " events)\n";
  return 0;
}

int replay_one(const est::Spec& spec, const tr::Trace& trace,
               const std::string& stream_path, bool verbose) {
  const obs::ReplayReport report =
      obs::replay_stream(spec, trace, read_file(stream_path));
  if (report.ok()) {
    std::cout << stream_path << ": ok — engine " << report.engine
              << ", verdict " << report.verdict << ", "
              << report.nodes_replayed << " nodes, " << report.fires_checked
              << " fires re-executed\n";
    return 0;
  }
  std::cout << stream_path << ": " << report.issues.size() << " issue(s)\n";
  const std::size_t shown = verbose ? report.issues.size()
                                    : std::min<std::size_t>(
                                          report.issues.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    std::cout << "  event " << report.issues[i].event_index << ": "
              << report.issues[i].message << "\n";
  }
  if (shown < report.issues.size()) {
    std::cout << "  ... (" << report.issues.size() - shown
              << " more; rerun with --verbose)\n";
  }
  return 1;
}

int cmd_events_replay(const Cli& cli) {
  if (cli.positional.size() < 2) return events_usage();
  // Explicit form: replay <spec> <trace> <stream> — the trace argument has
  // a .tr extension (or the stream a .jsonl one), never ambiguous in
  // practice; self-describing form: every positional is a stream.
  if (cli.positional.size() == 4 &&
      cli.positional[3].size() >= 6 &&
      cli.positional[3].compare(cli.positional[3].size() - 6, 6, ".jsonl") ==
          0) {
    est::Spec spec = compile_with_warnings(load_spec_text(cli.positional[1]));
    tr::Trace trace = tr::parse_trace(spec, read_file(cli.positional[2]));
    return replay_one(spec, trace, cli.positional[3], cli.verbose);
  }
  int rc = 0;
  for (std::size_t i = 1; i < cli.positional.size(); ++i) {
    const std::string& path = cli.positional[i];
    obs::ReadResult rr = obs::read_events_file(path);
    if (rr.events.empty() || rr.events[0].kind != obs::EventKind::Run ||
        rr.events[0].spec_ref.empty() || rr.events[0].trace_ref.empty()) {
      std::cout << path << ": run header lacks spec_ref/trace_ref; use "
                   "`tango events replay <spec> <trace> <stream>`\n";
      rc = 1;
      continue;
    }
    est::Spec spec =
        compile_with_warnings(load_spec_text(rr.events[0].spec_ref));
    // trace_ref is relative to the stream's directory (fuzz sidecars).
    std::filesystem::path trace_path(rr.events[0].trace_ref);
    if (trace_path.is_relative()) {
      trace_path = std::filesystem::path(path).parent_path() / trace_path;
    }
    tr::Trace trace =
        tr::parse_trace(spec, read_file(trace_path.string()));
    rc |= replay_one(spec, trace, path, cli.verbose);
  }
  return rc;
}

int cmd_events(const Cli& cli) {
  if (cli.positional.empty()) return events_usage();
  const std::string& sub = cli.positional[0];
  if (sub == "check" && cli.positional.size() >= 2) {
    return cmd_events_check(cli);
  }
  if (sub == "stats" && cli.positional.size() >= 2) {
    return cmd_events_stats(cli);
  }
  if (sub == "diff") return cmd_events_diff(cli);
  if (sub == "replay") return cmd_events_replay(cli);
  return events_usage();
}

int cmd_print(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  std::cout << est::print_spec(est::parse(load_spec_text(cli.positional[0])));
  return 0;
}

int cmd_specs() {
  for (const auto& [name, text] : specs::all_builtin_specs()) {
    est::Spec spec = est::compile_spec(text);
    std::cout << name << " — " << spec.body().transitions.size()
              << " transitions, " << spec.states.size() << " states, "
              << spec.ips.size() << " ips\n";
  }
  return 0;
}

int cmd_cat(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  std::string_view text = specs::builtin_spec(cli.positional[0]);
  if (text.empty()) {
    std::cerr << "unknown built-in spec '" << cli.positional[0] << "'\n";
    return 2;
  }
  std::cout << text;
  return 0;
}

/// serve's signal flag: the handler only stores; the main thread watches
/// and runs the actual drain (signal-safe by construction).
std::atomic<int> g_stop_signal{0};

void on_stop_signal(int sig) { g_stop_signal.store(sig); }

/// Splits "host:port" ("" host = wildcard, port 0 = ephemeral). The last
/// ':' separates, so a future IPv6 "[::1]:0" parse has somewhere to grow.
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& s,
                                                      const char* flag) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) {
    throw CompileError({}, std::string(flag) + " expects <host:port>, got '" +
                               s + "'");
  }
  const std::uint16_t port = static_cast<std::uint16_t>(
      parse_u64_flag(flag, s.substr(colon + 1), 65535));
  return {s.substr(0, colon), port};
}

int cmd_serve(const Cli& cli) {
  auto registry = std::make_shared<srv::SpecRegistry>(
      srv::SpecRegistry::with_builtins());
  // Extra specs are preloaded under the path as typed — that's the ref
  // clients put in their hello frames.
  for (const std::string& path : cli.positional) {
    registry->preload(path, load_spec_text(path));
  }

  srv::ServerConfig cfg;
  if (!cli.listen.empty()) {
    const auto [host, port] = parse_host_port(cli.listen, "--listen");
    if (!host.empty()) cfg.host = host;
    cfg.port = port;
  }
  cfg.workers = cli.workers;
  cfg.queue_max = cli.queue_max;
  cfg.max_sessions = cli.max_sessions;
  cfg.session.default_options = cli.options;
  if (!cli.events_dir.empty()) {
    std::filesystem::create_directories(cli.events_dir);
    cfg.session.events_dir = cli.events_dir;
  }

  srv::Server server(registry, cfg);
  g_stop_signal.store(0);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  server.start();
  // Tests and scripts parse this line for the ephemeral port; keep the
  // "listening on host:port" shape stable and flush it immediately.
  std::cout << "tango " << kTangoVersion << " listening on " << cfg.host
            << ":" << server.port() << " (" << registry->size()
            << " specs, " << cfg.workers << " workers, protocol "
            << srv::kProtocolVersion << ")" << std::endl;

  while (g_stop_signal.load() == 0 && !server.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  const int sig = g_stop_signal.load();
  if (sig != 0) {
    std::cerr << "tango: received "
              << (sig == SIGINT ? "SIGINT" : "SIGTERM")
              << ", draining sessions\n";
  }
  server.shutdown();
  std::cout << "served " << server.sessions_completed()
            << " session(s), rejected " << server.sessions_rejected()
            << " overloaded\n";
  return 0;
}

int cmd_submit(const Cli& cli) {
  if (cli.positional.empty()) return usage();
  if (cli.connect.empty()) {
    throw CompileError({}, "submit needs --connect=<host:port>");
  }
  if (cli.spec_ref.empty()) {
    throw CompileError({}, "submit needs --spec=<ref> (e.g. builtin:abp)");
  }
  srv::SubmitOptions so;
  const auto [host, port] = parse_host_port(cli.connect, "--connect");
  if (!host.empty()) so.host = host;
  so.port = port;
  so.spec = cli.spec_ref;
  so.order = cli.order_name;
  so.mode = cli.static_mode ? "static" : "online";
  so.chunk_size = cli.chunk_size;
  so.chunk_delay_ms = cli.chunk_delay_ms;
  so.hash_states = cli.options.hash_states;
  so.max_transitions = cli.options.max_transitions;
  so.deadline_ms = cli.options.deadline_ms;
  so.max_memory = cli.options.max_memory;
  so.max_depth = cli.options.max_depth;
  so.jobs = cli.options.jobs;

  const std::string text = tr::read_trace_text(cli.positional[0]);
  const srv::SubmitResult r = srv::submit_trace(text, so);

  if (r.overloaded) {
    std::cerr << "tango: server overloaded: " << r.error << "\n";
    return 3;
  }
  if (!r.completed) {
    std::cerr << "tango: " << (r.error.empty() ? "session failed" : r.error)
              << "\n";
    return 2;
  }
  if (cli.verbose) {
    std::cerr << "server:  " << r.server_version << " (session "
              << r.session_id << ")\n";
    for (const std::string& s : r.interim) {
      std::cout << "interim: " << s << "\n";
    }
  }
  std::cout << "verdict: " << r.final_status << "\n";
  if (!r.reason.empty()) std::cout << "reason:  " << r.reason << "\n";
  if (cli.verbose) std::cout << "stats:   " << r.stats_json << "\n";
  return r.final_status == "valid" ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    Cli cli = parse_cli(argc, argv, 2);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") return help();
    if (cmd == "--version" || cmd == "version") return print_version();
    if (cmd == "serve") return cmd_serve(cli);
    if (cmd == "submit") return cmd_submit(cli);
    if (cmd == "check") return cmd_check(cli);
    if (cmd == "analyze") return cmd_analyze(cli);
    if (cmd == "online") return cmd_online(cli);
    if (cmd == "simulate") return cmd_simulate(cli);
    if (cmd == "generate-cpp") return cmd_generate_cpp(cli);
    if (cmd == "normal-form") return cmd_normal_form(cli);
    if (cmd == "workload") return cmd_workload(cli);
    if (cmd == "fuzz") return cmd_fuzz(cli);
    if (cmd == "lint") return cmd_lint(cli);
    if (cmd == "events") return cmd_events(cli);
    if (cmd == "coverage") return cmd_coverage(cli);
    if (cmd == "print") return cmd_print(cli);
    if (cmd == "specs") return cmd_specs();
    if (cmd == "cat") return cmd_cat(cli);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "tango: " << e.what() << "\n";
    return 2;
  }
}
