// Wire protocol of `tango serve` / `tango submit` (docs/SERVER.md): a TCP
// byte stream carrying length-prefixed JSON frames. Each frame is a 4-byte
// big-endian payload length followed by exactly that many bytes of UTF-8
// JSON; the object's "type" member selects the frame kind.
//
//   client -> server:  hello, chunk, eof, cancel
//   server -> client:  accepted, overloaded, verdict, stats, error
//
// The framing layer is deliberately transport-agnostic (feed it bytes from
// anywhere) and strict: zero-length and oversized frames, malformed JSON,
// unknown types and missing required members are all FramingError — a
// server must be able to chew on hostile bytes without dying.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tango::srv {

/// Version of the frame vocabulary. The server reports it in `accepted`;
/// bump on any frame/member rename, removal, or semantic change.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on one frame's payload. Large enough for any realistic
/// trace chunk, small enough that a hostile length prefix cannot make the
/// server allocate the moon.
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024 * 1024;

class FramingError : public std::runtime_error {
 public:
  explicit FramingError(const std::string& what) : std::runtime_error(what) {}
};

enum class FrameType : std::uint8_t {
  Hello,       // c->s: spec ref + analysis options; must be the first frame
  Chunk,       // c->s: raw trace text (may split an event line anywhere)
  Eof,         // c->s: end of trace (§3.1.2 conclusive-verdict marker)
  Cancel,      // c->s: stop analyzing; session concludes reason "shutdown"
  Accepted,    // s->c: session open (version/schema/protocol/session id)
  Overloaded,  // s->c: accept queue full; retry later (backpressure)
  Verdict,     // s->c: interim (final=false) or final assessment
  Stats,       // s->c: final Stats::to_json, after the final verdict
  Error,       // s->c: structured failure (bad spec, bad frame, fault)
};

[[nodiscard]] constexpr std::string_view to_string(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "hello";
    case FrameType::Chunk: return "chunk";
    case FrameType::Eof: return "eof";
    case FrameType::Cancel: return "cancel";
    case FrameType::Accepted: return "accepted";
    case FrameType::Overloaded: return "overloaded";
    case FrameType::Verdict: return "verdict";
    case FrameType::Stats: return "stats";
    case FrameType::Error: return "error";
  }
  return "?";
}

/// One decoded frame: a flat bag of members, the meaningful subset
/// depending on `type` (serialize writes only those; parse_frame validates
/// required ones). Mirrors the obs::Event design.
struct Frame {
  FrameType type = FrameType::Error;

  // hello
  std::string spec;           // registry ref: "builtin:abp" or preloaded path
  std::string order = "io";   // none | io | ip | full
  std::string mode = "online";  // online (MDFS) | static (DFS/ParDfs at eof)
  std::string version;        // client build, informational
  bool hash_states = false;
  std::uint64_t max_transitions = 0;
  std::uint64_t deadline_ms = 0;
  std::uint64_t max_memory = 0;
  std::int64_t max_depth = 0;
  std::int64_t jobs = 1;      // static mode: >1 selects the parallel engine

  // chunk
  std::string text;

  // accepted
  std::uint32_t protocol = 0;   // kProtocolVersion
  std::uint32_t schema = 0;     // obs::kEventSchemaVersion
  std::uint64_t session = 0;    // server-assigned session id (1-based)
  // (accepted reuses `version` for the server build string)

  // verdict
  std::string status;  // core::to_string(Verdict) / to_string(OnlineStatus)
  bool final_verdict = false;
  std::string reason;  // InconclusiveReason token, "" when conclusive

  // stats
  std::string stats_json;  // raw Stats::to_json object

  // error / overloaded
  std::string message;
};

/// Serializes the payload JSON (no length prefix).
[[nodiscard]] std::string serialize(const Frame& f);

/// Length-prefixes a payload for the wire.
[[nodiscard]] std::string encode(std::string_view payload);

/// serialize + encode.
[[nodiscard]] std::string encode_frame(const Frame& f);

/// Parses and validates one payload. Throws FramingError on malformed
/// JSON, unknown type, or missing/ill-typed required members.
[[nodiscard]] Frame parse_frame(std::string_view payload);

/// Incremental frame extractor over an arbitrary byte feed. Throws
/// FramingError from next() when the buffered prefix cannot be a frame
/// (zero or oversized length); after a throw the decoder is poisoned and
/// the connection should be dropped.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Extracts the next complete payload into `payload`; false when more
  /// bytes are needed.
  bool next(std::string& payload);

  /// Bytes buffered but not yet returned (diagnostics).
  [[nodiscard]] std::size_t pending() const { return buf_.size(); }

 private:
  std::string buf_;
};

}  // namespace tango::srv
