#include "server/net.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tango::srv {

namespace {

/// getaddrinfo over a numeric port; the first result that opens wins.
/// `op` is bind-and-listen or connect.
template <typename Op>
int resolve_and(const std::string& host, std::uint16_t port, bool passive,
                std::string& err, Op op) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port_s = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_s.c_str(), &hints, &res);
  if (rc != 0) {
    err = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    return -1;
  }
  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (op(fd, ai)) {
      ::freeaddrinfo(res);
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(res);
  err = "cannot reach '" + host + ":" + port_s +
        "': " + std::strerror(last_errno != 0 ? last_errno : EINVAL);
  return -1;
}

}  // namespace

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

void set_nodelay(int fd) {
  // Framed request/response traffic: Nagle + delayed ACK otherwise adds
  // ~40ms to small-frame exchanges (visible as a p95 cliff in the
  // throughput bench).
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int listen_on(const std::string& host, std::uint16_t port, std::string& err) {
  return resolve_and(host, port, /*passive=*/true, err,
                     [](int fd, const addrinfo* ai) {
                       const int one = 1;
                       ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                                    sizeof(one));
                       return ::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
                              ::listen(fd, SOMAXCONN) == 0;
                     });
}

int connect_to(const std::string& host, std::uint16_t port, std::string& err) {
  const int fd = resolve_and(
      host, port, /*passive=*/false, err, [](int fd2, const addrinfo* ai) {
        return ::connect(fd2, ai->ai_addr, ai->ai_addrlen) == 0;
      });
  if (fd >= 0) set_nodelay(fd);
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

int recv_some(int fd, char* buf, std::size_t cap, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr < 0) return errno == EINTR ? kRecvTimeout : kRecvError;
  if (pr == 0) return kRecvTimeout;
  const ssize_t n = ::recv(fd, buf, cap, 0);
  if (n < 0) return errno == EINTR ? kRecvTimeout : kRecvError;
  if (n == 0) return kRecvClosed;
  return static_cast<int>(n);
}

void OwnedFd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

}  // namespace tango::srv
