#include "server/session.hpp"

#include <memory>
#include <string>
#include <vector>

#include "core/dfs.hpp"
#include "core/fault.hpp"
#include "core/parallel_dfs.hpp"
#include "core/session.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "server/framing.hpp"
#include "server/net.hpp"
#include "server/registry.hpp"
#include "support/diagnostics.hpp"
#include "support/version.hpp"
#include "trace/dynamic_source.hpp"
#include "trace/trace_io.hpp"

namespace tango::srv {

namespace {

/// Connection state threaded through the phases: the decoder must survive
/// the hello -> analysis transition (a fast client's first chunk can ride
/// the same packet as its hello).
struct Conn {
  int fd = -1;
  FrameDecoder decoder;
  bool closed = false;  // orderly peer close
  bool broken = false;  // connection error
};

bool send_frame(const Conn& c, const Frame& f) {
  return send_all(c.fd, encode_frame(f));
}

void send_error(const Conn& c, const std::string& msg) {
  Frame f;
  f.type = FrameType::Error;
  f.message = msg;
  (void)send_frame(c, f);
}

/// Reads once (blocking up to `timeout_ms`), then decodes every complete
/// frame already buffered. Throws FramingError on wire garbage.
void pump_socket(Conn& c, int timeout_ms, std::vector<Frame>& out) {
  char buf[64 * 1024];
  int wait = timeout_ms;
  while (!c.closed && !c.broken) {
    const int n = recv_some(c.fd, buf, sizeof(buf), wait);
    if (n == kRecvTimeout) break;
    if (n == kRecvClosed) {
      c.closed = true;
      break;
    }
    if (n == kRecvError) {
      c.broken = true;
      break;
    }
    c.decoder.feed(buf, static_cast<std::size_t>(n));
    wait = 0;  // drain back-to-back packets without blocking again
  }
  std::string payload;
  while (c.decoder.next(payload)) out.push_back(parse_frame(payload));
}

/// Overlays the hello frame's analysis options on the host defaults.
core::Options options_from_hello(const core::Options& base,
                                 const Frame& hello) {
  core::Options o = base;
  core::Options preset;
  if (hello.order == "none" || hello.order == "nr") {
    preset = core::Options::none();
  } else if (hello.order == "io") {
    preset = core::Options::io();
  } else if (hello.order == "ip") {
    preset = core::Options::ip();
  } else if (hello.order == "full") {
    preset = core::Options::full();
  } else {
    throw FramingError("hello frame: unknown order '" + hello.order + "'");
  }
  o.check_input_wrt_output = preset.check_input_wrt_output;
  o.check_output_wrt_input = preset.check_output_wrt_input;
  o.check_ip_order = preset.check_ip_order;
  if (hello.hash_states) o.hash_states = true;
  if (hello.max_transitions != 0) o.max_transitions = hello.max_transitions;
  if (hello.deadline_ms != 0) o.deadline_ms = hello.deadline_ms;
  if (hello.max_memory != 0) o.max_memory = hello.max_memory;
  if (hello.max_depth != 0) o.max_depth = static_cast<int>(hello.max_depth);
  o.jobs = static_cast<int>(hello.jobs);
  return o;
}

void send_final(const Conn& c, std::string_view status, std::string_view reason,
                const core::Stats& stats) {
  Frame v;
  v.type = FrameType::Verdict;
  v.status = std::string(status);
  v.final_verdict = true;
  v.reason = std::string(reason);
  if (!send_frame(c, v)) return;
  Frame s;
  s.type = FrameType::Stats;
  s.stats_json = stats.to_json();
  (void)send_frame(c, s);
}

[[nodiscard]] bool draining(const SessionContext& ctx) {
  return ctx.draining != nullptr &&
         ctx.draining->load(std::memory_order_relaxed);
}

/// Waits for the peer to close before we do. Closing first is not safe:
/// the trace can conclude the search by itself (an in-band `eof` line),
/// so the client's eof frame may still be in flight when the verdict goes
/// out — data arriving at a closed socket provokes an RST that destroys
/// the client's unread reply. Bounded so a wedged client can't pin a
/// worker.
void linger_until_peer_closes(Conn& c) {
  char buf[4 * 1024];
  for (int waited = 0; !c.closed && !c.broken && waited < 2000;) {
    const int n = recv_some(c.fd, buf, sizeof(buf), 100);
    if (n == kRecvClosed) c.closed = true;
    if (n == kRecvError) c.broken = true;
    if (n == kRecvTimeout) waited += 100;
  }
}

/// MDFS over a socket-fed ChunkSource: chunks resume the search like a
/// growing trace file; assessment edges go out as interim verdict frames.
/// `pending` holds frames that rode the same packets as the hello.
void run_online(Conn& c, const SessionContext& ctx, const PreparedSpec& ps,
                const core::Options& opts, std::vector<Frame> pending) {
  tr::ChunkSource source(ps.spec);
  core::OnlineConfig cfg;
  cfg.options = opts;
  core::AnalysisSession session(ps.spec, source, std::move(cfg));

  bool cancelled = false;
  while (true) {
    // Absorb whatever the client sent; block only when the search is
    // quiescent (waiting on more trace), never while it has work.
    const bool busy = session.status() == core::OnlineStatus::Searching;
    std::vector<Frame> frames = std::move(pending);
    pending.clear();
    pump_socket(c, busy || !frames.empty() ? 0 : 2, frames);
    for (const Frame& f : frames) {
      switch (f.type) {
        case FrameType::Chunk:
          source.push_chunk(f.text);
          break;
        case FrameType::Eof:
          source.push_eof();
          break;
        case FrameType::Cancel:
          cancelled = true;
          break;
        default:
          throw FramingError("unexpected '" +
                             std::string(to_string(f.type)) +
                             "' frame mid-session");
      }
    }
    if (cancelled || draining(ctx)) {
      session.abort(core::InconclusiveReason::Shutdown);
    }
    if (c.closed || c.broken) {
      // Peer is gone: conclude (so the event stream gets its verdict) and
      // tear down without writing to the dead socket.
      session.abort(core::InconclusiveReason::Shutdown);
      session.finalize_stream();
      return;
    }

    session.pump(ctx.config->steps_per_round);

    if (session.conclusive()) {
      session.finalize_stream();
      const core::OnlineStatus st = session.status();
      send_final(c, core::to_string(st),
                 st == core::OnlineStatus::Inconclusive
                     ? core::to_string(session.stats().reason)
                     : std::string_view{},
                 session.stats());
      return;
    }
    core::OnlineStatus now;
    if (session.take_status_change(now) &&
        (now == core::OnlineStatus::ValidSoFar ||
         now == core::OnlineStatus::LikelyInvalid)) {
      Frame v;
      v.type = FrameType::Verdict;
      v.status = std::string(core::to_string(now));
      v.final_verdict = false;
      if (!send_frame(c, v)) c.broken = true;
    }
  }
}

/// Static mode: buffer the whole trace, then one-shot DFS (or the
/// parallel engine when the hello asked for jobs != 1).
void run_static(Conn& c, const SessionContext& ctx, const PreparedSpec& ps,
                const core::Options& opts, std::vector<Frame> pending) {
  std::string text;
  bool eof = false;
  while (!eof) {
    if (draining(ctx)) {
      send_final(c, "inconclusive", "shutdown", core::Stats{});
      return;
    }
    std::vector<Frame> frames = std::move(pending);
    pending.clear();
    pump_socket(c, frames.empty() ? 50 : 0, frames);
    for (const Frame& f : frames) {
      switch (f.type) {
        case FrameType::Chunk:
          text += f.text;
          break;
        case FrameType::Eof:
          eof = true;
          break;
        case FrameType::Cancel:
          send_final(c, "inconclusive", "shutdown", core::Stats{});
          return;
        default:
          throw FramingError("unexpected '" +
                             std::string(to_string(f.type)) +
                             "' frame mid-session");
      }
    }
    // A peer that vanished before its eof left an unanalyzable partial
    // trace — quiet teardown. After eof the analysis proceeds regardless.
    if (!eof && (c.closed || c.broken)) return;
  }
  const tr::Trace trace = tr::parse_trace(ps.spec, text);
  const core::DfsResult r =
      opts.jobs != 1 ? core::analyze_parallel(ps.spec, trace, opts)
                     : core::analyze(ps.spec, trace, opts);
  send_final(c, core::to_string(r.verdict),
             r.verdict == core::Verdict::Inconclusive
                 ? core::to_string(r.reason)
                 : std::string_view{},
             r.stats);
}

}  // namespace

void run_session(int fd, const SessionContext& ctx) {
  OwnedFd guard(fd);
  Conn c;
  c.fd = fd;
  // Per-session fault-injection scope: TANGO_FAULT_INJECT site@session:<id>
  // targets exactly one session without touching its neighbors.
  core::FaultScope fault_scope("session:" + std::to_string(ctx.session_id));
  try {
    // --- hello phase ---
    std::vector<Frame> frames;
    int waited = 0;
    const int step = 100;
    while (frames.empty() && !c.closed && !c.broken &&
           waited < ctx.config->hello_timeout_ms) {
      pump_socket(c, step, frames);
      waited += step;
      if (draining(ctx)) {
        send_error(c, "server is shutting down");
        return;
      }
    }
    if (frames.empty()) return;  // silent connect: quiet drop
    if (frames.front().type != FrameType::Hello) {
      send_error(c, "first frame must be 'hello'");
      return;
    }
    const Frame hello = frames.front();
    frames.erase(frames.begin());

    const PreparedSpec* ps = ctx.registry->find(hello.spec);
    if (ps == nullptr) {
      send_error(c, "unknown spec '" + hello.spec +
                        "' (the server preloads its specs at startup)");
      return;
    }
    core::Options opts = options_from_hello(ctx.config->default_options, hello);
    opts.prebuilt_guard_matrix =
        ps->select(opts.invariant_prune, opts.initial_state_search);

    std::unique_ptr<obs::JsonlSink> sink;
    if (!ctx.config->events_dir.empty()) {
      sink = std::make_unique<obs::JsonlSink>(
          ctx.config->events_dir + "/session-" +
          std::to_string(ctx.session_id) + ".jsonl");
      sink->set_refs(hello.spec,
                     "session:" + std::to_string(ctx.session_id));
      opts.sink = sink.get();
    }

    Frame acc;
    acc.type = FrameType::Accepted;
    acc.version = kTangoVersion;
    acc.protocol = kProtocolVersion;
    acc.schema = obs::kEventSchemaVersion;
    acc.session = ctx.session_id;
    if (!send_frame(c, acc)) return;

    // `frames` may still hold chunks/eof that rode the hello's packets;
    // both runners take them as already-pending input.
    if (hello.mode == "static") {
      run_static(c, ctx, *ps, opts, std::move(frames));
    } else {
      run_online(c, ctx, *ps, opts, std::move(frames));
    }
  } catch (const FramingError& e) {
    send_error(c, e.what());
  } catch (const CompileError& e) {
    send_error(c, std::string("analysis error: ") + e.what());
  } catch (const std::exception& e) {
    send_error(c, std::string("internal error: ") + e.what());
  }
  linger_until_peer_closes(c);
}

}  // namespace tango::srv
