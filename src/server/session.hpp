// One analysis session = one accepted connection (docs/SERVER.md
// §lifecycle): hello -> accepted -> chunk*/eof/cancel -> verdict*/stats
// or error. A session runs entirely on its worker thread; the trace
// arrives through a socket-fed tr::ChunkSource, so MDFS resumes exactly
// as if a dynamic trace file grew (§3.1.1). Static-mode sessions buffer
// the chunks and run the one-shot DFS/ParDfs engines at eof.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/options.hpp"

namespace tango::srv {

class SpecRegistry;

/// Host-level knobs every session shares (owned by the Server; read-only
/// here).
struct SessionConfig {
  /// Base options; the hello frame overlays order preset, hash_states,
  /// budgets and jobs on a copy.
  core::Options default_options;
  /// Non-empty: each session writes its obs event stream (docs/EVENTS.md)
  /// to <events_dir>/session-<id>.jsonl.
  std::string events_dir;
  /// Search steps per pump between socket polls.
  std::uint64_t steps_per_round = 4096;
  /// How long the hello frame may take to arrive before the session is
  /// dropped (keeps idle connects from pinning workers).
  int hello_timeout_ms = 5000;
};

struct SessionContext {
  const SpecRegistry* registry = nullptr;
  const SessionConfig* config = nullptr;
  /// Set by Server::shutdown: in-flight sessions conclude Inconclusive
  /// with reason "shutdown" at the next pump boundary.
  const std::atomic<bool>* draining = nullptr;
  std::uint64_t session_id = 0;
};

/// Serves one connection to completion and closes `fd`. Never throws —
/// protocol violations become `error` frames, a vanished peer is a quiet
/// teardown.
void run_session(int fd, const SessionContext& ctx);

}  // namespace tango::srv
