// Spec registry for the analysis server: every specification the server
// will serve is compiled and statically analyzed ONCE at startup, then
// shared read-only across sessions. Two guard matrices are kept per spec
// because the admissible fact set depends on per-session options: the
// pairwise matrix (guard-solver refutations only) serves sessions that
// disable invariant pruning, the full matrix (pairwise + whole-spec
// invariant facts) serves the default configuration. Sessions never
// mutate a PreparedSpec; the registry is immutable after startup, so no
// lock is needed on the hot path.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "analysis/guard_solver.hpp"
#include "estelle/spec.hpp"

namespace tango::srv {

struct PreparedSpec {
  std::string ref;  // how hello frames name it, e.g. "builtin:abp"
  est::Spec spec;
  /// Guard-solver facts only; null when the solver proved nothing.
  std::shared_ptr<const analysis::GuardMatrix> matrix_pairwise;
  /// Pairwise + invariant facts; null when still empty.
  std::shared_ptr<const analysis::GuardMatrix> matrix_full;

  /// Matrix matching the session's option layers (mirrors the gating in
  /// ResolvedOptions::build_guard_matrix).
  [[nodiscard]] const std::shared_ptr<const analysis::GuardMatrix>& select(
      bool invariant_prune, bool initial_state_search) const {
    return invariant_prune && !initial_state_search ? matrix_full
                                                    : matrix_pairwise;
  }
};

class SpecRegistry {
 public:
  /// Compiles `text` and runs the guard solver + invariant fixpoint.
  /// Throws CompileError on a bad spec. Re-preloading a ref replaces it.
  void preload(std::string ref, std::string_view text);

  /// nullptr when `ref` was never preloaded. Stable for the registry's
  /// lifetime — sessions may hold the pointer without copying.
  [[nodiscard]] const PreparedSpec* find(std::string_view ref) const;

  [[nodiscard]] std::size_t size() const { return index_.size(); }

  /// Registry over all built-in specifications, refs "builtin:<name>".
  [[nodiscard]] static SpecRegistry with_builtins();

 private:
  std::deque<PreparedSpec> storage_;  // deque: stable addresses on growth
  std::map<std::string, const PreparedSpec*, std::less<>> index_;
};

}  // namespace tango::srv
