#include "server/client.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "server/framing.hpp"
#include "server/net.hpp"
#include "support/text.hpp"
#include "support/version.hpp"

namespace tango::srv {

namespace {

/// Splits the trace into chunk frames of `chunk_size` lines. chunk_size 0
/// means one chunk carrying everything. Chunks end on line boundaries —
/// the server tolerates arbitrary splits, but event-aligned chunks make
/// the trickle test deterministic in how much each growth reveals.
std::vector<std::string> make_chunks(const std::string& text,
                                     std::size_t chunk_size) {
  if (chunk_size == 0) return {text};
  std::vector<std::string> chunks;
  std::string current;
  std::size_t lines = 0;
  for (std::string_view raw : split(text, '\n')) {
    current.append(raw);
    current.push_back('\n');
    if (++lines >= chunk_size) {
      chunks.push_back(std::move(current));
      current.clear();
      lines = 0;
    }
  }
  if (!current.empty()) chunks.push_back(std::move(current));
  if (chunks.empty()) chunks.push_back("");
  return chunks;
}

/// Blocks until one frame is available. False on close/timeout/garbage
/// with `err` set.
bool read_frame(int fd, FrameDecoder& decoder, int timeout_ms, Frame& out,
                std::string& err) {
  std::string payload;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    try {
      if (decoder.next(payload)) {
        out = parse_frame(payload);
        return true;
      }
    } catch (const FramingError& e) {
      err = e.what();
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      err = "timed out waiting for server reply";
      return false;
    }
    const int wait = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    char buf[64 * 1024];
    const int n = recv_some(fd, buf, sizeof(buf), wait > 200 ? 200 : wait);
    if (n == kRecvClosed) {
      err = "server closed the connection";
      return false;
    }
    if (n == kRecvError) {
      err = "connection error while waiting for reply";
      return false;
    }
    if (n > 0) decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

SubmitResult submit_trace(const std::string& trace_text,
                          const SubmitOptions& opts) {
  SubmitResult result;
  ignore_sigpipe();

  std::string err;
  OwnedFd fd(connect_to(opts.host, opts.port, err));
  if (!fd.valid()) {
    result.error = err;
    return result;
  }

  Frame hello;
  hello.type = FrameType::Hello;
  hello.spec = opts.spec;
  hello.order = opts.order;
  hello.mode = opts.mode;
  hello.version = kTangoVersion;
  hello.hash_states = opts.hash_states;
  hello.max_transitions = opts.max_transitions;
  hello.deadline_ms = opts.deadline_ms;
  hello.max_memory = opts.max_memory;
  hello.max_depth = opts.max_depth;
  hello.jobs = opts.jobs;
  if (!send_all(fd.get(), encode_frame(hello))) {
    result.error = "failed to send hello";
    return result;
  }

  FrameDecoder decoder;
  Frame reply;
  if (!read_frame(fd.get(), decoder, opts.reply_timeout_ms, reply,
                  result.error)) {
    return result;
  }
  if (reply.type == FrameType::Overloaded) {
    result.overloaded = true;
    result.error = reply.message.empty() ? "server overloaded" : reply.message;
    return result;
  }
  if (reply.type == FrameType::Error) {
    result.error = reply.message;
    return result;
  }
  if (reply.type != FrameType::Accepted) {
    result.error = "expected 'accepted', got '" +
                   std::string(to_string(reply.type)) + "'";
    return result;
  }
  result.server_version = reply.version;
  result.session_id = reply.session;

  // Stream the trace. Interim verdicts can arrive during the send; they
  // are picked up by the decoder as read_frame drains later. The server
  // may also conclude mid-stream (the trace text can carry its own eof
  // marker) — once the final verdict shows up, sending more frames would
  // hit a closing socket, so the eof frame and the wait loop are skipped.
  bool got_final = false;
  for (const std::string& chunk : make_chunks(trace_text, opts.chunk_size)) {
    Frame cf;
    cf.type = FrameType::Chunk;
    cf.text = chunk;
    if (!send_all(fd.get(), encode_frame(cf))) {
      result.error = "connection lost while sending trace";
      return result;
    }
    if (opts.chunk_delay_ms != 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.chunk_delay_ms));
    }
    // Opportunistically drain interim verdicts so slow trickles report
    // assessments as they happen rather than all at the end.
    char buf[64 * 1024];
    int n;
    while ((n = recv_some(fd.get(), buf, sizeof(buf), 0)) > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
    std::string payload;
    try {
      while (decoder.next(payload)) {
        const Frame f = parse_frame(payload);
        if (f.type == FrameType::Verdict) {
          if (f.final_verdict) {
            result.final_status = f.status;
            result.reason = f.reason;
            got_final = true;
          } else {
            result.interim.push_back(f.status);
          }
        } else if (f.type == FrameType::Stats) {
          // The verdict and stats frames can ride the same packet as an
          // interim drain; losing the stats here would leave the final
          // read below waiting on a frame already consumed.
          result.stats_json = f.stats_json;
        } else if (f.type == FrameType::Error) {
          result.error = f.message;
          return result;
        }
      }
    } catch (const FramingError& e) {
      result.error = e.what();
      return result;
    }
    if (got_final) break;
  }
  if (!got_final) {
    Frame eof;
    eof.type = FrameType::Eof;
    if (!send_all(fd.get(), encode_frame(eof))) {
      result.error = "connection lost while sending eof";
      return result;
    }
  }

  // Collect interim verdicts until the final one, then the stats frame.
  while (!got_final) {
    if (!read_frame(fd.get(), decoder, opts.reply_timeout_ms, reply,
                    result.error)) {
      return result;
    }
    if (reply.type == FrameType::Verdict) {
      if (reply.final_verdict) {
        result.final_status = reply.status;
        result.reason = reply.reason;
        break;
      }
      result.interim.push_back(reply.status);
    } else if (reply.type == FrameType::Error) {
      result.error = reply.message;
      return result;
    } else {
      result.error = "unexpected '" + std::string(to_string(reply.type)) +
                     "' frame";
      return result;
    }
  }
  std::string stats_err;
  if (result.stats_json.empty() &&
      read_frame(fd.get(), decoder, opts.reply_timeout_ms, reply, stats_err) &&
      reply.type == FrameType::Stats) {
    result.stats_json = reply.stats_json;
  }
  if (result.stats_json.empty()) result.stats_json = "{}";
  result.completed = true;
  return result;
}

}  // namespace tango::srv
