#include "server/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "server/framing.hpp"
#include "server/net.hpp"

namespace tango::srv {

Server::Server(std::shared_ptr<const SpecRegistry> registry,
               ServerConfig config)
    : registry_(std::move(registry)), config_(std::move(config)) {}

Server::~Server() {
  shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  ignore_sigpipe();
  std::string err;
  listen_fd_ = listen_on(config_.host, config_.port, err);
  if (listen_fd_ < 0) throw std::runtime_error(err);
  port_ = local_port(listen_fd_);

  if (config_.workers < 1) config_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // max_sessions reached: keep the thread alive (shutdown joins it) but
    // take no more work; queued connections are already counted accepted.
    if (config_.max_sessions != 0 &&
        accepted_.load(std::memory_order_acquire) >= config_.max_sessions) {
      pollfd idle{listen_fd_, 0, 0};
      ::poll(&idle, 1, 50);
      continue;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_nodelay(fd);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.size() < config_.queue_max) {
        queue_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      accepted_.fetch_add(1, std::memory_order_acq_rel);
      cv_.notify_one();
    } else {
      // Backpressure: a structured reply, not a silent RST — the client
      // can tell "busy" from "broken" and retry with a delay.
      Frame f;
      f.type = FrameType::Overloaded;
      f.message = "session queue full; retry later";
      (void)send_all(fd, encode_frame(f));
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

void Server::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping and nothing left to drain
      fd = queue_.front();
      queue_.pop_front();
    }
    const std::uint64_t next_id =
        session_ticket_.fetch_add(1, std::memory_order_acq_rel) + 1;
    SessionContext ctx;
    ctx.registry = registry_.get();
    ctx.config = &config_.session;
    ctx.draining = &draining_;
    ctx.session_id = next_id;
    run_session(fd, ctx);
    completed_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void Server::shutdown() {
  if (!started_ || joined_) return;
  draining_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
}

bool Server::finished() const {
  return config_.max_sessions != 0 &&
         completed_.load(std::memory_order_acquire) >= config_.max_sessions;
}

}  // namespace tango::srv
