// The `tango serve` daemon core (docs/SERVER.md §deployment): one accept
// thread feeding a bounded queue of connections, a fixed pool of session
// workers draining it, and a pre-analyzed SpecRegistry shared read-only by
// every session. Backpressure is explicit: when the queue is full the
// accept thread answers `overloaded` and closes, so clients distinguish
// "busy, retry" from "down". Shutdown is graceful by construction —
// stop accepting, flip the draining flag (in-flight sessions conclude
// Inconclusive reason "shutdown" at their next pump boundary), join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/registry.hpp"
#include "server/session.hpp"

namespace tango::srv {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with Server::port().
  std::uint16_t port = 0;
  /// Session worker threads (concurrent analyses).
  int workers = 4;
  /// Accepted-but-unclaimed connections beyond which new connects get an
  /// `overloaded` reply.
  std::size_t queue_max = 16;
  /// Non-zero: stop accepting after this many sessions have been taken on
  /// and report finished() once they completed — the deterministic-exit
  /// knob the tests and the CI smoke job drive.
  std::uint64_t max_sessions = 0;
  SessionConfig session;
};

class Server {
 public:
  Server(std::shared_ptr<const SpecRegistry> registry, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the threads. Throws std::runtime_error when
  /// the address cannot be bound.
  void start();

  /// Graceful drain; idempotent, callable from a signal-watching thread.
  /// Returns once every worker has joined.
  void shutdown();

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// True once max_sessions were served to completion (always false when
  /// max_sessions is 0).
  [[nodiscard]] bool finished() const;

  [[nodiscard]] std::uint64_t sessions_accepted() const {
    return accepted_.load();
  }
  [[nodiscard]] std::uint64_t sessions_completed() const {
    return completed_.load();
  }
  [[nodiscard]] std::uint64_t sessions_rejected() const {
    return rejected_.load();
  }

 private:
  void accept_loop();
  void worker_loop();

  std::shared_ptr<const SpecRegistry> registry_;
  ServerConfig config_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> queue_;  // accepted fds awaiting a worker

  std::atomic<std::uint64_t> session_ticket_{0};  // 1-based session ids
  std::atomic<bool> stopping_{false};  // accept/worker loops wind down
  std::atomic<bool> draining_{false};  // sessions abort to "shutdown"
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace tango::srv
