#include "server/framing.hpp"

#include <cstring>

#include "obs/json.hpp"

namespace tango::srv {

namespace {

void append_str(std::string& out, const char* key, std::string_view v) {
  out += ",\"";
  out += key;
  out += "\":";
  obs::escape_json_into(out, v);
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_i64(std::string& out, const char* key, std::int64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_bool(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

[[noreturn]] void bad(const std::string& what) { throw FramingError(what); }

std::string require_string(const obs::JsonValue& v, const char* key,
                           const char* frame) {
  const obs::JsonValue* m = v.find(key);
  if (m == nullptr || !m->is_string()) {
    bad(std::string(frame) + " frame: missing string member '" + key + "'");
  }
  return m->string;
}

std::string opt_string(const obs::JsonValue& v, const char* key,
                       std::string fallback = "") {
  const obs::JsonValue* m = v.find(key);
  if (m == nullptr) return fallback;
  if (!m->is_string()) bad(std::string("member '") + key + "' must be a string");
  return m->string;
}

std::uint64_t opt_u64(const obs::JsonValue& v, const char* key) {
  const obs::JsonValue* m = v.find(key);
  if (m == nullptr) return 0;
  if (!m->is_number() || !m->is_integer || m->integer < 0) {
    bad(std::string("member '") + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(m->integer);
}

std::int64_t opt_i64(const obs::JsonValue& v, const char* key,
                     std::int64_t fallback = 0) {
  const obs::JsonValue* m = v.find(key);
  if (m == nullptr) return fallback;
  if (!m->is_number() || !m->is_integer) {
    bad(std::string("member '") + key + "' must be an integer");
  }
  return m->integer;
}

bool opt_bool(const obs::JsonValue& v, const char* key) {
  const obs::JsonValue* m = v.find(key);
  if (m == nullptr) return false;
  if (!m->is_bool()) bad(std::string("member '") + key + "' must be a boolean");
  return m->boolean;
}

}  // namespace

std::string serialize(const Frame& f) {
  std::string out = "{\"type\":\"";
  out += to_string(f.type);
  out += '"';
  switch (f.type) {
    case FrameType::Hello:
      append_str(out, "spec", f.spec);
      append_str(out, "order", f.order);
      append_str(out, "mode", f.mode);
      if (!f.version.empty()) append_str(out, "version", f.version);
      if (f.hash_states) append_bool(out, "hash_states", true);
      if (f.max_transitions != 0) {
        append_u64(out, "max_transitions", f.max_transitions);
      }
      if (f.deadline_ms != 0) append_u64(out, "deadline_ms", f.deadline_ms);
      if (f.max_memory != 0) append_u64(out, "max_memory", f.max_memory);
      if (f.max_depth != 0) append_i64(out, "max_depth", f.max_depth);
      if (f.jobs != 1) append_i64(out, "jobs", f.jobs);
      break;
    case FrameType::Chunk:
      append_str(out, "text", f.text);
      break;
    case FrameType::Eof:
    case FrameType::Cancel:
      break;
    case FrameType::Accepted:
      append_str(out, "version", f.version);
      append_u64(out, "protocol", f.protocol);
      append_u64(out, "schema", f.schema);
      append_u64(out, "session", f.session);
      break;
    case FrameType::Verdict:
      append_str(out, "status", f.status);
      append_bool(out, "final", f.final_verdict);
      if (!f.reason.empty()) append_str(out, "reason", f.reason);
      break;
    case FrameType::Stats:
      out += ",\"stats\":";
      out += f.stats_json.empty() ? "{}" : f.stats_json;
      break;
    case FrameType::Overloaded:
    case FrameType::Error:
      append_str(out, "message", f.message);
      break;
  }
  out += '}';
  return out;
}

std::string encode(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    bad("frame payload exceeds " + std::to_string(kMaxFramePayload) + " bytes");
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out.append(payload);
  return out;
}

std::string encode_frame(const Frame& f) { return encode(serialize(f)); }

Frame parse_frame(std::string_view payload) {
  obs::JsonValue doc;
  try {
    doc = obs::parse_json(payload);
  } catch (const std::exception& e) {
    bad(std::string("malformed frame JSON: ") + e.what());
  }
  if (!doc.is_object()) bad("frame must be a JSON object");

  const std::string type = require_string(doc, "type", "any");
  Frame f;
  if (type == "hello") {
    f.type = FrameType::Hello;
    f.spec = require_string(doc, "spec", "hello");
    f.order = opt_string(doc, "order", "io");
    f.mode = opt_string(doc, "mode", "online");
    if (f.mode != "online" && f.mode != "static") {
      bad("hello frame: mode must be 'online' or 'static'");
    }
    f.version = opt_string(doc, "version");
    f.hash_states = opt_bool(doc, "hash_states");
    f.max_transitions = opt_u64(doc, "max_transitions");
    f.deadline_ms = opt_u64(doc, "deadline_ms");
    f.max_memory = opt_u64(doc, "max_memory");
    f.max_depth = opt_i64(doc, "max_depth");
    f.jobs = opt_i64(doc, "jobs", 1);
  } else if (type == "chunk") {
    f.type = FrameType::Chunk;
    f.text = require_string(doc, "text", "chunk");
  } else if (type == "eof") {
    f.type = FrameType::Eof;
  } else if (type == "cancel") {
    f.type = FrameType::Cancel;
  } else if (type == "accepted") {
    f.type = FrameType::Accepted;
    f.version = opt_string(doc, "version");
    f.protocol = static_cast<std::uint32_t>(opt_u64(doc, "protocol"));
    f.schema = static_cast<std::uint32_t>(opt_u64(doc, "schema"));
    f.session = opt_u64(doc, "session");
  } else if (type == "verdict") {
    f.type = FrameType::Verdict;
    f.status = require_string(doc, "status", "verdict");
    const obs::JsonValue* fin = doc.find("final");
    if (fin == nullptr || !fin->is_bool()) {
      bad("verdict frame: missing boolean member 'final'");
    }
    f.final_verdict = fin->boolean;
    f.reason = opt_string(doc, "reason");
  } else if (type == "stats") {
    f.type = FrameType::Stats;
    const obs::JsonValue* stats = doc.find("stats");
    if (stats == nullptr || !stats->is_object()) {
      bad("stats frame: missing object member 'stats'");
    }
    f.stats_json = obs::canonical(*stats);
  } else if (type == "overloaded") {
    f.type = FrameType::Overloaded;
    f.message = opt_string(doc, "message");
  } else if (type == "error") {
    f.type = FrameType::Error;
    f.message = require_string(doc, "message", "error");
  } else {
    bad("unknown frame type '" + type + "'");
  }
  return f;
}

bool FrameDecoder::next(std::string& payload) {
  if (buf_.size() < 4) return false;
  const auto b = [this](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[i]));
  };
  const std::uint32_t n = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  if (n == 0) bad("zero-length frame");
  if (n > kMaxFramePayload) {
    bad("frame length " + std::to_string(n) + " exceeds " +
        std::to_string(kMaxFramePayload));
  }
  if (buf_.size() < 4 + static_cast<std::size_t>(n)) return false;
  payload.assign(buf_, 4, n);
  buf_.erase(0, 4 + static_cast<std::size_t>(n));
  return true;
}

}  // namespace tango::srv
