// Client side of the serve protocol: `tango submit` and the tests drive
// this one call. The trace can be sent whole (one chunk + eof, the static
// degenerate case) or trickled in event-sized chunks with a delay, which
// exercises the server's §3.1.1 resume-on-growth path and collects the
// interim assessments a monitoring client would see.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tango::srv {

struct SubmitOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string spec;           // registry ref, e.g. "builtin:abp"
  std::string order = "io";   // none | io | ip | full
  std::string mode = "online";
  /// Trace lines per chunk frame; 0 sends the whole trace as one chunk.
  std::size_t chunk_size = 0;
  /// Sleep between chunk frames (lets MDFS quiesce between growths).
  std::uint64_t chunk_delay_ms = 0;
  bool hash_states = false;
  std::uint64_t max_transitions = 0;
  std::uint64_t deadline_ms = 0;
  std::uint64_t max_memory = 0;
  std::int64_t max_depth = 0;
  std::int64_t jobs = 1;
  /// Overall wait for server replies, per read.
  int reply_timeout_ms = 30000;
};

struct SubmitResult {
  /// True when a final verdict arrived; `error` explains otherwise.
  bool completed = false;
  /// True when the server answered `overloaded` instead of accepting.
  bool overloaded = false;
  std::string final_status;  // "valid", "invalid", ...
  std::string reason;        // inconclusive reason token, "" otherwise
  /// Interim statuses in arrival order ("valid so far", "likely invalid").
  std::vector<std::string> interim;
  std::string stats_json;      // final stats frame payload ("{}" if none)
  std::string server_version;  // from the accepted frame
  std::uint64_t session_id = 0;
  std::string error;  // transport/protocol/server error description
};

/// Runs one session over `trace_text`. Never throws; failures land in
/// `result.error`.
[[nodiscard]] SubmitResult submit_trace(const std::string& trace_text,
                                        const SubmitOptions& opts);

}  // namespace tango::srv
