// Thin POSIX socket helpers shared by the server, the submit client and
// the tests. Everything here is blocking-with-timeout: callers poll(2)
// before reading, sends use MSG_NOSIGNAL (plus an ignored SIGPIPE for the
// write paths poll cannot cover), and errors are return values — a trace
// analysis server must shrug off any peer behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tango::srv {

/// Process-wide: ignore SIGPIPE so a vanished peer surfaces as EPIPE from
/// send() instead of killing the daemon. Idempotent.
void ignore_sigpipe();

/// Binds and listens on host:port (port 0 picks an ephemeral port; read it
/// back with local_port). Returns the listening fd, or -1 with `err` set.
[[nodiscard]] int listen_on(const std::string& host, std::uint16_t port,
                            std::string& err);

/// Connects to host:port. Returns the fd (TCP_NODELAY set), or -1 with
/// `err` set.
[[nodiscard]] int connect_to(const std::string& host, std::uint16_t port,
                             std::string& err);

/// Disables Nagle on `fd`; small framed exchanges otherwise pay the
/// Nagle/delayed-ACK round trip (~40ms). Applied to both connect_to fds
/// and the server's accepted fds.
void set_nodelay(int fd);

/// The locally bound port of `fd` (0 on error).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Sends all of `data`; false on any error (peer gone, EPIPE, ...).
bool send_all(int fd, std::string_view data);

enum : int {
  kRecvClosed = 0,    // orderly peer close
  kRecvTimeout = -1,  // nothing readable within timeout_ms
  kRecvError = -2,    // connection error
};

/// Waits up to `timeout_ms` for readability, then reads at most `cap`
/// bytes. Returns the byte count, or one of the kRecv* codes above.
int recv_some(int fd, char* buf, std::size_t cap, int timeout_ms);

/// RAII close.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

}  // namespace tango::srv
