#include "server/registry.hpp"

#include <utility>

#include "analysis/invariants.hpp"
#include "specs/builtin_specs.hpp"

namespace tango::srv {

void SpecRegistry::preload(std::string ref, std::string_view text) {
  PreparedSpec prepared;
  prepared.ref = std::move(ref);
  prepared.spec = est::compile_spec(text);

  analysis::GuardAnalysis ga = analysis::analyze_guards(prepared.spec);
  if (ga.matrix.any_facts()) {
    prepared.matrix_pairwise =
        std::make_shared<const analysis::GuardMatrix>(ga.matrix);
  }
  const std::vector<analysis::RoutineEffects> effects =
      analysis::compute_routine_effects(prepared.spec);
  const analysis::StateInvariants inv =
      analysis::compute_state_invariants(prepared.spec, effects);
  analysis::augment_guard_matrix(prepared.spec, inv, ga.matrix);
  if (ga.matrix.any_facts()) {
    prepared.matrix_full = std::make_shared<const analysis::GuardMatrix>(
        std::move(ga.matrix));
  }

  storage_.push_back(std::move(prepared));
  const PreparedSpec& stored = storage_.back();
  index_[stored.ref] = &stored;
}

const PreparedSpec* SpecRegistry::find(std::string_view ref) const {
  const auto it = index_.find(ref);
  return it == index_.end() ? nullptr : it->second;
}

SpecRegistry SpecRegistry::with_builtins() {
  SpecRegistry reg;
  for (const auto& [name, text] : specs::all_builtin_specs()) {
    reg.preload("builtin:" + std::string(name), text);
  }
  return reg;
}

}  // namespace tango::srv
