// Canned workloads reproducing the paper's evaluation traces:
//  - §4.1: LAPD traces whose size is the number of data interactions sent
//    by the user module to the LAPD module (the DI column of Figure 3);
//  - §4.2: TP0 traces with the initial handshake followed by data in both
//    directions (Figure 4's invalid traces are these with the last data
//    parameter edited — see mutate.hpp).
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"

namespace tango::sim {

/// Valid TP0 trace: handshake, `n_up` tdtreq and `n_down` dt data
/// interactions relayed through the buffers, optionally a user disconnect
/// at the end (the paper's t17 discussion needs one).
[[nodiscard]] tr::Trace tp0_trace(const est::Spec& tp0_spec, int n_up,
                                  int n_down, bool disconnect,
                                  std::uint32_t seed = 1);

/// The exact §4.2 evaluation trace shape, constructed rather than
/// simulated: handshake, then per round `in tdtreq / in dt / out dt /
/// out tdtind` (inputs recorded before the outputs they trigger — the
/// simultaneous-senders setting), then `in tdisreq / out dr`. Under full
/// order checking this leaves two valid interleavings per round, giving
/// the exponential invalid-trace blowup of Figure 4.
[[nodiscard]] tr::Trace tp0_paper_trace(const est::Spec& tp0_spec, int n);

/// Valid INRES initiator trace: connection setup, then `n` confirmed
/// data transfers with the alternating sequence bit.
[[nodiscard]] tr::Trace inres_trace(const est::Spec& inres_spec, int n,
                                    std::uint32_t seed = 1);

/// Valid LAPD trace: link establishment, then `di` dl_data_req packets
/// acknowledged in order by the peer with RR frames.
[[nodiscard]] tr::Trace lapd_trace(const est::Spec& lapd_spec, int di,
                                   std::uint32_t seed = 1);

}  // namespace tango::sim
