#include "sim/mutate.hpp"

#include "support/diagnostics.hpp"

namespace tango::sim {

namespace {

tr::Trace rebuild(const tr::Trace& source,
                  const std::vector<tr::TraceEvent>& events, bool eof) {
  tr::Trace out(source.ip_count());
  for (const tr::TraceEvent& e : events) out.append(e);
  if (eof) out.mark_eof();
  return out;
}

/// Returns the index of a mutable integer parameter of `e`, or -1.
int int_param_index(const tr::TraceEvent& e) {
  for (std::size_t i = 0; i < e.params.size(); ++i) {
    if (e.params[i].kind() == rt::Value::Kind::Int) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

tr::Trace copy_trace(const tr::Trace& trace) {
  return rebuild(trace, trace.events(), trace.eof());
}

bool has_mutable_output_param(const tr::Trace& trace) {
  for (const tr::TraceEvent& e : trace.events()) {
    if (e.dir == tr::Dir::Out && int_param_index(e) >= 0) return true;
  }
  return false;
}

tr::Trace mutate_output_param_from_last(const tr::Trace& trace,
                                        int nth_from_last) {
  std::vector<tr::TraceEvent> events = trace.events();
  int remaining = nth_from_last;
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->dir != tr::Dir::Out) continue;
    const int pi = int_param_index(*it);
    if (pi < 0) continue;
    if (remaining-- > 0) continue;
    it->params[static_cast<std::size_t>(pi)] = rt::Value::make_int(
        it->params[static_cast<std::size_t>(pi)].scalar() + 1);
    return rebuild(trace, events, trace.eof());
  }
  throw CompileError({}, "mutate: no output event with an integer parameter");
}

tr::Trace mutate_last_output_param(const tr::Trace& trace) {
  return mutate_output_param_from_last(trace, 0);
}

tr::Trace drop_event(const tr::Trace& trace, std::uint32_t seq) {
  std::vector<tr::TraceEvent> events;
  for (const tr::TraceEvent& e : trace.events()) {
    if (e.seq != seq) events.push_back(e);
  }
  if (events.size() == trace.events().size()) {
    throw CompileError({}, "mutate: no event with seq " + std::to_string(seq));
  }
  return rebuild(trace, events, trace.eof());
}

tr::Trace swap_adjacent(const tr::Trace& trace, std::uint32_t seq) {
  std::vector<tr::TraceEvent> events = trace.events();
  if (seq + 1 >= events.size()) {
    throw CompileError({}, "mutate: cannot swap at trace end");
  }
  std::swap(events[seq], events[seq + 1]);
  return rebuild(trace, events, trace.eof());
}

tr::Trace truncate(const tr::Trace& trace, std::size_t n, bool keep_eof) {
  std::vector<tr::TraceEvent> events = trace.events();
  if (events.size() > n) events.resize(n);
  return rebuild(trace, events, keep_eof && trace.eof());
}

}  // namespace tango::sim
