#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <random>

#include "support/text.hpp"

namespace tango::sim {

namespace {

/// Records everything the module outputs into the trace.
class RecordingSink final : public rt::OutputSink {
 public:
  explicit RecordingSink(tr::Trace& trace) : trace_(trace) {}

  bool on_output(int ip, int interaction_id, std::vector<rt::Value> params,
                 SourceLoc) override {
    tr::TraceEvent e;
    e.dir = tr::Dir::Out;
    e.ip = ip;
    e.interaction = interaction_id;
    e.params = std::move(params);
    trace_.append(std::move(e));
    return true;
  }

 private:
  tr::Trace& trace_;
};

struct QueuedInput {
  int interaction = -1;
  std::vector<rt::Value> params;
};

}  // namespace

Feed make_feed(const est::Spec& spec, std::uint64_t at_step,
               std::string_view ip, std::string_view interaction,
               std::vector<rt::Value> params) {
  Feed f;
  f.at_step = at_step;
  f.ip = spec.ip_index(to_lower(ip));
  if (f.ip < 0) {
    throw CompileError({}, "simulator feed: unknown ip '" + std::string(ip) +
                               "'");
  }
  f.interaction = spec.input_id(f.ip, to_lower(interaction));
  if (f.interaction < 0) {
    throw CompileError({}, "simulator feed: '" + std::string(interaction) +
                               "' is not an input of ip '" + std::string(ip) +
                               "'");
  }
  const est::InteractionInfo& info = spec.interaction(f.interaction);
  if (info.param_types.size() != params.size()) {
    throw CompileError({}, "simulator feed: '" + std::string(interaction) +
                               "' expects " +
                               std::to_string(info.param_types.size()) +
                               " parameter(s)");
  }
  f.params = std::move(params);
  return f;
}

SimResult simulate(const est::Spec& spec, std::vector<Feed> feeds,
                   const SimOptions& options) {
  std::stable_sort(feeds.begin(), feeds.end(),
                   [](const Feed& a, const Feed& b) {
                     return a.at_step < b.at_step;
                   });

  SimResult result{tr::Trace(static_cast<int>(spec.ips.size()))};
  rt::Interp interp(spec, rt::EvalMode::Strict);
  rt::MachineState machine = rt::make_initial_machine(spec);
  RecordingSink sink(result.trace);
  std::mt19937 rng(options.seed);

  const est::Initializer& init =
      spec.body().initializers.at(options.initializer);
  if (!interp.run_initializer(machine, init, sink)) {
    result.note = "initializer aborted";
    return result;
  }

  std::vector<std::deque<QueuedInput>> queues(spec.ips.size());
  std::size_t next_feed = 0;

  auto deliver_due = [&](std::uint64_t step) {
    for (; next_feed < feeds.size() && feeds[next_feed].at_step <= step;
         ++next_feed) {
      const Feed& f = feeds[next_feed];
      queues[static_cast<std::size_t>(f.ip)].push_back(
          QueuedInput{f.interaction, f.params});
      if (options.recording == InputRecording::AtArrival) {
        tr::TraceEvent e;
        e.dir = tr::Dir::In;
        e.ip = f.ip;
        e.interaction = f.interaction;
        e.params = f.params;
        result.trace.append(std::move(e));
      }
    }
  };

  const auto& transitions = spec.body().transitions;
  for (;;) {
    if (result.steps >= options.max_steps) {
      result.note = "step limit reached";
      break;
    }
    deliver_due(result.steps);

    // Enumerate fireable transitions against the real input queues.
    std::vector<std::size_t> fireable;
    std::int64_t best_priority = std::numeric_limits<std::int64_t>::max();
    for (std::size_t ti = 0; ti < transitions.size(); ++ti) {
      const est::Transition& tr = transitions[ti];
      if (!std::binary_search(tr.from_ordinals.begin(),
                              tr.from_ordinals.end(), machine.fsm_state)) {
        continue;
      }
      const std::vector<rt::Value>* binding = nullptr;
      static const std::vector<rt::Value> kEmpty;
      binding = &kEmpty;
      if (tr.when) {
        const auto& q = queues[static_cast<std::size_t>(tr.when->ip_index)];
        if (q.empty() || q.front().interaction != tr.when->interaction_id) {
          continue;
        }
        binding = &q.front().params;
      }
      if (!interp.provided_holds(machine, tr, *binding)) continue;
      const std::int64_t prio =
          tr.priority.value_or(std::numeric_limits<std::int64_t>::max());
      if (prio < best_priority) {
        best_priority = prio;
        fireable.clear();
      }
      if (prio == best_priority) fireable.push_back(ti);
    }

    if (fireable.empty()) {
      if (next_feed < feeds.size()) {
        ++result.steps;  // idle tick: wait for the next scheduled feed
        continue;
      }
      break;  // quiescent
    }

    const std::size_t pick =
        fireable[std::uniform_int_distribution<std::size_t>(
            0, fireable.size() - 1)(rng)];
    const est::Transition& tr = transitions[pick];

    std::vector<rt::Value> binding;
    if (tr.when) {
      auto& q = queues[static_cast<std::size_t>(tr.when->ip_index)];
      binding = std::move(q.front().params);
      if (options.recording == InputRecording::AtConsumption) {
        tr::TraceEvent e;
        e.dir = tr::Dir::In;
        e.ip = tr.when->ip_index;
        e.interaction = tr.when->interaction_id;
        e.params = binding;
        result.trace.append(std::move(e));
      }
      q.pop_front();
    }

    if (!interp.fire(machine, tr, binding, sink)) {
      result.note = "transition aborted";
      break;
    }
    ++result.steps;
  }

  result.final_state = machine.fsm_state;
  result.completed =
      next_feed >= feeds.size() &&
      std::all_of(queues.begin(), queues.end(),
                  [](const auto& q) { return q.empty(); }) &&
      result.note.empty();
  result.trace.mark_eof();
  return result;
}

}  // namespace tango::sim
