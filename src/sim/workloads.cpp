#include "sim/workloads.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace tango::sim {

tr::Trace tp0_trace(const est::Spec& spec, int n_up, int n_down,
                    bool disconnect, std::uint32_t seed) {
  std::vector<Feed> feeds;
  std::uint64_t step = 0;
  feeds.push_back(make_feed(spec, step, "u", "tconreq"));
  step += 2;
  feeds.push_back(make_feed(spec, step, "n", "cc"));
  step += 2;
  // The paper's §4.2 setting: "the upper and lower modules can
  // simultaneously send data to each other" — both stimuli of round i are
  // delivered at the same step, so the recorded trace clusters inputs
  // before the outputs they trigger. That leaves the input-vs-output
  // interleaving freedom that makes invalid-trace analysis exponential
  // even under full order checking (Figure 4).
  const int total = std::max(n_up, n_down);
  for (int i = 0; i < total; ++i) {
    if (i < n_up) {
      feeds.push_back(make_feed(spec, step, "u", "tdtreq",
                                {rt::Value::make_int(100 + i)}));
    }
    if (i < n_down) {
      feeds.push_back(make_feed(spec, step, "n", "dt",
                                {rt::Value::make_int(200 + i)}));
    }
    step += 4;
  }
  if (disconnect) {
    step += 4;  // let the buffers flush first
    feeds.push_back(make_feed(spec, step, "u", "tdisreq"));
  }

  SimOptions so;
  so.seed = seed;
  SimResult r = simulate(spec, std::move(feeds), so);
  if (!r.note.empty()) {
    throw CompileError({}, "tp0_trace: simulation incomplete: " + r.note);
  }
  return std::move(r.trace);
}

namespace {
tr::TraceEvent event(const est::Spec& spec, tr::Dir dir, const char* ip_name,
                     const char* msg, std::vector<rt::Value> params) {
  tr::TraceEvent e;
  e.dir = dir;
  e.ip = spec.ip_index(ip_name);
  e.interaction = dir == tr::Dir::In
                      ? spec.input_id(e.ip, msg)
                      : spec.output_id(e.ip, msg);
  if (e.ip < 0 || e.interaction < 0) {
    throw CompileError({}, std::string("tp0_paper_trace: bad event ") +
                               ip_name + "." + msg);
  }
  e.params = std::move(params);
  return e;
}
}  // namespace

tr::Trace tp0_paper_trace(const est::Spec& spec, int n) {
  tr::Trace t(static_cast<int>(spec.ips.size()));
  t.append(event(spec, tr::Dir::In, "u", "tconreq", {}));
  t.append(event(spec, tr::Dir::Out, "n", "cr", {}));
  t.append(event(spec, tr::Dir::In, "n", "cc", {}));
  t.append(event(spec, tr::Dir::Out, "u", "tconcnf", {}));
  for (int i = 0; i < n; ++i) {
    t.append(event(spec, tr::Dir::In, "n", "dt",
                   {rt::Value::make_int(200 + i)}));
    t.append(event(spec, tr::Dir::In, "u", "tdtreq",
                   {rt::Value::make_int(100 + i)}));
    t.append(event(spec, tr::Dir::Out, "n", "dt",
                   {rt::Value::make_int(100 + i)}));
    t.append(event(spec, tr::Dir::Out, "u", "tdtind",
                   {rt::Value::make_int(200 + i)}));
  }
  t.append(event(spec, tr::Dir::In, "u", "tdisreq", {}));
  t.append(event(spec, tr::Dir::Out, "n", "dr", {}));
  t.mark_eof();
  return t;
}

tr::Trace inres_trace(const est::Spec& spec, int n, std::uint32_t seed) {
  std::vector<Feed> feeds;
  feeds.push_back(make_feed(spec, 0, "u", "iconreq"));
  feeds.push_back(make_feed(spec, 1, "m", "cc"));
  std::uint64_t step = 3;
  int bit = 1;
  for (int i = 0; i < n; ++i) {
    feeds.push_back(make_feed(spec, step, "u", "idatreq",
                              {rt::Value::make_int(500 + i)}));
    feeds.push_back(
        make_feed(spec, step + 2, "m", "ak", {rt::Value::make_int(bit)}));
    bit = 1 - bit;
    step += 3;
  }

  SimOptions so;
  so.seed = seed;
  // The spontaneous repeat_cr / repeat_dt transitions never quiesce on
  // their own; bound the run and accept the step-limited result.
  so.max_steps = static_cast<std::uint64_t>(16 + 8 * n);
  SimResult r = simulate(spec, std::move(feeds), so);
  return std::move(r.trace);
}

tr::Trace lapd_trace(const est::Spec& spec, int di, std::uint32_t seed) {
  std::vector<Feed> feeds;
  feeds.push_back(make_feed(spec, 0, "u", "dl_establish_req"));
  feeds.push_back(make_feed(spec, 1, "l", "ua"));
  std::uint64_t step = 3;
  for (int i = 0; i < di; ++i) {
    feeds.push_back(make_feed(spec, step, "u", "dl_data_req",
                              {rt::Value::make_int(100 + i)}));
    // The peer acknowledges each outgoing I frame by piggybacking
    // N(R)=(i+1) mod 8 on its own I frame (N(S)=i mod 8). Piggybacking is
    // the paper's §1 example of specification nondeterminism: the N(R)
    // values of subsequent outgoing frames depend on when this incoming
    // frame was processed, so order-unchecked analysis must backtrack.
    feeds.push_back(make_feed(spec, step + 2, "l", "iframe",
                              {rt::Value::make_int(i % 8),
                               rt::Value::make_int((i + 1) % 8),
                               rt::Value::make_int(300 + i)}));
    step += 3;
  }

  SimOptions so;
  so.seed = seed;
  SimResult r = simulate(spec, std::move(feeds), so);
  if (!r.note.empty()) {
    throw CompileError({}, "lapd_trace: simulation incomplete: " + r.note);
  }
  return std::move(r.trace);
}

}  // namespace tango::sim
