// Trace mutation helpers for generating *invalid* traces, following the
// paper's §4.2 procedure: "One parameter in the last data interaction of
// the trace file was edited slightly to cause a mismatch."
#pragma once

#include "estelle/spec.hpp"
#include "trace/event.hpp"

namespace tango::sim {

/// Deep copy (events keep their order; seq numbers are reassigned).
[[nodiscard]] tr::Trace copy_trace(const tr::Trace& trace);

/// True when the trace has an output event with an integer-valued
/// parameter, i.e. mutate_last_output_param will not throw.
[[nodiscard]] bool has_mutable_output_param(const tr::Trace& trace);

/// Adds 1 to the first integer-valued parameter of the last output event
/// that has one (searching backwards). Throws if no such event exists.
[[nodiscard]] tr::Trace mutate_last_output_param(const tr::Trace& trace);

/// Same, but for the `nth_from_last` output with an integer parameter
/// (0 = last).
[[nodiscard]] tr::Trace mutate_output_param_from_last(const tr::Trace& trace,
                                                      int nth_from_last);

/// Removes the event with global sequence number `seq`.
[[nodiscard]] tr::Trace drop_event(const tr::Trace& trace, std::uint32_t seq);

/// Swaps the events at `seq` and `seq + 1`.
[[nodiscard]] tr::Trace swap_adjacent(const tr::Trace& trace,
                                      std::uint32_t seq);

/// Keeps only the first `n` events (and drops the eof marker when
/// `keep_eof` is false) — used to build partial traces.
[[nodiscard]] tr::Trace truncate(const tr::Trace& trace, std::size_t n,
                                 bool keep_eof = true);

}  // namespace tango::sim
