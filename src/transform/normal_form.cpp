#include "transform/normal_form.hpp"

#include <deque>

#include "estelle/parser.hpp"
#include "estelle/printer.hpp"
#include "support/diagnostics.hpp"

namespace tango::transform {

namespace {

using est::BinOp;
using est::Expr;
using est::ExprKind;
using est::ExprPtr;
using est::Stmt;
using est::StmtKind;
using est::StmtPtr;
using est::Transition;
using est::UnOp;

constexpr int kMaxSplits = 4096;

ExprPtr conj(ExprPtr a, ExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  ExprPtr e = est::make_expr(ExprKind::Binary, a->loc);
  e->bin_op = BinOp::And;
  e->children.push_back(std::move(a));
  e->children.push_back(std::move(b));
  return e;
}

ExprPtr negate(ExprPtr a) {
  ExprPtr e = est::make_expr(ExprKind::Unary, a->loc);
  e->un_op = UnOp::Not;
  e->children.push_back(std::move(a));
  return e;
}

ExprPtr equals_expr(const Expr& sel, const Expr& label) {
  ExprPtr e = est::make_expr(ExprKind::Binary, label.loc);
  e->bin_op = BinOp::Eq;
  e->children.push_back(est::clone(sel));
  e->children.push_back(est::clone(label));
  return e;
}

/// Flattens a leading nested compound so the first *simple* statement of
/// the block surfaces at body[0]; drops leading empty statements.
void surface_first(Stmt& block) {
  for (;;) {
    if (block.body.empty()) return;
    Stmt& first = *block.body.front();
    if (first.kind == StmtKind::Empty) {
      block.body.erase(block.body.begin());
      continue;
    }
    if (first.kind == StmtKind::Compound) {
      std::vector<StmtPtr> inner = std::move(first.body);
      block.body.erase(block.body.begin());
      block.body.insert(block.body.begin(),
                        std::make_move_iterator(inner.begin()),
                        std::make_move_iterator(inner.end()));
      continue;
    }
    return;
  }
}

/// New transition: same clauses as `base`, provided conjoined with `extra`,
/// block = [branch?, rest of base's block after the first statement].
Transition derive(const Transition& base, ExprPtr extra,
                  const Stmt* branch) {
  Transition t;
  t.loc = base.loc;
  t.from_states = base.from_states;
  t.to_state = base.to_state;
  t.to_same = base.to_same;
  if (base.when) {
    est::WhenClause w;
    w.loc = base.when->loc;
    w.ip = base.when->ip;
    w.interaction = base.when->interaction;
    t.when = std::move(w);
  }
  t.provided = conj(base.provided ? est::clone(*base.provided) : nullptr,
                    std::move(extra));
  t.priority = base.priority;
  for (const est::VarDecl& v : base.locals) {
    est::VarDecl copy;
    copy.loc = v.loc;
    copy.names = v.names;
    copy.type = est::clone(*v.type);
    t.locals.push_back(std::move(copy));
  }
  t.block = est::make_stmt(StmtKind::Compound, base.block->loc);
  if (branch != nullptr) t.block->body.push_back(est::clone(*branch));
  for (std::size_t i = 1; i < base.block->body.size(); ++i) {
    t.block->body.push_back(est::clone(*base.block->body[i]));
  }
  return t;
}

bool has_control(const Stmt& s) {
  if (s.kind == StmtKind::If || s.kind == StmtKind::Case ||
      s.kind == StmtKind::While || s.kind == StmtKind::For ||
      s.kind == StmtKind::Repeat) {
    return true;
  }
  for (const StmtPtr& c : s.body) {
    if (c && has_control(*c)) return true;
  }
  if (s.s0 && has_control(*s.s0)) return true;
  if (s.s1 && has_control(*s.s1)) return true;
  for (const est::CaseArm& arm : s.arms) {
    if (arm.body && has_control(*arm.body)) return true;
  }
  for (const StmtPtr& c : s.otherwise) {
    if (c && has_control(*c)) return true;
  }
  return false;
}

}  // namespace

NormalFormResult to_normal_form(const est::SpecAst& spec) {
  NormalFormResult result;
  // Round-trip through the printer for a deep copy of the whole AST.
  result.spec = est::parse(est::print_spec(spec));
  if (result.spec.bodies.empty()) return result;

  est::BodyDef& body = result.spec.bodies[0];
  std::deque<Transition> work;
  for (Transition& tr : body.transitions) work.push_back(std::move(tr));
  body.transitions.clear();

  while (!work.empty()) {
    Transition tr = std::move(work.front());
    work.pop_front();
    surface_first(*tr.block);

    const Stmt* first =
        tr.block->body.empty() ? nullptr : tr.block->body.front().get();

    if (first != nullptr && first->kind == StmtKind::If) {
      if ((result.splits += 2) > kMaxSplits) {
        throw CompileError(tr.loc,
                           "normal-form transformation exploded past " +
                               std::to_string(kMaxSplits) + " transitions");
      }
      work.push_front(derive(tr, negate(est::clone(*first->e0)),
                             first->s1 ? first->s1.get() : nullptr));
      work.push_front(derive(tr, est::clone(*first->e0), first->s0.get()));
      continue;
    }

    if (first != nullptr && first->kind == StmtKind::Case) {
      ExprPtr no_match;  // conjunction of <> for the otherwise branch
      std::vector<Transition> pieces;
      for (const est::CaseArm& arm : first->arms) {
        ExprPtr any_label;  // disjunction of = over this arm's labels
        for (const ExprPtr& label : arm.labels) {
          ExprPtr eq = equals_expr(*first->e0, *label);
          no_match = conj(std::move(no_match), negate(est::clone(*eq)));
          if (!any_label) {
            any_label = std::move(eq);
          } else {
            ExprPtr e = est::make_expr(ExprKind::Binary, label->loc);
            e->bin_op = BinOp::Or;
            e->children.push_back(std::move(any_label));
            e->children.push_back(std::move(eq));
            any_label = std::move(e);
          }
        }
        pieces.push_back(derive(tr, std::move(any_label), arm.body.get()));
      }
      if (first->has_otherwise) {
        Stmt wrapper(StmtKind::Compound, first->loc);
        for (const StmtPtr& c : first->otherwise) {
          wrapper.body.push_back(est::clone(*c));
        }
        pieces.push_back(derive(tr, std::move(no_match), &wrapper));
      }
      if ((result.splits += static_cast<int>(pieces.size())) > kMaxSplits) {
        throw CompileError(tr.loc,
                           "normal-form transformation exploded past " +
                               std::to_string(kMaxSplits) + " transitions");
      }
      for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
        work.push_front(std::move(*it));
      }
      continue;
    }

    if (has_control(*tr.block)) {
      result.residual.push_back(tr.name.empty() ? "<unnamed>" : tr.name);
    }
    body.transitions.push_back(std::move(tr));
  }
  return result;
}

std::string normal_form_source(std::string_view source,
                               std::vector<std::string>* residual) {
  NormalFormResult result = to_normal_form(est::parse(source));
  if (residual != nullptr) *residual = result.residual;
  return est::print_spec(result.spec);
}

}  // namespace tango::transform
