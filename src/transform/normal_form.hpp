// Normal-form transformation (paper §5.3, after Sarikaya & Bochmann): lifts
// leading `if`/`case` statements of transition blocks into `provided`
// clauses by splitting the transition, so that partial-trace analysis never
// lets an undefined value control a branch — the branch choice becomes a
// nondeterministic alternative that provided-clause evaluation (where
// undefined means "assume true") explores on both sides.
//
// The transformation is applied while the *first* statement of a block is a
// conditional. A conditional buried behind earlier statements cannot be
// lifted soundly (the earlier statements may change variables the condition
// reads), so such transitions are left alone and reported in the result.
#pragma once

#include <string>
#include <vector>

#include "estelle/ast.hpp"

namespace tango::transform {

struct NormalFormResult {
  est::SpecAst spec;
  /// Names of transitions that still contain control statements the
  /// transform could not lift (deep/interior conditionals).
  std::vector<std::string> residual;
  int splits = 0;  // how many transition splits were performed
};

/// Transforms a parsed (unresolved) specification. The result must be
/// re-analyzed (est::analyze / est::compile) before use.
[[nodiscard]] NormalFormResult to_normal_form(const est::SpecAst& spec);

/// Convenience: parse, transform, and return the transformed source text.
[[nodiscard]] std::string normal_form_source(std::string_view source,
                                             std::vector<std::string>* residual = nullptr);

}  // namespace tango::transform
