// Small string helpers used across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tango {

/// Case-insensitive equality (ASCII). Estelle/Pascal identifiers and
/// keywords are case-insensitive.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Lower-cases ASCII characters; used for identifier canonicalization.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Strips leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace tango
