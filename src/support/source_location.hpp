// Source positions for diagnostics. Lines and columns are 1-based; a
// default-constructed location means "no position" (e.g. synthesized AST).
#pragma once

#include <cstdint>
#include <string>

namespace tango {

struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Renders "line:column", or "?" for an invalid location.
inline std::string to_string(SourceLoc loc) {
  if (!loc.valid()) return "?";
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace tango
