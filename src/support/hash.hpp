// Shared 64-bit mixing primitives for the state-hashing layer. Both the
// full-walk hash and the incremental per-component scheme are built from
// these, so the two paths stay bit-identical by construction.
#pragma once

#include <cstdint>

namespace tango::support {

inline constexpr std::uint64_t kGolden64 = 0x9e3779b97f4a7c15ULL;

/// splitmix64 finalizer: a cheap full-avalanche bijection on 64 bits.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Position-salted component fold: maps (component index, component hash)
/// to one well-mixed word. Components combine with XOR, so a fold over
/// them can be *patched* — XOR the old placement out and the new one in —
/// which is what makes the incremental hash an O(dirty) update.
[[nodiscard]] inline std::uint64_t place64(std::uint64_t index,
                                           std::uint64_t component) {
  return mix64(component ^ (kGolden64 * (index + 1)));
}

}  // namespace tango::support
