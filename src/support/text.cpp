#include "support/text.hpp"

#include <cctype>

namespace tango {

namespace {
char lower(char c) {
  return static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(lower(c));
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace tango
