#include "support/diagnostics.hpp"

namespace tango {

namespace {
const char* severity_name(Severity sev) {
  switch (sev) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "diagnostic";
}
}  // namespace

std::string Diagnostic::render() const {
  return to_string(loc) + ": " + severity_name(severity) + ": " + message;
}

void DiagnosticSink::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticSink::render() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.render();
    out += '\n';
  }
  return out;
}

}  // namespace tango
