// Build identity, reported by `tango --version`, the server's `accepted`
// frame, and docs. Header-only so every layer (support upward) can name the
// version without a link dependency; the full human-readable line is
// composed by the consumer because the obs schema version lives above this
// layer (obs::kEventSchemaVersion) and the wire protocol version in
// src/server/framing.hpp.
#pragma once

namespace tango {

/// Semantic version of the tango toolchain as a whole. Bump the minor on
/// every feature PR; the server hands this to clients so mixed-version
/// deployments are diagnosable from the `accepted` frame alone.
inline constexpr const char* kTangoVersion = "0.10.0";

/// Compiled-in build flavor: fault injection and the incremental==full
/// hash oracle are live in debug builds only, which matters when reading
/// numbers off a deployment.
#ifndef NDEBUG
inline constexpr const char* kTangoBuildType = "debug";
#else
inline constexpr const char* kTangoBuildType = "release";
#endif

}  // namespace tango
