// Diagnostic collection shared by the frontend, the transform passes and the
// analyzer. Fatal conditions (parse errors, semantic errors, runtime faults)
// are reported through exceptions carrying a Diagnostic; non-fatal notes and
// warnings accumulate in a DiagnosticSink.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace tango {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string render() const;
};

/// Accumulates diagnostics produced while processing one compilation unit.
class DiagnosticSink {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }
  void warn(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ != 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics rendered one per line, suitable for terminal output.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Thrown for unrecoverable frontend errors (lexing/parsing/semantic).
class CompileError : public std::runtime_error {
 public:
  CompileError(SourceLoc loc, const std::string& message)
      : std::runtime_error(to_string(loc) + ": " + message), loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Thrown for faults while executing specification code (e.g. use of an
/// undefined value in strict mode, nil dereference, out-of-range index).
class RuntimeFault : public std::runtime_error {
 public:
  RuntimeFault(SourceLoc loc, const std::string& message)
      : std::runtime_error(to_string(loc) + ": " + message), loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

}  // namespace tango
