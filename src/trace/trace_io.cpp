#include "trace/trace_io.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "estelle/lexer.hpp"
#include "support/text.hpp"

namespace tango::tr {

namespace {

using est::Tok;
using est::Token;
using est::Type;
using est::TypeKind;

std::string format_value(const rt::Value& v, const Type* t) {
  using Kind = rt::Value::Kind;
  switch (v.kind()) {
    case Kind::Record: {
      std::string out = "(";
      for (std::size_t i = 0; i < v.elems().size(); ++i) {
        if (i != 0) out += ", ";
        const Type* ft = t != nullptr && t->kind == TypeKind::Record
                             ? t->fields[i].type
                             : nullptr;
        out += format_value(v.elems()[i], ft);
      }
      return out + ")";
    }
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.elems().size(); ++i) {
        if (i != 0) out += ", ";
        out += format_value(v.elems()[i],
                            t != nullptr ? t->element : nullptr);
      }
      return out + "]";
    }
    default:
      return v.to_string();  // scalars print the same way everywhere
  }
}

/// Parses one value of type `t` from the token stream.
class ValueParser {
 public:
  ValueParser(const std::vector<Token>& toks, std::uint32_t line_no)
      : toks_(toks), line_(line_no) {}

  rt::Value parse(const Type* t) {
    const Token& tok = peek();
    // `_` means undefined (any type).
    if (tok.kind == Tok::Ident && tok.text == "_") {
      advance();
      return rt::Value{};
    }
    switch (t->kind) {
      case TypeKind::Integer:
      case TypeKind::Subrange: {
        bool neg = false;
        if (peek().kind == Tok::Minus) {
          neg = true;
          advance();
        }
        const Token& it = expect(Tok::IntLit, "integer");
        return rt::Value::make_int(neg ? -it.int_value : it.int_value);
      }
      case TypeKind::Boolean: {
        const Token& bt = expect(Tok::Ident, "boolean");
        const std::string s = to_lower(bt.text);
        if (s == "true") return rt::Value::make_bool(true);
        if (s == "false") return rt::Value::make_bool(false);
        fail("expected true or false, got '" + bt.text + "'");
      }
      case TypeKind::Char: {
        const Token& ct = expect(Tok::StringLit, "char");
        if (ct.text.size() != 1) fail("char value must be one character");
        return rt::Value::make_char(ct.text[0]);
      }
      case TypeKind::Enum: {
        const Token& et = expect(Tok::Ident, "enum literal");
        const std::string s = to_lower(et.text);
        for (std::size_t i = 0; i < t->enum_values.size(); ++i) {
          if (t->enum_values[i] == s) {
            return rt::Value::make_enum(t, static_cast<std::int64_t>(i));
          }
        }
        fail("'" + et.text + "' is not a value of " + est::type_to_string(t));
      }
      case TypeKind::Record: {
        expect(Tok::LParen, "'('");
        std::vector<rt::Value> fields;
        for (std::size_t i = 0; i < t->fields.size(); ++i) {
          if (i != 0) expect(Tok::Comma, "','");
          fields.push_back(parse(t->fields[i].type));
        }
        expect(Tok::RParen, "')'");
        return rt::Value::make_record(std::move(fields));
      }
      case TypeKind::Array: {
        expect(Tok::LBracket, "'['");
        std::vector<rt::Value> elems;
        const auto n = static_cast<std::size_t>(t->hi - t->lo + 1);
        for (std::size_t i = 0; i < n; ++i) {
          if (i != 0) expect(Tok::Comma, "','");
          elems.push_back(parse(t->element));
        }
        expect(Tok::RBracket, "']'");
        return rt::Value::make_array(std::move(elems));
      }
      case TypeKind::Pointer:
        fail("pointer values cannot appear in traces");
    }
    fail("unsupported parameter type");
  }

  const Token& peek() const { return toks_[pos_ < toks_.size() ? pos_ : toks_.size() - 1]; }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  const Token& expect(Tok k, const char* what) {
    if (peek().kind != k) {
      fail(std::string("expected ") + what);
    }
    return advance();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw CompileError(SourceLoc{line_, peek().loc.column},
                       "trace: " + msg);
  }

 private:
  const std::vector<Token>& toks_;
  std::uint32_t line_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string format_event(const est::Spec& spec, const TraceEvent& e) {
  const est::IpInfo& ip = spec.ips[static_cast<std::size_t>(e.ip)];
  const est::InteractionInfo& info = spec.interaction(e.interaction);
  std::string out = e.dir == Dir::In ? "in  " : "out ";
  out += ip.name;
  out += '.';
  out += info.name;
  if (!e.params.empty()) {
    out += '(';
    for (std::size_t i = 0; i < e.params.size(); ++i) {
      if (i != 0) out += ", ";
      out += format_value(e.params[i], info.param_types[i]);
    }
    out += ')';
  }
  return out;
}

std::string to_text(const est::Spec& spec, const Trace& trace) {
  std::string out;
  for (const TraceEvent& e : trace.events()) {
    out += format_event(spec, e);
    out += '\n';
  }
  if (trace.eof()) out += "eof\n";
  return out;
}

TraceEvent parse_event_line(const est::Spec& spec, std::string_view line,
                            std::uint32_t line_no) {
  std::vector<Token> toks = est::lex(line);
  ValueParser p(toks, line_no);

  const Token& dir_tok = p.expect(Tok::Ident, "'in' or 'out'");
  const std::string dir_s = to_lower(dir_tok.text);
  TraceEvent e;
  e.loc = SourceLoc{line_no, 1};
  if (dir_s == "in") {
    e.dir = Dir::In;
  } else if (dir_s == "out") {
    e.dir = Dir::Out;
  } else {
    p.fail("event must start with 'in' or 'out'");
  }

  const Token& ip_tok = p.expect(Tok::Ident, "ip name");
  e.ip = spec.ip_index(to_lower(ip_tok.text));
  if (e.ip < 0) p.fail("unknown ip '" + ip_tok.text + "'");
  p.expect(Tok::Dot, "'.'");
  const Token& msg_tok = p.expect(Tok::Ident, "interaction name");
  const std::string msg = to_lower(msg_tok.text);

  e.interaction = e.dir == Dir::In ? spec.input_id(e.ip, msg)
                                   : spec.output_id(e.ip, msg);
  if (e.interaction < 0) {
    p.fail("'" + msg + "' is not a valid " +
           (e.dir == Dir::In ? std::string("input") : std::string("output")) +
           " at ip '" + to_lower(ip_tok.text) + "'");
  }

  const est::InteractionInfo& info = spec.interaction(e.interaction);
  if (p.peek().kind == Tok::LParen) {
    p.advance();
    for (std::size_t i = 0; i < info.param_types.size(); ++i) {
      if (i != 0) p.expect(Tok::Comma, "','");
      e.params.push_back(p.parse(info.param_types[i]));
    }
    p.expect(Tok::RParen, "')'");
  } else if (!info.param_types.empty()) {
    p.fail("interaction '" + msg + "' expects " +
           std::to_string(info.param_types.size()) + " parameter(s)");
  }
  if (p.peek().kind != Tok::End) p.fail("trailing text after event");
  return e;
}

Trace parse_trace(const est::Spec& spec, std::string_view text,
                  bool assume_eof) {
  Trace trace(static_cast<int>(spec.ips.size()));
  std::uint32_t line_no = 0;
  bool saw_eof = false;
  for (std::string_view raw : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (iequals(line, "eof")) {
      saw_eof = true;
      continue;
    }
    if (saw_eof) {
      throw CompileError(SourceLoc{line_no, 1},
                         "trace: events after the eof marker");
    }
    trace.append(parse_event_line(spec, line, line_no));
  }
  if (saw_eof || assume_eof) trace.mark_eof();
  return trace;
}

std::string read_trace_text(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CompileError({}, "cannot open trace '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Trace load_trace(const est::Spec& spec, const std::string& path,
                 bool assume_eof) {
  return parse_trace(spec, read_trace_text(path), assume_eof);
}

}  // namespace tango::tr
