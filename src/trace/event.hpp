// Trace model: a trace is the observed log of interactions at the IUT's
// interaction points (paper §1). Each event is an input (arrived at the
// IUT) or an output (emitted by the IUT) at one ip, with typed parameter
// values. Events carry a global sequence number; per-(ip, direction) index
// lists support the analyzer's queue cursors (paper §2.3 "queue states").
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/value.hpp"
#include "support/source_location.hpp"

namespace tango::tr {

enum class Dir : std::uint8_t { In, Out };

struct TraceEvent {
  Dir dir = Dir::In;
  int ip = -1;
  int interaction = -1;
  std::vector<rt::Value> params;
  std::uint32_t seq = 0;  // global position; assigned by Trace::append
  SourceLoc loc;          // trace-file line, for diagnostics
};

/// A (possibly growing) trace. In static mode the whole trace is loaded up
/// front and `mark_eof` is called immediately; in dynamic mode (on-line
/// analysis, §3) events keep arriving and the end-of-file marker is the
/// operator's way to force a conclusive verdict (§3.1.2).
class Trace {
 public:
  explicit Trace(int ip_count);

  void append(TraceEvent e);
  void mark_eof() { eof_ = true; }

  [[nodiscard]] bool eof() const { return eof_; }
  [[nodiscard]] int ip_count() const { return ip_count_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const TraceEvent& event(std::uint32_t seq) const {
    return events_[seq];
  }

  /// Global event indices of all events at (ip, dir), in trace order.
  [[nodiscard]] const std::vector<std::uint32_t>& list(int ip, Dir d) const {
    return index_[static_cast<std::size_t>(ip) * 2 +
                  (d == Dir::Out ? 1 : 0)];
  }

 private:
  int ip_count_;
  bool eof_ = false;
  std::vector<TraceEvent> events_;
  std::vector<std::vector<std::uint32_t>> index_;  // [ip*2 + dir]
};

}  // namespace tango::tr
