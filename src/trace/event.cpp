#include "trace/event.hpp"

namespace tango::tr {

Trace::Trace(int ip_count) : ip_count_(ip_count) {
  index_.resize(static_cast<std::size_t>(ip_count) * 2);
}

void Trace::append(TraceEvent e) {
  e.seq = static_cast<std::uint32_t>(events_.size());
  index_[static_cast<std::size_t>(e.ip) * 2 + (e.dir == Dir::Out ? 1 : 0)]
      .push_back(e.seq);
  events_.push_back(std::move(e));
}

}  // namespace tango::tr
