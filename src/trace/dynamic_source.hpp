// Dynamic trace files (paper §3): a trace that can grow while the analyzer
// runs. A TraceSource is polled periodically by the on-line analyzer; any
// process can keep appending to the underlying file/feed. The end-of-file
// marker turns every partially-generated search node into a fully generated
// one, allowing a conclusive verdict (§3.1.2).
#pragma once

#include <deque>
#include <fstream>
#include <string>
#include <string_view>

#include "estelle/spec.hpp"
#include "trace/trace_io.hpp"

namespace tango::tr {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Appends newly available events to `trace` (and marks eof when the
  /// source signalled it). Returns true if anything new was delivered.
  virtual bool poll(Trace& trace) = 0;
};

/// In-memory feed: tests and embedding programs push events (or event
/// lines) and the analyzer picks them up at its next poll.
class MemoryFeed final : public TraceSource {
 public:
  explicit MemoryFeed(const est::Spec& spec) : spec_(spec) {}

  void push(TraceEvent e) { pending_.push_back(std::move(e)); }
  /// Parses and queues one `in ip.msg(...)` line.
  void push_line(std::string_view line);
  void push_eof() { eof_ = true; }

  bool poll(Trace& trace) override;

 private:
  const est::Spec& spec_;
  std::deque<TraceEvent> pending_;
  std::uint32_t line_no_ = 0;
  bool eof_ = false;
  bool eof_delivered_ = false;
};

/// Transport-fed source for the analysis server (docs/SERVER.md): a
/// network session pushes raw chunk text exactly as it arrived on the wire
/// — chunks may split an event line anywhere — and the analyzer polls the
/// complete lines like a growing file. The eof marker comes either as an
/// `eof` protocol frame (push_eof) or as an `eof` line inside a chunk;
/// either way the next poll makes every partially generated node fully
/// generated (§3.1.2). Single-threaded by design: the session worker that
/// pushes chunks is the thread that runs the analyzer.
class ChunkSource final : public TraceSource {
 public:
  explicit ChunkSource(const est::Spec& spec) : spec_(spec) {}

  /// Appends raw trace text (need not end on a line boundary).
  void push_chunk(std::string_view text) { buffer_.append(text); }
  void push_eof() { eof_ = true; }
  [[nodiscard]] bool eof_pushed() const { return eof_; }

  bool poll(Trace& trace) override;

 private:
  const est::Spec& spec_;
  std::string buffer_;  // undelivered text; may end mid-line
  std::uint32_t line_no_ = 0;
  bool eof_ = false;
  bool eof_delivered_ = false;
};

/// Follows a growing trace file on disk: each poll reads any new complete
/// lines appended since the previous poll.
class FileFollower final : public TraceSource {
 public:
  FileFollower(const est::Spec& spec, std::string path);

  bool poll(Trace& trace) override;

 private:
  const est::Spec& spec_;
  std::string path_;
  std::streamoff offset_ = 0;
  std::string carry_;  // incomplete last line from the previous poll
  std::uint32_t line_no_ = 0;
  bool eof_seen_ = false;
};

}  // namespace tango::tr
