// Text representation of traces.
//
// Grammar, one event per line:
//   in  <ip>.<interaction>            no-parameter interaction
//   out <ip>.<interaction>(v1, v2)    parameters in channel-declaration order
//   eof                               end-of-file marker (forces termination
//                                     of on-line analysis, paper §3.1.2)
//   # ...                             comment
//
// Parameter values: integers, true/false, 'c' characters, enumeration
// literal names, `_` for an undefined value (partial traces), `(...)` for
// records and `[...]` for arrays. Trace files carry NO time stamps — a
// deliberate Tango restriction (§2.1).
#pragma once

#include <string>
#include <string_view>

#include "estelle/spec.hpp"
#include "trace/event.hpp"

namespace tango::tr {

/// Renders one event (without trailing newline).
[[nodiscard]] std::string format_event(const est::Spec& spec,
                                       const TraceEvent& e);

/// Renders the whole trace, one event per line, plus `eof` when marked.
[[nodiscard]] std::string to_text(const est::Spec& spec, const Trace& trace);

/// Parses one event line (no comments/blank lines/`eof` here).
/// `line_no` is used for error reporting.
[[nodiscard]] TraceEvent parse_event_line(const est::Spec& spec,
                                          std::string_view line,
                                          std::uint32_t line_no);

/// Parses a complete trace text. The trace is marked eof when the text
/// contains an `eof` line or `assume_eof` is set (static mode).
[[nodiscard]] Trace parse_trace(const est::Spec& spec, std::string_view text,
                                bool assume_eof = true);

/// Reads a whole trace text from `path`, or from standard input when
/// `path` is "-". The one load path `tango analyze -`, `tango submit` and
/// shell pipelines share. Throws CompileError when the file cannot be
/// opened.
[[nodiscard]] std::string read_trace_text(const std::string& path);

/// read_trace_text + parse_trace.
[[nodiscard]] Trace load_trace(const est::Spec& spec, const std::string& path,
                               bool assume_eof = true);

}  // namespace tango::tr
