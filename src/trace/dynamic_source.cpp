#include "trace/dynamic_source.hpp"

#include "support/text.hpp"

namespace tango::tr {

void MemoryFeed::push_line(std::string_view line) {
  ++line_no_;
  std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return;
  if (iequals(trimmed, "eof")) {
    push_eof();
    return;
  }
  pending_.push_back(parse_event_line(spec_, trimmed, line_no_));
}

bool MemoryFeed::poll(Trace& trace) {
  bool delivered = false;
  while (!pending_.empty()) {
    trace.append(std::move(pending_.front()));
    pending_.pop_front();
    delivered = true;
  }
  if (eof_ && !eof_delivered_) {
    trace.mark_eof();
    eof_delivered_ = true;
    delivered = true;
  }
  return delivered;
}

bool ChunkSource::poll(Trace& trace) {
  if (eof_delivered_) return false;
  bool delivered = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    if (buffer_[i] != '\n') continue;
    std::string_view line =
        trim(std::string_view(buffer_).substr(start, i - start));
    start = i + 1;
    ++line_no_;
    if (line.empty() || line.front() == '#') continue;
    if (iequals(line, "eof")) {
      eof_ = true;
      continue;
    }
    trace.append(parse_event_line(spec_, line, line_no_));
    delivered = true;
  }
  buffer_.erase(0, start);  // keep the incomplete tail for the next chunk
  if (eof_) {
    // An eof frame can race a final unterminated line; flush it first.
    std::string_view tail = trim(buffer_);
    if (!tail.empty() && tail.front() != '#' && !iequals(tail, "eof")) {
      trace.append(parse_event_line(spec_, tail, ++line_no_));
      delivered = true;
    }
    buffer_.clear();
    trace.mark_eof();
    eof_delivered_ = true;
    delivered = true;
  }
  return delivered;
}

FileFollower::FileFollower(const est::Spec& spec, std::string path)
    : spec_(spec), path_(std::move(path)) {}

bool FileFollower::poll(Trace& trace) {
  if (eof_seen_) return false;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size <= offset_) return false;
  in.seekg(offset_);
  std::string chunk(static_cast<std::size_t>(size - offset_), '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  offset_ = size;

  bool delivered = false;
  std::string data = carry_ + chunk;
  carry_.clear();
  std::size_t start = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != '\n') continue;
    std::string_view line = trim(std::string_view(data).substr(start, i - start));
    start = i + 1;
    ++line_no_;
    if (line.empty() || line.front() == '#') continue;
    if (iequals(line, "eof")) {
      trace.mark_eof();
      eof_seen_ = true;
      return true;
    }
    trace.append(parse_event_line(spec_, line, line_no_));
    delivered = true;
  }
  carry_ = data.substr(start);  // keep the incomplete tail for next poll
  return delivered;
}

}  // namespace tango::tr
