#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "analysis/lint.hpp"
#include "sim/mutate.hpp"
#include "specs/builtin_specs.hpp"
#include "trace/trace_io.hpp"

namespace tango::fuzz {

namespace {

/// Seed of iteration `iter`; replaying one disagreement is
/// `tango fuzz <spec> --seed=<this> --iterations=1`.
std::uint32_t iteration_seed(std::uint32_t base, int iter) {
  return base + static_cast<std::uint32_t>(iter) * 0x9e3779b9u;
}

struct Expectation {
  std::string order;
  core::Verdict verdict;
};

struct Variant {
  std::string name;
  tr::Trace trace;
  std::vector<Expectation> expectations;  // empty = agreement-only (O3)
};

/// Runs the matrix on one variant; returns every broken invariant.
/// `report` (when non-null) accumulates counters; shrink re-evaluations
/// pass null so probes do not distort the per-engine totals.
std::vector<std::string> evaluate(const est::Spec& spec, const Variant& v,
                                  const FuzzConfig& config,
                                  const core::Options& base,
                                  FuzzReport* report,
                                  const EventsCapture* capture = nullptr) {
  MatrixResult m =
      run_matrix(spec, v.trace, config.engines, base, config.chunk, capture);
  if (report != nullptr) {
    ++report->traces_analyzed;
    for (const MatrixColumn& column : m.columns) {
      for (const EngineRun& run : column.runs) {
        ++report->verdicts;
        for (EngineTotals& t : report->totals) {
          if (t.engine == to_string(run.engine)) {
            ++t.analyses;
            t.stats += run.stats;
          }
        }
      }
    }
  }

  std::vector<std::string> failures;
  for (const MatrixColumn& column : m.columns) {
    if (!column.agreed) {
      failures.push_back("engine disagreement: " + column.disagreement);
    }
  }
  for (const Expectation& e : v.expectations) {
    if (report != nullptr) ++report->oracle_checks;
    const core::Verdict got = m.column_verdict(e.order);
    if (got == core::Verdict::Inconclusive) continue;  // budget artifact
    if (got != e.verdict) {
      failures.push_back("oracle violation: expected " +
                         std::string(core::to_string(e.verdict)) + " under " +
                         e.order + ", got " +
                         std::string(core::to_string(got)));
    }
  }
  return failures;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

std::string engines_csv(const std::vector<Engine>& engines) {
  std::string out;
  for (Engine e : engines) {
    if (!out.empty()) out += ',';
    out += std::string(to_string(e));
  }
  return out;
}

std::string write_bundle(const FuzzConfig& config, const Disagreement& d) {
  namespace fs = std::filesystem;
  // Serialized across concurrent iterations; the per-(spec,seed,variant)
  // file names never collide, but create_directories races do.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  fs::create_directories(config.out_dir);
  const std::string stem = config.out_dir + "/" + d.spec + "-seed" +
                           std::to_string(d.iteration_seed) + "-" + d.variant;
  const std::string trace_path = stem + ".tr";
  std::ofstream(trace_path, std::ios::binary) << d.trace_text;

  std::ofstream meta(stem + ".repro.txt", std::ios::binary);
  meta << "spec:       builtin:" << d.spec << "\n"
       << "seed:       " << d.iteration_seed << " (iteration " << d.iteration
       << ")\n"
       << "variant:    " << d.variant << "\n"
       << "engines:    " << engines_csv(config.engines) << "\n"
       << "chunk:      " << config.chunk << "\n"
       << "budget:     " << config.max_transitions << " transitions\n"
       << "shrunk:     " << d.shrunk_events << " of " << d.original_events
       << " events\n"
       << "failure:    " << d.detail << "\n"
       << "replay all: tango fuzz " << d.spec << " --seed="
       << d.iteration_seed << " --iterations=1\n"
       << "replay one: tango analyze builtin:" << d.spec << " " << trace_path
       << " --order=<preset from the failure line>\n";
  return trace_path;
}

}  // namespace

tr::Trace shrink_to_minimal_failing_prefix(const tr::Trace& trace,
                                           const FailPredicate& fails) {
  std::size_t lo = 0;
  std::size_t hi = trace.events().size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails(sim::truncate(trace, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  tr::Trace candidate = sim::truncate(trace, hi);
  if (hi < trace.events().size() && !fails(candidate)) {
    return sim::copy_trace(trace);  // non-monotone failure: keep it whole
  }
  return candidate;
}

std::vector<std::string> fuzzable_builtin_specs() {
  std::vector<std::string> names;
  for (const auto& [name, text] : specs::all_builtin_specs()) {
    est::Spec spec = est::compile_spec(text);
    if (!stimulus_alphabet(spec).empty()) names.emplace_back(name);
  }
  return names;
}

std::string FuzzReport::to_json() const {
  std::ostringstream os;
  os << "{\"iterations\":" << iterations
     << ",\"traces_analyzed\":" << traces_analyzed
     << ",\"verdicts\":" << verdicts << ",\"oracle_checks\":" << oracle_checks
     << ",\"disagreements\":" << disagreements.size() << ",\"engines\":{";
  bool first = true;
  for (const EngineTotals& t : totals) {
    if (!first) os << ',';
    first = false;
    os << '"' << t.engine << "\":{\"analyses\":" << t.analyses
       << ",\"stats\":" << t.stats.to_json() << '}';
  }
  os << "}}";
  return os.str();
}

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << iterations << " iterations, " << traces_analyzed
     << " trace variants, " << verdicts << " verdicts, " << oracle_checks
     << " oracle checks, " << disagreements.size() << " disagreement(s)\n";
  for (const EngineTotals& t : totals) {
    os << "  " << t.engine << ": analyses=" << t.analyses << " "
       << t.stats.summary() << "\n";
  }
  return os.str();
}

FuzzReport run_fuzz(const FuzzConfig& config, std::ostream* log) {
  FuzzReport report;
  for (Engine e : config.engines) {
    report.totals.push_back(
        EngineTotals{std::string(to_string(e)), 0, core::Stats{}});
  }

  const std::vector<std::string> names =
      config.specs.empty() ? fuzzable_builtin_specs() : config.specs;
  std::vector<est::Spec> compiled;
  compiled.reserve(names.size());
  for (const std::string& name : names) {
    std::string_view text = specs::builtin_spec(name);
    if (text.empty()) {
      throw CompileError({}, "fuzz: unknown built-in spec '" + name + "'");
    }
    compiled.push_back(est::compile_spec(text));
  }
  if (compiled.empty()) return report;

  if (config.lint_specs) {
    // A seed spec that fails lint poisons the whole campaign (an unguarded
    // non-progress cycle diverges every DFS run; a provably-faulting guard
    // turns every iteration into the same fault) — reject it up front.
    // Warning-level findings (priority shadowing, guard overlap) are fair
    // game for fuzzing and merely labelled.
    for (std::size_t i = 0; i < compiled.size(); ++i) {
      const analysis::LintReport lr = analysis::lint(compiled[i]);
      if (lr.has_errors()) {
        throw CompileError({}, "fuzz: spec '" + names[i] +
                                   "' rejected by lint:\n" + lr.render());
      }
      if (log != nullptr && lr.has_warnings()) {
        *log << "fuzz: note: spec '" << names[i]
             << "' has lint warnings (fuzzing anyway)\n";
      }
    }
  }

  core::Options base = core::Options::none();
  base.max_transitions = config.max_transitions;
  base.deadline_ms = config.deadline_ms;
  base.checkpoint = config.checkpoint;
  base.static_prune = config.static_prune;
  if (!config.events_dir.empty()) {
    std::filesystem::create_directories(config.events_dir);
  }

  // One self-contained iteration; the `report`/`log` parameters shadow the
  // captured outer ones so a concurrent run can hand in a private delta
  // and a private log buffer.
  auto run_one_iteration = [&](int iter, FuzzReport& report,
                               std::ostream* log) {
    ++report.iterations;
    const std::size_t si =
        static_cast<std::size_t>(iter) % compiled.size();
    const est::Spec& spec = compiled[si];
    const std::uint32_t iseed = iteration_seed(config.seed, iter);
    std::mt19937 rng(iseed);

    sim::SimOptions so;
    so.seed = iseed;
    so.max_steps = config.sim_max_steps;
    so.recording = std::uniform_int_distribution<int>(0, 3)(rng) == 0
                       ? sim::InputRecording::AtArrival
                       : sim::InputRecording::AtConsumption;
    sim::SimResult sim =
        sim::simulate(spec, synthesize_feeds(spec, rng, config.generator), so);
    const std::size_t n = sim.trace.events().size();
    const bool aborted = sim.note == "transition aborted" ||
                         sim.note == "initializer aborted";

    std::vector<Variant> variants;
    {
      Variant v{"simulated", sim::copy_trace(sim.trace), {}};
      if (!aborted) {
        if (so.recording == sim::InputRecording::AtConsumption) {
          // O1: fully observed recording — valid under every preset.
          for (const OrderPreset& p : order_presets()) {
            v.expectations.push_back(Expectation{p.name, core::Verdict::Valid});
          }
        } else if (sim.completed) {
          // O1 under queued observation: only NR is sound (§2.4.2), and
          // arrival-recorded-but-unconsumed inputs require a completed run.
          v.expectations.push_back(Expectation{"NR", core::Verdict::Valid});
        }
      }
      variants.push_back(std::move(v));
    }
    if (sim::has_mutable_output_param(sim.trace)) {
      // O2: the edited parameter is unproducible, under any ordering.
      Variant v{"mutate-last-output",
                sim::mutate_last_output_param(sim.trace),
                {}};
      for (const OrderPreset& p : order_presets()) {
        v.expectations.push_back(Expectation{p.name, core::Verdict::Invalid});
      }
      variants.push_back(std::move(v));
    }
    if (n >= 1) {
      const auto seq = static_cast<std::uint32_t>(
          std::uniform_int_distribution<std::size_t>(0, n - 1)(rng));
      variants.push_back(
          Variant{"drop-event", sim::drop_event(sim.trace, seq), {}});
    }
    if (n >= 2) {
      const auto seq = static_cast<std::uint32_t>(
          std::uniform_int_distribution<std::size_t>(0, n - 2)(rng));
      variants.push_back(
          Variant{"swap-adjacent", sim::swap_adjacent(sim.trace, seq), {}});
    }
    if (n >= 1) {
      const std::size_t keep =
          std::uniform_int_distribution<std::size_t>(0, n)(rng);
      variants.push_back(
          Variant{"truncate", sim::truncate(sim.trace, keep), {}});
    }

    for (const Variant& v : variants) {
      EventsCapture capture;
      if (!config.events_dir.empty()) {
        capture.dir = config.events_dir;
        capture.stem =
            names[si] + "-seed" + std::to_string(iseed) + "-" + v.name;
        capture.spec_ref = "builtin:" + names[si];
      }
      const std::vector<std::string> failures =
          evaluate(spec, v, config, base, &report,
                   config.events_dir.empty() ? nullptr : &capture);
      if (failures.empty()) continue;

      // Only engine-agreement failures are prefix-shrinkable: the engines
      // must agree on ANY trace, so a disagreeing prefix is the same bug.
      // Oracle expectations are not prefix-closed (a prefix of a valid
      // trace is usually invalid), so those are reported unshrunk — and
      // shrink probes must ignore them, or a legitimately-invalid prefix
      // would mask the original failure.
      const bool shrinkable =
          std::any_of(failures.begin(), failures.end(),
                      [](const std::string& f) {
                        return f.starts_with("engine disagreement");
                      });
      tr::Trace shrunk = sim::copy_trace(v.trace);
      std::vector<std::string> shrunk_failures;
      if (shrinkable) {
        const FailPredicate still_disagrees = [&](const tr::Trace& t) {
          Variant probe{v.name, sim::copy_trace(t), {}};
          return !evaluate(spec, probe, config, base, nullptr).empty();
        };
        shrunk = shrink_to_minimal_failing_prefix(v.trace, still_disagrees);
        Variant shrunk_variant{v.name, sim::copy_trace(shrunk), {}};
        shrunk_failures = evaluate(spec, shrunk_variant, config, base, nullptr);
      }

      Disagreement d;
      d.spec = names[si];
      d.iteration_seed = iseed;
      d.iteration = iter;
      d.variant = v.name;
      d.detail = join(shrunk_failures.empty() ? failures : shrunk_failures,
                      "; ");
      d.trace_text = tr::to_text(spec, shrunk);
      d.original_events = v.trace.events().size();
      d.shrunk_events = shrunk.events().size();
      if (!config.out_dir.empty()) d.bundle_path = write_bundle(config, d);
      if (log != nullptr) {
        *log << "fuzz: DISAGREEMENT spec=" << d.spec << " seed=" << iseed
             << " variant=" << d.variant << " (" << d.shrunk_events << "/"
             << d.original_events << " events after shrink)\n  " << d.detail
             << "\n";
        if (!d.bundle_path.empty()) {
          *log << "  bundle: " << d.bundle_path << "\n";
        }
      }
      report.disagreements.push_back(std::move(d));
    }

    if (config.verbose && log != nullptr) {
      *log << "fuzz: iteration " << iter << " spec=" << names[si]
           << " seed=" << iseed << " events=" << n << " variants="
           << variants.size() << "\n";
    }
  };

  const int jobs_raw =
      config.jobs == 0 ? static_cast<int>(std::thread::hardware_concurrency())
                       : config.jobs;
  const int jobs = std::max(1, std::min(jobs_raw, config.iterations));
  if (jobs <= 1) {
    for (int iter = 0; iter < config.iterations; ++iter) {
      run_one_iteration(iter, report, log);
    }
    return report;
  }

  // Concurrent iterations: each writes a private report delta and log
  // buffer, merged in iteration order below, so the final report (and the
  // log text) is identical to a sequential run's.
  std::vector<FuzzReport> deltas(static_cast<std::size_t>(config.iterations));
  std::vector<std::ostringstream> logs(
      static_cast<std::size_t>(config.iterations));
  for (FuzzReport& d : deltas) {
    for (Engine e : config.engines) {
      d.totals.push_back(
          EngineTotals{std::string(to_string(e)), 0, core::Stats{}});
    }
  }
  std::atomic<int> next{0};
  std::exception_ptr failure;
  std::mutex failure_mu;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const int iter = next.fetch_add(1);
        if (iter >= config.iterations) return;
        const auto i = static_cast<std::size_t>(iter);
        try {
          run_one_iteration(iter, deltas[i],
                            log != nullptr ? &logs[i] : nullptr);
        } catch (...) {
          std::lock_guard<std::mutex> lock(failure_mu);
          if (failure == nullptr) failure = std::current_exception();
          return;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  if (failure != nullptr) std::rethrow_exception(failure);

  for (std::size_t i = 0; i < deltas.size(); ++i) {
    FuzzReport& d = deltas[i];
    report.iterations += d.iterations;
    report.traces_analyzed += d.traces_analyzed;
    report.verdicts += d.verdicts;
    report.oracle_checks += d.oracle_checks;
    for (const EngineTotals& t : d.totals) {
      for (EngineTotals& u : report.totals) {
        if (u.engine == t.engine) {
          u.analyses += t.analyses;
          u.stats += t.stats;
        }
      }
    }
    for (Disagreement& dd : d.disagreements) {
      report.disagreements.push_back(std::move(dd));
    }
    if (log != nullptr) {
      const std::string text = logs[i].str();
      if (!text.empty()) *log << text;
    }
  }
  return report;
}

}  // namespace tango::fuzz
