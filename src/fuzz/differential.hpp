// Differential execution of one trace under the analyzer engine matrix:
// off-line DFS (§2.2), on-line MDFS fed through a chunked dynamic source
// (§3), and hash-pruned DFS (§4.2's state-hashing ablation), each crossed
// with the four relative-order presets (NR/IO/IP/FULL, §2.4.2). The paper's
// conformance claim is that every cell of a column agrees — the engines are
// different search strategies over the same validity relation.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/dfs.hpp"
#include "core/mdfs.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "core/verdict.hpp"
#include "trace/event.hpp"

namespace tango::fuzz {

/// ParDfs is the work-stealing parallel engine (relaxed mode, shared
/// visited table) — opt-in via --engines=...,par because its counters are
/// schedule-dependent, which would break same-seed campaign comparisons.
enum class Engine { Dfs, HashDfs, Mdfs, ParDfs };

[[nodiscard]] std::string_view to_string(Engine e);

/// Parses a comma-separated engine list ("dfs,hash,mdfs"; "hashdfs" and
/// "hash-dfs" are accepted for the ablation, "par"/"pardfs"/"parallel"
/// for the work-stealing engine). Throws CompileError on an unknown name;
/// returns the three sequential engines for an empty string (ParDfs is
/// never implied).
[[nodiscard]] std::vector<Engine> parse_engines(std::string_view csv);

/// The four order-checking presets of the paper's Figures 3 and 4.
struct OrderPreset {
  const char* name;
  core::Options options;
};
[[nodiscard]] const std::array<OrderPreset, 4>& order_presets();

struct EngineRun {
  Engine engine = Engine::Dfs;
  std::string order;  // preset name
  core::Verdict verdict = core::Verdict::Inconclusive;
  core::Stats stats;
  std::string note;
};

/// Analyzes `trace` with one engine. `base` supplies the order flags and
/// budgets; the engine-defining flags (hash_states, on-line delivery) are
/// set here. For MDFS the trace is replayed through a MemoryFeed in chunks
/// of `chunk` events with a search round between chunks, then eof — the
/// closest off-line reproduction of a growing trace file.
[[nodiscard]] EngineRun run_engine(const est::Spec& spec,
                                   const tr::Trace& trace,
                                   const core::Options& base, Engine engine,
                                   std::size_t chunk);

/// One order-preset column of the matrix: every engine's verdict.
struct MatrixColumn {
  std::string order;
  std::vector<EngineRun> runs;
  /// True when all non-Inconclusive verdicts in the column coincide
  /// (Inconclusive cells are budget artifacts, not verdicts — §2.4's
  /// max_transitions — and are excluded from the agreement relation).
  bool agreed = true;
  std::string disagreement;  // human-readable cell list when !agreed
};

struct MatrixResult {
  std::vector<MatrixColumn> columns;
  [[nodiscard]] bool all_agreed() const;
  /// Verdict of the first non-Inconclusive DFS cell for `order`, or
  /// Inconclusive when the whole column ran out of budget.
  [[nodiscard]] core::Verdict column_verdict(std::string_view order) const;
};

/// Search-event recording for one matrix run (docs/OBSERVABILITY.md).
/// Each cell writes `<dir>/<stem>-<order>-<engine>.jsonl`, and the
/// analyzed trace is written once as `<dir>/<stem>.tr` so `tango events
/// replay` can re-execute every stream from its run header's trace_ref.
/// `dir` must already exist.
struct EventsCapture {
  std::string dir;
  std::string stem;
  std::string spec_ref;  // e.g. "builtin:abp"
};

/// Runs the full engines × order-presets matrix. `base` carries shared
/// budgets (max_transitions etc.); its order flags are overwritten by each
/// preset. With a non-null `capture`, every cell records its event stream.
[[nodiscard]] MatrixResult run_matrix(const est::Spec& spec,
                                      const tr::Trace& trace,
                                      const std::vector<Engine>& engines,
                                      const core::Options& base,
                                      std::size_t chunk,
                                      const EventsCapture* capture = nullptr);

/// Maps an on-line status to the batch verdict space (ValidSoFar and
/// LikelyInvalid pass through; with eof delivered they indicate an
/// exhausted idle loop, which the caller treats as Inconclusive).
[[nodiscard]] core::Verdict to_verdict(core::OnlineStatus s);

}  // namespace tango::fuzz
