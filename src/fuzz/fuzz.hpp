// Differential conformance fuzzer. Per iteration it (1) synthesizes a
// random well-typed environment script for a builtin specification,
// (2) records a known-valid trace by running the simulator in
// implementation-generation mode (§4.2's trace-production procedure),
// (3) derives invalid/partial variants with the sim::mutate operators, and
// (4) analyzes every trace under the engines × order-presets matrix,
// asserting the oracle invariants:
//
//   O1  a simulator-recorded trace is Valid — under every preset when
//       inputs are recorded at consumption, under NR only when recorded at
//       arrival (§2.4.2: order options involving inputs are unsound when
//       queues sit between the observation point and the machine);
//   O2  a trace whose last output parameter was edited is Invalid under
//       every preset (the paper's §4.2 invalid-trace procedure);
//   O3  within one preset, every engine reaches the same verdict
//       (Inconclusive budget exhaustion excluded).
//
// Failures are shrunk by binary-search truncation to a minimal failing
// prefix and written as reproducer bundles. Deliberately excluded from the
// checks, per the paper's own soundness caveats: 64-bit hash collisions
// (§4.2) and prune_on_pgav piecewise validity (§3.1.2 footnote) — the
// latter is simply never enabled here.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/generator.hpp"

namespace tango::fuzz {

struct FuzzConfig {
  std::uint32_t seed = 1;
  int iterations = 100;
  /// Builtin spec names; empty = every builtin with a nonempty stimulus
  /// alphabet.
  std::vector<std::string> specs;
  std::vector<Engine> engines = {Engine::Dfs, Engine::HashDfs, Engine::Mdfs};
  /// MDFS dynamic-source chunk size (events delivered per search round).
  std::size_t chunk = 3;
  /// Concurrent fuzz iterations (1 = sequential, 0 = one per hardware
  /// thread). Iterations are independent (each derives its own seed), and
  /// per-iteration results merge in iteration order, so every verdict and
  /// counter in the report is identical for any jobs value (only measured
  /// cpu time varies).
  int jobs = 1;
  /// Per-analysis search budget; exhaustion yields Inconclusive, which the
  /// agreement relation skips.
  std::uint64_t max_transitions = 200'000;
  /// Per-analysis wall-clock deadline in milliseconds (0 = none). A cell
  /// that trips it is Inconclusive(reason=deadline), which the agreement
  /// relation skips — so a slow machine degrades coverage, not soundness.
  std::uint64_t deadline_ms = 0;
  /// Save/restore implementation the DFS engines run under; campaigns with
  /// both modes and the same seed must report identical verdicts and
  /// identical TE/GE/RE/SA totals (the copy-vs-trail differential oracle).
  core::CheckpointMode checkpoint = core::CheckpointMode::Trail;
  /// Consume guard-solver facts in every analysis of the campaign (the
  /// engines still agree among themselves either way; run two campaigns
  /// with the same seed and this toggled to differentially test the
  /// pruning itself).
  bool static_prune = true;
  /// Reject specs with error-level lint findings before fuzzing them (an
  /// unguarded non-progress cycle would make every DFS iteration diverge);
  /// specs with warnings are fuzzed but labelled in the log.
  bool lint_specs = true;
  std::uint64_t sim_max_steps = 160;
  GenConfig generator;
  /// Directory for reproducer bundles; empty disables writing.
  std::string out_dir;
  /// Directory for per-cell search-event streams (docs/OBSERVABILITY.md):
  /// every matrix cell writes `<spec>-seed<N>-<variant>-<order>-<engine>
  /// .jsonl` plus one `.tr` sidecar per variant, replayable with
  /// `tango events replay`. Empty disables recording. Shrink probes are
  /// never recorded.
  std::string events_dir;
  bool verbose = false;
};

/// One confirmed failure, shrunk and ready to replay.
struct Disagreement {
  std::string spec;
  std::uint32_t iteration_seed = 0;
  int iteration = 0;
  std::string variant;     // simulated | mutate-last-output | drop-event | ...
  std::string detail;      // the invariant that broke, with per-cell verdicts
  std::string trace_text;  // shrunk trace, trace-file syntax
  std::size_t original_events = 0;
  std::size_t shrunk_events = 0;
  std::string bundle_path;  // file written under out_dir ("" when disabled)
};

struct EngineTotals {
  std::string engine;
  std::uint64_t analyses = 0;
  core::Stats stats;
};

struct FuzzReport {
  int iterations = 0;
  std::uint64_t traces_analyzed = 0;  // trace variants put through the matrix
  std::uint64_t verdicts = 0;         // matrix cells evaluated
  std::uint64_t oracle_checks = 0;    // O1/O2 expectations evaluated
  std::vector<EngineTotals> totals;   // per-engine TE/GE/RE/SA aggregates
  std::vector<Disagreement> disagreements;

  [[nodiscard]] bool clean() const { return disagreements.empty(); }
  /// Figure-3-comparable per-engine totals plus run counters, as JSON.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string summary() const;
};

using FailPredicate = std::function<bool(const tr::Trace&)>;

/// Binary-search truncation: the shortest prefix (eof kept) on which
/// `fails` still holds. Assumes monotone failure, as shrinkers do; when the
/// candidate prefix does not actually fail, returns the full trace.
[[nodiscard]] tr::Trace shrink_to_minimal_failing_prefix(
    const tr::Trace& trace, const FailPredicate& fails);

/// Builtin spec names with a nonempty stimulus alphabet (= fuzzable).
[[nodiscard]] std::vector<std::string> fuzzable_builtin_specs();

/// Runs the campaign. Fully deterministic in `config` (iteration i of a
/// run with seed s replays as seed s + i * 0x9e3779b9 with one iteration).
/// Progress/diagnostics go to `log` when non-null.
[[nodiscard]] FuzzReport run_fuzz(const FuzzConfig& config,
                                  std::ostream* log = nullptr);

}  // namespace tango::fuzz
