// Random environment synthesis for the differential conformance fuzzer:
// well-typed stimulus scripts drawn from a specification's interaction
// signatures. Every choice is made through the caller's RNG, so a (spec,
// seed) pair reproduces the exact same environment script.
#pragma once

#include <random>
#include <vector>

#include "estelle/spec.hpp"
#include "sim/simulator.hpp"

namespace tango::fuzz {

struct GenConfig {
  /// Bounds on the number of stimuli per script.
  int min_feeds = 1;
  int max_feeds = 12;
  /// Maximum simulator-step gap between consecutive stimuli (0 delivers
  /// everything up front; larger gaps interleave with spontaneous firings).
  std::uint64_t max_step_gap = 6;
  /// Magnitude bound for unconstrained integer parameters (inclusive).
  std::int64_t int_bound = 9;
};

/// A type-correct random value: integers in [0, int_bound], subranges and
/// enums within their declared bounds, recursive records/arrays, nil for
/// pointers (the environment cannot forge heap addresses).
[[nodiscard]] rt::Value random_value(const est::Type* type, std::mt19937& rng,
                                     const GenConfig& config = {});

/// All (ip, interaction) pairs the environment may stimulate, i.e. every
/// peer-role message of every interaction point.
[[nodiscard]] std::vector<std::pair<int, int>> stimulus_alphabet(
    const est::Spec& spec);

/// Synthesizes a random environment script: feeds with nondecreasing
/// delivery steps, each a random entry of the stimulus alphabet with
/// type-correct random parameters. Empty when the spec takes no input.
[[nodiscard]] std::vector<sim::Feed> synthesize_feeds(
    const est::Spec& spec, std::mt19937& rng, const GenConfig& config = {});

}  // namespace tango::fuzz
