#include "fuzz/generator.hpp"

#include <algorithm>

namespace tango::fuzz {

namespace {

std::int64_t uniform(std::mt19937& rng, std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
}

}  // namespace

rt::Value random_value(const est::Type* type, std::mt19937& rng,
                       const GenConfig& config) {
  switch (type->kind) {
    case est::TypeKind::Integer:
      return rt::Value::make_int(uniform(rng, 0, config.int_bound));
    case est::TypeKind::Boolean:
      return rt::Value::make_bool(uniform(rng, 0, 1) != 0);
    case est::TypeKind::Char:
      return rt::Value::make_char(
          static_cast<char>('a' + uniform(rng, 0, 25)));
    case est::TypeKind::Enum:
      return rt::Value::make_enum(
          type,
          uniform(rng, 0,
                  static_cast<std::int64_t>(type->enum_values.size()) - 1));
    case est::TypeKind::Subrange:
      return rt::Value::make_int(uniform(rng, type->lo, type->hi));
    case est::TypeKind::Array: {
      std::vector<rt::Value> elems;
      const std::int64_t n = type->hi - type->lo + 1;
      elems.reserve(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        elems.push_back(random_value(type->element, rng, config));
      }
      return rt::Value::make_array(std::move(elems));
    }
    case est::TypeKind::Record: {
      std::vector<rt::Value> fields;
      fields.reserve(type->fields.size());
      for (const est::RecordField& f : type->fields) {
        fields.push_back(random_value(f.type, rng, config));
      }
      return rt::Value::make_record(std::move(fields));
    }
    case est::TypeKind::Pointer:
      return rt::Value::nil();
  }
  return rt::Value{};
}

std::vector<std::pair<int, int>> stimulus_alphabet(const est::Spec& spec) {
  std::vector<std::pair<int, int>> alphabet;
  for (std::size_t ip = 0; ip < spec.ips.size(); ++ip) {
    for (const auto& [name, id] : spec.ips[ip].inputs) {
      alphabet.emplace_back(static_cast<int>(ip), id);
    }
  }
  return alphabet;
}

std::vector<sim::Feed> synthesize_feeds(const est::Spec& spec,
                                        std::mt19937& rng,
                                        const GenConfig& config) {
  const std::vector<std::pair<int, int>> alphabet = stimulus_alphabet(spec);
  std::vector<sim::Feed> feeds;
  if (alphabet.empty()) return feeds;

  const int count = static_cast<int>(
      uniform(rng, config.min_feeds, std::max(config.min_feeds,
                                              config.max_feeds)));
  std::uint64_t step = 0;
  for (int i = 0; i < count; ++i) {
    step += static_cast<std::uint64_t>(
        uniform(rng, 0, static_cast<std::int64_t>(config.max_step_gap)));
    const auto& [ip, interaction] = alphabet[static_cast<std::size_t>(
        uniform(rng, 0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    sim::Feed f;
    f.at_step = step;
    f.ip = ip;
    f.interaction = interaction;
    const est::InteractionInfo& info = spec.interaction(interaction);
    f.params.reserve(info.param_types.size());
    for (const est::Type* t : info.param_types) {
      f.params.push_back(random_value(t, rng, config));
    }
    feeds.push_back(std::move(f));
  }
  return feeds;
}

}  // namespace tango::fuzz
