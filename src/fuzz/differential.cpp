#include "fuzz/differential.hpp"

#include <fstream>
#include <memory>
#include <sstream>

#include "core/parallel_dfs.hpp"
#include "obs/sink.hpp"
#include "support/text.hpp"
#include "trace/dynamic_source.hpp"
#include "trace/trace_io.hpp"

namespace tango::fuzz {

std::string_view to_string(Engine e) {
  switch (e) {
    case Engine::Dfs: return "dfs";
    case Engine::HashDfs: return "hash-dfs";
    case Engine::Mdfs: return "mdfs";
    case Engine::ParDfs: return "par-dfs";
  }
  return "?";
}

std::vector<Engine> parse_engines(std::string_view csv) {
  if (trim(csv).empty()) return {Engine::Dfs, Engine::HashDfs, Engine::Mdfs};
  std::vector<Engine> engines;
  for (std::string_view part : split(csv, ',')) {
    const std::string name = to_lower(trim(part));
    if (name == "dfs") {
      engines.push_back(Engine::Dfs);
    } else if (name == "hash" || name == "hashdfs" || name == "hash-dfs") {
      engines.push_back(Engine::HashDfs);
    } else if (name == "mdfs" || name == "online") {
      engines.push_back(Engine::Mdfs);
    } else if (name == "par" || name == "pardfs" || name == "par-dfs" ||
               name == "parallel") {
      engines.push_back(Engine::ParDfs);
    } else {
      throw CompileError({}, "unknown engine '" + name +
                                 "' (expected dfs, hash, mdfs or par)");
    }
  }
  return engines;
}

const std::array<OrderPreset, 4>& order_presets() {
  static const std::array<OrderPreset, 4> presets = {
      OrderPreset{"NR", core::Options::none()},
      OrderPreset{"IO", core::Options::io()},
      OrderPreset{"IP", core::Options::ip()},
      OrderPreset{"FULL", core::Options::full()}};
  return presets;
}

core::Verdict to_verdict(core::OnlineStatus s) {
  switch (s) {
    case core::OnlineStatus::Valid: return core::Verdict::Valid;
    case core::OnlineStatus::Invalid: return core::Verdict::Invalid;
    case core::OnlineStatus::ValidSoFar: return core::Verdict::ValidSoFar;
    case core::OnlineStatus::LikelyInvalid:
      return core::Verdict::LikelyInvalid;
    case core::OnlineStatus::Searching:
    case core::OnlineStatus::Inconclusive:
      return core::Verdict::Inconclusive;
  }
  return core::Verdict::Inconclusive;
}

namespace {

EngineRun run_mdfs(const est::Spec& spec, const tr::Trace& trace,
                   const core::Options& options, std::size_t chunk) {
  EngineRun run;
  run.engine = Engine::Mdfs;

  core::CpuTimer timer;
  tr::MemoryFeed feed(spec);
  core::OnlineConfig config;
  config.options = options;
  core::OnlineAnalyzer analyzer(spec, feed, config);

  // Deliver the trace in chunks, searching between deliveries, so the
  // analyzer exercises the PG save/regenerate machinery instead of seeing
  // a complete trace at its first poll.
  const std::size_t step = chunk == 0 ? trace.events().size() + 1 : chunk;
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    feed.push(trace.events()[i]);
    if ((i + 1) % step == 0) (void)analyzer.step_round(4096);
  }
  if (trace.eof()) feed.push_eof();
  const core::OnlineStatus status = analyzer.run(1u << 18, /*idle_rounds=*/4);
  analyzer.finalize_stream();  // no-op unless options carry a sink

  run.verdict = to_verdict(status);
  // With eof delivered the tree is finite: a non-conclusive terminal
  // status means the run loop went idle (budget/depth clip), which in the
  // batch verdict space is Inconclusive.
  if (trace.eof() && !analyzer.conclusive()) {
    run.verdict = core::Verdict::Inconclusive;
  }
  run.stats = analyzer.stats();
  run.stats.cpu_seconds = timer.elapsed();
  return run;
}

}  // namespace

EngineRun run_engine(const est::Spec& spec, const tr::Trace& trace,
                     const core::Options& base, Engine engine,
                     std::size_t chunk) {
  core::Options options = base;
  options.hash_states = engine == Engine::HashDfs;
  if (engine == Engine::Mdfs) {
    EngineRun run = run_mdfs(spec, trace, options, chunk);
    return run;
  }
  EngineRun run;
  run.engine = engine;
  core::DfsResult r;
  if (engine == Engine::ParDfs) {
    // Verdict-level cross-check of the work-stealing engine against the
    // sequential cells; at least two workers so stealing actually happens.
    options.jobs = base.jobs > 1 ? base.jobs : 2;
    r = core::analyze_parallel(spec, trace, options);
  } else {
    r = core::analyze(spec, trace, options);
  }
  run.verdict = r.verdict;
  run.stats = r.stats;
  run.note = r.note;
  return run;
}

bool MatrixResult::all_agreed() const {
  for (const MatrixColumn& c : columns) {
    if (!c.agreed) return false;
  }
  return true;
}

core::Verdict MatrixResult::column_verdict(std::string_view order) const {
  for (const MatrixColumn& c : columns) {
    if (c.order != order) continue;
    for (const EngineRun& r : c.runs) {
      if (r.verdict != core::Verdict::Inconclusive) return r.verdict;
    }
  }
  return core::Verdict::Inconclusive;
}

MatrixResult run_matrix(const est::Spec& spec, const tr::Trace& trace,
                        const std::vector<Engine>& engines,
                        const core::Options& base, std::size_t chunk,
                        const EventsCapture* capture) {
  MatrixResult result;
  std::string trace_ref;
  if (capture != nullptr) {
    trace_ref = capture->stem + ".tr";
    std::ofstream(capture->dir + "/" + trace_ref, std::ios::binary)
        << tr::to_text(spec, trace);
  }
  for (const OrderPreset& preset : order_presets()) {
    MatrixColumn column;
    column.order = preset.name;
    core::Options options = preset.options;
    options.initial_state_search = base.initial_state_search;
    options.disabled_ips = base.disabled_ips;
    options.unobservable_ips = base.unobservable_ips;
    options.partial = base.partial;
    options.reorder_pg_nodes = base.reorder_pg_nodes;
    options.prune_on_pgav = base.prune_on_pgav;
    options.max_transitions = base.max_transitions;
    options.max_depth = base.max_depth;
    options.deadline_ms = base.deadline_ms;
    options.checkpoint = base.checkpoint;
    options.interp = base.interp;
    options.jobs = base.jobs;
    options.deterministic = base.deterministic;
    options.visited_max = base.visited_max;
    for (Engine e : engines) {
      std::unique_ptr<obs::JsonlSink> sink;
      if (capture != nullptr) {
        sink = std::make_unique<obs::JsonlSink>(
            capture->dir + "/" + capture->stem + "-" + preset.name + "-" +
            std::string(to_string(e)) + ".jsonl");
        sink->set_refs(capture->spec_ref, trace_ref);
        options.sink = sink.get();
      }
      EngineRun run = run_engine(spec, trace, options, e, chunk);
      options.sink = nullptr;  // the sink dies with this cell
      run.order = preset.name;
      column.runs.push_back(std::move(run));
    }

    // Agreement relation: every engine that reached a conclusive verdict
    // must have reached the SAME verdict. Inconclusive cells (exhausted
    // search budget) carry no information and are skipped.
    const EngineRun* reference = nullptr;
    for (const EngineRun& r : column.runs) {
      if (r.verdict == core::Verdict::Inconclusive) continue;
      if (reference == nullptr) {
        reference = &r;
      } else if (r.verdict != reference->verdict) {
        column.agreed = false;
      }
    }
    if (!column.agreed) {
      std::ostringstream os;
      os << "order=" << column.order << ":";
      for (const EngineRun& r : column.runs) {
        os << ' ' << to_string(r.engine) << '='
           << core::to_string(r.verdict);
      }
      column.disagreement = os.str();
    }
    result.columns.push_back(std::move(column));
  }
  return result;
}

}  // namespace tango::fuzz
