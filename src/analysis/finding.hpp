// A static-analysis finding: a Diagnostic plus the pass that produced it,
// the declaration unit it concerns (transition / routine / initializer
// name) and an optional end of the source span. Every analysis pass emits
// Findings; reports sort them by (line, column, unit, message) so text,
// JSON and SARIF output are byte-stable across runs.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace tango::analysis {

struct Finding : Diagnostic {
  /// Pass identifier (reach, cycles, interactions, assign, intervals,
  /// unreachable, purity, guards, invariants) — the SARIF rule id.
  std::string pass;
  /// Enclosing declaration: "transition 't1'", "procedure 'enq'", ….
  std::string unit;
  /// End of the source span; invalid when the span is a single point.
  SourceLoc end;

  Finding() = default;
  Finding(Severity sev, std::string pass_name, SourceLoc where,
          std::string unit_name, std::string msg, SourceLoc span_end = {}) {
    severity = sev;
    loc = where;
    message = std::move(msg);
    pass = std::move(pass_name);
    unit = std::move(unit_name);
    end = span_end;
  }
};

/// Canonical report order: source position first, then unit and message so
/// findings without a position (line 0) sort deterministically too.
inline void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.loc.line != b.loc.line) {
                       return a.loc.line < b.loc.line;
                     }
                     if (a.loc.column != b.loc.column) {
                       return a.loc.column < b.loc.column;
                     }
                     if (a.unit != b.unit) return a.unit < b.unit;
                     if (a.message != b.message) return a.message < b.message;
                     return a.pass < b.pass;
                   });
}

[[nodiscard]] constexpr const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

}  // namespace tango::analysis
