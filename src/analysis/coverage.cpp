#include "analysis/coverage.hpp"

#include <algorithm>
#include <set>

#include "analysis/invariants.hpp"

namespace tango::analysis {

std::string CoverageReport::render() const {
  std::set<std::string> dead;
  for (const Row& row : rows) {
    if (row.statically_dead) dead.insert(row.name);
  }
  char head[160];
  std::snprintf(head, sizeof(head),
                "coverage: %zu/%zu live transitions (%.0f%%), %zu/%zu traces "
                "valid\n",
                hits.size(), hits.size() + uncovered.size() - dead_uncovered,
                ratio() * 100.0, traces_valid, traces_total);
  std::string out = head;
  for (const auto& [name, count] : hits) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  for (const std::string& name : uncovered) {
    out += dead.count(name) != 0
               ? "  " + name + ": STATICALLY DEAD (can never fire; excluded "
                 "from coverage)\n"
               : "  " + name + ": NEVER COVERED\n";
  }
  for (const std::string& note : invalid_notes) {
    out += "  (non-valid trace: " + note + ")\n";
  }
  return out;
}

std::string CoverageReport::render_json() const {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  char head[200];
  // `declared` counts every transition; `live` excludes the statically
  // dead ones, and `ratio` is covered/live (the old covered/declared was
  // unreachable-penalized — see docs/LINT.md).
  std::snprintf(head, sizeof(head),
                "{\"covered\":%zu,\"declared\":%zu,\"live\":%zu,"
                "\"ratio\":%.4f,"
                "\"traces_valid\":%zu,\"traces_total\":%zu,"
                "\"transitions\":[",
                hits.size(), hits.size() + uncovered.size(),
                hits.size() + uncovered.size() - dead_uncovered, ratio(),
                traces_valid, traces_total);
  std::string out = head;
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + escape(row.name) +
           "\",\"line\":" + std::to_string(row.loc.line) +
           ",\"count\":" + std::to_string(row.count) +
           ",\"statically_dead\":" +
           (row.statically_dead ? "true" : "false") + "}";
  }
  out += "],\"invalid_notes\":[";
  first = true;
  for (const std::string& note : invalid_notes) {
    if (!first) out += ',';
    first = false;
    out += "\"" + escape(note) + "\"";
  }
  out += "]}\n";
  return out;
}

CoverageReport coverage(const est::Spec& spec,
                        const std::vector<tr::Trace>& traces,
                        const core::Options& options) {
  CoverageReport report;
  report.traces_total = traces.size();

  std::set<std::string> declared;
  for (const est::Transition& tr : spec.body().transitions) {
    declared.insert(tr.name);
  }

  // Statically-dead transitions (invariant engine): provably unfireable,
  // so they are annotated and excluded from the headline ratio rather than
  // held against the campaign as missed coverage.
  std::set<std::string> dead_names;
  {
    const std::vector<RoutineEffects> effects =
        compute_routine_effects(spec);
    const StateInvariants inv = compute_state_invariants(spec, effects);
    if (inv.valid) {
      const auto& trs = spec.body().transitions;
      for (std::size_t ti = 0; ti < trs.size(); ++ti) {
        if (inv.is_dead(static_cast<int>(ti))) {
          dead_names.insert(trs[ti].name);
        }
      }
    }
  }

  for (const tr::Trace& trace : traces) {
    core::DfsResult r = core::analyze(spec, trace, options);
    if (r.verdict != core::Verdict::Valid) {
      report.invalid_notes.push_back(
          std::string(core::to_string(r.verdict)) +
          (r.note.empty() ? "" : ": " + r.note));
      continue;
    }
    ++report.traces_valid;
    // solution[0] is the initialize label; the rest are transition names.
    for (std::size_t i = 1; i < r.solution.size(); ++i) {
      ++report.hits[r.solution[i]];
    }
  }

  for (const std::string& name : declared) {
    if (!report.hits.count(name)) {
      report.uncovered.push_back(name);
      if (dead_names.count(name) != 0) ++report.dead_uncovered;
    }
  }

  for (const est::Transition& tr : spec.body().transitions) {
    const auto it = report.hits.find(tr.name);
    report.rows.push_back({tr.name, tr.loc,
                           it == report.hits.end() ? 0 : it->second,
                           dead_names.count(tr.name) != 0});
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const CoverageReport::Row& a, const CoverageReport::Row& b) {
              if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
              return a.name < b.name;
            });
  return report;
}

}  // namespace tango::analysis
