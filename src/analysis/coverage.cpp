#include "analysis/coverage.hpp"

#include <algorithm>
#include <set>

namespace tango::analysis {

std::string CoverageReport::render() const {
  char head[128];
  std::snprintf(head, sizeof(head),
                "coverage: %zu/%zu transitions (%.0f%%), %zu/%zu traces "
                "valid\n",
                hits.size(), hits.size() + uncovered.size(), ratio() * 100.0,
                traces_valid, traces_total);
  std::string out = head;
  for (const auto& [name, count] : hits) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  for (const std::string& name : uncovered) {
    out += "  " + name + ": NEVER COVERED\n";
  }
  for (const std::string& note : invalid_notes) {
    out += "  (non-valid trace: " + note + ")\n";
  }
  return out;
}

std::string CoverageReport::render_json() const {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  char head[160];
  std::snprintf(head, sizeof(head),
                "{\"covered\":%zu,\"declared\":%zu,\"ratio\":%.4f,"
                "\"traces_valid\":%zu,\"traces_total\":%zu,"
                "\"transitions\":[",
                hits.size(), hits.size() + uncovered.size(), ratio(),
                traces_valid, traces_total);
  std::string out = head;
  bool first = true;
  for (const Row& row : rows) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + escape(row.name) +
           "\",\"line\":" + std::to_string(row.loc.line) +
           ",\"count\":" + std::to_string(row.count) + "}";
  }
  out += "],\"invalid_notes\":[";
  first = true;
  for (const std::string& note : invalid_notes) {
    if (!first) out += ',';
    first = false;
    out += "\"" + escape(note) + "\"";
  }
  out += "]}\n";
  return out;
}

CoverageReport coverage(const est::Spec& spec,
                        const std::vector<tr::Trace>& traces,
                        const core::Options& options) {
  CoverageReport report;
  report.traces_total = traces.size();

  std::set<std::string> declared;
  for (const est::Transition& tr : spec.body().transitions) {
    declared.insert(tr.name);
  }

  for (const tr::Trace& trace : traces) {
    core::DfsResult r = core::analyze(spec, trace, options);
    if (r.verdict != core::Verdict::Valid) {
      report.invalid_notes.push_back(
          std::string(core::to_string(r.verdict)) +
          (r.note.empty() ? "" : ": " + r.note));
      continue;
    }
    ++report.traces_valid;
    // solution[0] is the initialize label; the rest are transition names.
    for (std::size_t i = 1; i < r.solution.size(); ++i) {
      ++report.hits[r.solution[i]];
    }
  }

  for (const std::string& name : declared) {
    if (!report.hits.count(name)) report.uncovered.push_back(name);
  }

  for (const est::Transition& tr : spec.body().transitions) {
    const auto it = report.hits.find(tr.name);
    report.rows.push_back(
        {tr.name, tr.loc, it == report.hits.end() ? 0 : it->second});
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const CoverageReport::Row& a, const CoverageReport::Row& b) {
              if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
              return a.name < b.name;
            });
  return report;
}

}  // namespace tango::analysis
