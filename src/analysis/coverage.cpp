#include "analysis/coverage.hpp"

#include <set>

namespace tango::analysis {

std::string CoverageReport::render() const {
  char head[128];
  std::snprintf(head, sizeof(head),
                "coverage: %zu/%zu transitions (%.0f%%), %zu/%zu traces "
                "valid\n",
                hits.size(), hits.size() + uncovered.size(), ratio() * 100.0,
                traces_valid, traces_total);
  std::string out = head;
  for (const auto& [name, count] : hits) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  for (const std::string& name : uncovered) {
    out += "  " + name + ": NEVER COVERED\n";
  }
  for (const std::string& note : invalid_notes) {
    out += "  (non-valid trace: " + note + ")\n";
  }
  return out;
}

CoverageReport coverage(const est::Spec& spec,
                        const std::vector<tr::Trace>& traces,
                        const core::Options& options) {
  CoverageReport report;
  report.traces_total = traces.size();

  std::set<std::string> declared;
  for (const est::Transition& tr : spec.body().transitions) {
    declared.insert(tr.name);
  }

  for (const tr::Trace& trace : traces) {
    core::DfsResult r = core::analyze(spec, trace, options);
    if (r.verdict != core::Verdict::Valid) {
      report.invalid_notes.push_back(
          std::string(core::to_string(r.verdict)) +
          (r.note.empty() ? "" : ": " + r.note));
      continue;
    }
    ++report.traces_valid;
    // solution[0] is the initialize label; the rest are transition names.
    for (std::size_t i = 1; i < r.solution.size(); ++i) {
      ++report.hits[r.solution[i]];
    }
  }

  for (const std::string& name : declared) {
    if (!report.hits.count(name)) report.uncovered.push_back(name);
  }
  return report;
}

}  // namespace tango::analysis
