// Dataflow passes over the per-block CFGs of a compiled specification:
//
//   assign       definite assignment — locals (including function results)
//                that may be read before they are written, and module
//                variables that are read somewhere but written nowhere
//   intervals    value-range analysis over the ordinal types — flags
//                assignments that are always out of a subrange, indices that
//                are always out of bounds, division by a provably-zero
//                divisor and case selectors that can never match a label
//   unreachable  statements that can never execute, using the decided
//                branch edges of the interval fixpoint
//   purity       interprocedural side-effect summary of every routine,
//                used to reject provided clauses that reach a side effect
//                through a call chain
//
// All passes are conservative in the reporting direction: a finding means
// the defect happens on EVERY execution reaching it ("always out of
// range"), or — for the may-style assign pass — that some path reaches a
// read without a prior write. Absence of findings proves nothing.
#pragma once

#include <vector>

#include "analysis/finding.hpp"
#include "estelle/spec.hpp"

namespace tango::analysis {

struct DataflowOptions {
  bool assign = true;
  bool intervals = true;
  bool unreachable = true;
  bool purity = true;
};

/// Interprocedural effect summary of one routine, closed over calls.
struct RoutineEffects {
  bool writes_module = false;   // assigns a module variable
  bool writes_heap = false;     // new/dispose or a write through ^p
  bool has_output = false;      // executes an output statement
  bool writes_when_param = false;
  /// Flattened by-ref parameter slots this routine may write (directly or
  /// by passing them on as var arguments).
  std::vector<bool> writes_param;

  /// Safe to call from a provided clause (no observable effect besides
  /// writes to the caller's own locals via var parameters).
  [[nodiscard]] bool pure() const {
    return !writes_module && !writes_heap && !has_output &&
           !writes_when_param;
  }
};

/// Fixpoint over the call graph; index parallel to body().routines.
[[nodiscard]] std::vector<RoutineEffects> compute_routine_effects(
    const est::Spec& spec);

/// Runs the selected passes over every initializer, transition and routine.
/// Findings come back unsorted; callers merge and sort_findings().
[[nodiscard]] std::vector<Finding> run_dataflow(
    const est::Spec& spec, const DataflowOptions& opts = {});

}  // namespace tango::analysis
