// Shared interval-domain machinery: analysis units and frame layouts, the
// saturating interval lattice, and the per-CFG abstract interpreter with
// branch refinement and widening. Two clients drive it:
//
//   * dataflow.cpp runs one unit at a time with declared-type entry bounds
//     (the `intervals` / `unreachable` lint passes);
//   * invariants.cpp re-runs each transition's transfer function inside a
//     whole-spec fixpoint over the control-state graph, seeding the module
//     environment from the current state invariant instead (and overriding
//     the module widen/clobber bounds with trusted-aware ones, see
//     set_module_bounds).
//
// The domain direction is over-approximation: every interval covers every
// value the concrete execution can produce, so "definitely false" /
// "definitely out of range" conclusions are proofs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/finding.hpp"
#include "estelle/spec.hpp"

namespace tango::analysis {

// ---------------------------------------------------------------------------
// Analysis units and frame layouts
// ---------------------------------------------------------------------------

/// One analyzable block: an initializer, a transition or a routine.
struct Unit {
  std::string label;
  SourceLoc loc;
  const est::Stmt* block = nullptr;     // may be null (initializer without one)
  const est::Expr* provided = nullptr;  // transitions / initializers
  const std::vector<est::VarDecl>* locals = nullptr;
  int frame_size = 0;
  const est::Routine* routine = nullptr;
  const est::Transition* transition = nullptr;
};

std::vector<Unit> collect_units(const est::Spec& spec);

/// Per-slot frame metadata for one unit.
struct FrameInfo {
  std::vector<const est::Type*> types;  // null where unknown
  std::vector<std::string> names;
  std::vector<bool> is_param;  // defined on entry
  int result_slot = -1;
};

FrameInfo frame_info(const Unit& u);

/// Follows Field/Index/Deref bases down to the root Name, noting whether the
/// chain passes through a pointer dereference (writes then land on the heap,
/// not on the root variable).
const est::Expr* chain_root(const est::Expr& e, bool* through_deref);

bool is_aggregate(const est::Type* t);

// ---------------------------------------------------------------------------
// The interval lattice
// ---------------------------------------------------------------------------

/// Saturation bound: wide enough for any program value, small enough that
/// sums/products of two in-range bounds cannot overflow __int128 paths.
constexpr std::int64_t kInf = std::int64_t{1} << 62;

struct Interval {
  std::int64_t lo = 1;
  std::int64_t hi = 0;  // lo > hi encodes bottom (no value)

  [[nodiscard]] bool bot() const { return lo > hi; }
  [[nodiscard]] bool singleton() const { return lo == hi; }
  static Interval top() { return {-kInf, kInf}; }
  static Interval point(std::int64_t v) { return {v, v}; }
};

std::int64_t clamp_wide(__int128 v);
Interval hull(Interval a, Interval b);
Interval meet(Interval a, Interval b);
bool disjoint(Interval a, Interval b);
Interval arith(est::BinOp op, Interval a, Interval b);
/// Three-valued comparison outcome as a boolean interval.
Interval compare(est::BinOp op, Interval a, Interval b);
std::optional<Interval> type_bounds(const est::Type* t);
Interval bounds_or_top(const est::Type* t);

struct IntervalEnv {
  std::vector<Interval> frame, module, when;
  bool bot = true;

  bool merge(const IntervalEnv& o, bool widen,
             const std::vector<Interval>& frame_b,
             const std::vector<Interval>& module_b,
             const std::vector<Interval>& when_b) {
    if (o.bot) return false;
    if (bot) {
      *this = o;
      return true;
    }
    bool grown = false;
    auto join = [&](std::vector<Interval>& dst,
                    const std::vector<Interval>& src,
                    const std::vector<Interval>& wide) {
      for (std::size_t i = 0; i < dst.size(); ++i) {
        Interval h = hull(dst[i], src[i]);
        if (widen && (h.lo < dst[i].lo || h.hi > dst[i].hi)) {
          if (h.lo < dst[i].lo) h.lo = wide[i].lo;
          if (h.hi > dst[i].hi) h.hi = wide[i].hi;
        }
        if (h.lo != dst[i].lo || h.hi != dst[i].hi) {
          dst[i] = h;
          grown = true;
        }
      }
    };
    join(frame, o.frame, frame_b);
    join(module, o.module, module_b);
    join(when, o.when, when_b);
    return grown;
  }
};

// ---------------------------------------------------------------------------
// The per-CFG abstract interpreter
// ---------------------------------------------------------------------------

class IntervalPass {
 public:
  IntervalPass(const est::Spec& spec, const Unit& unit, const FrameInfo& frame,
               const std::vector<RoutineEffects>& effects)
      : spec_(spec), unit_(unit), frame_(frame), effects_(effects) {
    frame_bounds_.reserve(frame.types.size());
    for (const est::Type* t : frame.types) {
      frame_bounds_.push_back(bounds_or_top(t));
    }
    for (const est::ModuleVarInfo& mv : spec.module_vars) {
      module_bounds_.push_back(bounds_or_top(mv.type));
    }
    if (unit.transition != nullptr && unit.transition->when) {
      for (const est::Type* t : unit.transition->when->param_types) {
        when_bounds_.push_back(bounds_or_top(t));
      }
    }
  }

  /// Declared-bounds environment, provided clause NOT yet assumed. The
  /// invariant engine starts here, overwrites the module leg with the
  /// current state invariant, and only then decides whether the clause can
  /// hold at all.
  IntervalEnv entry_env_raw() const {
    IntervalEnv env;
    env.bot = false;
    env.frame = frame_bounds_;
    env.module = module_bounds_;
    env.when = when_bounds_;
    return env;
  }

  IntervalEnv entry_env() const {
    IntervalEnv env = entry_env_raw();
    if (unit_.provided != nullptr) {
      refine(env, *unit_.provided, true);
    }
    return env;
  }

  /// Overrides the module-variable bounds used for entry envs, assignment
  /// clamping, callee clobbers and widening. The invariant engine passes
  /// trusted-aware bounds (top for subrange slots a var-parameter store can
  /// push out of range) so the clobber reset stays an over-approximation.
  void set_module_bounds(std::vector<Interval> b) {
    module_bounds_ = std::move(b);
  }

  /// Drops the declared-type assumption on when parameters: invariant facts
  /// must hold for whatever binding the trace supplies.
  void set_when_bounds_top() {
    for (Interval& w : when_bounds_) w = Interval::top();
  }

  // ---- evaluation -------------------------------------------------------

  Interval eval(const est::Expr& e, const IntervalEnv& env) {
    using est::BinOp;
    using est::Builtin;
    using est::ExprKind;
    using est::NameRef;
    using est::UnOp;
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
      case ExprKind::CharLit:
        return Interval::point(e.int_value);
      case ExprKind::NilLit:
        return Interval::top();
      case ExprKind::Name:
        switch (e.ref) {
          case NameRef::ConstInt:
          case NameRef::ConstBool:
          case NameRef::ConstChar:
          case NameRef::EnumConst:
            return Interval::point(e.int_value);
          case NameRef::ModuleVar:
            return slot_of(env.module, e.slot);
          case NameRef::Local:
            return slot_of(env.frame, e.slot);
          case NameRef::WhenParam:
            return slot_of(env.when, e.slot);
          default:
            return bounds_or_top(e.type);
        }
      case ExprKind::Field:
        eval(*e.children[0], env);
        return bounds_or_top(e.type);
      case ExprKind::Index: {
        eval(*e.children[0], env);
        const Interval ix = eval(*e.children[1], env);
        check_index(e, ix);
        return bounds_or_top(e.type);
      }
      case ExprKind::Deref:
        eval(*e.children[0], env);
        return bounds_or_top(e.type);
      case ExprKind::Unary: {
        const Interval v = eval(*e.children[0], env);
        if (v.bot()) return v;
        switch (e.un_op) {
          case UnOp::Plus:
            return v;
          case UnOp::Neg:
            return {clamp_wide(-static_cast<__int128>(v.hi)),
                    clamp_wide(-static_cast<__int128>(v.lo))};
          case UnOp::Not:
            return {1 - std::min<std::int64_t>(v.hi, 1),
                    1 - std::max<std::int64_t>(v.lo, 0)};
        }
        return Interval::top();
      }
      case ExprKind::Binary: {
        const Interval a = eval(*e.children[0], env);
        const Interval b = eval(*e.children[1], env);
        switch (e.bin_op) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::Mul:
            return arith(e.bin_op, a, b);
          case BinOp::IntDiv:
          case BinOp::Mod:
            check_divisor(e, b);
            return arith(e.bin_op, a, b);
          case BinOp::And: {
            if (a.bot() || b.bot()) return {};
            const bool f = a.hi <= 0 || b.hi <= 0;
            const bool t = a.lo >= 1 && b.lo >= 1;
            return {t ? 1 : 0, f ? 0 : 1};
          }
          case BinOp::Or: {
            if (a.bot() || b.bot()) return {};
            const bool t = a.lo >= 1 || b.lo >= 1;
            const bool f = a.hi <= 0 && b.hi <= 0;
            return {t ? 1 : 0, f ? 0 : 1};
          }
          default:
            return compare(e.bin_op, a, b);
        }
      }
      case ExprKind::Call: {
        for (const est::ExprPtr& a : e.children) {
          if (a) eval(*a, env);
        }
        switch (e.builtin) {
          case Builtin::Ord:
            return child_interval(e, env, 0);
          case Builtin::Chr:
            return meet(child_interval(e, env, 0), {0, 255});
          case Builtin::Abs: {
            const Interval v = child_interval(e, env, 0);
            if (v.bot()) return v;
            if (v.lo >= 0) return v;
            if (v.hi <= 0) return {-v.hi, -v.lo};
            return {0, std::max(clamp_wide(-static_cast<__int128>(v.lo)),
                                v.hi)};
          }
          case Builtin::Succ:
            return arith(est::BinOp::Add, child_interval(e, env, 0),
                         Interval::point(1));
          case Builtin::Pred:
            return arith(est::BinOp::Sub, child_interval(e, env, 0),
                         Interval::point(1));
          case Builtin::Odd:
            return {0, 1};
          default:
            return bounds_or_top(e.type);
        }
      }
    }
    return Interval::top();
  }

  // ---- branch refinement ------------------------------------------------

  void refine(IntervalEnv& env, const est::Expr& cond, bool want_true) const {
    using est::BinOp;
    using est::ExprKind;
    using est::UnOp;
    switch (cond.kind) {
      case ExprKind::Unary:
        if (cond.un_op == UnOp::Not) {
          refine(env, *cond.children[0], !want_true);
        }
        return;
      case ExprKind::Binary:
        switch (cond.bin_op) {
          case BinOp::And:
            if (want_true) {
              refine(env, *cond.children[0], true);
              refine(env, *cond.children[1], true);
            }
            return;
          case BinOp::Or:
            if (!want_true) {
              refine(env, *cond.children[0], false);
              refine(env, *cond.children[1], false);
            }
            return;
          case BinOp::Eq:
          case BinOp::Neq:
          case BinOp::Lt:
          case BinOp::Leq:
          case BinOp::Gt:
          case BinOp::Geq:
            refine_cmp(env, cond, want_true);
            return;
          default:
            return;
        }
      case ExprKind::Name:
        // Bare boolean guard: x / not x.
        constrain(env, cond, want_true ? Interval{1, 1} : Interval{0, 0});
        return;
      default:
        return;
    }
  }

  // ---- per-node transfer ------------------------------------------------

  /// Out-env of `n` along `edge`, given the in-env. `self` must outlive the
  /// call (envs copied in).
  IntervalEnv transfer(const CfgNode& n, const IntervalEnv& in,
                       const CfgEdge& edge) {
    using est::ExprKind;
    IntervalEnv out = in;
    switch (n.kind) {
      case CfgNodeKind::Entry:
      case CfgNodeKind::Exit:
      case CfgNodeKind::ForTest:
        break;
      case CfgNodeKind::Simple:
        simple(*n.stmt, out);
        break;
      case CfgNodeKind::CondIf:
      case CfgNodeKind::CondWhile:
      case CfgNodeKind::CondRepeat:
        clobber_calls(*n.cond, out);
        if (edge.kind == EdgeKind::True) refine(out, *n.cond, true);
        if (edge.kind == EdgeKind::False) refine(out, *n.cond, false);
        break;
      case CfgNodeKind::CondCase:
        clobber_calls(*n.cond, out);
        if (edge.kind == EdgeKind::CaseArm && edge.arm != nullptr) {
          refine_case_arm(out, *n.cond, *edge.arm);
        }
        break;
      case CfgNodeKind::ForInit: {
        const est::Stmt& s = *n.stmt;
        if (s.e1) clobber_calls(*s.e1, out);
        if (!s.args.empty() && s.args[0]) clobber_calls(*s.args[0], out);
        const Interval from = s.e1 ? eval(*s.e1, out) : Interval::top();
        const Interval to = (!s.args.empty() && s.args[0])
                                ? eval(*s.args[0], out)
                                : Interval::top();
        if (s.e0 && s.e0->kind == ExprKind::Name) {
          // The control variable keeps its old value when the loop body
          // never runs, so widen with the incoming interval.
          Interval range = meet(hull(from, to), bounds_for(*s.e0));
          constrain_set(out, *s.e0, hull(slot_interval(out, *s.e0), range));
        }
        break;
      }
    }
    return out;
  }

  /// May control flow leave `n` along `edge` under `in`? Monotone in the
  /// envs (intervals only grow), so reachability never shrinks.
  bool feasible(const CfgNode& n, const IntervalEnv& in,
                const CfgEdge& edge) {
    switch (n.kind) {
      case CfgNodeKind::CondIf:
      case CfgNodeKind::CondWhile:
      case CfgNodeKind::CondRepeat: {
        if (edge.kind != EdgeKind::True && edge.kind != EdgeKind::False) {
          return true;
        }
        const Interval c = eval(*n.cond, in);
        if (c.bot()) return true;
        if (edge.kind == EdgeKind::True) return c.hi >= 1;
        return c.lo <= 0;
      }
      case CfgNodeKind::CondCase: {
        if (edge.kind != EdgeKind::CaseArm || edge.arm == nullptr) {
          return true;
        }
        const Interval sel = eval(*n.cond, in);
        if (sel.bot()) return true;
        for (std::int64_t label : edge.arm->label_values) {
          if (label >= sel.lo && label <= sel.hi) return true;
        }
        return false;
      }
      case CfgNodeKind::ForTest: {
        if (edge.kind != EdgeKind::True) return true;
        const est::Stmt& s = *n.stmt;
        const Interval from = s.e1 ? eval(*s.e1, in) : Interval::top();
        const Interval to = (!s.args.empty() && s.args[0])
                                ? eval(*s.args[0], in)
                                : Interval::top();
        if (from.bot() || to.bot()) return true;
        return s.downto ? from.hi >= to.lo : from.lo <= to.hi;
      }
      default:
        return true;
    }
  }

  // ---- reporting --------------------------------------------------------

  void report_node(const CfgNode& n, const IntervalEnv& in,
                   std::vector<Finding>& findings) {
    findings_ = &findings;
    switch (n.kind) {
      case CfgNodeKind::Entry:
      case CfgNodeKind::Exit:
        break;
      case CfgNodeKind::Simple:
        report_simple(*n.stmt, in);
        break;
      case CfgNodeKind::CondIf:
      case CfgNodeKind::CondWhile:
      case CfgNodeKind::CondRepeat:
        eval(*n.cond, in);
        break;
      case CfgNodeKind::CondCase:
        report_case(n, in);
        break;
      case CfgNodeKind::ForInit: {
        const est::Stmt& s = *n.stmt;
        if (s.e1) eval(*s.e1, in);
        if (!s.args.empty() && s.args[0]) eval(*s.args[0], in);
        break;
      }
      case CfgNodeKind::ForTest:
        break;
    }
    findings_ = nullptr;
  }

 private:
  static Interval slot_of(const std::vector<Interval>& v, int slot) {
    const auto s = static_cast<std::size_t>(slot);
    return s < v.size() ? v[s] : Interval::top();
  }

  Interval child_interval(const est::Expr& e, const IntervalEnv& env,
                          std::size_t i) {
    if (i >= e.children.size() || !e.children[i]) return Interval::top();
    return eval(*e.children[i], env);
  }

  Interval bounds_for(const est::Expr& name) const {
    switch (name.ref) {
      case est::NameRef::ModuleVar:
        return slot_of(module_bounds_, name.slot);
      case est::NameRef::Local:
        return slot_of(frame_bounds_, name.slot);
      case est::NameRef::WhenParam:
        return slot_of(when_bounds_, name.slot);
      default:
        return Interval::top();
    }
  }

  Interval slot_interval(const IntervalEnv& env,
                         const est::Expr& name) const {
    switch (name.ref) {
      case est::NameRef::ModuleVar:
        return slot_of(env.module, name.slot);
      case est::NameRef::Local:
        return slot_of(env.frame, name.slot);
      case est::NameRef::WhenParam:
        return slot_of(env.when, name.slot);
      default:
        return Interval::top();
    }
  }

  void constrain_set(IntervalEnv& env, const est::Expr& name,
                     Interval v) const {
    std::vector<Interval>* vec = nullptr;
    switch (name.ref) {
      case est::NameRef::ModuleVar:
        vec = &env.module;
        break;
      case est::NameRef::Local:
        vec = &env.frame;
        break;
      case est::NameRef::WhenParam:
        vec = &env.when;
        break;
      default:
        return;
    }
    const auto s = static_cast<std::size_t>(name.slot);
    if (s < vec->size()) (*vec)[s] = v;
  }

  void constrain(IntervalEnv& env, const est::Expr& name,
                 Interval with) const {
    const Interval cur = slot_interval(env, name);
    Interval m = meet(cur, with);
    if (m.bot()) m = with;  // contradictory path; keep it harmless
    constrain_set(env, name, m);
  }

  /// const-ish interval of an expr without env mutation, used by refine
  /// (const): conservative wrapper around eval.
  Interval peek(const est::Expr& e, const IntervalEnv& env) const {
    return const_cast<IntervalPass*>(this)->eval(e, env);
  }

  void refine_cmp(IntervalEnv& env, const est::Expr& cmp,
                  bool want_true) const {
    using est::BinOp;
    BinOp op = cmp.bin_op;
    if (!want_true) {
      switch (op) {
        case BinOp::Eq: op = BinOp::Neq; break;
        case BinOp::Neq: op = BinOp::Eq; break;
        case BinOp::Lt: op = BinOp::Geq; break;
        case BinOp::Leq: op = BinOp::Gt; break;
        case BinOp::Gt: op = BinOp::Leq; break;
        case BinOp::Geq: op = BinOp::Lt; break;
        default: return;
      }
    }
    const est::Expr& lhs = *cmp.children[0];
    const est::Expr& rhs = *cmp.children[1];
    apply_cmp(env, lhs, op, peek(rhs, env));
    apply_cmp(env, rhs, mirror(op), peek(lhs, env));
  }

  static est::BinOp mirror(est::BinOp op) {
    using est::BinOp;
    switch (op) {
      case BinOp::Lt: return BinOp::Gt;
      case BinOp::Leq: return BinOp::Geq;
      case BinOp::Gt: return BinOp::Lt;
      case BinOp::Geq: return BinOp::Leq;
      default: return op;  // Eq / Neq are symmetric
    }
  }

  void apply_cmp(IntervalEnv& env, const est::Expr& side, est::BinOp op,
                 Interval other) const {
    using est::BinOp;
    using est::ExprKind;
    if (side.kind != ExprKind::Name || other.bot()) return;
    switch (op) {
      case BinOp::Eq:
        constrain(env, side, other);
        return;
      case BinOp::Neq: {
        // Only bound-trimming exclusions are expressible as an interval.
        if (!other.singleton()) return;
        Interval cur = slot_interval(env, side);
        if (cur.bot()) return;
        if (other.lo == cur.lo) {
          constrain_set(env, side, {cur.lo + 1, cur.hi});
        } else if (other.lo == cur.hi) {
          constrain_set(env, side, {cur.lo, cur.hi - 1});
        }
        return;
      }
      case BinOp::Lt:
        constrain(env, side, {-kInf, clamp_wide(
            static_cast<__int128>(other.hi) - 1)});
        return;
      case BinOp::Leq:
        constrain(env, side, {-kInf, other.hi});
        return;
      case BinOp::Gt:
        constrain(env, side, {clamp_wide(
            static_cast<__int128>(other.lo) + 1), kInf});
        return;
      case BinOp::Geq:
        constrain(env, side, {other.lo, kInf});
        return;
      default:
        return;
    }
  }

  void refine_case_arm(IntervalEnv& env, const est::Expr& sel,
                       const est::CaseArm& arm) const {
    if (sel.kind != est::ExprKind::Name || arm.label_values.empty()) return;
    const Interval cur = slot_interval(env, sel);
    Interval span{kInf, -kInf};
    for (std::int64_t label : arm.label_values) {
      if (label >= cur.lo && label <= cur.hi) {
        span.lo = std::min(span.lo, label);
        span.hi = std::max(span.hi, label);
      }
    }
    if (!span.bot()) constrain(env, sel, span);
  }

  // ---- statement transfer ----------------------------------------------

  void simple(const est::Stmt& s, IntervalEnv& env) {
    using est::ExprKind;
    using est::StmtKind;
    switch (s.kind) {
      case StmtKind::Assign: {
        if (s.e0) clobber_calls(*s.e0, env);
        if (s.e1) clobber_calls(*s.e1, env);
        const Interval v = s.e1 ? eval(*s.e1, env) : Interval::top();
        if (s.e0 && s.e0->kind == ExprKind::Name) {
          Interval stored = meet(v, bounds_for(*s.e0));
          if (stored.bot()) stored = bounds_for(*s.e0);
          constrain_set(env, *s.e0, stored);
        }
        break;
      }
      case StmtKind::Call: {
        clobber_call_stmt(s, env);
        break;
      }
      case StmtKind::Output:
        for (const est::ExprPtr& a : s.args) {
          if (a) clobber_calls(*a, env);
        }
        break;
      default:
        break;
    }
  }

  void clobber_call_stmt(const est::Stmt& s, IntervalEnv& env) {
    if (s.builtin != est::Builtin::None) {
      return;  // new/dispose: nothing tracked
    }
    const est::Routine* callee = routine_at(s.routine_index);
    if (callee == nullptr) return;
    apply_callee_clobber(s.routine_index, s.args, env);
    for (const est::ExprPtr& a : s.args) {
      if (a) clobber_calls(*a, env);
    }
  }

  const est::Routine* routine_at(int index) const {
    if (index < 0 ||
        static_cast<std::size_t>(index) >= spec_.body().routines.size()) {
      return nullptr;
    }
    return &spec_.body().routines[static_cast<std::size_t>(index)];
  }

  void apply_callee_clobber(int routine_index,
                            const std::vector<est::ExprPtr>& args,
                            IntervalEnv& env) {
    if (routine_index < 0 ||
        static_cast<std::size_t>(routine_index) >= effects_.size()) {
      return;
    }
    const RoutineEffects& eff = effects_[static_cast<std::size_t>(
        routine_index)];
    if (eff.writes_module) {
      // Stored values conform to the declared type on direct writes; reset
      // every module slot to its declared bounds.
      env.module = module_bounds_;
    }
    for (std::size_t i = 0;
         i < std::min(eff.writes_param.size(), args.size()); ++i) {
      if (!eff.writes_param[i] || !args[i]) continue;
      bool deref = false;
      const est::Expr* root = chain_root(*args[i], &deref);
      if (root != nullptr && !deref) {
        // Var-parameter stores bypass the actual's subrange check, so the
        // post-call value may exceed the declared bounds.
        constrain_set(env, *root, Interval::top());
      }
    }
  }

  /// Resets whatever a function call reachable from `e` may overwrite.
  void clobber_calls(const est::Expr& e, IntervalEnv& env) {
    using est::ExprKind;
    if (e.kind == ExprKind::Call && e.builtin == est::Builtin::None) {
      apply_callee_clobber(e.routine_index, e.children, env);
    }
    if (e.kind == ExprKind::Name && e.ref == est::NameRef::Call0) {
      apply_callee_clobber(e.slot, {}, env);
    }
    for (const est::ExprPtr& c : e.children) {
      if (c) clobber_calls(*c, env);
    }
  }

  // ---- checks (reporting pass only) -------------------------------------

  void report(Severity sev, SourceLoc loc, std::string msg) {
    if (findings_ != nullptr) {
      findings_->emplace_back(sev, "intervals", loc, unit_.label,
                              std::move(msg));
    }
  }

  static std::string range_str(Interval v) {
    auto one = [](std::int64_t x) {
      if (x <= -kInf) return std::string("-inf");
      if (x >= kInf) return std::string("+inf");
      return std::to_string(x);
    };
    return one(v.lo) + ".." + one(v.hi);
  }

  void check_index(const est::Expr& e, Interval ix) {
    const est::Type* at = e.children[0]->type;
    if (at == nullptr || at->kind != est::TypeKind::Array || ix.bot()) return;
    if (ix.hi < at->lo || ix.lo > at->hi) {
      report(Severity::Error, e.loc,
             "array index is always out of bounds " +
                 std::to_string(at->lo) + ".." + std::to_string(at->hi) +
                 " (index is " + range_str(ix) + ")");
    }
  }

  void check_divisor(const est::Expr& e, Interval b) {
    if (!b.bot() && b.lo == 0 && b.hi == 0) {
      report(Severity::Error, e.loc, e.bin_op == est::BinOp::Mod
                                         ? "modulus is always zero"
                                         : "divisor is always zero");
    }
  }

  void report_simple(const est::Stmt& s, const IntervalEnv& in) {
    using est::ExprKind;
    using est::StmtKind;
    switch (s.kind) {
      case StmtKind::Assign: {
        const Interval v = s.e1 ? eval(*s.e1, in) : Interval::top();
        if (s.e0) {
          eval_lvalue(*s.e0, in);
          const std::optional<Interval> b = type_bounds(s.e0->type);
          if (b && disjoint(v, *b)) {
            std::string what =
                s.e0->kind == ExprKind::Name
                    ? "assignment to '" + s.e0->name + "'"
                    : "assignment";
            report(Severity::Error, s.e0->loc,
                   what + " is always out of range " + range_str(*b) +
                       " (value is " + range_str(v) + ")");
          }
        }
        break;
      }
      case StmtKind::Call:
        for (const est::ExprPtr& a : s.args) {
          if (a) eval(*a, in);
        }
        break;
      case StmtKind::Output:
        for (const est::ExprPtr& a : s.args) {
          if (a) eval(*a, in);
        }
        break;
      default:
        break;
    }
  }

  /// Walks an assignment target for checks without treating the root name
  /// read as a value use.
  void eval_lvalue(const est::Expr& e, const IntervalEnv& in) {
    using est::ExprKind;
    switch (e.kind) {
      case ExprKind::Index: {
        eval_lvalue(*e.children[0], in);
        const Interval ix = eval(*e.children[1], in);
        check_index(e, ix);
        return;
      }
      case ExprKind::Field:
      case ExprKind::Deref:
        eval_lvalue(*e.children[0], in);
        return;
      default:
        return;
    }
  }

  void report_case(const CfgNode& n, const IntervalEnv& in) {
    const Interval sel = eval(*n.cond, in);
    if (sel.bot() || n.stmt == nullptr || n.stmt->has_otherwise) return;
    for (const est::CaseArm& arm : n.stmt->arms) {
      for (std::int64_t label : arm.label_values) {
        if (label >= sel.lo && label <= sel.hi) return;
      }
    }
    report(Severity::Error, n.loc,
           "case selector (range " + range_str(sel) +
               ") matches no label and there is no otherwise part");
  }

  const est::Spec& spec_;
  const Unit& unit_;
  const FrameInfo& frame_;
  const std::vector<RoutineEffects>& effects_;
  std::vector<Interval> frame_bounds_, module_bounds_, when_bounds_;
  std::vector<Finding>* findings_ = nullptr;
};

constexpr int kWidenAfter = 3;

/// Worklist fixpoint over one CFG: seeds `entry` at cfg.entry, pushes
/// transfer along feasible edges, joins at targets and widens toward
/// `widen_to` after kWidenAfter merges per node. Returns the per-node
/// in-environments (index = node id; bot = unreachable).
std::vector<IntervalEnv> solve_intervals(const Cfg& cfg, IntervalPass& pass,
                                         const IntervalEnv& entry,
                                         const IntervalEnv& widen_to);

}  // namespace tango::analysis
