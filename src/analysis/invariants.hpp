// Whole-spec control-state invariant engine: interprocedural abstract
// interpretation over the module's control-state graph in the interval
// domain. Where dataflow.cpp analyzes each transition in isolation under
// declared-type entry bounds, this engine asks what the module variables
// can actually hold when each control state is entered:
//
//   * seed from every initializer's post-state,
//   * push each transition's transfer function (the interval_domain.hpp
//     abstract interpreter, RoutineEffects at call sites) from its source
//     state's invariant to its target state,
//   * join at target control states, widen toward trusted-aware type
//     bounds after kWidenAfter merges per state, iterate to fixpoint.
//
// The result is a per-(control state, module variable) invariant table
// plus a channel-flow pass computing which interactions can ever be
// emitted on each interaction point given only live code. Soundness
// direction is over-approximation throughout: every interval covers every
// concrete value, "reachable" covers every concretely enterable state, and
// "emittable" covers every concretely sendable interaction — so the
// negative facts (refuted pair, unreachable state, dead transition,
// never-emitted interaction) are proofs the search and the lint can act on.
//
// Proof discipline (same as the guard solver): if ANY provided clause is
// impure, evaluating it during search can move the module state outside
// this engine's transfer model, so the engine refuses wholesale
// (valid == false, no facts) rather than risk an unsound table.
#pragma once

#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/finding.hpp"
#include "analysis/guard_solver.hpp"
#include "analysis/interval_domain.hpp"
#include "estelle/spec.hpp"

namespace tango::analysis {

struct StateInvariants {
  /// False when the engine bailed (impure provided clause, or a spec with
  /// no control states): every table below is meaningless and no consumer
  /// may read it.
  bool valid = false;

  int n_states = 0;
  int n_transitions = 0;
  int n_module_vars = 0;
  int n_ips = 0;
  int n_interactions = 0;

  /// Flattened n_states*n_module_vars: what module variable v can hold
  /// whenever control state s is occupied. Bottom (lo > hi) rows for
  /// unreachable states.
  std::vector<Interval> bounds;
  /// Per control state: enterable in the fixpoint.
  std::vector<char> reachable;
  /// Flattened n_states*n_transitions: the transition's provided clause is
  /// definitely false under state s's invariant (only meaningful where s
  /// is reachable and s is one of the transition's source states).
  std::vector<char> refuted;
  /// Per transition: no reachable source state admits its provided clause
  /// — the transition can never fire.
  std::vector<char> dead;
  /// Flattened n_ips*n_interactions: some live initializer or transition
  /// (directly or through a called routine) can output the interaction on
  /// that ip.
  std::vector<char> emittable;

  [[nodiscard]] const Interval& bound(int s, int v) const {
    return bounds[static_cast<std::size_t>(s) *
                      static_cast<std::size_t>(n_module_vars) +
                  static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool is_reachable(int s) const {
    return reachable[static_cast<std::size_t>(s)] != 0;
  }
  [[nodiscard]] bool is_refuted(int s, int t) const {
    return refuted[static_cast<std::size_t>(s) *
                       static_cast<std::size_t>(n_transitions) +
                   static_cast<std::size_t>(t)] != 0;
  }
  [[nodiscard]] bool is_dead(int t) const {
    return dead[static_cast<std::size_t>(t)] != 0;
  }
  [[nodiscard]] bool is_emittable(int ip, int interaction) const {
    return emittable[static_cast<std::size_t>(ip) *
                         static_cast<std::size_t>(n_interactions) +
                     static_cast<std::size_t>(interaction)] != 0;
  }
};

/// Runs the whole-spec fixpoint. Pure function of the spec; `effects` must
/// come from compute_routine_effects(spec).
[[nodiscard]] StateInvariants compute_state_invariants(
    const est::Spec& spec, const std::vector<RoutineEffects>& effects);

/// The `invariants` lint pass: semantically dead transitions, control
/// states unreachable in the fixpoint, interactions only output from dead
/// code, and provable runtime faults that manifest only along
/// cross-transition paths (deduplicated against what the per-unit
/// `intervals` pass already reports). All findings are warnings — the
/// facts are proofs, but a spec with dead code still analyzes soundly.
[[nodiscard]] std::vector<Finding> invariant_findings(
    const est::Spec& spec, const std::vector<RoutineEffects>& effects,
    const StateInvariants& inv);

/// Copies the invariant facts into a GuardMatrix (v2 fields) for the
/// search: invariant-refuted (state, transition) pairs, never-emittable
/// interactions, per-state reachability and bounds (the debug-mode
/// soundness oracle). No-op when `inv.valid` is false.
void augment_guard_matrix(const est::Spec& spec, const StateInvariants& inv,
                          GuardMatrix& gm);

}  // namespace tango::analysis
