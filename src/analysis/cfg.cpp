#include "analysis/cfg.hpp"

#include <algorithm>

namespace tango::analysis {

namespace {

using est::Stmt;
using est::StmtKind;

class Builder {
 public:
  Cfg build(const Stmt& block) {
    cfg_.entry = add(CfgNodeKind::Entry, nullptr, nullptr, {});
    std::vector<int> tails = stmt(block, {{cfg_.entry, EdgeKind::Seq}});
    cfg_.exit = add(CfgNodeKind::Exit, nullptr, nullptr, {});
    for (int t : tails) edge(t, cfg_.exit, EdgeKind::Seq);
    return std::move(cfg_);
  }

 private:
  /// A dangling predecessor: a node waiting for its successor, plus the
  /// kind of edge it will take there.
  struct Pending {
    int from;
    EdgeKind kind;
    const est::CaseArm* arm = nullptr;
  };

  int add(CfgNodeKind kind, const Stmt* s, const est::Expr* cond,
          SourceLoc loc) {
    CfgNode n;
    n.kind = kind;
    n.stmt = s;
    n.cond = cond;
    n.loc = loc;
    cfg_.nodes.push_back(std::move(n));
    return static_cast<int>(cfg_.nodes.size()) - 1;
  }

  void edge(int from, int to, EdgeKind kind,
            const est::CaseArm* arm = nullptr) {
    cfg_.nodes[static_cast<std::size_t>(from)].succs.push_back(
        CfgEdge{to, kind, arm});
    cfg_.nodes[static_cast<std::size_t>(to)].preds.push_back(from);
  }

  void resolve(const std::vector<Pending>& pending, int to) {
    for (const Pending& p : pending) edge(p.from, to, p.kind, p.arm);
  }

  static void append(std::vector<int>& dst, const std::vector<int>& src) {
    dst.insert(dst.end(), src.begin(), src.end());
  }

  /// Builds `s` with the given dangling predecessors. Returns the tail
  /// frontier: nodes whose (Seq) successor is whatever comes next. A
  /// node-free statement (empty compound) passes `preds` straight through.
  std::vector<int> stmt(const Stmt& s, std::vector<Pending> preds) {
    switch (s.kind) {
      case StmtKind::Compound: {
        std::vector<int> tails = settle(std::move(preds));
        for (const est::StmtPtr& c : s.body) {
          if (c) tails = stmt(*c, seq(tails));
        }
        return tails;
      }
      case StmtKind::Empty:
      case StmtKind::Assign:
      case StmtKind::Call:
      case StmtKind::Output: {
        const int n = add(CfgNodeKind::Simple, &s, nullptr, s.loc);
        resolve(preds, n);
        return {n};
      }
      case StmtKind::If: {
        const int c = add(CfgNodeKind::CondIf, &s, s.e0.get(), s.loc);
        resolve(preds, c);
        std::vector<int> out;
        append(out, branch(s.s0.get(), {{c, EdgeKind::True}}));
        append(out, branch(s.s1.get(), {{c, EdgeKind::False}}));
        return out;
      }
      case StmtKind::While: {
        const int c = add(CfgNodeKind::CondWhile, &s, s.e0.get(), s.loc);
        resolve(preds, c);
        std::vector<int> body_tails =
            branch(s.s0.get(), {{c, EdgeKind::True}});
        for (int t : body_tails) {
          if (t == c) {
            edge(c, c, EdgeKind::True);  // empty body: self loop
          } else {
            edge(t, c, EdgeKind::Seq);  // back edge
          }
        }
        return {c};  // leaves on the False edge
      }
      case StmtKind::Repeat: {
        // Body first, then the until-condition; False loops back.
        const int body_head = static_cast<int>(cfg_.nodes.size());
        std::vector<int> tails = settle(std::move(preds));
        for (const est::StmtPtr& c : s.body) {
          if (c) tails = stmt(*c, seq(tails));
        }
        const int c = add(CfgNodeKind::CondRepeat, &s, s.e0.get(), s.loc);
        for (int t : tails) edge(t, c, EdgeKind::Seq);
        // body_head == c when the body produced no nodes: self loop.
        edge(c, body_head, EdgeKind::False);
        return {c};  // leaves on the True edge
      }
      case StmtKind::For: {
        const int init = add(CfgNodeKind::ForInit, &s, nullptr, s.loc);
        resolve(preds, init);
        const int test = add(CfgNodeKind::ForTest, &s, nullptr, s.loc);
        edge(init, test, EdgeKind::Seq);
        std::vector<int> body_tails =
            branch(s.s0.get(), {{test, EdgeKind::True}});
        for (int t : body_tails) {
          if (t == test) {
            edge(test, test, EdgeKind::True);
          } else {
            edge(t, test, EdgeKind::Seq);  // step + retest
          }
        }
        return {test};  // leaves on the False edge
      }
      case StmtKind::Case: {
        const int c = add(CfgNodeKind::CondCase, &s, s.e0.get(), s.loc);
        resolve(preds, c);
        std::vector<int> out;
        for (const est::CaseArm& arm : s.arms) {
          append(out, branch(arm.body.get(),
                             {{c, EdgeKind::CaseArm, &arm}}));
        }
        if (s.has_otherwise) {
          std::vector<int> tails{-1};  // sentinel: not yet entered
          std::vector<Pending> entry{{c, EdgeKind::CaseOther}};
          bool entered = false;
          for (const est::StmtPtr& o : s.otherwise) {
            if (!o) continue;
            tails = entered ? stmt(*o, seq(tails)) : stmt(*o, entry);
            entered = true;
          }
          if (entered) {
            append(out, tails);
          } else {
            out.push_back(c);  // empty otherwise: fallthrough
          }
        } else {
          // Without `otherwise` a no-match faults at runtime; keeping the
          // fallthrough edge over-approximates control flow, which is the
          // sound direction for every pass that consumes the graph.
          out.push_back(c);
        }
        return out;
      }
    }
    return settle(std::move(preds));  // unreachable
  }

  /// Builds an optional branch body behind `entry` edges. When the body is
  /// null or node-free, the branching node itself joins the tail frontier
  /// (the edge materialises later as a plain Seq fallthrough).
  std::vector<int> branch(const Stmt* body, std::vector<Pending> entry) {
    const int from = entry.front().from;
    if (body == nullptr) return {from};
    const std::size_t before = cfg_.nodes.size();
    std::vector<int> tails = stmt(*body, std::move(entry));
    if (cfg_.nodes.size() == before) return {from};
    return tails;
  }

  /// Materialises dangling predecessors into a plain tail list. Pending
  /// non-Seq edges must not leak through node-free statements, so they are
  /// preserved by kind on their origin node when later resolved; for tail
  /// passthrough we simply return the origins (their edges are created on
  /// the next real node by seq()/resolve()).
  std::vector<int> settle(std::vector<Pending> preds) {
    std::vector<int> tails;
    tails.reserve(preds.size());
    for (const Pending& p : preds) {
      pending_.push_back(p);
      tails.push_back(p.from);
    }
    return tails;
  }

  std::vector<Pending> seq(const std::vector<int>& tails) {
    std::vector<Pending> preds;
    preds.reserve(tails.size());
    for (int t : tails) {
      // Re-attach a preserved non-Seq pending edge for this origin, if one
      // is still waiting; otherwise a plain sequential edge.
      EdgeKind kind = EdgeKind::Seq;
      const est::CaseArm* arm = nullptr;
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->from == t) {
          kind = it->kind;
          arm = it->arm;
          pending_.erase(it);
          break;
        }
      }
      preds.push_back(Pending{t, kind, arm});
    }
    return preds;
  }

  Cfg cfg_;
  std::vector<Pending> pending_;
};

}  // namespace

std::vector<int> Cfg::reverse_post_order() const {
  std::vector<int> order;
  std::vector<char> seen(nodes.size(), 0);
  struct Frame {
    int node;
    std::size_t next_succ;
  };
  // Iterative post-order DFS (blocks can nest arbitrarily deep).
  std::vector<Frame> stack{{entry, 0}};
  seen[static_cast<std::size_t>(entry)] = 1;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const CfgNode& n = nodes[static_cast<std::size_t>(f.node)];
    if (f.next_succ < n.succs.size()) {
      const int to = n.succs[f.next_succ++].to;
      if (!seen[static_cast<std::size_t>(to)]) {
        seen[static_cast<std::size_t>(to)] = 1;
        stack.push_back({to, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

Cfg build_cfg(const est::Stmt& block) { return Builder{}.build(block); }

std::string to_string(const Cfg& cfg) {
  static constexpr const char* kKind[] = {
      "entry", "exit", "stmt",     "if",      "while",
      "until", "case", "for-init", "for-test"};
  static constexpr const char* kEdge[] = {"", "T", "F", "arm", "other"};
  std::string out;
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    const CfgNode& n = cfg.nodes[i];
    out += std::to_string(i);
    out += ": ";
    out += kKind[static_cast<int>(n.kind)];
    if (n.loc.valid()) out += " @" + tango::to_string(n.loc);
    out += " ->";
    for (const CfgEdge& e : n.succs) {
      out += ' ';
      out += std::to_string(e.to);
      if (e.kind != EdgeKind::Seq) {
        out += '(';
        out += kEdge[static_cast<int>(e.kind)];
        out += ')';
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace tango::analysis
