// Guard implication solver. Normalizes every transition's provided clause
// into a conjunction of interval atoms over module variables and when
// parameters, then decides pairwise implication and mutual exclusion per
// (state, when-source) group:
//
//   * structurally duplicate transitions and transitions whose guard is
//     implied by a strictly-higher-priority competitor can never add
//     behavior — they are reported and entered into the skip set;
//   * provably disjoint module-variable guards feed a runtime matrix the
//     generate operation uses to skip doomed candidates early (fewer guard
//     evaluations and, under on-line analysis, fewer spurious
//     pending-generation marks);
//   * overlapping same-priority guards are reported as genuine
//     nondeterminism.
//
// Everything here is a PROOF or it is nothing: "unknown" never enters the
// matrix, so pruning cannot change verdicts (see docs/LINT.md).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/finding.hpp"
#include "estelle/spec.hpp"

namespace tango::analysis {

/// Facts the search consumes. Indexed by transition declaration index, the
/// same indexing as Spec::body().transitions.
struct GuardMatrix {
  int n = 0;
  /// Flattened n*n. mutex(i, j) == true proves: whenever transition i's
  /// provided clause evaluates to true at a node, transition j's clause is
  /// false at that node for EVERY possible when-parameter binding (the
  /// proof uses module-variable atoms only, which are conjuncts of i and
  /// of j). The disjointness core is symmetric but the entry also demands
  /// pure(j) — skipping j's evaluation must be unobservable — so consult
  /// mutex(i, j) with i as the guard that held.
  std::vector<char> mutex_rt;
  /// Guard purity per transition: no module/heap/output/parameter write is
  /// reachable from the provided clause. Only a pure guard may serve as
  /// the held side of a mutex skip, and evaluating an impure guard
  /// invalidates every previously-held fact within one generate (the
  /// evaluation itself may move the module state).
  std::vector<char> guard_is_pure;
  /// Transition can never contribute behavior (structural duplicate of an
  /// earlier transition, or always shadowed by a higher-priority one);
  /// the search may skip it without changing verdicts or witnesses.
  std::vector<char> skip;

  // ---- v2: whole-spec invariant facts (analysis/invariants.hpp) ---------
  //
  // Filled by augment_guard_matrix from a valid StateInvariants fixpoint;
  // empty (zero-sized vectors, n_states == 0) when the engine bailed (an
  // impure provided clause) or invariant pruning is off. The same proof
  // discipline applies: a fact is a whole-spec PROOF under the engine's
  // over-approximating semantics, so consuming it cannot change verdicts
  // or witnesses.

  int n_states = 0;
  int n_module_vars = 0;
  int n_ips = 0;
  int n_interactions = 0;
  /// Flattened n_states*n: transition j's provided clause is definitely
  /// false whenever control state i is entered (evaluated under the state's
  /// invariant bounds), so a candidate at that state can be skipped before
  /// its when-queue or guard is consulted. Only recorded for pure guards —
  /// the whole v2 layer is absent otherwise.
  std::vector<char> state_refuted_;
  /// Per control state: reachable in the fixpoint. The search can never
  /// occupy an unreachable state (debug-assert material; generate() never
  /// consults it for pruning).
  std::vector<char> state_reachable_;
  /// Flattened n_ips*n_interactions: interaction can NEVER be emitted on
  /// that ip by any live transition, initializer or callee. A pending
  /// output event matching a never-out entry dooms the whole subtree.
  std::vector<char> never_out_;
  /// Flattened n_states*n_module_vars invariant bounds — the debug-mode
  /// soundness oracle: every concrete scalar module value reached during
  /// search must lie inside its state's interval.
  std::vector<std::int64_t> inv_lo_, inv_hi_;

  [[nodiscard]] bool has_state_facts() const {
    for (char c : state_refuted_) {
      if (c != 0) return true;
    }
    return false;
  }
  [[nodiscard]] bool has_never_out() const {
    for (char c : never_out_) {
      if (c != 0) return true;
    }
    return false;
  }
  [[nodiscard]] bool has_invariants() const { return !inv_lo_.empty(); }
  [[nodiscard]] bool state_refuted(int s, int t) const {
    return state_refuted_[static_cast<std::size_t>(s) *
                              static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(t)] != 0;
  }
  [[nodiscard]] bool state_reachable(int s) const {
    return state_reachable_[static_cast<std::size_t>(s)] != 0;
  }
  [[nodiscard]] bool never_out(int ip, int interaction) const {
    return never_out_[static_cast<std::size_t>(ip) *
                          static_cast<std::size_t>(n_interactions) +
                      static_cast<std::size_t>(interaction)] != 0;
  }

  [[nodiscard]] bool mutex(int i, int j) const {
    return mutex_rt[static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(j)] != 0;
  }
  [[nodiscard]] bool skippable(int i) const {
    return skip[static_cast<std::size_t>(i)] != 0;
  }
  [[nodiscard]] bool pure(int i) const {
    return guard_is_pure[static_cast<std::size_t>(i)] != 0;
  }
  [[nodiscard]] bool any_facts() const {
    for (char c : skip) {
      if (c != 0) return true;
    }
    for (char c : mutex_rt) {
      if (c != 0) return true;
    }
    // v2: invariant bounds alone keep the matrix alive — they change no
    // Release-mode behavior but feed the debug soundness assert.
    return has_state_facts() || has_never_out() || has_invariants();
  }
};

struct GuardAnalysis {
  GuardMatrix matrix;
  std::vector<Finding> findings;
};

/// Runs the solver over every transition pair. Pure function of the spec;
/// cost is O(n^2 * atoms), negligible beside any search.
[[nodiscard]] GuardAnalysis analyze_guards(const est::Spec& spec);

/// Subrange-typed module slots whose declared bounds CANNOT be trusted
/// (passed by reference to a routine that writes the parameter: stores
/// range-check against the parameter's type, not the actual's) get 0;
/// every other slot gets 1. Shared with the invariant engine, which must
/// widen untrusted slots to top instead of their declared bounds.
[[nodiscard]] std::vector<char> trusted_module_slots(
    const est::Spec& spec, const std::vector<RoutineEffects>& effects);

/// Whether skipping this provided clause's evaluation is unobservable:
/// every call it reaches must be effect-free, including var-parameter
/// write-back. Null guards are pure.
[[nodiscard]] bool provided_clause_pure(
    const est::Expr* guard, const std::vector<RoutineEffects>& effects);

}  // namespace tango::analysis
