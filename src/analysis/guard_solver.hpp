// Guard implication solver. Normalizes every transition's provided clause
// into a conjunction of interval atoms over module variables and when
// parameters, then decides pairwise implication and mutual exclusion per
// (state, when-source) group:
//
//   * structurally duplicate transitions and transitions whose guard is
//     implied by a strictly-higher-priority competitor can never add
//     behavior — they are reported and entered into the skip set;
//   * provably disjoint module-variable guards feed a runtime matrix the
//     generate operation uses to skip doomed candidates early (fewer guard
//     evaluations and, under on-line analysis, fewer spurious
//     pending-generation marks);
//   * overlapping same-priority guards are reported as genuine
//     nondeterminism.
//
// Everything here is a PROOF or it is nothing: "unknown" never enters the
// matrix, so pruning cannot change verdicts (see docs/LINT.md).
#pragma once

#include <vector>

#include "analysis/finding.hpp"
#include "estelle/spec.hpp"

namespace tango::analysis {

/// Facts the search consumes. Indexed by transition declaration index, the
/// same indexing as Spec::body().transitions.
struct GuardMatrix {
  int n = 0;
  /// Flattened n*n. mutex(i, j) == true proves: whenever transition i's
  /// provided clause evaluates to true at a node, transition j's clause is
  /// false at that node for EVERY possible when-parameter binding (the
  /// proof uses module-variable atoms only, which are conjuncts of i and
  /// of j). The disjointness core is symmetric but the entry also demands
  /// pure(j) — skipping j's evaluation must be unobservable — so consult
  /// mutex(i, j) with i as the guard that held.
  std::vector<char> mutex_rt;
  /// Guard purity per transition: no module/heap/output/parameter write is
  /// reachable from the provided clause. Only a pure guard may serve as
  /// the held side of a mutex skip, and evaluating an impure guard
  /// invalidates every previously-held fact within one generate (the
  /// evaluation itself may move the module state).
  std::vector<char> guard_is_pure;
  /// Transition can never contribute behavior (structural duplicate of an
  /// earlier transition, or always shadowed by a higher-priority one);
  /// the search may skip it without changing verdicts or witnesses.
  std::vector<char> skip;

  [[nodiscard]] bool mutex(int i, int j) const {
    return mutex_rt[static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(j)] != 0;
  }
  [[nodiscard]] bool skippable(int i) const {
    return skip[static_cast<std::size_t>(i)] != 0;
  }
  [[nodiscard]] bool pure(int i) const {
    return guard_is_pure[static_cast<std::size_t>(i)] != 0;
  }
  [[nodiscard]] bool any_facts() const {
    for (char c : skip) {
      if (c != 0) return true;
    }
    for (char c : mutex_rt) {
      if (c != 0) return true;
    }
    return false;
  }
};

struct GuardAnalysis {
  GuardMatrix matrix;
  std::vector<Finding> findings;
};

/// Runs the solver over every transition pair. Pure function of the spec;
/// cost is O(n^2 * atoms), negligible beside any search.
[[nodiscard]] GuardAnalysis analyze_guards(const est::Spec& spec);

}  // namespace tango::analysis
