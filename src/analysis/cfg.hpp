// Control-flow graphs over the statement trees of one compiled
// specification — one graph per transition block, initializer block and
// routine body. The dataflow passes (analysis/dataflow.hpp) run classic
// worklist fixpoints over these graphs; nothing here executes code.
//
// Node granularity is one statement or one decision:
//   Entry/Exit     synthetic endpoints
//   Simple         Assign / Call / Output / Empty
//   CondIf         if-condition; succ edges True/False
//   CondWhile      while-condition; True enters the body, False exits
//   CondRepeat     repeat-until condition; True exits, False loops back
//   CondCase       case selector; one CaseArm edge per arm (+ CaseOther)
//   ForInit        the control-variable initialisation of a for statement
//   ForTest        the loop test; True enters the body, False exits
#pragma once

#include <string>
#include <vector>

#include "estelle/ast.hpp"

namespace tango::analysis {

enum class CfgNodeKind : std::uint8_t {
  Entry,
  Exit,
  Simple,
  CondIf,
  CondWhile,
  CondRepeat,
  CondCase,
  ForInit,
  ForTest,
};

enum class EdgeKind : std::uint8_t { Seq, True, False, CaseArm, CaseOther };

struct CfgEdge {
  int to = -1;
  EdgeKind kind = EdgeKind::Seq;
  /// CaseArm edges: the arm taken (labels live on it). Null otherwise.
  const est::CaseArm* arm = nullptr;
};

struct CfgNode {
  CfgNodeKind kind = CfgNodeKind::Simple;
  /// Simple: the statement. Cond*/For*: the owning control statement.
  const est::Stmt* stmt = nullptr;
  /// The decided expression for Cond* nodes (if/while/repeat condition,
  /// case selector); null for the rest.
  const est::Expr* cond = nullptr;
  SourceLoc loc;
  std::vector<CfgEdge> succs;
  std::vector<int> preds;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = -1;
  int exit = -1;

  [[nodiscard]] const CfgNode& node(int id) const {
    return nodes[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t size() const { return nodes.size(); }

  /// Reverse-post-order from entry, for fast forward fixpoints.
  [[nodiscard]] std::vector<int> reverse_post_order() const;
};

/// Builds the CFG of one statement block (a transition/initializer block or
/// a routine body). Null statements inside the tree are tolerated.
[[nodiscard]] Cfg build_cfg(const est::Stmt& block);

/// Debug rendering: one node per line with its successors.
[[nodiscard]] std::string to_string(const Cfg& cfg);

}  // namespace tango::analysis
