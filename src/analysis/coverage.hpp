// Transition coverage over a set of valid traces — a conformance-testing
// campaign view: which transitions of the specification did the observed
// behaviour actually exercise (as witnessed by the analyzer's solution
// paths), and which were never seen. Exposed through `tango coverage`.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/dfs.hpp"

namespace tango::analysis {

struct CoverageReport {
  /// transition name -> number of firings across all witness paths.
  std::map<std::string, std::size_t> hits;
  std::vector<std::string> uncovered;  // declared but never witnessed
  /// One row per declared transition with its declaration site, ordered by
  /// (line, name) so machine output is byte-stable.
  struct Row {
    std::string name;
    SourceLoc loc;
    std::size_t count = 0;
    /// The invariant engine (analysis/invariants.hpp) proved the
    /// transition can never fire — no test campaign could ever cover it.
    bool statically_dead = false;
  };
  std::vector<Row> rows;
  std::size_t traces_total = 0;
  std::size_t traces_valid = 0;
  /// Uncovered transitions that are statically dead. These no longer count
  /// as missed coverage: the headline ratio is over live transitions only
  /// (covering a provably-unfireable transition is impossible, so holding
  /// it against the campaign was noise — see docs/LINT.md).
  std::size_t dead_uncovered = 0;
  std::vector<std::string> invalid_notes;  // one per non-valid trace

  [[nodiscard]] double ratio() const {
    const std::size_t total = hits.size() + uncovered.size() - dead_uncovered;
    return total == 0 ? 0.0
                      : static_cast<double>(hits.size()) /
                            static_cast<double>(total);
  }
  [[nodiscard]] std::string render() const;
  /// Stable JSON object ({"transitions":[{name,line,count},...],...}).
  [[nodiscard]] std::string render_json() const;
};

/// Analyzes every trace (with `options`) and accumulates witness-path
/// coverage. Invalid/inconclusive traces contribute no coverage but are
/// counted and annotated.
[[nodiscard]] CoverageReport coverage(const est::Spec& spec,
                                      const std::vector<tr::Trace>& traces,
                                      const core::Options& options);

}  // namespace tango::analysis
