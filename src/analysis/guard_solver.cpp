#include "analysis/guard_solver.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "analysis/dataflow.hpp"

namespace tango::analysis {

namespace {

using est::BinOp;
using est::Builtin;
using est::Expr;
using est::ExprKind;
using est::NameRef;
using est::Spec;
using est::Stmt;
using est::StmtKind;
using est::Transition;
using est::Type;
using est::TypeKind;
using est::UnOp;

constexpr std::int64_t kInf = std::int64_t{1} << 62;

std::int64_t sat(std::int64_t v, std::int64_t delta) {
  const __int128 w = static_cast<__int128>(v) + delta;
  if (w < -static_cast<__int128>(kInf)) return -kInf;
  if (w > static_cast<__int128>(kInf)) return kInf;
  return static_cast<std::int64_t>(w);
}

// ---------------------------------------------------------------------------
// Conjunctions of interval atoms
// ---------------------------------------------------------------------------

struct VarKey {
  bool when = false;  // false: module variable, true: when parameter
  int slot = -1;

  friend bool operator<(const VarKey& a, const VarKey& b) {
    if (a.when != b.when) return !a.when;
    return a.slot < b.slot;
  }
};

struct Atom {
  std::int64_t lo = -kInf;
  std::int64_t hi = kInf;
  std::vector<std::int64_t> excluded;  // sorted, strictly inside [lo, hi]

  [[nodiscard]] bool empty() const { return lo > hi; }

  void normalize() {
    std::sort(excluded.begin(), excluded.end());
    excluded.erase(std::unique(excluded.begin(), excluded.end()),
                   excluded.end());
    bool trimmed = true;
    while (trimmed && lo <= hi) {
      trimmed = false;
      if (std::binary_search(excluded.begin(), excluded.end(), lo)) {
        lo = sat(lo, 1);
        trimmed = true;
      }
      if (lo <= hi &&
          std::binary_search(excluded.begin(), excluded.end(), hi)) {
        hi = sat(hi, -1);
        trimmed = true;
      }
    }
    std::erase_if(excluded,
                  [&](std::int64_t p) { return p <= lo || p >= hi; });
  }
};

/// Normal form of one provided clause: a conjunction of per-variable atoms
/// plus a residual flag for conjuncts the atomizer could not express. The
/// solver proves nothing through residuals.
struct Conj {
  std::map<VarKey, Atom> atoms;
  bool residual = false;
  bool contradiction = false;
};

/// Declared-bounds seed for a key. When-parameter values come from the
/// trace and subrange module slots can be widened through var parameters
/// (see trusted_ in Solver), so seeds are only applied where sound.
struct SeedFn {
  const Spec* spec = nullptr;
  const std::vector<char>* module_trusted = nullptr;

  [[nodiscard]] Atom operator()(VarKey key) const {
    Atom a;
    if (key.when) return a;
    const auto s = static_cast<std::size_t>(key.slot);
    if (s >= spec->module_vars.size()) return a;
    if ((*module_trusted)[s] == 0) return a;
    const Type* t = spec->module_vars[s].type;
    if (t == nullptr) return a;
    switch (t->kind) {
      case TypeKind::Boolean:
        a.lo = 0;
        a.hi = 1;
        break;
      case TypeKind::Char:
        a.lo = 0;
        a.hi = 255;
        break;
      case TypeKind::Enum:
        a.lo = 0;
        a.hi = static_cast<std::int64_t>(t->enum_values.size()) - 1;
        break;
      case TypeKind::Subrange:
        a.lo = t->lo;
        a.hi = t->hi;
        break;
      default:
        break;
    }
    return a;
  }
};

std::optional<std::int64_t> const_eval(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::CharLit:
      return e.int_value;
    case ExprKind::Name:
      switch (e.ref) {
        case NameRef::ConstInt:
        case NameRef::ConstBool:
        case NameRef::ConstChar:
        case NameRef::EnumConst:
          return e.int_value;
        default:
          return std::nullopt;
      }
    case ExprKind::Unary: {
      const auto v = const_eval(*e.children[0]);
      if (!v) return std::nullopt;
      switch (e.un_op) {
        case UnOp::Plus:
          return v;
        case UnOp::Neg:
          return -*v;
        case UnOp::Not:
          return *v != 0 ? 0 : 1;
      }
      return std::nullopt;
    }
    case ExprKind::Binary: {
      const auto a = const_eval(*e.children[0]);
      const auto b = const_eval(*e.children[1]);
      if (!a || !b) return std::nullopt;
      switch (e.bin_op) {
        case BinOp::Add:
          return sat(*a, *b);
        case BinOp::Sub:
          return sat(*a, -*b);
        case BinOp::Mul: {
          const __int128 w = static_cast<__int128>(*a) * *b;
          if (w < -static_cast<__int128>(kInf) ||
              w > static_cast<__int128>(kInf)) {
            return std::nullopt;
          }
          return static_cast<std::int64_t>(w);
        }
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

std::optional<VarKey> key_of(const Expr& e) {
  if (e.kind != ExprKind::Name) return std::nullopt;
  if (e.ref == NameRef::ModuleVar) return VarKey{false, e.slot};
  if (e.ref == NameRef::WhenParam) return VarKey{true, e.slot};
  return std::nullopt;
}

BinOp negate(BinOp op) {
  switch (op) {
    case BinOp::Eq: return BinOp::Neq;
    case BinOp::Neq: return BinOp::Eq;
    case BinOp::Lt: return BinOp::Geq;
    case BinOp::Leq: return BinOp::Gt;
    case BinOp::Gt: return BinOp::Leq;
    case BinOp::Geq: return BinOp::Lt;
    default: return op;
  }
}

BinOp mirror(BinOp op) {
  switch (op) {
    case BinOp::Lt: return BinOp::Gt;
    case BinOp::Leq: return BinOp::Geq;
    case BinOp::Gt: return BinOp::Lt;
    case BinOp::Geq: return BinOp::Leq;
    default: return op;  // Eq / Neq
  }
}

class Atomizer {
 public:
  Atomizer(const SeedFn& seed) : seed_(seed) {}

  Conj run(const Expr* guard) {
    conj_ = Conj{};
    if (guard != nullptr) visit(*guard, /*positive=*/true);
    for (auto& [key, atom] : conj_.atoms) {
      atom.normalize();
      if (atom.empty()) conj_.contradiction = true;
    }
    return std::move(conj_);
  }

 private:
  Atom& atom(VarKey key) {
    auto it = conj_.atoms.find(key);
    if (it == conj_.atoms.end()) {
      it = conj_.atoms.emplace(key, seed_(key)).first;
    }
    return it->second;
  }

  void apply(VarKey key, BinOp op, std::int64_t c) {
    Atom& a = atom(key);
    switch (op) {
      case BinOp::Eq:
        a.lo = std::max(a.lo, c);
        a.hi = std::min(a.hi, c);
        break;
      case BinOp::Neq:
        if (c == a.lo) {
          a.lo = sat(a.lo, 1);
        } else if (c == a.hi) {
          a.hi = sat(a.hi, -1);
        } else if (c > a.lo && c < a.hi) {
          a.excluded.push_back(c);
        }
        break;
      case BinOp::Lt:
        a.hi = std::min(a.hi, sat(c, -1));
        break;
      case BinOp::Leq:
        a.hi = std::min(a.hi, c);
        break;
      case BinOp::Gt:
        a.lo = std::max(a.lo, sat(c, 1));
        break;
      case BinOp::Geq:
        a.lo = std::max(a.lo, c);
        break;
      default:
        conj_.residual = true;
        break;
    }
  }

  void visit(const Expr& e, bool positive) {
    switch (e.kind) {
      case ExprKind::BoolLit:
        if ((e.int_value != 0) != positive) conj_.contradiction = true;
        return;
      case ExprKind::Name: {
        if (const auto key = key_of(e)) {
          apply(*key, BinOp::Eq, positive ? 1 : 0);
          return;
        }
        if (e.ref == NameRef::ConstBool) {
          if ((e.int_value != 0) != positive) conj_.contradiction = true;
          return;
        }
        conj_.residual = true;
        return;
      }
      case ExprKind::Unary:
        if (e.un_op == UnOp::Not) {
          visit(*e.children[0], !positive);
        } else {
          conj_.residual = true;
        }
        return;
      case ExprKind::Binary:
        switch (e.bin_op) {
          case BinOp::And:
            if (positive) {
              visit(*e.children[0], true);
              visit(*e.children[1], true);
            } else {
              conj_.residual = true;  // ¬(a ∧ b) is a disjunction
            }
            return;
          case BinOp::Or:
            if (!positive) {
              visit(*e.children[0], false);
              visit(*e.children[1], false);
            } else {
              conj_.residual = true;
            }
            return;
          case BinOp::Eq:
          case BinOp::Neq:
          case BinOp::Lt:
          case BinOp::Leq:
          case BinOp::Gt:
          case BinOp::Geq: {
            BinOp op = positive ? e.bin_op : negate(e.bin_op);
            const Expr& lhs = *e.children[0];
            const Expr& rhs = *e.children[1];
            const auto lk = key_of(lhs);
            const auto rk = key_of(rhs);
            const auto lc = const_eval(lhs);
            const auto rc = const_eval(rhs);
            if (lk && rc) {
              apply(*lk, op, *rc);
            } else if (rk && lc) {
              apply(*rk, mirror(op), *lc);
            } else {
              conj_.residual = true;
            }
            return;
          }
          default:
            conj_.residual = true;
            return;
        }
      default:
        conj_.residual = true;
        return;
    }
  }

  SeedFn seed_;
  Conj conj_;
};

/// a ⊆ b on the value sets the atoms describe.
bool atom_implies(const Atom& a, const Atom& b) {
  if (a.empty()) return true;
  if (!(b.lo <= a.lo && a.hi <= b.hi)) return false;
  for (std::int64_t p : b.excluded) {
    if (p < a.lo || p > a.hi) continue;
    if (!std::binary_search(a.excluded.begin(), a.excluded.end(), p)) {
      return false;
    }
  }
  return true;
}

/// Every model of `a` is a model of `b`.
bool conj_implies(const Conj& a, const Conj& b, const SeedFn& seed) {
  if (a.contradiction) return true;
  if (b.contradiction) return false;
  if (b.residual) return false;  // cannot prove through unknown conjuncts
  for (const auto& [key, batom] : b.atoms) {
    const auto it = a.atoms.find(key);
    const Atom aatom = it != a.atoms.end() ? it->second : seed(key);
    if (!atom_implies(aatom, batom)) return false;
  }
  return true;
}

bool atoms_disjoint(const Atom& a, const Atom& b) {
  if (a.empty() || b.empty()) return true;
  if (a.hi < b.lo || b.hi < a.lo) return true;
  if (a.lo == a.hi &&
      std::binary_search(b.excluded.begin(), b.excluded.end(), a.lo)) {
    return true;
  }
  if (b.lo == b.hi &&
      std::binary_search(a.excluded.begin(), a.excluded.end(), b.lo)) {
    return true;
  }
  return false;
}

/// No assignment satisfies both conjunctions. `module_only` restricts the
/// proof to module-variable atoms (when-parameter values differ between the
/// two candidates' bindings, module variables do not).
bool conj_disjoint(const Conj& a, const Conj& b, bool module_only) {
  if (a.contradiction || b.contradiction) return true;
  for (const auto& [key, aatom] : a.atoms) {
    if (module_only && key.when) continue;
    const auto it = b.atoms.find(key);
    if (it == b.atoms.end()) continue;
    if (atoms_disjoint(aatom, it->second)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Guard purity and bound trust
// ---------------------------------------------------------------------------

/// Calls back for every user-routine call site (statement or expression)
/// under `e`/`s`: fn(routine_index, args) with args possibly null (Call0).
template <typename Fn>
void for_each_call_expr(const Expr& e, const Fn& fn) {
  if (e.kind == ExprKind::Call && e.builtin == Builtin::None &&
      e.routine_index >= 0) {
    fn(e.routine_index, &e.children);
  }
  if (e.kind == ExprKind::Name && e.ref == NameRef::Call0 && e.slot >= 0) {
    fn(e.slot, static_cast<const std::vector<est::ExprPtr>*>(nullptr));
  }
  for (const est::ExprPtr& c : e.children) {
    if (c) for_each_call_expr(*c, fn);
  }
}

template <typename Fn>
void for_each_call_stmt(const Stmt& s, const Fn& fn) {
  if (s.kind == StmtKind::Call && s.builtin == Builtin::None &&
      s.routine_index >= 0) {
    fn(s.routine_index, &s.args);
  }
  if (s.e0) for_each_call_expr(*s.e0, fn);
  if (s.e1) for_each_call_expr(*s.e1, fn);
  for (const est::ExprPtr& a : s.args) {
    if (a) for_each_call_expr(*a, fn);
  }
  if (s.s0) for_each_call_stmt(*s.s0, fn);
  if (s.s1) for_each_call_stmt(*s.s1, fn);
  for (const est::StmtPtr& c : s.body) {
    if (c) for_each_call_stmt(*c, fn);
  }
  for (const est::CaseArm& arm : s.arms) {
    if (arm.body) for_each_call_stmt(*arm.body, fn);
  }
  for (const est::StmtPtr& c : s.otherwise) {
    if (c) for_each_call_stmt(*c, fn);
  }
}

const Expr* plain_root(const Expr& e) {
  const Expr* cur = &e;
  while (cur->kind == ExprKind::Field || cur->kind == ExprKind::Index) {
    cur = cur->children[0].get();
  }
  return cur->kind == ExprKind::Name ? cur : nullptr;
}

/// Subrange-typed module slots can receive out-of-declared-range values
/// when passed by reference to a routine whose parameter type is wider
/// (stores range-check against the parameter's type, not the actual's).
/// Seeding such a slot's declared bounds into the solver would be unsound.
std::vector<char> compute_trusted(const Spec& spec,
                                  const std::vector<RoutineEffects>& effects) {
  std::vector<char> trusted(spec.module_vars.size(), 1);
  const auto untrust_calls = [&](int index,
                                 const std::vector<est::ExprPtr>* args) {
    if (args == nullptr || index < 0 ||
        static_cast<std::size_t>(index) >= effects.size()) {
      return;
    }
    const RoutineEffects& eff = effects[static_cast<std::size_t>(index)];
    for (std::size_t i = 0; i < std::min(eff.writes_param.size(),
                                         args->size());
         ++i) {
      if (!eff.writes_param[i] || !(*args)[i]) continue;
      const Expr* root = plain_root(*(*args)[i]);
      if (root == nullptr || root->ref != NameRef::ModuleVar) continue;
      const auto s = static_cast<std::size_t>(root->slot);
      if (s < trusted.size() && spec.module_vars[s].type != nullptr &&
          spec.module_vars[s].type->kind == TypeKind::Subrange) {
        trusted[s] = 0;
      }
    }
  };
  const est::BodyDef& body = spec.body();
  for (const est::Initializer& init : body.initializers) {
    if (init.block) for_each_call_stmt(*init.block, untrust_calls);
  }
  for (const Transition& t : body.transitions) {
    if (t.block) for_each_call_stmt(*t.block, untrust_calls);
  }
  for (const est::Routine& r : body.routines) {
    if (r.body) for_each_call_stmt(*r.body, untrust_calls);
  }
  return trusted;
}

/// Whether skipping this guard's evaluation is observable: every call it
/// reaches must be effect-free, including var-parameter write-back.
bool guard_pure(const Expr* guard,
                const std::vector<RoutineEffects>& effects) {
  if (guard == nullptr) return true;
  bool pure = true;
  for_each_call_expr(*guard, [&](int index,
                                 const std::vector<est::ExprPtr>* args) {
    if (index < 0 || static_cast<std::size_t>(index) >= effects.size()) {
      pure = false;
      return;
    }
    const RoutineEffects& eff = effects[static_cast<std::size_t>(index)];
    if (!eff.pure()) pure = false;
    if (args != nullptr) {
      for (std::size_t i = 0; i < std::min(eff.writes_param.size(),
                                           args->size());
           ++i) {
        if (eff.writes_param[i]) pure = false;
      }
    }
  });
  return pure;
}

// ---------------------------------------------------------------------------
// Structural equality (duplicate detection)
// ---------------------------------------------------------------------------

bool expr_eq(const Expr* a, const Expr* b);

bool expr_list_eq(const std::vector<est::ExprPtr>& a,
                  const std::vector<est::ExprPtr>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!expr_eq(a[i].get(), b[i].get())) return false;
  }
  return true;
}

bool expr_eq(const Expr* a, const Expr* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind || a->int_value != b->int_value ||
      a->ref != b->ref || a->slot != b->slot ||
      a->field_index != b->field_index || a->un_op != b->un_op ||
      a->bin_op != b->bin_op || a->builtin != b->builtin ||
      a->routine_index != b->routine_index) {
    return false;
  }
  return expr_list_eq(a->children, b->children);
}

bool stmt_eq(const Stmt* a, const Stmt* b);

bool stmt_list_eq(const std::vector<est::StmtPtr>& a,
                  const std::vector<est::StmtPtr>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!stmt_eq(a[i].get(), b[i].get())) return false;
  }
  return true;
}

bool stmt_eq(const Stmt* a, const Stmt* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind || a->downto != b->downto ||
      a->has_otherwise != b->has_otherwise || a->builtin != b->builtin ||
      a->routine_index != b->routine_index ||
      a->ip_index != b->ip_index ||
      a->interaction_id != b->interaction_id) {
    return false;
  }
  if (!expr_eq(a->e0.get(), b->e0.get()) ||
      !expr_eq(a->e1.get(), b->e1.get()) ||
      !stmt_eq(a->s0.get(), b->s0.get()) ||
      !stmt_eq(a->s1.get(), b->s1.get()) ||
      !stmt_list_eq(a->body, b->body) ||
      !stmt_list_eq(a->otherwise, b->otherwise) ||
      !expr_list_eq(a->args, b->args)) {
    return false;
  }
  if (a->arms.size() != b->arms.size()) return false;
  for (std::size_t i = 0; i < a->arms.size(); ++i) {
    if (a->arms[i].label_values != b->arms[i].label_values ||
        !stmt_eq(a->arms[i].body.get(), b->arms[i].body.get())) {
      return false;
    }
  }
  return true;
}

/// Slot-indexed local types; structural block equality plus equal layouts
/// makes two transitions behaviorally interchangeable.
std::vector<const Type*> local_types(const Transition& t) {
  std::vector<const Type*> types(static_cast<std::size_t>(t.frame_size),
                                 nullptr);
  for (const est::VarDecl& vd : t.locals) {
    for (std::size_t i = 0; i < vd.names.size(); ++i) {
      const auto s = static_cast<std::size_t>(vd.first_slot) + i;
      if (s < types.size()) types[s] = vd.type ? vd.type->resolved : nullptr;
    }
  }
  return types;
}

bool same_when_source(const Transition& a, const Transition& b) {
  if (a.when.has_value() != b.when.has_value()) return false;
  if (!a.when) return true;
  return a.when->ip_index == b.when->ip_index &&
         a.when->interaction_id == b.when->interaction_id;
}

std::int64_t effective_priority(const Transition& t) {
  return t.priority.value_or(std::numeric_limits<std::int64_t>::max());
}

bool duplicate_of(const Transition& a, const Transition& b) {
  return a.from_ordinals == b.from_ordinals &&
         a.to_ordinal == b.to_ordinal && same_when_source(a, b) &&
         effective_priority(a) == effective_priority(b) &&
         a.frame_size == b.frame_size &&
         expr_eq(a.provided.get(), b.provided.get()) &&
         stmt_eq(a.block.get(), b.block.get()) &&
         local_types(a) == local_types(b);
}

/// b's from-states cover a's (b is applicable wherever a is).
bool from_superset(const Transition& b, const Transition& a) {
  // Both vectors sorted by sema.
  return std::includes(b.from_ordinals.begin(), b.from_ordinals.end(),
                       a.from_ordinals.begin(), a.from_ordinals.end());
}

int shared_state(const Transition& a, const Transition& b) {
  for (int s : a.from_ordinals) {
    if (std::binary_search(b.from_ordinals.begin(), b.from_ordinals.end(),
                           s)) {
      return s;
    }
  }
  return -1;
}

}  // namespace

std::vector<char> trusted_module_slots(
    const est::Spec& spec, const std::vector<RoutineEffects>& effects) {
  return compute_trusted(spec, effects);
}

bool provided_clause_pure(const est::Expr* guard,
                          const std::vector<RoutineEffects>& effects) {
  return guard_pure(guard, effects);
}

// ---------------------------------------------------------------------------
// Solver driver
// ---------------------------------------------------------------------------

GuardAnalysis analyze_guards(const Spec& spec) {
  GuardAnalysis out;
  const std::vector<Transition>& transitions = spec.body().transitions;
  const auto n = static_cast<int>(transitions.size());
  out.matrix.n = n;
  out.matrix.skip.assign(static_cast<std::size_t>(n), 0);
  out.matrix.mutex_rt.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  if (n == 0) return out;

  const std::vector<RoutineEffects> effects = compute_routine_effects(spec);
  const std::vector<char> trusted = compute_trusted(spec, effects);
  const SeedFn seed{&spec, &trusted};

  Atomizer atomizer(seed);
  std::vector<Conj> conj;
  std::vector<char> pure;
  conj.reserve(transitions.size());
  pure.reserve(transitions.size());
  for (const Transition& t : transitions) {
    conj.push_back(atomizer.run(t.provided.get()));
    pure.push_back(guard_pure(t.provided.get(), effects) ? 1 : 0);
  }
  out.matrix.guard_is_pure = pure;

  auto label = [&](int i) {
    return "transition '" + transitions[static_cast<std::size_t>(i)].name +
           "'";
  };
  auto& skip = out.matrix.skip;

  // Always-false guards can never enable their transition.
  for (int i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    if (!conj[si].contradiction) continue;
    out.findings.emplace_back(
        Severity::Error, "guards", transitions[si].loc, label(i),
        "provided clause can never be true");
    if (pure[si] != 0) skip[si] = 1;
  }

  // Structural duplicates: identical firings explore identical subtrees,
  // so only the first declaration can contribute new behavior.
  for (int j = 1; j < n; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    if (skip[sj] != 0 || pure[sj] == 0) continue;
    for (int i = 0; i < j; ++i) {
      const auto si = static_cast<std::size_t>(i);
      if (skip[si] != 0) continue;
      if (!duplicate_of(transitions[si], transitions[sj])) continue;
      out.findings.emplace_back(
          Severity::Warning, "guards", transitions[sj].loc, label(j),
          label(j) + " is structurally identical to " + label(i) +
              "; its firings explore identical subtrees");
      skip[sj] = 1;
      break;
    }
  }

  // Priority shadowing: whenever i's guard holds, j is enabled too and the
  // priority filter discards i — i can never fire.
  for (int i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    if (skip[si] != 0 || pure[si] == 0) continue;
    const Transition& ti = transitions[si];
    for (int j = 0; j < n; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      if (j == i || skip[sj] != 0) continue;
      const Transition& tj = transitions[sj];
      if (!same_when_source(ti, tj) || !from_superset(tj, ti)) continue;
      if (effective_priority(tj) >= effective_priority(ti)) continue;
      if (!conj_implies(conj[si], conj[sj], seed)) continue;
      out.findings.emplace_back(
          Severity::Warning, "guards", ti.loc, label(i),
          label(i) + " can never fire: whenever its provided clause holds, "
                     "higher-priority " +
              label(j) + " is also enabled");
      skip[si] = 1;
      break;
    }
  }

  // Runtime mutual exclusion over module-variable atoms. mutex(i, j) lets
  // the generate operation skip j once i's guard evaluated true — sound
  // only when skipping j's evaluation is unobservable (pure guard).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto si = static_cast<std::size_t>(i);
      const auto sj = static_cast<std::size_t>(j);
      if (pure[sj] == 0) continue;
      if (conj_disjoint(conj[si], conj[sj], /*module_only=*/true)) {
        out.matrix.mutex_rt[si * static_cast<std::size_t>(n) + sj] = 1;
      }
    }
  }

  // Same-arena pairs whose guards are not provably disjoint: genuine
  // nondeterministic choice (the search explores both orders).
  for (int i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    if (skip[si] != 0) continue;
    for (int j = i + 1; j < n; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      if (skip[sj] != 0) continue;
      const Transition& ti = transitions[si];
      const Transition& tj = transitions[sj];
      if (!same_when_source(ti, tj)) continue;
      if (effective_priority(ti) != effective_priority(tj)) continue;
      const int state = shared_state(ti, tj);
      if (state < 0) continue;
      if (conj[si].contradiction || conj[sj].contradiction) continue;
      if (conj_disjoint(conj[si], conj[sj], /*module_only=*/false)) continue;
      out.findings.emplace_back(
          Severity::Note, "guards", tj.loc, label(j),
          label(i) + " and " + label(j) + " may both be enabled in state '" +
              spec.states[static_cast<std::size_t>(state)] +
              "': nondeterministic choice");
    }
  }

  return out;
}

}  // namespace tango::analysis
