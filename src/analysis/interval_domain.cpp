#include "analysis/interval_domain.hpp"

#include <algorithm>
#include <deque>

namespace tango::analysis {

using est::BinOp;
using est::Expr;
using est::ExprKind;
using est::Routine;
using est::Spec;
using est::Type;
using est::TypeKind;

// ---------------------------------------------------------------------------
// Analysis units and frame layouts
// ---------------------------------------------------------------------------

std::vector<Unit> collect_units(const Spec& spec) {
  std::vector<Unit> units;
  const est::BodyDef& body = spec.body();
  for (std::size_t i = 0; i < body.initializers.size(); ++i) {
    const est::Initializer& init = body.initializers[i];
    Unit u;
    u.label = body.initializers.size() == 1
                  ? "initializer"
                  : "initializer #" + std::to_string(i + 1);
    u.loc = init.loc;
    u.block = init.block.get();
    u.provided = init.provided.get();
    u.locals = &init.locals;
    u.frame_size = init.frame_size;
    units.push_back(std::move(u));
  }
  for (const est::Transition& t : body.transitions) {
    Unit u;
    u.label = "transition '" + t.name + "'";
    u.loc = t.loc;
    u.block = t.block.get();
    u.provided = t.provided.get();
    u.locals = &t.locals;
    u.frame_size = t.frame_size;
    u.transition = &t;
    units.push_back(std::move(u));
  }
  for (const Routine& r : body.routines) {
    Unit u;
    u.label = (r.is_function ? "function '" : "procedure '") + r.name + "'";
    u.loc = r.loc;
    u.block = r.body.get();
    u.locals = &r.locals;
    u.frame_size = r.frame_size;
    u.routine = &r;
    units.push_back(std::move(u));
  }
  return units;
}

FrameInfo frame_info(const Unit& u) {
  FrameInfo fi;
  fi.types.assign(static_cast<std::size_t>(u.frame_size), nullptr);
  fi.names.assign(static_cast<std::size_t>(u.frame_size), "");
  fi.is_param.assign(static_cast<std::size_t>(u.frame_size), false);
  if (u.routine != nullptr) {
    int slot = 0;
    for (const est::ParamGroup& g : u.routine->params) {
      for (const std::string& n : g.names) {
        const auto s = static_cast<std::size_t>(slot);
        if (s < fi.types.size()) {
          fi.types[s] = u.routine->param_types[s];
          fi.names[s] = n;
          fi.is_param[s] = true;
        }
        ++slot;
      }
    }
    fi.result_slot = u.routine->result_slot;
    if (fi.result_slot >= 0 &&
        static_cast<std::size_t>(fi.result_slot) < fi.types.size()) {
      fi.types[static_cast<std::size_t>(fi.result_slot)] =
          u.routine->result_type ? u.routine->result_type->resolved : nullptr;
      fi.names[static_cast<std::size_t>(fi.result_slot)] = u.routine->name;
    }
  }
  if (u.locals != nullptr) {
    for (const est::VarDecl& vd : *u.locals) {
      for (std::size_t i = 0; i < vd.names.size(); ++i) {
        const auto s = static_cast<std::size_t>(vd.first_slot) + i;
        if (s < fi.types.size()) {
          fi.types[s] = vd.type ? vd.type->resolved : nullptr;
          fi.names[s] = vd.names[i];
        }
      }
    }
  }
  return fi;
}

const Expr* chain_root(const Expr& e, bool* through_deref) {
  const Expr* cur = &e;
  while (true) {
    switch (cur->kind) {
      case ExprKind::Field:
      case ExprKind::Index:
        cur = cur->children[0].get();
        break;
      case ExprKind::Deref:
        if (through_deref != nullptr) *through_deref = true;
        cur = cur->children[0].get();
        break;
      case ExprKind::Name:
        return cur;
      default:
        return nullptr;
    }
  }
}

bool is_aggregate(const Type* t) {
  return t != nullptr &&
         (t->kind == TypeKind::Record || t->kind == TypeKind::Array);
}

// ---------------------------------------------------------------------------
// The interval lattice
// ---------------------------------------------------------------------------

std::int64_t clamp_wide(__int128 v) {
  if (v < -static_cast<__int128>(kInf)) return -kInf;
  if (v > static_cast<__int128>(kInf)) return kInf;
  return static_cast<std::int64_t>(v);
}

Interval hull(Interval a, Interval b) {
  if (a.bot()) return b;
  if (b.bot()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval meet(Interval a, Interval b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

bool disjoint(Interval a, Interval b) {
  return !a.bot() && !b.bot() && (a.hi < b.lo || a.lo > b.hi);
}

Interval arith(BinOp op, Interval a, Interval b) {
  if (a.bot() || b.bot()) return {};
  const auto wa_lo = static_cast<__int128>(a.lo);
  const auto wa_hi = static_cast<__int128>(a.hi);
  const auto wb_lo = static_cast<__int128>(b.lo);
  const auto wb_hi = static_cast<__int128>(b.hi);
  switch (op) {
    case BinOp::Add:
      return {clamp_wide(wa_lo + wb_lo), clamp_wide(wa_hi + wb_hi)};
    case BinOp::Sub:
      return {clamp_wide(wa_lo - wb_hi), clamp_wide(wa_hi - wb_lo)};
    case BinOp::Mul: {
      const __int128 c[4] = {wa_lo * wb_lo, wa_lo * wb_hi, wa_hi * wb_lo,
                             wa_hi * wb_hi};
      __int128 lo = c[0], hi = c[0];
      for (__int128 v : c) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      return {clamp_wide(lo), clamp_wide(hi)};
    }
    case BinOp::IntDiv: {
      if (b.lo <= 0 && b.hi >= 0) return Interval::top();  // may divide by 0
      const __int128 c[4] = {wa_lo / wb_lo, wa_lo / wb_hi, wa_hi / wb_lo,
                             wa_hi / wb_hi};
      __int128 lo = c[0], hi = c[0];
      for (__int128 v : c) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      return {clamp_wide(lo), clamp_wide(hi)};
    }
    case BinOp::Mod: {
      const std::int64_t m =
          std::max(std::abs(a.lo) < kInf ? std::int64_t{0} : kInf,
                   std::max(std::abs(b.lo), std::abs(b.hi)));
      if (m == 0) return Interval::top();
      const std::int64_t span = m - 1;
      return {a.lo >= 0 ? 0 : -span, span};
    }
    default:
      return Interval::top();
  }
}

Interval compare(BinOp op, Interval a, Interval b) {
  if (a.bot() || b.bot()) return {};
  bool may_true = true, may_false = true;
  switch (op) {
    case BinOp::Eq:
      may_true = !disjoint(a, b);
      may_false = !(a.singleton() && b.singleton() && a.lo == b.lo);
      break;
    case BinOp::Neq:
      may_true = !(a.singleton() && b.singleton() && a.lo == b.lo);
      may_false = !disjoint(a, b);
      break;
    case BinOp::Lt:
      may_true = a.lo < b.hi;
      may_false = a.hi >= b.lo;
      break;
    case BinOp::Leq:
      may_true = a.lo <= b.hi;
      may_false = a.hi > b.lo;
      break;
    case BinOp::Gt:
      may_true = a.hi > b.lo;
      may_false = a.lo <= b.hi;
      break;
    case BinOp::Geq:
      may_true = a.hi >= b.lo;
      may_false = a.lo < b.hi;
      break;
    default:
      break;
  }
  return {may_false ? 0 : 1, may_true ? 1 : 0};
}

std::optional<Interval> type_bounds(const Type* t) {
  if (t == nullptr) return std::nullopt;
  switch (t->kind) {
    case TypeKind::Integer:
      return Interval::top();
    case TypeKind::Boolean:
      return Interval{0, 1};
    case TypeKind::Char:
      return Interval{0, 255};
    case TypeKind::Enum:
      return Interval{0,
                      static_cast<std::int64_t>(t->enum_values.size()) - 1};
    case TypeKind::Subrange:
      return Interval{t->lo, t->hi};
    default:
      return std::nullopt;
  }
}

Interval bounds_or_top(const Type* t) {
  return type_bounds(t).value_or(Interval::top());
}

// ---------------------------------------------------------------------------
// The CFG worklist solver
// ---------------------------------------------------------------------------

std::vector<IntervalEnv> solve_intervals(const Cfg& cfg, IntervalPass& pass,
                                         const IntervalEnv& entry,
                                         const IntervalEnv& widen_to) {
  std::vector<IntervalEnv> in(cfg.size());
  in[static_cast<std::size_t>(cfg.entry)] = entry;
  std::vector<int> merges(cfg.size(), 0);
  std::deque<int> wl{cfg.entry};
  std::vector<char> queued(cfg.size(), 0);
  queued[static_cast<std::size_t>(cfg.entry)] = 1;
  while (!wl.empty()) {
    const int id = wl.front();
    wl.pop_front();
    queued[static_cast<std::size_t>(id)] = 0;
    const IntervalEnv env = in[static_cast<std::size_t>(id)];
    if (env.bot) continue;
    const CfgNode& n = cfg.node(id);
    for (const CfgEdge& e : n.succs) {
      if (!pass.feasible(n, env, e)) continue;
      IntervalEnv out = pass.transfer(n, env, e);
      IntervalEnv& dst = in[static_cast<std::size_t>(e.to)];
      const bool widen = ++merges[static_cast<std::size_t>(e.to)] >
                         kWidenAfter;
      if (dst.merge(out, widen, widen_to.frame, widen_to.module,
                    widen_to.when) &&
          queued[static_cast<std::size_t>(e.to)] == 0) {
        queued[static_cast<std::size_t>(e.to)] = 1;
        wl.push_back(e.to);
      }
    }
  }
  return in;
}

}  // namespace tango::analysis
