#include "analysis/dataflow.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "analysis/cfg.hpp"
#include "analysis/interval_domain.hpp"

namespace tango::analysis {

namespace {

using est::BinOp;
using est::Builtin;
using est::Expr;
using est::ExprKind;
using est::NameRef;
using est::Routine;
using est::Spec;
using est::Stmt;
using est::StmtKind;
using est::Type;
using est::TypeKind;
using est::UnOp;


// ---------------------------------------------------------------------------
// Interprocedural routine effects
// ---------------------------------------------------------------------------

struct CallSiteRef {
  int callee = -1;
  const std::vector<est::ExprPtr>* args = nullptr;  // null for `f` (Call0)
};

struct EffectsScan {
  RoutineEffects direct;
  std::vector<CallSiteRef> calls;
};

void scan_effect_expr(const Expr& e, EffectsScan& out);

/// Classifies a write landing on `target` (an lvalue or var-parameter
/// actual) into the routine-effect lattice.
void record_write_target(const Expr& target, EffectsScan& out) {
  bool deref = false;
  const Expr* root = chain_root(target, &deref);
  if (deref) {
    out.direct.writes_heap = true;
    return;
  }
  if (root == nullptr) return;
  switch (root->ref) {
    case NameRef::ModuleVar:
      out.direct.writes_module = true;
      break;
    case NameRef::WhenParam:
      out.direct.writes_when_param = true;
      break;
    case NameRef::Local: {
      const auto s = static_cast<std::size_t>(root->slot);
      if (s < out.direct.writes_param.size()) {
        out.direct.writes_param[s] = true;  // refined to by-ref slots later
      }
      break;
    }
    default:
      break;
  }
}

void scan_effect_call(Builtin builtin, int routine_index,
                      const std::vector<est::ExprPtr>& args,
                      EffectsScan& out) {
  if (builtin == Builtin::New || builtin == Builtin::Dispose) {
    // Allocation and disposal mutate the heap — observable in snapshots.
    out.direct.writes_heap = true;
    if (!args.empty() && args[0]) record_write_target(*args[0], out);
  } else if (routine_index >= 0) {
    out.calls.push_back(CallSiteRef{routine_index, &args});
  }
  for (const est::ExprPtr& a : args) {
    if (a) scan_effect_expr(*a, out);
  }
}

void scan_effect_expr(const Expr& e, EffectsScan& out) {
  if (e.kind == ExprKind::Call) {
    scan_effect_call(e.builtin, e.routine_index, e.children, out);
    return;
  }
  if (e.kind == ExprKind::Name && e.ref == NameRef::Call0) {
    out.calls.push_back(CallSiteRef{e.slot, nullptr});
    return;
  }
  for (const est::ExprPtr& c : e.children) {
    if (c) scan_effect_expr(*c, out);
  }
}

void scan_effect_stmt(const Stmt& s, EffectsScan& out) {
  switch (s.kind) {
    case StmtKind::Assign:
      if (s.e0) {
        record_write_target(*s.e0, out);
        scan_effect_expr(*s.e0, out);  // subscripts may call functions
      }
      if (s.e1) scan_effect_expr(*s.e1, out);
      break;
    case StmtKind::Call:
      scan_effect_call(s.builtin, s.routine_index, s.args, out);
      break;
    case StmtKind::Output:
      out.direct.has_output = true;
      for (const est::ExprPtr& a : s.args) {
        if (a) scan_effect_expr(*a, out);
      }
      break;
    case StmtKind::For:
      if (s.e0) record_write_target(*s.e0, out);
      break;
    default:
      break;
  }
  if (s.e0 && s.kind != StmtKind::Assign && s.kind != StmtKind::Call) {
    scan_effect_expr(*s.e0, out);
  }
  if (s.e1 && s.kind != StmtKind::Assign) scan_effect_expr(*s.e1, out);
  for (const est::ExprPtr& a : s.args) {
    if (a && s.kind != StmtKind::Call && s.kind != StmtKind::Output) {
      scan_effect_expr(*a, out);
    }
  }
  if (s.s0) scan_effect_stmt(*s.s0, out);
  if (s.s1) scan_effect_stmt(*s.s1, out);
  for (const est::StmtPtr& c : s.body) {
    if (c) scan_effect_stmt(*c, out);
  }
  for (const est::CaseArm& arm : s.arms) {
    if (arm.body) scan_effect_stmt(*arm.body, out);
  }
  for (const est::StmtPtr& c : s.otherwise) {
    if (c) scan_effect_stmt(*c, out);
  }
}

/// Folds `callee`'s summary into `caller` at one call site; returns true on
/// any lattice growth.
bool apply_call(RoutineEffects& caller, const RoutineEffects& callee,
                const CallSiteRef& site, const Routine* caller_routine) {
  RoutineEffects before = caller;
  caller.writes_module |= callee.writes_module;
  caller.writes_heap |= callee.writes_heap;
  caller.has_output |= callee.has_output;
  caller.writes_when_param |= callee.writes_when_param;
  if (site.args != nullptr) {
    const std::size_t n =
        std::min(callee.writes_param.size(), site.args->size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!callee.writes_param[i] || !(*site.args)[i]) continue;
      bool deref = false;
      const Expr* root = chain_root(*(*site.args)[i], &deref);
      if (deref) {
        caller.writes_heap = true;
      } else if (root != nullptr) {
        switch (root->ref) {
          case NameRef::ModuleVar:
            caller.writes_module = true;
            break;
          case NameRef::WhenParam:
            caller.writes_when_param = true;
            break;
          case NameRef::Local: {
            const auto s = static_cast<std::size_t>(root->slot);
            if (caller_routine != nullptr &&
                s < caller.writes_param.size()) {
              caller.writes_param[s] = true;
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }
  return caller.writes_module != before.writes_module ||
         caller.writes_heap != before.writes_heap ||
         caller.has_output != before.has_output ||
         caller.writes_when_param != before.writes_when_param ||
         caller.writes_param != before.writes_param;
}

}  // namespace

std::vector<RoutineEffects> compute_routine_effects(const Spec& spec) {
  const std::vector<Routine>& routines = spec.body().routines;
  std::vector<EffectsScan> scans(routines.size());
  for (std::size_t i = 0; i < routines.size(); ++i) {
    const Routine& r = routines[i];
    // Seed writes_param over the whole frame; only by-ref parameter slots
    // survive the mask below (writes to value params and locals are not
    // effects).
    scans[i].direct.writes_param.assign(
        static_cast<std::size_t>(r.frame_size), false);
    if (r.body) scan_effect_stmt(*r.body, scans[i]);
    std::vector<bool> masked(r.param_by_ref.size(), false);
    for (std::size_t p = 0; p < r.param_by_ref.size(); ++p) {
      masked[p] = r.param_by_ref[p] &&
                  p < scans[i].direct.writes_param.size() &&
                  scans[i].direct.writes_param[p];
    }
    scans[i].direct.writes_param = std::move(masked);
  }
  std::vector<RoutineEffects> effects(routines.size());
  for (std::size_t i = 0; i < routines.size(); ++i) {
    effects[i] = scans[i].direct;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < routines.size(); ++i) {
      for (const CallSiteRef& site : scans[i].calls) {
        if (site.callee < 0 ||
            static_cast<std::size_t>(site.callee) >= effects.size()) {
          continue;
        }
        RoutineEffects callee = effects[static_cast<std::size_t>(site.callee)];
        changed |= apply_call(effects[i], callee, site, &routines[i]);
      }
    }
  }
  return effects;
}

namespace {

// ---------------------------------------------------------------------------
// Definite assignment
// ---------------------------------------------------------------------------

/// Whole-spec module-variable usage, accumulated across every unit.
struct ModuleUse {
  std::vector<char> written;
  std::vector<char> read;
  std::vector<SourceLoc> first_read;

  explicit ModuleUse(std::size_t n)
      : written(n, 0), read(n, 0), first_read(n) {}

  void note_read(int slot, SourceLoc loc) {
    const auto s = static_cast<std::size_t>(slot);
    if (s >= read.size()) return;
    if (read[s] == 0) first_read[s] = loc;
    read[s] = 1;
  }
  void note_write(int slot) {
    const auto s = static_cast<std::size_t>(slot);
    if (s < written.size()) written[s] = 1;
  }
};

/// May-state per frame slot. All bits use may-semantics, so merge is OR and
/// a clear bit is the "don't report" direction.
struct AssignState {
  std::vector<char> uninit;     // scalar/pointer slot may hold no value
  std::vector<char> cell;       // pointer slot may point at a fresh cell
  std::vector<char> untouched;  // aggregate slot never written at all
  bool bot = true;

  bool merge(const AssignState& o) {
    if (o.bot) return false;
    if (bot) {
      *this = o;
      return true;
    }
    bool grown = false;
    for (std::size_t i = 0; i < uninit.size(); ++i) {
      if (o.uninit[i] != 0 && uninit[i] == 0) uninit[i] = 1, grown = true;
      if (o.cell[i] != 0 && cell[i] == 0) cell[i] = 1, grown = true;
      if (o.untouched[i] != 0 && untouched[i] == 0) {
        untouched[i] = 1;
        grown = true;
      }
    }
    return grown;
  }
};

class AssignPass {
 public:
  AssignPass(const Spec& spec, const Unit& unit, const FrameInfo& frame,
             ModuleUse& mu, std::vector<Finding>* findings)
      : spec_(spec), unit_(unit), frame_(frame), mu_(mu),
        findings_(findings) {}

  AssignState entry_state() const {
    AssignState st;
    st.bot = false;
    const std::size_t n = frame_.types.size();
    st.uninit.assign(n, 0);
    st.cell.assign(n, 0);
    st.untouched.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (frame_.is_param[i]) continue;  // defined by the caller
      if (is_aggregate(frame_.types[i])) {
        st.untouched[i] = 1;  // defined shell, every leaf undefined
      } else {
        st.uninit[i] = 1;
      }
    }
    return st;
  }

  /// Applies node `n` to `st` in place, reporting reads when a findings
  /// vector is attached (the final pass); the fixpoint runs with none.
  void transfer(const CfgNode& n, AssignState& st) {
    switch (n.kind) {
      case CfgNodeKind::Entry:
      case CfgNodeKind::Exit:
      case CfgNodeKind::ForTest:
        return;
      case CfgNodeKind::Simple:
        simple(*n.stmt, st);
        return;
      case CfgNodeKind::CondIf:
      case CfgNodeKind::CondWhile:
      case CfgNodeKind::CondRepeat:
      case CfgNodeKind::CondCase:
        if (n.cond != nullptr) read(*n.cond, st);
        return;
      case CfgNodeKind::ForInit: {
        const Stmt& s = *n.stmt;
        if (s.e1) read(*s.e1, st);
        if (!s.args.empty() && s.args[0]) read(*s.args[0], st);
        if (s.e0) define(*s.e0, st, /*fresh_cell=*/false);
        return;
      }
    }
  }

  /// Read-walks a bare expression (provided clause) against the entry
  /// state, feeding module usage and reporting stray local reads.
  void scan_expr(const Expr& e) {
    AssignState st = entry_state();
    read(e, st);
  }

  void report_result_unset(const AssignState& exit_in) {
    if (exit_in.bot || frame_.result_slot < 0 || findings_ == nullptr) return;
    const auto s = static_cast<std::size_t>(frame_.result_slot);
    if (s < exit_in.uninit.size() &&
        (exit_in.uninit[s] != 0 || exit_in.untouched[s] != 0)) {
      findings_->emplace_back(
          Severity::Warning, "assign", unit_.loc, unit_.label,
          "function '" + unit_.routine->name +
              "' may return without assigning its result");
    }
  }

 private:
  void report(SourceLoc loc, const std::string& msg) {
    if (findings_ != nullptr) {
      findings_->emplace_back(Severity::Warning, "assign", loc, unit_.label,
                              msg);
    }
  }

  void simple(const Stmt& s, AssignState& st) {
    switch (s.kind) {
      case StmtKind::Assign: {
        if (s.e1) read(*s.e1, st);
        if (s.e0) {
          // Pointer copies propagate the fresh-cell bit.
          bool fresh = false;
          if (s.e1 && s.e1->kind == ExprKind::Name &&
              s.e1->ref == NameRef::Local) {
            const auto q = static_cast<std::size_t>(s.e1->slot);
            fresh = q < st.cell.size() && st.cell[q] != 0;
          }
          define(*s.e0, st, fresh);
        }
        return;
      }
      case StmtKind::Call:
        call(s.builtin, s.routine_index, s.args, st);
        return;
      case StmtKind::Output:
        for (const est::ExprPtr& a : s.args) {
          if (a) read(*a, st);
        }
        return;
      default:
        return;
    }
  }

  void call(Builtin builtin, int routine_index,
            const std::vector<est::ExprPtr>& args, AssignState& st) {
    if (builtin == Builtin::New) {
      if (!args.empty() && args[0]) define(*args[0], st, /*fresh_cell=*/true);
      return;
    }
    if (builtin == Builtin::Dispose) {
      if (!args.empty() && args[0]) read(*args[0], st);
      return;
    }
    const Routine* callee = nullptr;
    if (routine_index >= 0 &&
        static_cast<std::size_t>(routine_index) <
            spec_.body().routines.size()) {
      callee = &spec_.body().routines[static_cast<std::size_t>(routine_index)];
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (!args[i]) continue;
      const bool by_ref = callee != nullptr &&
                          i < callee->param_by_ref.size() &&
                          callee->param_by_ref[i];
      if (by_ref) {
        define(*args[i], st, /*fresh_cell=*/false);
      } else {
        read(*args[i], st);
      }
    }
  }

  /// Read context: report maybe-undefined uses and log module reads.
  void read(const Expr& e, AssignState& st) {
    switch (e.kind) {
      case ExprKind::Name:
        name_read(e, st);
        return;
      case ExprKind::Field:
      case ExprKind::Index: {
        component_read(e, st);
        for (const est::ExprPtr& c : e.children) {
          if (c) read(*c, st);
        }
        return;
      }
      case ExprKind::Deref: {
        cell_read(e, st);
        read(*e.children[0], st);
        return;
      }
      case ExprKind::Call:
        call(e.builtin, e.routine_index, e.children, st);
        return;
      default:
        for (const est::ExprPtr& c : e.children) {
          if (c) read(*c, st);
        }
        return;
    }
  }

  void name_read(const Expr& e, AssignState& st) {
    if (e.ref == NameRef::ModuleVar) {
      mu_.note_read(e.slot, e.loc);
      return;
    }
    if (e.ref != NameRef::Local) return;
    const auto s = static_cast<std::size_t>(e.slot);
    if (s < st.uninit.size() && st.uninit[s] != 0) {
      report(e.loc, "local variable '" + frame_.names[s] +
                        "' may be read before it is assigned");
      st.uninit[s] = 0;  // one report per path suffices
    }
  }

  /// `r.f` / `a[i]` where the whole aggregate was never written: every leaf
  /// is still undefined, so the component read faults in strict mode.
  void component_read(const Expr& e, AssignState& st) {
    const Expr* base = e.children[0].get();
    if (base == nullptr || base->kind != ExprKind::Name ||
        base->ref != NameRef::Local) {
      return;
    }
    const auto s = static_cast<std::size_t>(base->slot);
    if (s < st.untouched.size() && st.untouched[s] != 0) {
      report(e.loc, "component of '" + frame_.names[s] +
                        "' is read before anything is assigned to it");
      st.untouched[s] = 0;
    }
  }

  /// `p^` where p still points at a cell fresh from new(): the cell value
  /// is undefined until something is stored through the pointer.
  void cell_read(const Expr& e, AssignState& st) {
    const Expr* base = e.children[0].get();
    if (base == nullptr || base->kind != ExprKind::Name ||
        base->ref != NameRef::Local) {
      return;
    }
    const auto s = static_cast<std::size_t>(base->slot);
    if (s < st.cell.size() && st.cell[s] != 0 && st.uninit[s] == 0) {
      report(e.loc, "heap cell '" + frame_.names[s] +
                        "^' may be read before it is assigned");
      st.cell[s] = 0;
    }
  }

  /// Write context: subscripts/pointer bases are still reads; the root
  /// variable (when reached without a deref) becomes defined.
  void define(const Expr& target, AssignState& st, bool fresh_cell) {
    // Reads hidden inside the lvalue chain.
    const Expr* cur = &target;
    bool deref = false;
    const Expr* deepest_deref_base = nullptr;
    while (cur != nullptr) {
      if (cur->kind == ExprKind::Index && cur->children[1]) {
        read(*cur->children[1], st);
      }
      if (cur->kind == ExprKind::Deref) {
        deref = true;
        if (deepest_deref_base == nullptr) {
          deepest_deref_base = cur->children[0].get();
        }
      }
      if (cur->kind == ExprKind::Name) break;
      cur = cur->children.empty() ? nullptr : cur->children[0].get();
    }
    if (deref) {
      // The write lands on the heap. The pointer itself is read, and the
      // stored-through cell is no longer fresh.
      if (deepest_deref_base != nullptr) {
        read(*deepest_deref_base, st);
        if (deepest_deref_base->kind == ExprKind::Name &&
            deepest_deref_base->ref == NameRef::Local) {
          const auto s = static_cast<std::size_t>(deepest_deref_base->slot);
          if (s < st.cell.size()) st.cell[s] = 0;
        }
      }
      return;
    }
    if (cur == nullptr) return;
    if (cur->ref == NameRef::ModuleVar) {
      mu_.note_write(cur->slot);
      return;
    }
    if (cur->ref != NameRef::Local) return;
    const auto s = static_cast<std::size_t>(cur->slot);
    if (s >= st.uninit.size()) return;
    st.untouched[s] = 0;
    if (&target == cur) {
      // Whole-variable write.
      st.uninit[s] = 0;
      st.cell[s] = fresh_cell ? 1 : 0;
    }
    // A component write leaves the "uninit" bit of scalar slots alone (a
    // scalar has no components) and clears only `untouched` above.
  }

  const Spec& spec_;
  const Unit& unit_;
  const FrameInfo& frame_;
  ModuleUse& mu_;
  std::vector<Finding>* findings_;
};

void run_assign_unit(const Spec& spec, const Unit& unit,
                     const FrameInfo& frame, ModuleUse& mu,
                     std::vector<Finding>& findings) {
  {
    AssignPass scanner(spec, unit, frame, mu, &findings);
    if (unit.provided != nullptr) scanner.scan_expr(*unit.provided);
  }
  if (unit.block == nullptr) return;
  const Cfg cfg = build_cfg(*unit.block);
  const std::vector<int> rpo = cfg.reverse_post_order();

  AssignPass silent(spec, unit, frame, mu, nullptr);
  std::vector<AssignState> in(cfg.size());
  in[static_cast<std::size_t>(cfg.entry)] = silent.entry_state();
  // Worklist fixpoint; states only grow (may-bits), so this terminates.
  std::deque<int> wl(rpo.begin(), rpo.end());
  std::vector<char> queued(cfg.size(), 1);
  while (!wl.empty()) {
    const int id = wl.front();
    wl.pop_front();
    queued[static_cast<std::size_t>(id)] = 0;
    AssignState st = in[static_cast<std::size_t>(id)];
    if (st.bot) continue;
    silent.transfer(cfg.node(id), st);
    for (const CfgEdge& e : cfg.node(id).succs) {
      if (in[static_cast<std::size_t>(e.to)].merge(st) &&
          queued[static_cast<std::size_t>(e.to)] == 0) {
        queued[static_cast<std::size_t>(e.to)] = 1;
        wl.push_back(e.to);
      }
    }
  }
  // Final pass: replay every node once against its fixpoint in-state,
  // this time reporting (dedicated walk keeps findings deterministic).
  AssignPass reporter(spec, unit, frame, mu, &findings);
  for (int id : rpo) {
    AssignState st = in[static_cast<std::size_t>(id)];
    if (st.bot) continue;
    reporter.transfer(cfg.node(id), st);
  }
  reporter.report_result_unset(in[static_cast<std::size_t>(cfg.exit)]);
}

// ---------------------------------------------------------------------------
// Interval analysis + unreachable statements
// ---------------------------------------------------------------------------

void run_interval_unit(const Spec& spec, const Unit& unit,
                       const FrameInfo& frame,
                       const std::vector<RoutineEffects>& effects,
                       bool emit_intervals, bool emit_unreachable,
                       std::vector<Finding>& findings) {
  if (unit.block == nullptr) return;
  const Cfg cfg = build_cfg(*unit.block);
  const std::vector<int> rpo = cfg.reverse_post_order();
  IntervalPass pass(spec, unit, frame, effects);
  const IntervalEnv entry = pass.entry_env();
  const std::vector<IntervalEnv> in =
      solve_intervals(cfg, pass, entry, entry);

  if (emit_intervals) {
    for (int id : rpo) {
      const IntervalEnv& env = in[static_cast<std::size_t>(id)];
      if (env.bot) continue;
      pass.report_node(cfg.node(id), env, findings);
    }
  }
  if (emit_unreachable) {
    for (int id : rpo) {
      const auto s = static_cast<std::size_t>(id);
      const CfgNode& n = cfg.node(id);
      if (!in[s].bot || n.kind == CfgNodeKind::Entry ||
          n.kind == CfgNodeKind::Exit || !n.loc.valid()) {
        continue;
      }
      // Report only the frontier: a dead node with a live predecessor.
      // Everything downstream of it stays silent (cascade suppression).
      bool live_pred = false;
      for (int p : n.preds) {
        if (!in[static_cast<std::size_t>(p)].bot) {
          live_pred = true;
          break;
        }
      }
      if (live_pred) {
        findings.emplace_back(Severity::Warning, "unreachable", n.loc,
                              unit.label, "statement is unreachable");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Provided-clause purity
// ---------------------------------------------------------------------------

const char* impure_reason(const RoutineEffects& eff) {
  if (eff.writes_module) return "writes module variables";
  if (eff.has_output) return "outputs interactions";
  if (eff.writes_heap) return "allocates or writes heap storage";
  if (eff.writes_when_param) return "writes interaction parameters";
  return nullptr;
}

void check_provided_calls(const Spec& spec, const Unit& unit, const Expr& e,
                          const std::vector<RoutineEffects>& effects,
                          std::vector<Finding>& findings) {
  const est::BodyDef& body = spec.body();
  auto check = [&](int index, SourceLoc loc,
                   const std::vector<est::ExprPtr>* args) {
    if (index < 0 || static_cast<std::size_t>(index) >= effects.size()) {
      return;
    }
    const RoutineEffects& eff = effects[static_cast<std::size_t>(index)];
    const std::string& callee =
        body.routines[static_cast<std::size_t>(index)].name;
    if (const char* why = impure_reason(eff)) {
      findings.emplace_back(Severity::Error, "purity", loc, unit.label,
                            "provided clause calls '" + callee + "', which " +
                                std::string(why));
      return;
    }
    // Pure-by-summary, but a var parameter may still write a caller slot.
    if (args == nullptr) return;
    for (std::size_t i = 0;
         i < std::min(eff.writes_param.size(), args->size()); ++i) {
      if (!eff.writes_param[i] || !(*args)[i]) continue;
      bool deref = false;
      const Expr* root = chain_root(*(*args)[i], &deref);
      const char* what =
          deref ? "heap storage"
                : (root != nullptr && root->ref == NameRef::ModuleVar)
                      ? "a module variable"
                      : "an interaction parameter";
      findings.emplace_back(
          Severity::Error, "purity", (*args)[i]->loc, unit.label,
          "provided clause calls '" + callee + "', which writes " + what +
              " through a var parameter");
    }
  };
  if (e.kind == ExprKind::Call && e.builtin == Builtin::None) {
    check(e.routine_index, e.loc, &e.children);
  }
  if (e.kind == ExprKind::Name && e.ref == NameRef::Call0) {
    check(e.slot, e.loc, nullptr);
  }
  for (const est::ExprPtr& c : e.children) {
    if (c) check_provided_calls(spec, unit, *c, effects, findings);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> run_dataflow(const Spec& spec,
                                  const DataflowOptions& opts) {
  std::vector<Finding> findings;
  const std::vector<Unit> units = collect_units(spec);
  std::vector<RoutineEffects> effects;
  if (opts.purity || opts.intervals || opts.unreachable) {
    effects = compute_routine_effects(spec);
  }

  ModuleUse mu(spec.module_vars.size());
  for (const Unit& u : units) {
    const FrameInfo frame = frame_info(u);
    if (opts.assign) {
      run_assign_unit(spec, u, frame, mu, findings);
    }
    if (opts.intervals || opts.unreachable) {
      run_interval_unit(spec, u, frame, effects, opts.intervals,
                        opts.unreachable, findings);
    }
    if (opts.purity && u.provided != nullptr) {
      check_provided_calls(spec, u, *u.provided, effects, findings);
    }
  }

  if (opts.assign) {
    // Module variables that are read somewhere but assigned nowhere can
    // only ever yield undefined-value faults.
    for (std::size_t s = 0; s < spec.module_vars.size(); ++s) {
      if (mu.read[s] == 0 || mu.written[s] != 0) continue;
      findings.emplace_back(
          Severity::Error, "assign", mu.first_read[s], "module variables",
          "module variable '" + spec.module_vars[s].name +
              "' is read but never assigned");
    }
  }
  return findings;
}

}  // namespace tango::analysis
