#include "analysis/dataflow.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "analysis/cfg.hpp"

namespace tango::analysis {

namespace {

using est::BinOp;
using est::Builtin;
using est::Expr;
using est::ExprKind;
using est::NameRef;
using est::Routine;
using est::Spec;
using est::Stmt;
using est::StmtKind;
using est::Type;
using est::TypeKind;
using est::UnOp;

// ---------------------------------------------------------------------------
// Shared structure: analysis units and frame layouts
// ---------------------------------------------------------------------------

/// One analyzable block: an initializer, a transition or a routine.
struct Unit {
  std::string label;
  SourceLoc loc;
  const Stmt* block = nullptr;     // may be null (initializer without one)
  const Expr* provided = nullptr;  // transitions / initializers
  const std::vector<est::VarDecl>* locals = nullptr;
  int frame_size = 0;
  const Routine* routine = nullptr;
  const est::Transition* transition = nullptr;
};

std::vector<Unit> collect_units(const Spec& spec) {
  std::vector<Unit> units;
  const est::BodyDef& body = spec.body();
  for (std::size_t i = 0; i < body.initializers.size(); ++i) {
    const est::Initializer& init = body.initializers[i];
    Unit u;
    u.label = body.initializers.size() == 1
                  ? "initializer"
                  : "initializer #" + std::to_string(i + 1);
    u.loc = init.loc;
    u.block = init.block.get();
    u.provided = init.provided.get();
    u.locals = &init.locals;
    u.frame_size = init.frame_size;
    units.push_back(std::move(u));
  }
  for (const est::Transition& t : body.transitions) {
    Unit u;
    u.label = "transition '" + t.name + "'";
    u.loc = t.loc;
    u.block = t.block.get();
    u.provided = t.provided.get();
    u.locals = &t.locals;
    u.frame_size = t.frame_size;
    u.transition = &t;
    units.push_back(std::move(u));
  }
  for (const Routine& r : body.routines) {
    Unit u;
    u.label = (r.is_function ? "function '" : "procedure '") + r.name + "'";
    u.loc = r.loc;
    u.block = r.body.get();
    u.locals = &r.locals;
    u.frame_size = r.frame_size;
    u.routine = &r;
    units.push_back(std::move(u));
  }
  return units;
}

/// Per-slot frame metadata for one unit.
struct FrameInfo {
  std::vector<const Type*> types;  // null where unknown
  std::vector<std::string> names;
  std::vector<bool> is_param;  // defined on entry
  int result_slot = -1;
};

FrameInfo frame_info(const Unit& u) {
  FrameInfo fi;
  fi.types.assign(static_cast<std::size_t>(u.frame_size), nullptr);
  fi.names.assign(static_cast<std::size_t>(u.frame_size), "");
  fi.is_param.assign(static_cast<std::size_t>(u.frame_size), false);
  if (u.routine != nullptr) {
    int slot = 0;
    for (const est::ParamGroup& g : u.routine->params) {
      for (const std::string& n : g.names) {
        const auto s = static_cast<std::size_t>(slot);
        if (s < fi.types.size()) {
          fi.types[s] = u.routine->param_types[s];
          fi.names[s] = n;
          fi.is_param[s] = true;
        }
        ++slot;
      }
    }
    fi.result_slot = u.routine->result_slot;
    if (fi.result_slot >= 0 &&
        static_cast<std::size_t>(fi.result_slot) < fi.types.size()) {
      fi.types[static_cast<std::size_t>(fi.result_slot)] =
          u.routine->result_type ? u.routine->result_type->resolved : nullptr;
      fi.names[static_cast<std::size_t>(fi.result_slot)] = u.routine->name;
    }
  }
  if (u.locals != nullptr) {
    for (const est::VarDecl& vd : *u.locals) {
      for (std::size_t i = 0; i < vd.names.size(); ++i) {
        const auto s = static_cast<std::size_t>(vd.first_slot) + i;
        if (s < fi.types.size()) {
          fi.types[s] = vd.type ? vd.type->resolved : nullptr;
          fi.names[s] = vd.names[i];
        }
      }
    }
  }
  return fi;
}

/// Follows Field/Index/Deref bases down to the root Name, noting whether the
/// chain passes through a pointer dereference (writes then land on the heap,
/// not on the root variable).
const Expr* chain_root(const Expr& e, bool* through_deref) {
  const Expr* cur = &e;
  while (true) {
    switch (cur->kind) {
      case ExprKind::Field:
      case ExprKind::Index:
        cur = cur->children[0].get();
        break;
      case ExprKind::Deref:
        if (through_deref != nullptr) *through_deref = true;
        cur = cur->children[0].get();
        break;
      case ExprKind::Name:
        return cur;
      default:
        return nullptr;
    }
  }
}

bool is_aggregate(const Type* t) {
  return t != nullptr &&
         (t->kind == TypeKind::Record || t->kind == TypeKind::Array);
}

// ---------------------------------------------------------------------------
// Interprocedural routine effects
// ---------------------------------------------------------------------------

struct CallSiteRef {
  int callee = -1;
  const std::vector<est::ExprPtr>* args = nullptr;  // null for `f` (Call0)
};

struct EffectsScan {
  RoutineEffects direct;
  std::vector<CallSiteRef> calls;
};

void scan_effect_expr(const Expr& e, EffectsScan& out);

/// Classifies a write landing on `target` (an lvalue or var-parameter
/// actual) into the routine-effect lattice.
void record_write_target(const Expr& target, EffectsScan& out) {
  bool deref = false;
  const Expr* root = chain_root(target, &deref);
  if (deref) {
    out.direct.writes_heap = true;
    return;
  }
  if (root == nullptr) return;
  switch (root->ref) {
    case NameRef::ModuleVar:
      out.direct.writes_module = true;
      break;
    case NameRef::WhenParam:
      out.direct.writes_when_param = true;
      break;
    case NameRef::Local: {
      const auto s = static_cast<std::size_t>(root->slot);
      if (s < out.direct.writes_param.size()) {
        out.direct.writes_param[s] = true;  // refined to by-ref slots later
      }
      break;
    }
    default:
      break;
  }
}

void scan_effect_call(Builtin builtin, int routine_index,
                      const std::vector<est::ExprPtr>& args,
                      EffectsScan& out) {
  if (builtin == Builtin::New || builtin == Builtin::Dispose) {
    // Allocation and disposal mutate the heap — observable in snapshots.
    out.direct.writes_heap = true;
    if (!args.empty() && args[0]) record_write_target(*args[0], out);
  } else if (routine_index >= 0) {
    out.calls.push_back(CallSiteRef{routine_index, &args});
  }
  for (const est::ExprPtr& a : args) {
    if (a) scan_effect_expr(*a, out);
  }
}

void scan_effect_expr(const Expr& e, EffectsScan& out) {
  if (e.kind == ExprKind::Call) {
    scan_effect_call(e.builtin, e.routine_index, e.children, out);
    return;
  }
  if (e.kind == ExprKind::Name && e.ref == NameRef::Call0) {
    out.calls.push_back(CallSiteRef{e.slot, nullptr});
    return;
  }
  for (const est::ExprPtr& c : e.children) {
    if (c) scan_effect_expr(*c, out);
  }
}

void scan_effect_stmt(const Stmt& s, EffectsScan& out) {
  switch (s.kind) {
    case StmtKind::Assign:
      if (s.e0) {
        record_write_target(*s.e0, out);
        scan_effect_expr(*s.e0, out);  // subscripts may call functions
      }
      if (s.e1) scan_effect_expr(*s.e1, out);
      break;
    case StmtKind::Call:
      scan_effect_call(s.builtin, s.routine_index, s.args, out);
      break;
    case StmtKind::Output:
      out.direct.has_output = true;
      for (const est::ExprPtr& a : s.args) {
        if (a) scan_effect_expr(*a, out);
      }
      break;
    case StmtKind::For:
      if (s.e0) record_write_target(*s.e0, out);
      break;
    default:
      break;
  }
  if (s.e0 && s.kind != StmtKind::Assign && s.kind != StmtKind::Call) {
    scan_effect_expr(*s.e0, out);
  }
  if (s.e1 && s.kind != StmtKind::Assign) scan_effect_expr(*s.e1, out);
  for (const est::ExprPtr& a : s.args) {
    if (a && s.kind != StmtKind::Call && s.kind != StmtKind::Output) {
      scan_effect_expr(*a, out);
    }
  }
  if (s.s0) scan_effect_stmt(*s.s0, out);
  if (s.s1) scan_effect_stmt(*s.s1, out);
  for (const est::StmtPtr& c : s.body) {
    if (c) scan_effect_stmt(*c, out);
  }
  for (const est::CaseArm& arm : s.arms) {
    if (arm.body) scan_effect_stmt(*arm.body, out);
  }
  for (const est::StmtPtr& c : s.otherwise) {
    if (c) scan_effect_stmt(*c, out);
  }
}

/// Folds `callee`'s summary into `caller` at one call site; returns true on
/// any lattice growth.
bool apply_call(RoutineEffects& caller, const RoutineEffects& callee,
                const CallSiteRef& site, const Routine* caller_routine) {
  RoutineEffects before = caller;
  caller.writes_module |= callee.writes_module;
  caller.writes_heap |= callee.writes_heap;
  caller.has_output |= callee.has_output;
  caller.writes_when_param |= callee.writes_when_param;
  if (site.args != nullptr) {
    const std::size_t n =
        std::min(callee.writes_param.size(), site.args->size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!callee.writes_param[i] || !(*site.args)[i]) continue;
      bool deref = false;
      const Expr* root = chain_root(*(*site.args)[i], &deref);
      if (deref) {
        caller.writes_heap = true;
      } else if (root != nullptr) {
        switch (root->ref) {
          case NameRef::ModuleVar:
            caller.writes_module = true;
            break;
          case NameRef::WhenParam:
            caller.writes_when_param = true;
            break;
          case NameRef::Local: {
            const auto s = static_cast<std::size_t>(root->slot);
            if (caller_routine != nullptr &&
                s < caller.writes_param.size()) {
              caller.writes_param[s] = true;
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }
  return caller.writes_module != before.writes_module ||
         caller.writes_heap != before.writes_heap ||
         caller.has_output != before.has_output ||
         caller.writes_when_param != before.writes_when_param ||
         caller.writes_param != before.writes_param;
}

}  // namespace

std::vector<RoutineEffects> compute_routine_effects(const Spec& spec) {
  const std::vector<Routine>& routines = spec.body().routines;
  std::vector<EffectsScan> scans(routines.size());
  for (std::size_t i = 0; i < routines.size(); ++i) {
    const Routine& r = routines[i];
    // Seed writes_param over the whole frame; only by-ref parameter slots
    // survive the mask below (writes to value params and locals are not
    // effects).
    scans[i].direct.writes_param.assign(
        static_cast<std::size_t>(r.frame_size), false);
    if (r.body) scan_effect_stmt(*r.body, scans[i]);
    std::vector<bool> masked(r.param_by_ref.size(), false);
    for (std::size_t p = 0; p < r.param_by_ref.size(); ++p) {
      masked[p] = r.param_by_ref[p] &&
                  p < scans[i].direct.writes_param.size() &&
                  scans[i].direct.writes_param[p];
    }
    scans[i].direct.writes_param = std::move(masked);
  }
  std::vector<RoutineEffects> effects(routines.size());
  for (std::size_t i = 0; i < routines.size(); ++i) {
    effects[i] = scans[i].direct;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < routines.size(); ++i) {
      for (const CallSiteRef& site : scans[i].calls) {
        if (site.callee < 0 ||
            static_cast<std::size_t>(site.callee) >= effects.size()) {
          continue;
        }
        RoutineEffects callee = effects[static_cast<std::size_t>(site.callee)];
        changed |= apply_call(effects[i], callee, site, &routines[i]);
      }
    }
  }
  return effects;
}

namespace {

// ---------------------------------------------------------------------------
// Definite assignment
// ---------------------------------------------------------------------------

/// Whole-spec module-variable usage, accumulated across every unit.
struct ModuleUse {
  std::vector<char> written;
  std::vector<char> read;
  std::vector<SourceLoc> first_read;

  explicit ModuleUse(std::size_t n)
      : written(n, 0), read(n, 0), first_read(n) {}

  void note_read(int slot, SourceLoc loc) {
    const auto s = static_cast<std::size_t>(slot);
    if (s >= read.size()) return;
    if (read[s] == 0) first_read[s] = loc;
    read[s] = 1;
  }
  void note_write(int slot) {
    const auto s = static_cast<std::size_t>(slot);
    if (s < written.size()) written[s] = 1;
  }
};

/// May-state per frame slot. All bits use may-semantics, so merge is OR and
/// a clear bit is the "don't report" direction.
struct AssignState {
  std::vector<char> uninit;     // scalar/pointer slot may hold no value
  std::vector<char> cell;       // pointer slot may point at a fresh cell
  std::vector<char> untouched;  // aggregate slot never written at all
  bool bot = true;

  bool merge(const AssignState& o) {
    if (o.bot) return false;
    if (bot) {
      *this = o;
      return true;
    }
    bool grown = false;
    for (std::size_t i = 0; i < uninit.size(); ++i) {
      if (o.uninit[i] != 0 && uninit[i] == 0) uninit[i] = 1, grown = true;
      if (o.cell[i] != 0 && cell[i] == 0) cell[i] = 1, grown = true;
      if (o.untouched[i] != 0 && untouched[i] == 0) {
        untouched[i] = 1;
        grown = true;
      }
    }
    return grown;
  }
};

class AssignPass {
 public:
  AssignPass(const Spec& spec, const Unit& unit, const FrameInfo& frame,
             ModuleUse& mu, std::vector<Finding>* findings)
      : spec_(spec), unit_(unit), frame_(frame), mu_(mu),
        findings_(findings) {}

  AssignState entry_state() const {
    AssignState st;
    st.bot = false;
    const std::size_t n = frame_.types.size();
    st.uninit.assign(n, 0);
    st.cell.assign(n, 0);
    st.untouched.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (frame_.is_param[i]) continue;  // defined by the caller
      if (is_aggregate(frame_.types[i])) {
        st.untouched[i] = 1;  // defined shell, every leaf undefined
      } else {
        st.uninit[i] = 1;
      }
    }
    return st;
  }

  /// Applies node `n` to `st` in place, reporting reads when a findings
  /// vector is attached (the final pass); the fixpoint runs with none.
  void transfer(const CfgNode& n, AssignState& st) {
    switch (n.kind) {
      case CfgNodeKind::Entry:
      case CfgNodeKind::Exit:
      case CfgNodeKind::ForTest:
        return;
      case CfgNodeKind::Simple:
        simple(*n.stmt, st);
        return;
      case CfgNodeKind::CondIf:
      case CfgNodeKind::CondWhile:
      case CfgNodeKind::CondRepeat:
      case CfgNodeKind::CondCase:
        if (n.cond != nullptr) read(*n.cond, st);
        return;
      case CfgNodeKind::ForInit: {
        const Stmt& s = *n.stmt;
        if (s.e1) read(*s.e1, st);
        if (!s.args.empty() && s.args[0]) read(*s.args[0], st);
        if (s.e0) define(*s.e0, st, /*fresh_cell=*/false);
        return;
      }
    }
  }

  /// Read-walks a bare expression (provided clause) against the entry
  /// state, feeding module usage and reporting stray local reads.
  void scan_expr(const Expr& e) {
    AssignState st = entry_state();
    read(e, st);
  }

  void report_result_unset(const AssignState& exit_in) {
    if (exit_in.bot || frame_.result_slot < 0 || findings_ == nullptr) return;
    const auto s = static_cast<std::size_t>(frame_.result_slot);
    if (s < exit_in.uninit.size() &&
        (exit_in.uninit[s] != 0 || exit_in.untouched[s] != 0)) {
      findings_->emplace_back(
          Severity::Warning, "assign", unit_.loc, unit_.label,
          "function '" + unit_.routine->name +
              "' may return without assigning its result");
    }
  }

 private:
  void report(SourceLoc loc, const std::string& msg) {
    if (findings_ != nullptr) {
      findings_->emplace_back(Severity::Warning, "assign", loc, unit_.label,
                              msg);
    }
  }

  void simple(const Stmt& s, AssignState& st) {
    switch (s.kind) {
      case StmtKind::Assign: {
        if (s.e1) read(*s.e1, st);
        if (s.e0) {
          // Pointer copies propagate the fresh-cell bit.
          bool fresh = false;
          if (s.e1 && s.e1->kind == ExprKind::Name &&
              s.e1->ref == NameRef::Local) {
            const auto q = static_cast<std::size_t>(s.e1->slot);
            fresh = q < st.cell.size() && st.cell[q] != 0;
          }
          define(*s.e0, st, fresh);
        }
        return;
      }
      case StmtKind::Call:
        call(s.builtin, s.routine_index, s.args, st);
        return;
      case StmtKind::Output:
        for (const est::ExprPtr& a : s.args) {
          if (a) read(*a, st);
        }
        return;
      default:
        return;
    }
  }

  void call(Builtin builtin, int routine_index,
            const std::vector<est::ExprPtr>& args, AssignState& st) {
    if (builtin == Builtin::New) {
      if (!args.empty() && args[0]) define(*args[0], st, /*fresh_cell=*/true);
      return;
    }
    if (builtin == Builtin::Dispose) {
      if (!args.empty() && args[0]) read(*args[0], st);
      return;
    }
    const Routine* callee = nullptr;
    if (routine_index >= 0 &&
        static_cast<std::size_t>(routine_index) <
            spec_.body().routines.size()) {
      callee = &spec_.body().routines[static_cast<std::size_t>(routine_index)];
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (!args[i]) continue;
      const bool by_ref = callee != nullptr &&
                          i < callee->param_by_ref.size() &&
                          callee->param_by_ref[i];
      if (by_ref) {
        define(*args[i], st, /*fresh_cell=*/false);
      } else {
        read(*args[i], st);
      }
    }
  }

  /// Read context: report maybe-undefined uses and log module reads.
  void read(const Expr& e, AssignState& st) {
    switch (e.kind) {
      case ExprKind::Name:
        name_read(e, st);
        return;
      case ExprKind::Field:
      case ExprKind::Index: {
        component_read(e, st);
        for (const est::ExprPtr& c : e.children) {
          if (c) read(*c, st);
        }
        return;
      }
      case ExprKind::Deref: {
        cell_read(e, st);
        read(*e.children[0], st);
        return;
      }
      case ExprKind::Call:
        call(e.builtin, e.routine_index, e.children, st);
        return;
      default:
        for (const est::ExprPtr& c : e.children) {
          if (c) read(*c, st);
        }
        return;
    }
  }

  void name_read(const Expr& e, AssignState& st) {
    if (e.ref == NameRef::ModuleVar) {
      mu_.note_read(e.slot, e.loc);
      return;
    }
    if (e.ref != NameRef::Local) return;
    const auto s = static_cast<std::size_t>(e.slot);
    if (s < st.uninit.size() && st.uninit[s] != 0) {
      report(e.loc, "local variable '" + frame_.names[s] +
                        "' may be read before it is assigned");
      st.uninit[s] = 0;  // one report per path suffices
    }
  }

  /// `r.f` / `a[i]` where the whole aggregate was never written: every leaf
  /// is still undefined, so the component read faults in strict mode.
  void component_read(const Expr& e, AssignState& st) {
    const Expr* base = e.children[0].get();
    if (base == nullptr || base->kind != ExprKind::Name ||
        base->ref != NameRef::Local) {
      return;
    }
    const auto s = static_cast<std::size_t>(base->slot);
    if (s < st.untouched.size() && st.untouched[s] != 0) {
      report(e.loc, "component of '" + frame_.names[s] +
                        "' is read before anything is assigned to it");
      st.untouched[s] = 0;
    }
  }

  /// `p^` where p still points at a cell fresh from new(): the cell value
  /// is undefined until something is stored through the pointer.
  void cell_read(const Expr& e, AssignState& st) {
    const Expr* base = e.children[0].get();
    if (base == nullptr || base->kind != ExprKind::Name ||
        base->ref != NameRef::Local) {
      return;
    }
    const auto s = static_cast<std::size_t>(base->slot);
    if (s < st.cell.size() && st.cell[s] != 0 && st.uninit[s] == 0) {
      report(e.loc, "heap cell '" + frame_.names[s] +
                        "^' may be read before it is assigned");
      st.cell[s] = 0;
    }
  }

  /// Write context: subscripts/pointer bases are still reads; the root
  /// variable (when reached without a deref) becomes defined.
  void define(const Expr& target, AssignState& st, bool fresh_cell) {
    // Reads hidden inside the lvalue chain.
    const Expr* cur = &target;
    bool deref = false;
    const Expr* deepest_deref_base = nullptr;
    while (cur != nullptr) {
      if (cur->kind == ExprKind::Index && cur->children[1]) {
        read(*cur->children[1], st);
      }
      if (cur->kind == ExprKind::Deref) {
        deref = true;
        if (deepest_deref_base == nullptr) {
          deepest_deref_base = cur->children[0].get();
        }
      }
      if (cur->kind == ExprKind::Name) break;
      cur = cur->children.empty() ? nullptr : cur->children[0].get();
    }
    if (deref) {
      // The write lands on the heap. The pointer itself is read, and the
      // stored-through cell is no longer fresh.
      if (deepest_deref_base != nullptr) {
        read(*deepest_deref_base, st);
        if (deepest_deref_base->kind == ExprKind::Name &&
            deepest_deref_base->ref == NameRef::Local) {
          const auto s = static_cast<std::size_t>(deepest_deref_base->slot);
          if (s < st.cell.size()) st.cell[s] = 0;
        }
      }
      return;
    }
    if (cur == nullptr) return;
    if (cur->ref == NameRef::ModuleVar) {
      mu_.note_write(cur->slot);
      return;
    }
    if (cur->ref != NameRef::Local) return;
    const auto s = static_cast<std::size_t>(cur->slot);
    if (s >= st.uninit.size()) return;
    st.untouched[s] = 0;
    if (&target == cur) {
      // Whole-variable write.
      st.uninit[s] = 0;
      st.cell[s] = fresh_cell ? 1 : 0;
    }
    // A component write leaves the "uninit" bit of scalar slots alone (a
    // scalar has no components) and clears only `untouched` above.
  }

  const Spec& spec_;
  const Unit& unit_;
  const FrameInfo& frame_;
  ModuleUse& mu_;
  std::vector<Finding>* findings_;
};

void run_assign_unit(const Spec& spec, const Unit& unit,
                     const FrameInfo& frame, ModuleUse& mu,
                     std::vector<Finding>& findings) {
  {
    AssignPass scanner(spec, unit, frame, mu, &findings);
    if (unit.provided != nullptr) scanner.scan_expr(*unit.provided);
  }
  if (unit.block == nullptr) return;
  const Cfg cfg = build_cfg(*unit.block);
  const std::vector<int> rpo = cfg.reverse_post_order();

  AssignPass silent(spec, unit, frame, mu, nullptr);
  std::vector<AssignState> in(cfg.size());
  in[static_cast<std::size_t>(cfg.entry)] = silent.entry_state();
  // Worklist fixpoint; states only grow (may-bits), so this terminates.
  std::deque<int> wl(rpo.begin(), rpo.end());
  std::vector<char> queued(cfg.size(), 1);
  while (!wl.empty()) {
    const int id = wl.front();
    wl.pop_front();
    queued[static_cast<std::size_t>(id)] = 0;
    AssignState st = in[static_cast<std::size_t>(id)];
    if (st.bot) continue;
    silent.transfer(cfg.node(id), st);
    for (const CfgEdge& e : cfg.node(id).succs) {
      if (in[static_cast<std::size_t>(e.to)].merge(st) &&
          queued[static_cast<std::size_t>(e.to)] == 0) {
        queued[static_cast<std::size_t>(e.to)] = 1;
        wl.push_back(e.to);
      }
    }
  }
  // Final pass: replay every node once against its fixpoint in-state,
  // this time reporting (dedicated walk keeps findings deterministic).
  AssignPass reporter(spec, unit, frame, mu, &findings);
  for (int id : rpo) {
    AssignState st = in[static_cast<std::size_t>(id)];
    if (st.bot) continue;
    reporter.transfer(cfg.node(id), st);
  }
  reporter.report_result_unset(in[static_cast<std::size_t>(cfg.exit)]);
}

// ---------------------------------------------------------------------------
// Interval analysis + unreachable statements
// ---------------------------------------------------------------------------

/// Saturation bound: wide enough for any program value, small enough that
/// sums/products of two in-range bounds cannot overflow __int128 paths.
constexpr std::int64_t kInf = std::int64_t{1} << 62;

struct Interval {
  std::int64_t lo = 1;
  std::int64_t hi = 0;  // lo > hi encodes bottom (no value)

  [[nodiscard]] bool bot() const { return lo > hi; }
  [[nodiscard]] bool singleton() const { return lo == hi; }
  static Interval top() { return {-kInf, kInf}; }
  static Interval point(std::int64_t v) { return {v, v}; }
};

std::int64_t clamp_wide(__int128 v) {
  if (v < -static_cast<__int128>(kInf)) return -kInf;
  if (v > static_cast<__int128>(kInf)) return kInf;
  return static_cast<std::int64_t>(v);
}

Interval hull(Interval a, Interval b) {
  if (a.bot()) return b;
  if (b.bot()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval meet(Interval a, Interval b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

bool disjoint(Interval a, Interval b) {
  return !a.bot() && !b.bot() && (a.hi < b.lo || a.lo > b.hi);
}

Interval arith(BinOp op, Interval a, Interval b) {
  if (a.bot() || b.bot()) return {};
  const auto wa_lo = static_cast<__int128>(a.lo);
  const auto wa_hi = static_cast<__int128>(a.hi);
  const auto wb_lo = static_cast<__int128>(b.lo);
  const auto wb_hi = static_cast<__int128>(b.hi);
  switch (op) {
    case BinOp::Add:
      return {clamp_wide(wa_lo + wb_lo), clamp_wide(wa_hi + wb_hi)};
    case BinOp::Sub:
      return {clamp_wide(wa_lo - wb_hi), clamp_wide(wa_hi - wb_lo)};
    case BinOp::Mul: {
      const __int128 c[4] = {wa_lo * wb_lo, wa_lo * wb_hi, wa_hi * wb_lo,
                             wa_hi * wb_hi};
      __int128 lo = c[0], hi = c[0];
      for (__int128 v : c) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      return {clamp_wide(lo), clamp_wide(hi)};
    }
    case BinOp::IntDiv: {
      if (b.lo <= 0 && b.hi >= 0) return Interval::top();  // may divide by 0
      const __int128 c[4] = {wa_lo / wb_lo, wa_lo / wb_hi, wa_hi / wb_lo,
                             wa_hi / wb_hi};
      __int128 lo = c[0], hi = c[0];
      for (__int128 v : c) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      return {clamp_wide(lo), clamp_wide(hi)};
    }
    case BinOp::Mod: {
      const std::int64_t m =
          std::max(std::abs(a.lo) < kInf ? std::int64_t{0} : kInf,
                   std::max(std::abs(b.lo), std::abs(b.hi)));
      if (m == 0) return Interval::top();
      const std::int64_t span = m - 1;
      return {a.lo >= 0 ? 0 : -span, span};
    }
    default:
      return Interval::top();
  }
}

/// Three-valued comparison outcome as a boolean interval.
Interval compare(BinOp op, Interval a, Interval b) {
  if (a.bot() || b.bot()) return {};
  bool may_true = true, may_false = true;
  switch (op) {
    case BinOp::Eq:
      may_true = !disjoint(a, b);
      may_false = !(a.singleton() && b.singleton() && a.lo == b.lo);
      break;
    case BinOp::Neq:
      may_true = !(a.singleton() && b.singleton() && a.lo == b.lo);
      may_false = !disjoint(a, b);
      break;
    case BinOp::Lt:
      may_true = a.lo < b.hi;
      may_false = a.hi >= b.lo;
      break;
    case BinOp::Leq:
      may_true = a.lo <= b.hi;
      may_false = a.hi > b.lo;
      break;
    case BinOp::Gt:
      may_true = a.hi > b.lo;
      may_false = a.lo <= b.hi;
      break;
    case BinOp::Geq:
      may_true = a.hi >= b.lo;
      may_false = a.lo < b.hi;
      break;
    default:
      break;
  }
  return {may_false ? 0 : 1, may_true ? 1 : 0};
}

std::optional<Interval> type_bounds(const Type* t) {
  if (t == nullptr) return std::nullopt;
  switch (t->kind) {
    case TypeKind::Integer:
      return Interval::top();
    case TypeKind::Boolean:
      return Interval{0, 1};
    case TypeKind::Char:
      return Interval{0, 255};
    case TypeKind::Enum:
      return Interval{0,
                      static_cast<std::int64_t>(t->enum_values.size()) - 1};
    case TypeKind::Subrange:
      return Interval{t->lo, t->hi};
    default:
      return std::nullopt;
  }
}

Interval bounds_or_top(const Type* t) {
  return type_bounds(t).value_or(Interval::top());
}

struct IntervalEnv {
  std::vector<Interval> frame, module, when;
  bool bot = true;

  bool merge(const IntervalEnv& o, bool widen,
             const std::vector<Interval>& frame_b,
             const std::vector<Interval>& module_b,
             const std::vector<Interval>& when_b) {
    if (o.bot) return false;
    if (bot) {
      *this = o;
      return true;
    }
    bool grown = false;
    auto join = [&](std::vector<Interval>& dst,
                    const std::vector<Interval>& src,
                    const std::vector<Interval>& wide) {
      for (std::size_t i = 0; i < dst.size(); ++i) {
        Interval h = hull(dst[i], src[i]);
        if (widen && (h.lo < dst[i].lo || h.hi > dst[i].hi)) {
          if (h.lo < dst[i].lo) h.lo = wide[i].lo;
          if (h.hi > dst[i].hi) h.hi = wide[i].hi;
        }
        if (h.lo != dst[i].lo || h.hi != dst[i].hi) {
          dst[i] = h;
          grown = true;
        }
      }
    };
    join(frame, o.frame, frame_b);
    join(module, o.module, module_b);
    join(when, o.when, when_b);
    return grown;
  }
};

class IntervalPass {
 public:
  IntervalPass(const Spec& spec, const Unit& unit, const FrameInfo& frame,
               const std::vector<RoutineEffects>& effects)
      : spec_(spec), unit_(unit), frame_(frame), effects_(effects) {
    frame_bounds_.reserve(frame.types.size());
    for (const Type* t : frame.types) {
      frame_bounds_.push_back(bounds_or_top(t));
    }
    for (const est::ModuleVarInfo& mv : spec.module_vars) {
      module_bounds_.push_back(bounds_or_top(mv.type));
    }
    if (unit.transition != nullptr && unit.transition->when) {
      for (const Type* t : unit.transition->when->param_types) {
        when_bounds_.push_back(bounds_or_top(t));
      }
    }
  }

  IntervalEnv entry_env() const {
    IntervalEnv env;
    env.bot = false;
    env.frame = frame_bounds_;
    env.module = module_bounds_;
    env.when = when_bounds_;
    if (unit_.provided != nullptr) {
      refine(env, *unit_.provided, true);
    }
    return env;
  }

  // ---- evaluation -------------------------------------------------------

  Interval eval(const Expr& e, const IntervalEnv& env) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
      case ExprKind::CharLit:
        return Interval::point(e.int_value);
      case ExprKind::NilLit:
        return Interval::top();
      case ExprKind::Name:
        switch (e.ref) {
          case NameRef::ConstInt:
          case NameRef::ConstBool:
          case NameRef::ConstChar:
          case NameRef::EnumConst:
            return Interval::point(e.int_value);
          case NameRef::ModuleVar:
            return slot_of(env.module, e.slot);
          case NameRef::Local:
            return slot_of(env.frame, e.slot);
          case NameRef::WhenParam:
            return slot_of(env.when, e.slot);
          default:
            return bounds_or_top(e.type);
        }
      case ExprKind::Field:
        eval(*e.children[0], env);
        return bounds_or_top(e.type);
      case ExprKind::Index: {
        eval(*e.children[0], env);
        const Interval ix = eval(*e.children[1], env);
        check_index(e, ix);
        return bounds_or_top(e.type);
      }
      case ExprKind::Deref:
        eval(*e.children[0], env);
        return bounds_or_top(e.type);
      case ExprKind::Unary: {
        const Interval v = eval(*e.children[0], env);
        if (v.bot()) return v;
        switch (e.un_op) {
          case UnOp::Plus:
            return v;
          case UnOp::Neg:
            return {clamp_wide(-static_cast<__int128>(v.hi)),
                    clamp_wide(-static_cast<__int128>(v.lo))};
          case UnOp::Not:
            return {1 - std::min<std::int64_t>(v.hi, 1),
                    1 - std::max<std::int64_t>(v.lo, 0)};
        }
        return Interval::top();
      }
      case ExprKind::Binary: {
        const Interval a = eval(*e.children[0], env);
        const Interval b = eval(*e.children[1], env);
        switch (e.bin_op) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::Mul:
            return arith(e.bin_op, a, b);
          case BinOp::IntDiv:
          case BinOp::Mod:
            check_divisor(e, b);
            return arith(e.bin_op, a, b);
          case BinOp::And: {
            if (a.bot() || b.bot()) return {};
            const bool f = a.hi <= 0 || b.hi <= 0;
            const bool t = a.lo >= 1 && b.lo >= 1;
            return {t ? 1 : 0, f ? 0 : 1};
          }
          case BinOp::Or: {
            if (a.bot() || b.bot()) return {};
            const bool t = a.lo >= 1 || b.lo >= 1;
            const bool f = a.hi <= 0 && b.hi <= 0;
            return {t ? 1 : 0, f ? 0 : 1};
          }
          default:
            return compare(e.bin_op, a, b);
        }
      }
      case ExprKind::Call: {
        for (const est::ExprPtr& a : e.children) {
          if (a) eval(*a, env);
        }
        switch (e.builtin) {
          case Builtin::Ord:
            return child_interval(e, env, 0);
          case Builtin::Chr:
            return meet(child_interval(e, env, 0), {0, 255});
          case Builtin::Abs: {
            const Interval v = child_interval(e, env, 0);
            if (v.bot()) return v;
            if (v.lo >= 0) return v;
            if (v.hi <= 0) return {-v.hi, -v.lo};
            return {0, std::max(clamp_wide(-static_cast<__int128>(v.lo)),
                                v.hi)};
          }
          case Builtin::Succ:
            return arith(BinOp::Add, child_interval(e, env, 0),
                         Interval::point(1));
          case Builtin::Pred:
            return arith(BinOp::Sub, child_interval(e, env, 0),
                         Interval::point(1));
          case Builtin::Odd:
            return {0, 1};
          default:
            return bounds_or_top(e.type);
        }
      }
    }
    return Interval::top();
  }

  // ---- branch refinement ------------------------------------------------

  void refine(IntervalEnv& env, const Expr& cond, bool want_true) const {
    switch (cond.kind) {
      case ExprKind::Unary:
        if (cond.un_op == UnOp::Not) {
          refine(env, *cond.children[0], !want_true);
        }
        return;
      case ExprKind::Binary:
        switch (cond.bin_op) {
          case BinOp::And:
            if (want_true) {
              refine(env, *cond.children[0], true);
              refine(env, *cond.children[1], true);
            }
            return;
          case BinOp::Or:
            if (!want_true) {
              refine(env, *cond.children[0], false);
              refine(env, *cond.children[1], false);
            }
            return;
          case BinOp::Eq:
          case BinOp::Neq:
          case BinOp::Lt:
          case BinOp::Leq:
          case BinOp::Gt:
          case BinOp::Geq:
            refine_cmp(env, cond, want_true);
            return;
          default:
            return;
        }
      case ExprKind::Name:
        // Bare boolean guard: x / not x.
        constrain(env, cond, want_true ? Interval{1, 1} : Interval{0, 0});
        return;
      default:
        return;
    }
  }

  // ---- per-node transfer ------------------------------------------------

  /// Out-env of `n` along `edge`, given the in-env. `self` must outlive the
  /// call (envs copied in).
  IntervalEnv transfer(const CfgNode& n, const IntervalEnv& in,
                       const CfgEdge& edge) {
    IntervalEnv out = in;
    switch (n.kind) {
      case CfgNodeKind::Entry:
      case CfgNodeKind::Exit:
      case CfgNodeKind::ForTest:
        break;
      case CfgNodeKind::Simple:
        simple(*n.stmt, out);
        break;
      case CfgNodeKind::CondIf:
      case CfgNodeKind::CondWhile:
      case CfgNodeKind::CondRepeat:
        clobber_calls(*n.cond, out);
        if (edge.kind == EdgeKind::True) refine(out, *n.cond, true);
        if (edge.kind == EdgeKind::False) refine(out, *n.cond, false);
        break;
      case CfgNodeKind::CondCase:
        clobber_calls(*n.cond, out);
        if (edge.kind == EdgeKind::CaseArm && edge.arm != nullptr) {
          refine_case_arm(out, *n.cond, *edge.arm);
        }
        break;
      case CfgNodeKind::ForInit: {
        const Stmt& s = *n.stmt;
        if (s.e1) clobber_calls(*s.e1, out);
        if (!s.args.empty() && s.args[0]) clobber_calls(*s.args[0], out);
        const Interval from = s.e1 ? eval(*s.e1, out) : Interval::top();
        const Interval to = (!s.args.empty() && s.args[0])
                                ? eval(*s.args[0], out)
                                : Interval::top();
        if (s.e0 && s.e0->kind == ExprKind::Name) {
          // The control variable keeps its old value when the loop body
          // never runs, so widen with the incoming interval.
          Interval range = meet(hull(from, to), bounds_for(*s.e0));
          constrain_set(out, *s.e0, hull(slot_interval(out, *s.e0), range));
        }
        break;
      }
    }
    return out;
  }

  /// May control flow leave `n` along `edge` under `in`? Monotone in the
  /// envs (intervals only grow), so reachability never shrinks.
  bool feasible(const CfgNode& n, const IntervalEnv& in,
                const CfgEdge& edge) {
    switch (n.kind) {
      case CfgNodeKind::CondIf:
      case CfgNodeKind::CondWhile:
      case CfgNodeKind::CondRepeat: {
        if (edge.kind != EdgeKind::True && edge.kind != EdgeKind::False) {
          return true;
        }
        const Interval c = eval(*n.cond, in);
        if (c.bot()) return true;
        if (edge.kind == EdgeKind::True) return c.hi >= 1;
        return c.lo <= 0;
      }
      case CfgNodeKind::CondCase: {
        if (edge.kind != EdgeKind::CaseArm || edge.arm == nullptr) {
          return true;
        }
        const Interval sel = eval(*n.cond, in);
        if (sel.bot()) return true;
        for (std::int64_t label : edge.arm->label_values) {
          if (label >= sel.lo && label <= sel.hi) return true;
        }
        return false;
      }
      case CfgNodeKind::ForTest: {
        if (edge.kind != EdgeKind::True) return true;
        const Stmt& s = *n.stmt;
        const Interval from = s.e1 ? eval(*s.e1, in) : Interval::top();
        const Interval to = (!s.args.empty() && s.args[0])
                                ? eval(*s.args[0], in)
                                : Interval::top();
        if (from.bot() || to.bot()) return true;
        return s.downto ? from.hi >= to.lo : from.lo <= to.hi;
      }
      default:
        return true;
    }
  }

  // ---- reporting --------------------------------------------------------

  void report_node(const CfgNode& n, const IntervalEnv& in,
                   std::vector<Finding>& findings) {
    findings_ = &findings;
    switch (n.kind) {
      case CfgNodeKind::Entry:
      case CfgNodeKind::Exit:
        break;
      case CfgNodeKind::Simple:
        report_simple(*n.stmt, in);
        break;
      case CfgNodeKind::CondIf:
      case CfgNodeKind::CondWhile:
      case CfgNodeKind::CondRepeat:
        eval(*n.cond, in);
        break;
      case CfgNodeKind::CondCase:
        report_case(n, in);
        break;
      case CfgNodeKind::ForInit: {
        const Stmt& s = *n.stmt;
        if (s.e1) eval(*s.e1, in);
        if (!s.args.empty() && s.args[0]) eval(*s.args[0], in);
        break;
      }
      case CfgNodeKind::ForTest:
        break;
    }
    findings_ = nullptr;
  }

 private:
  static Interval slot_of(const std::vector<Interval>& v, int slot) {
    const auto s = static_cast<std::size_t>(slot);
    return s < v.size() ? v[s] : Interval::top();
  }

  Interval child_interval(const Expr& e, const IntervalEnv& env,
                          std::size_t i) {
    if (i >= e.children.size() || !e.children[i]) return Interval::top();
    return eval(*e.children[i], env);
  }

  Interval bounds_for(const Expr& name) const {
    switch (name.ref) {
      case NameRef::ModuleVar:
        return slot_of(module_bounds_, name.slot);
      case NameRef::Local:
        return slot_of(frame_bounds_, name.slot);
      case NameRef::WhenParam:
        return slot_of(when_bounds_, name.slot);
      default:
        return Interval::top();
    }
  }

  Interval slot_interval(const IntervalEnv& env, const Expr& name) const {
    switch (name.ref) {
      case NameRef::ModuleVar:
        return slot_of(env.module, name.slot);
      case NameRef::Local:
        return slot_of(env.frame, name.slot);
      case NameRef::WhenParam:
        return slot_of(env.when, name.slot);
      default:
        return Interval::top();
    }
  }

  void constrain_set(IntervalEnv& env, const Expr& name, Interval v) const {
    std::vector<Interval>* vec = nullptr;
    switch (name.ref) {
      case NameRef::ModuleVar:
        vec = &env.module;
        break;
      case NameRef::Local:
        vec = &env.frame;
        break;
      case NameRef::WhenParam:
        vec = &env.when;
        break;
      default:
        return;
    }
    const auto s = static_cast<std::size_t>(name.slot);
    if (s < vec->size()) (*vec)[s] = v;
  }

  void constrain(IntervalEnv& env, const Expr& name, Interval with) const {
    const Interval cur = slot_interval(env, name);
    Interval m = meet(cur, with);
    if (m.bot()) m = with;  // contradictory path; keep it harmless
    constrain_set(env, name, m);
  }

  /// const-ish interval of an expr without env mutation, used by refine
  /// (const): conservative wrapper around eval.
  Interval peek(const Expr& e, const IntervalEnv& env) const {
    return const_cast<IntervalPass*>(this)->eval(e, env);
  }

  void refine_cmp(IntervalEnv& env, const Expr& cmp, bool want_true) const {
    BinOp op = cmp.bin_op;
    if (!want_true) {
      switch (op) {
        case BinOp::Eq: op = BinOp::Neq; break;
        case BinOp::Neq: op = BinOp::Eq; break;
        case BinOp::Lt: op = BinOp::Geq; break;
        case BinOp::Leq: op = BinOp::Gt; break;
        case BinOp::Gt: op = BinOp::Leq; break;
        case BinOp::Geq: op = BinOp::Lt; break;
        default: return;
      }
    }
    const Expr& lhs = *cmp.children[0];
    const Expr& rhs = *cmp.children[1];
    apply_cmp(env, lhs, op, peek(rhs, env));
    apply_cmp(env, rhs, mirror(op), peek(lhs, env));
  }

  static BinOp mirror(BinOp op) {
    switch (op) {
      case BinOp::Lt: return BinOp::Gt;
      case BinOp::Leq: return BinOp::Geq;
      case BinOp::Gt: return BinOp::Lt;
      case BinOp::Geq: return BinOp::Leq;
      default: return op;  // Eq / Neq are symmetric
    }
  }

  void apply_cmp(IntervalEnv& env, const Expr& side, BinOp op,
                 Interval other) const {
    if (side.kind != ExprKind::Name || other.bot()) return;
    switch (op) {
      case BinOp::Eq:
        constrain(env, side, other);
        return;
      case BinOp::Neq: {
        // Only bound-trimming exclusions are expressible as an interval.
        if (!other.singleton()) return;
        Interval cur = slot_interval(env, side);
        if (cur.bot()) return;
        if (other.lo == cur.lo) {
          constrain_set(env, side, {cur.lo + 1, cur.hi});
        } else if (other.lo == cur.hi) {
          constrain_set(env, side, {cur.lo, cur.hi - 1});
        }
        return;
      }
      case BinOp::Lt:
        constrain(env, side, {-kInf, clamp_wide(
            static_cast<__int128>(other.hi) - 1)});
        return;
      case BinOp::Leq:
        constrain(env, side, {-kInf, other.hi});
        return;
      case BinOp::Gt:
        constrain(env, side, {clamp_wide(
            static_cast<__int128>(other.lo) + 1), kInf});
        return;
      case BinOp::Geq:
        constrain(env, side, {other.lo, kInf});
        return;
      default:
        return;
    }
  }

  void refine_case_arm(IntervalEnv& env, const Expr& sel,
                       const est::CaseArm& arm) const {
    if (sel.kind != ExprKind::Name || arm.label_values.empty()) return;
    const Interval cur = slot_interval(env, sel);
    Interval span{kInf, -kInf};
    for (std::int64_t label : arm.label_values) {
      if (label >= cur.lo && label <= cur.hi) {
        span.lo = std::min(span.lo, label);
        span.hi = std::max(span.hi, label);
      }
    }
    if (!span.bot()) constrain(env, sel, span);
  }

  // ---- statement transfer ----------------------------------------------

  void simple(const Stmt& s, IntervalEnv& env) {
    switch (s.kind) {
      case StmtKind::Assign: {
        if (s.e0) clobber_calls(*s.e0, env);
        if (s.e1) clobber_calls(*s.e1, env);
        const Interval v = s.e1 ? eval(*s.e1, env) : Interval::top();
        if (s.e0 && s.e0->kind == ExprKind::Name) {
          Interval stored = meet(v, bounds_for(*s.e0));
          if (stored.bot()) stored = bounds_for(*s.e0);
          constrain_set(env, *s.e0, stored);
        }
        break;
      }
      case StmtKind::Call: {
        clobber_call_stmt(s, env);
        break;
      }
      case StmtKind::Output:
        for (const est::ExprPtr& a : s.args) {
          if (a) clobber_calls(*a, env);
        }
        break;
      default:
        break;
    }
  }

  void clobber_call_stmt(const Stmt& s, IntervalEnv& env) {
    if (s.builtin != Builtin::None) return;  // new/dispose: nothing tracked
    const Routine* callee = routine_at(s.routine_index);
    if (callee == nullptr) return;
    apply_callee_clobber(s.routine_index, s.args, env);
    for (const est::ExprPtr& a : s.args) {
      if (a) clobber_calls(*a, env);
    }
  }

  const Routine* routine_at(int index) const {
    if (index < 0 ||
        static_cast<std::size_t>(index) >= spec_.body().routines.size()) {
      return nullptr;
    }
    return &spec_.body().routines[static_cast<std::size_t>(index)];
  }

  void apply_callee_clobber(int routine_index,
                            const std::vector<est::ExprPtr>& args,
                            IntervalEnv& env) {
    if (routine_index < 0 ||
        static_cast<std::size_t>(routine_index) >= effects_.size()) {
      return;
    }
    const RoutineEffects& eff = effects_[static_cast<std::size_t>(
        routine_index)];
    if (eff.writes_module) {
      // Stored values conform to the declared type on direct writes; reset
      // every module slot to its declared bounds.
      env.module = module_bounds_;
    }
    for (std::size_t i = 0;
         i < std::min(eff.writes_param.size(), args.size()); ++i) {
      if (!eff.writes_param[i] || !args[i]) continue;
      bool deref = false;
      const Expr* root = chain_root(*args[i], &deref);
      if (root != nullptr && !deref) {
        // Var-parameter stores bypass the actual's subrange check, so the
        // post-call value may exceed the declared bounds.
        constrain_set(env, *root, Interval::top());
      }
    }
  }

  /// Resets whatever a function call reachable from `e` may overwrite.
  void clobber_calls(const Expr& e, IntervalEnv& env) {
    if (e.kind == ExprKind::Call && e.builtin == Builtin::None) {
      apply_callee_clobber(e.routine_index, e.children, env);
    }
    if (e.kind == ExprKind::Name && e.ref == NameRef::Call0) {
      apply_callee_clobber(e.slot, {}, env);
    }
    for (const est::ExprPtr& c : e.children) {
      if (c) clobber_calls(*c, env);
    }
  }

  // ---- checks (reporting pass only) -------------------------------------

  void report(Severity sev, SourceLoc loc, std::string msg) {
    if (findings_ != nullptr) {
      findings_->emplace_back(sev, "intervals", loc, unit_.label,
                              std::move(msg));
    }
  }

  static std::string range_str(Interval v) {
    auto one = [](std::int64_t x) {
      if (x <= -kInf) return std::string("-inf");
      if (x >= kInf) return std::string("+inf");
      return std::to_string(x);
    };
    return one(v.lo) + ".." + one(v.hi);
  }

  void check_index(const Expr& e, Interval ix) {
    const Type* at = e.children[0]->type;
    if (at == nullptr || at->kind != TypeKind::Array || ix.bot()) return;
    if (ix.hi < at->lo || ix.lo > at->hi) {
      report(Severity::Error, e.loc,
             "array index is always out of bounds " +
                 std::to_string(at->lo) + ".." + std::to_string(at->hi) +
                 " (index is " + range_str(ix) + ")");
    }
  }

  void check_divisor(const Expr& e, Interval b) {
    if (!b.bot() && b.lo == 0 && b.hi == 0) {
      report(Severity::Error, e.loc, e.bin_op == BinOp::Mod
                                         ? "modulus is always zero"
                                         : "divisor is always zero");
    }
  }

  void report_simple(const Stmt& s, const IntervalEnv& in) {
    switch (s.kind) {
      case StmtKind::Assign: {
        const Interval v = s.e1 ? eval(*s.e1, in) : Interval::top();
        if (s.e0) {
          eval_lvalue(*s.e0, in);
          const std::optional<Interval> b = type_bounds(s.e0->type);
          if (b && disjoint(v, *b)) {
            std::string what =
                s.e0->kind == ExprKind::Name
                    ? "assignment to '" + s.e0->name + "'"
                    : "assignment";
            report(Severity::Error, s.e0->loc,
                   what + " is always out of range " + range_str(*b) +
                       " (value is " + range_str(v) + ")");
          }
        }
        break;
      }
      case StmtKind::Call:
        for (const est::ExprPtr& a : s.args) {
          if (a) eval(*a, in);
        }
        break;
      case StmtKind::Output:
        for (const est::ExprPtr& a : s.args) {
          if (a) eval(*a, in);
        }
        break;
      default:
        break;
    }
  }

  /// Walks an assignment target for checks without treating the root name
  /// read as a value use.
  void eval_lvalue(const Expr& e, const IntervalEnv& in) {
    switch (e.kind) {
      case ExprKind::Index: {
        eval_lvalue(*e.children[0], in);
        const Interval ix = eval(*e.children[1], in);
        check_index(e, ix);
        return;
      }
      case ExprKind::Field:
      case ExprKind::Deref:
        eval_lvalue(*e.children[0], in);
        return;
      default:
        return;
    }
  }

  void report_case(const CfgNode& n, const IntervalEnv& in) {
    const Interval sel = eval(*n.cond, in);
    if (sel.bot() || n.stmt == nullptr || n.stmt->has_otherwise) return;
    for (const est::CaseArm& arm : n.stmt->arms) {
      for (std::int64_t label : arm.label_values) {
        if (label >= sel.lo && label <= sel.hi) return;
      }
    }
    report(Severity::Error, n.loc,
           "case selector (range " + range_str(sel) +
               ") matches no label and there is no otherwise part");
  }

  const Spec& spec_;
  const Unit& unit_;
  const FrameInfo& frame_;
  const std::vector<RoutineEffects>& effects_;
  std::vector<Interval> frame_bounds_, module_bounds_, when_bounds_;
  std::vector<Finding>* findings_ = nullptr;
};

constexpr int kWidenAfter = 3;

void run_interval_unit(const Spec& spec, const Unit& unit,
                       const FrameInfo& frame,
                       const std::vector<RoutineEffects>& effects,
                       bool emit_intervals, bool emit_unreachable,
                       std::vector<Finding>& findings) {
  if (unit.block == nullptr) return;
  const Cfg cfg = build_cfg(*unit.block);
  const std::vector<int> rpo = cfg.reverse_post_order();
  IntervalPass pass(spec, unit, frame, effects);

  std::vector<IntervalEnv> in(cfg.size());
  in[static_cast<std::size_t>(cfg.entry)] = pass.entry_env();
  std::vector<int> merges(cfg.size(), 0);
  std::deque<int> wl{cfg.entry};
  std::vector<char> queued(cfg.size(), 0);
  queued[static_cast<std::size_t>(cfg.entry)] = 1;
  const IntervalEnv widen_to = [&] {
    IntervalEnv env = pass.entry_env();
    return env;
  }();
  while (!wl.empty()) {
    const int id = wl.front();
    wl.pop_front();
    queued[static_cast<std::size_t>(id)] = 0;
    const IntervalEnv env = in[static_cast<std::size_t>(id)];
    if (env.bot) continue;
    const CfgNode& n = cfg.node(id);
    for (const CfgEdge& e : n.succs) {
      if (!pass.feasible(n, env, e)) continue;
      IntervalEnv out = pass.transfer(n, env, e);
      IntervalEnv& dst = in[static_cast<std::size_t>(e.to)];
      const bool widen = ++merges[static_cast<std::size_t>(e.to)] >
                         kWidenAfter;
      if (dst.merge(out, widen, widen_to.frame, widen_to.module,
                    widen_to.when) &&
          queued[static_cast<std::size_t>(e.to)] == 0) {
        queued[static_cast<std::size_t>(e.to)] = 1;
        wl.push_back(e.to);
      }
    }
  }

  if (emit_intervals) {
    for (int id : rpo) {
      const IntervalEnv& env = in[static_cast<std::size_t>(id)];
      if (env.bot) continue;
      pass.report_node(cfg.node(id), env, findings);
    }
  }
  if (emit_unreachable) {
    for (int id : rpo) {
      const auto s = static_cast<std::size_t>(id);
      const CfgNode& n = cfg.node(id);
      if (!in[s].bot || n.kind == CfgNodeKind::Entry ||
          n.kind == CfgNodeKind::Exit || !n.loc.valid()) {
        continue;
      }
      // Report only the frontier: a dead node with a live predecessor.
      // Everything downstream of it stays silent (cascade suppression).
      bool live_pred = false;
      for (int p : n.preds) {
        if (!in[static_cast<std::size_t>(p)].bot) {
          live_pred = true;
          break;
        }
      }
      if (live_pred) {
        findings.emplace_back(Severity::Warning, "unreachable", n.loc,
                              unit.label, "statement is unreachable");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Provided-clause purity
// ---------------------------------------------------------------------------

const char* impure_reason(const RoutineEffects& eff) {
  if (eff.writes_module) return "writes module variables";
  if (eff.has_output) return "outputs interactions";
  if (eff.writes_heap) return "allocates or writes heap storage";
  if (eff.writes_when_param) return "writes interaction parameters";
  return nullptr;
}

void check_provided_calls(const Spec& spec, const Unit& unit, const Expr& e,
                          const std::vector<RoutineEffects>& effects,
                          std::vector<Finding>& findings) {
  const est::BodyDef& body = spec.body();
  auto check = [&](int index, SourceLoc loc,
                   const std::vector<est::ExprPtr>* args) {
    if (index < 0 || static_cast<std::size_t>(index) >= effects.size()) {
      return;
    }
    const RoutineEffects& eff = effects[static_cast<std::size_t>(index)];
    const std::string& callee =
        body.routines[static_cast<std::size_t>(index)].name;
    if (const char* why = impure_reason(eff)) {
      findings.emplace_back(Severity::Error, "purity", loc, unit.label,
                            "provided clause calls '" + callee + "', which " +
                                std::string(why));
      return;
    }
    // Pure-by-summary, but a var parameter may still write a caller slot.
    if (args == nullptr) return;
    for (std::size_t i = 0;
         i < std::min(eff.writes_param.size(), args->size()); ++i) {
      if (!eff.writes_param[i] || !(*args)[i]) continue;
      bool deref = false;
      const Expr* root = chain_root(*(*args)[i], &deref);
      const char* what =
          deref ? "heap storage"
                : (root != nullptr && root->ref == NameRef::ModuleVar)
                      ? "a module variable"
                      : "an interaction parameter";
      findings.emplace_back(
          Severity::Error, "purity", (*args)[i]->loc, unit.label,
          "provided clause calls '" + callee + "', which writes " + what +
              " through a var parameter");
    }
  };
  if (e.kind == ExprKind::Call && e.builtin == Builtin::None) {
    check(e.routine_index, e.loc, &e.children);
  }
  if (e.kind == ExprKind::Name && e.ref == NameRef::Call0) {
    check(e.slot, e.loc, nullptr);
  }
  for (const est::ExprPtr& c : e.children) {
    if (c) check_provided_calls(spec, unit, *c, effects, findings);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> run_dataflow(const Spec& spec,
                                  const DataflowOptions& opts) {
  std::vector<Finding> findings;
  const std::vector<Unit> units = collect_units(spec);
  std::vector<RoutineEffects> effects;
  if (opts.purity || opts.intervals || opts.unreachable) {
    effects = compute_routine_effects(spec);
  }

  ModuleUse mu(spec.module_vars.size());
  for (const Unit& u : units) {
    const FrameInfo frame = frame_info(u);
    if (opts.assign) {
      run_assign_unit(spec, u, frame, mu, findings);
    }
    if (opts.intervals || opts.unreachable) {
      run_interval_unit(spec, u, frame, effects, opts.intervals,
                        opts.unreachable, findings);
    }
    if (opts.purity && u.provided != nullptr) {
      check_provided_calls(spec, u, *u.provided, effects, findings);
    }
  }

  if (opts.assign) {
    // Module variables that are read somewhere but assigned nowhere can
    // only ever yield undefined-value faults.
    for (std::size_t s = 0; s < spec.module_vars.size(); ++s) {
      if (mu.read[s] == 0 || mu.written[s] != 0) continue;
      findings.emplace_back(
          Severity::Error, "assign", mu.first_read[s], "module variables",
          "module variable '" + spec.module_vars[s].name +
              "' is read but never assigned");
    }
  }
  return findings;
}

}  // namespace tango::analysis
