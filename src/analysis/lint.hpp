// Static specification checks beyond type correctness — the properties the
// paper asks specifiers to guarantee by hand:
//  - §2.1: the TAM "should be free of non-progress cycles ... as these can
//    foil DFS algorithms, yielding search trees of infinite depth";
//  - unreachable states and transitions that can therefore never fire;
//  - channel interactions never consumed or produced by any transition.
// Exposed through `tango lint`.
#pragma once

#include <vector>

#include "estelle/spec.hpp"
#include "support/diagnostics.hpp"

namespace tango::analysis {

struct LintReport {
  std::vector<Diagnostic> findings;

  [[nodiscard]] bool has_errors() const {
    for (const Diagnostic& d : findings) {
      if (d.severity == Severity::Error) return true;
    }
    return false;
  }
  [[nodiscard]] std::string render() const;
};

/// Runs all lint passes over a compiled specification.
[[nodiscard]] LintReport lint(const est::Spec& spec);

}  // namespace tango::analysis
