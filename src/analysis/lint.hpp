// Static specification checks beyond type correctness — the properties the
// paper asks specifiers to guarantee by hand, plus the dataflow and guard
// passes that strengthen them:
//  - reach:        unreachable states, and transitions that can never fire;
//  - cycles:       §2.1 non-progress cycles that foil depth-first search;
//  - interactions: channel interactions never consumed or produced;
//  - assign:       reads of possibly-uninitialized variables;
//  - intervals:    provable subrange/index/division runtime faults;
//  - unreachable:  statements no execution can reach;
//  - purity:       provided clauses reaching a side effect through a call;
//  - guards:       guard implication — duplicates, priority shadowing,
//                  nondeterministic overlap (see guard_solver.hpp);
//  - invariants:   whole-spec control-state invariants — semantically dead
//                  transitions, states unreachable in the interval
//                  fixpoint, interactions only output from dead code,
//                  cross-transition provable faults (see invariants.hpp).
// Exposed through `tango lint [--passes=...] [--format=text|json|sarif]`.
#pragma once

#include <string>
#include <vector>

#include "analysis/finding.hpp"
#include "estelle/spec.hpp"

namespace tango::analysis {

struct LintOptions {
  /// Comma-separated pass subset (e.g. "assign,guards"); empty = all.
  /// Unknown names throw CompileError.
  std::string passes;
  /// Artifact name used by the SARIF renderer (the spec path or
  /// "builtin:<name>").
  std::string source_name = "<spec>";
};

struct LintReport {
  std::vector<Finding> findings;  // canonical order (sort_findings)

  [[nodiscard]] bool has_errors() const {
    for (const Diagnostic& d : findings) {
      if (d.severity == Severity::Error) return true;
    }
    return false;
  }
  [[nodiscard]] bool has_warnings() const {
    for (const Diagnostic& d : findings) {
      if (d.severity == Severity::Warning) return true;
    }
    return false;
  }
  /// One finding per line: "line:col: severity: [pass] unit: message".
  [[nodiscard]] std::string render() const;
  /// Stable JSON array of finding objects.
  [[nodiscard]] std::string render_json(const std::string& source) const;
  /// SARIF 2.1.0 with one rule per pass, for code-scanning upload.
  [[nodiscard]] std::string render_sarif(const std::string& source) const;
};

/// Runs the selected lint passes over a compiled specification.
[[nodiscard]] LintReport lint(const est::Spec& spec,
                              const LintOptions& options);
[[nodiscard]] inline LintReport lint(const est::Spec& spec) {
  return lint(spec, LintOptions{});
}

}  // namespace tango::analysis
