#include "analysis/invariants.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "analysis/cfg.hpp"

namespace tango::analysis {

namespace {

using est::Expr;
using est::ExprKind;
using est::NameRef;
using est::Routine;
using est::Spec;
using est::Stmt;
using est::StmtKind;
using est::Transition;

// ---------------------------------------------------------------------------
// Transfer plumbing: one cached abstract interpreter per unit
// ---------------------------------------------------------------------------

/// Everything the fixpoint needs to push one unit's transfer function
/// repeatedly: its CFG (when it has a block) and an IntervalPass whose
/// module bounds are the trusted-aware ones (top for subrange slots a
/// var-parameter store can push out of range — the declared-bounds clobber
/// reset in the per-unit pass would be unsound there).
struct UnitSolver {
  const Unit* unit = nullptr;
  FrameInfo frame;
  Cfg cfg;
  bool has_cfg = false;
  IntervalPass pass;
  IntervalEnv widen_to;  // raw trusted-aware bounds env

  UnitSolver(const Spec& spec, const Unit& u,
             const std::vector<RoutineEffects>& effects,
             const std::vector<Interval>& trusted_bounds)
      : unit(&u), frame(frame_info(u)), pass(spec, u, frame, effects) {
    pass.set_module_bounds(trusted_bounds);
    pass.set_when_bounds_top();
    if (u.block != nullptr) {
      cfg = build_cfg(*u.block);
      has_cfg = true;
    }
    widen_to = pass.entry_env_raw();
  }

  /// Is the provided clause definitely false when entered with `menv`?
  bool refuted(const std::vector<Interval>& menv) {
    if (unit->provided == nullptr) return false;
    IntervalEnv entry = pass.entry_env_raw();
    entry.module = menv;
    const Interval g = pass.eval(*unit->provided, entry);
    return !g.bot() && g.hi <= 0;
  }

  /// Module env at normal exit, entered with `menv`, provided clause
  /// assumed true. nullopt: the unit can never complete from here (clause
  /// refuted, or every path to exit is abstractly infeasible). The
  /// optional wrapper matters: a module with zero variables has an empty
  /// env on a perfectly normal exit.
  std::optional<std::vector<Interval>> post_module(
      const std::vector<Interval>& menv) {
    IntervalEnv entry = pass.entry_env_raw();
    entry.module = menv;
    if (unit->provided != nullptr) {
      const Interval g = pass.eval(*unit->provided, entry);
      if (!g.bot() && g.hi <= 0) return std::nullopt;
      pass.refine(entry, *unit->provided, true);
    }
    if (!has_cfg) return entry.module;
    const std::vector<IntervalEnv> in =
        solve_intervals(cfg, pass, entry, widen_to);
    const IntervalEnv& exit = in[static_cast<std::size_t>(cfg.exit)];
    if (exit.bot) return std::nullopt;
    return exit.module;
  }
};

// ---------------------------------------------------------------------------
// Channel flow: which (ip, interaction) pairs can live code output?
// ---------------------------------------------------------------------------

struct OutScan {
  std::set<std::pair<int, int>> outs;  // (ip_index, interaction_id)
  std::set<int> callees;               // routine indices
};

void scan_out_expr(const Expr& e, OutScan& out) {
  if (e.kind == ExprKind::Call && e.builtin == est::Builtin::None &&
      e.routine_index >= 0) {
    out.callees.insert(e.routine_index);
  }
  if (e.kind == ExprKind::Name && e.ref == NameRef::Call0) {
    out.callees.insert(e.slot);
  }
  for (const est::ExprPtr& c : e.children) {
    if (c) scan_out_expr(*c, out);
  }
}

void scan_out_stmt(const Stmt& s, OutScan& out) {
  if (s.kind == StmtKind::Output && s.ip_index >= 0 &&
      s.interaction_id >= 0) {
    out.outs.insert({s.ip_index, s.interaction_id});
  }
  if (s.kind == StmtKind::Call && s.builtin == est::Builtin::None &&
      s.routine_index >= 0) {
    out.callees.insert(s.routine_index);
  }
  if (s.e0) scan_out_expr(*s.e0, out);
  if (s.e1) scan_out_expr(*s.e1, out);
  for (const est::ExprPtr& a : s.args) {
    if (a) scan_out_expr(*a, out);
  }
  if (s.s0) scan_out_stmt(*s.s0, out);
  if (s.s1) scan_out_stmt(*s.s1, out);
  for (const est::StmtPtr& c : s.body) {
    if (c) scan_out_stmt(*c, out);
  }
  for (const est::CaseArm& arm : s.arms) {
    if (arm.body) scan_out_stmt(*arm.body, out);
  }
  for (const est::StmtPtr& c : s.otherwise) {
    if (c) scan_out_stmt(*c, out);
  }
}

/// Per-routine transitive output sets (a fixpoint mirroring
/// compute_routine_effects, but carrying the concrete (ip, interaction)
/// pairs instead of a has_output bit).
std::vector<std::set<std::pair<int, int>>> routine_out_sets(
    const Spec& spec) {
  const std::vector<Routine>& routines = spec.body().routines;
  std::vector<OutScan> scans(routines.size());
  for (std::size_t i = 0; i < routines.size(); ++i) {
    if (routines[i].body) scan_out_stmt(*routines[i].body, scans[i]);
  }
  std::vector<std::set<std::pair<int, int>>> outs(routines.size());
  for (std::size_t i = 0; i < routines.size(); ++i) {
    outs[i] = scans[i].outs;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < routines.size(); ++i) {
      for (int callee : scans[i].callees) {
        if (callee < 0 || static_cast<std::size_t>(callee) >= outs.size()) {
          continue;
        }
        for (const auto& p : outs[static_cast<std::size_t>(callee)]) {
          changed |= outs[i].insert(p).second;
        }
      }
    }
  }
  return outs;
}

/// Every (ip, interaction) a unit can output, including through callees —
/// over-approximate: all branches count, feasible or not.
void unit_emit_set(
    const Unit& u,
    const std::vector<std::set<std::pair<int, int>>>& routine_outs,
    std::set<std::pair<int, int>>& into) {
  if (u.block == nullptr) return;
  OutScan scan;
  scan_out_stmt(*u.block, scan);
  into.insert(scan.outs.begin(), scan.outs.end());
  for (int callee : scan.callees) {
    if (callee >= 0 && static_cast<std::size_t>(callee) <
                           routine_outs.size()) {
      const auto& co = routine_outs[static_cast<std::size_t>(callee)];
      into.insert(co.begin(), co.end());
    }
  }
}

/// Syntactic control-state reachability (transition edges with guards
/// ignored), used to deduplicate against the `reach` lint pass: the
/// invariants pass only reports states the syntactic BFS can reach but the
/// fixpoint cannot.
std::vector<char> syntactic_reach(const Spec& spec) {
  std::vector<char> seen(spec.states.size(), 0);
  std::deque<int> wl;
  auto visit = [&](int s) {
    if (s >= 0 && static_cast<std::size_t>(s) < seen.size() &&
        seen[static_cast<std::size_t>(s)] == 0) {
      seen[static_cast<std::size_t>(s)] = 1;
      wl.push_back(s);
    }
  };
  for (const est::Initializer& init : spec.body().initializers) {
    visit(init.to_ordinal);
  }
  while (!wl.empty()) {
    const int s = wl.front();
    wl.pop_front();
    for (int ti : spec.transitions_by_state[static_cast<std::size_t>(s)]) {
      const Transition& t =
          spec.body().transitions[static_cast<std::size_t>(ti)];
      visit(t.to_ordinal >= 0 ? t.to_ordinal : s);
    }
  }
  return seen;
}

}  // namespace

// ---------------------------------------------------------------------------
// The whole-spec fixpoint
// ---------------------------------------------------------------------------

StateInvariants compute_state_invariants(
    const Spec& spec, const std::vector<RoutineEffects>& effects) {
  StateInvariants inv;
  inv.n_states = static_cast<int>(spec.states.size());
  inv.n_transitions = static_cast<int>(spec.body().transitions.size());
  inv.n_module_vars = static_cast<int>(spec.module_vars.size());
  inv.n_ips = static_cast<int>(spec.ips.size());
  inv.n_interactions = static_cast<int>(spec.interactions.size());
  const auto ns = static_cast<std::size_t>(inv.n_states);
  const auto nt = static_cast<std::size_t>(inv.n_transitions);
  const auto nv = static_cast<std::size_t>(inv.n_module_vars);
  inv.bounds.assign(ns * nv, Interval{});  // default = bottom
  inv.reachable.assign(ns, 0);
  inv.refuted.assign(ns * nt, 0);
  inv.dead.assign(nt, 0);
  inv.emittable.assign(static_cast<std::size_t>(inv.n_ips) *
                           static_cast<std::size_t>(inv.n_interactions),
                       0);
  if (inv.n_states == 0) return inv;  // valid stays false: nothing to prove

  // Proof discipline: an impure provided clause evaluated during generate()
  // can move the module state outside this engine's transfer model (which
  // only applies transition BODIES between states). Refuse wholesale.
  const est::BodyDef& body = spec.body();
  for (const est::Initializer& init : body.initializers) {
    if (!provided_clause_pure(init.provided.get(), effects)) return inv;
  }
  for (const Transition& t : body.transitions) {
    if (!provided_clause_pure(t.provided.get(), effects)) return inv;
  }

  // Trusted-aware bounds: slots whose declared subrange a var-parameter
  // store can escape get top (see trusted_module_slots).
  const std::vector<char> trusted = trusted_module_slots(spec, effects);
  std::vector<Interval> tb(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    tb[v] = trusted[v] != 0 ? bounds_or_top(spec.module_vars[v].type)
                            : Interval::top();
  }

  // One solver per unit; collect_units orders initializers, then
  // transitions, then routines.
  const std::vector<Unit> units = collect_units(spec);
  const std::size_t n_inits = body.initializers.size();
  std::vector<UnitSolver> solvers;
  solvers.reserve(n_inits + nt);
  for (std::size_t i = 0; i < n_inits + nt; ++i) {
    solvers.emplace_back(spec, units[i], effects, tb);
  }

  // State environments. A state is reachable once any initializer or
  // transition lands in it; its env only grows (hull, widened toward tb
  // after kWidenAfter merges), so the worklist terminates.
  std::vector<std::vector<Interval>> env(ns);
  std::vector<char> reached(ns, 0);
  std::vector<int> merges(ns, 0);
  std::deque<int> wl;
  std::vector<char> queued(ns, 0);

  const auto join_into = [&](int target, const std::vector<Interval>& post) {
    const auto st = static_cast<std::size_t>(target);
    if (reached[st] == 0) {
      env[st] = post;
      for (std::size_t v = 0; v < nv; ++v) {
        env[st][v] = meet(env[st][v], tb[v]);
      }
      reached[st] = 1;
      if (queued[st] == 0) {
        queued[st] = 1;
        wl.push_back(target);
      }
      return;
    }
    const bool widen = ++merges[st] > kWidenAfter;
    bool grown = false;
    for (std::size_t v = 0; v < nv; ++v) {
      const Interval src = meet(post[v], tb[v]);
      Interval h = hull(env[st][v], src);
      if (widen && (h.lo < env[st][v].lo || h.hi > env[st][v].hi)) {
        if (h.lo < env[st][v].lo) h.lo = tb[v].lo;
        if (h.hi > env[st][v].hi) h.hi = tb[v].hi;
      }
      if (h.lo != env[st][v].lo || h.hi != env[st][v].hi) {
        env[st][v] = h;
        grown = true;
      }
    }
    if (grown && queued[st] == 0) {
      queued[st] = 1;
      wl.push_back(target);
    }
  };

  // Seed: initializer post-states. Module variables start undefined — any
  // read before write faults and aborts that execution, so the trusted
  // bounds are a sound entry abstraction for every non-faulting path.
  for (std::size_t i = 0; i < n_inits; ++i) {
    const est::Initializer& init = body.initializers[i];
    if (init.to_ordinal < 0) continue;
    const std::optional<std::vector<Interval>> post =
        solvers[i].post_module(tb);
    if (!post) continue;  // provided refuted / no normal exit
    join_into(init.to_ordinal, *post);
  }

  // Iterate transitions to fixpoint.
  while (!wl.empty()) {
    const int s = wl.front();
    wl.pop_front();
    queued[static_cast<std::size_t>(s)] = 0;
    // env[s] may grow while s sits queued; snapshot per pop.
    const std::vector<Interval> at = env[static_cast<std::size_t>(s)];
    for (int ti : spec.transitions_by_state[static_cast<std::size_t>(s)]) {
      const Transition& t =
          body.transitions[static_cast<std::size_t>(ti)];
      UnitSolver& solver = solvers[n_inits + static_cast<std::size_t>(ti)];
      const std::optional<std::vector<Interval>> post = solver.post_module(at);
      if (!post) continue;
      join_into(t.to_ordinal >= 0 ? t.to_ordinal : s, *post);
    }
  }

  // Post-fixpoint tables, computed against the final (largest) envs so
  // every recorded refutation is a proof over the whole fixpoint.
  inv.reachable = reached;
  for (std::size_t s = 0; s < ns; ++s) {
    if (reached[s] == 0) continue;
    for (std::size_t v = 0; v < nv; ++v) {
      inv.bounds[s * nv + v] = env[s][v];
    }
  }
  for (std::size_t s = 0; s < ns; ++s) {
    if (reached[s] == 0) continue;
    for (int ti : spec.transitions_by_state[s]) {
      UnitSolver& solver = solvers[n_inits + static_cast<std::size_t>(ti)];
      if (solver.refuted(env[s])) {
        inv.refuted[s * nt + static_cast<std::size_t>(ti)] = 1;
      }
    }
  }
  for (std::size_t ti = 0; ti < nt; ++ti) {
    const Transition& t = body.transitions[ti];
    bool can_fire = false;
    for (int from : t.from_ordinals) {
      const auto sf = static_cast<std::size_t>(from);
      if (sf < ns && reached[sf] != 0 && inv.refuted[sf * nt + ti] == 0) {
        can_fire = true;
        break;
      }
    }
    inv.dead[ti] = can_fire ? 0 : 1;
  }

  // Channel flow over live code only: initializers (those that can
  // complete) and non-dead transitions, plus everything their callees can
  // output.
  const std::vector<std::set<std::pair<int, int>>> routine_outs =
      routine_out_sets(spec);
  std::set<std::pair<int, int>> emit;
  for (std::size_t i = 0; i < n_inits; ++i) {
    if (!solvers[i].refuted(tb)) {
      unit_emit_set(units[i], routine_outs, emit);
    }
  }
  for (std::size_t ti = 0; ti < nt; ++ti) {
    if (inv.dead[ti] == 0) {
      unit_emit_set(units[n_inits + ti], routine_outs, emit);
    }
  }
  for (const auto& [ip, id] : emit) {
    if (ip >= 0 && ip < inv.n_ips && id >= 0 && id < inv.n_interactions) {
      inv.emittable[static_cast<std::size_t>(ip) *
                        static_cast<std::size_t>(inv.n_interactions) +
                    static_cast<std::size_t>(id)] = 1;
    }
  }

  inv.valid = true;
  return inv;
}

// ---------------------------------------------------------------------------
// The `invariants` lint pass
// ---------------------------------------------------------------------------

std::vector<Finding> invariant_findings(
    const Spec& spec, const std::vector<RoutineEffects>& effects,
    const StateInvariants& inv) {
  std::vector<Finding> findings;
  if (!inv.valid) return findings;
  const est::BodyDef& body = spec.body();
  const auto nt = static_cast<std::size_t>(inv.n_transitions);
  const auto nv = static_cast<std::size_t>(inv.n_module_vars);

  // 1. Control states the syntactic graph reaches but the fixpoint proves
  //    unenterable (the purely syntactic case is the `reach` pass's).
  const std::vector<char> syntactic = syntactic_reach(spec);
  for (std::size_t s = 0; s < static_cast<std::size_t>(inv.n_states); ++s) {
    if (syntactic[s] == 0 || inv.reachable[s] != 0) continue;
    findings.emplace_back(
        Severity::Warning, "invariants", spec.state_locs[s],
        "state '" + spec.states[s] + "'",
        "control state '" + spec.states[s] +
            "' is unreachable in the interval fixpoint: every transition "
            "entering it is refuted by the state invariants");
  }

  // Baseline per-transition interval pass (declared bounds, exactly what
  // the `intervals` pass runs) — used twice: to drop dead-transition
  // reports the `guards` pass already made (state-independent
  // contradiction) and to deduplicate fault findings by location.
  const std::vector<Unit> units = collect_units(spec);
  const std::size_t n_inits = body.initializers.size();
  const std::vector<char> trusted = trusted_module_slots(spec, effects);
  std::vector<Interval> tb(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    tb[v] = trusted[v] != 0 ? bounds_or_top(spec.module_vars[v].type)
                            : Interval::top();
  }

  for (std::size_t ti = 0; ti < nt; ++ti) {
    const Transition& t = body.transitions[ti];
    const Unit& u = units[n_inits + ti];
    const std::string label = "transition '" + t.name + "'";

    if (inv.is_dead(static_cast<int>(ti))) {
      // Which flavour of dead? All sources unreachable, or the clause
      // refuted at every reachable source. State-independent
      // contradictions (refuted even under plain type bounds) belong to
      // the `guards` pass; syntactically-unreachable sources to `reach`.
      bool any_reachable_source = false;
      bool any_syntactic_source = false;
      for (int from : t.from_ordinals) {
        const auto sf = static_cast<std::size_t>(from);
        if (inv.reachable[sf] != 0) any_reachable_source = true;
        if (syntactic[sf] != 0) any_syntactic_source = true;
      }
      if (!any_reachable_source) {
        if (any_syntactic_source) {
          findings.emplace_back(
              Severity::Warning, "invariants", t.loc, label,
              label + " can never fire: no source state is reachable in "
                      "the interval fixpoint");
        }
        continue;  // purely syntactic case: `reach` already reports it
      }
      UnitSolver base(spec, u, effects, tb);
      if (base.refuted(tb)) continue;  // `guards` already reports it
      findings.emplace_back(
          Severity::Warning, "invariants", t.loc, label,
          label + " is semantically dead: its provided clause is "
                  "unsatisfiable under the invariant of every reachable "
                  "source state");
      continue;
    }

    // 4. Cross-transition provable faults: re-run the reporting pass with
    //    the join of the live source-state invariants as the module entry
    //    env; keep only findings the declared-bounds baseline run does not
    //    produce at the same location.
    if (u.block == nullptr) continue;
    std::vector<Interval> entry_mod(nv, Interval{});
    for (int from : t.from_ordinals) {
      const auto sf = static_cast<std::size_t>(from);
      if (inv.reachable[sf] == 0 ||
          inv.refuted[sf * nt + ti] != 0) {
        continue;
      }
      for (std::size_t v = 0; v < nv; ++v) {
        entry_mod[v] = hull(entry_mod[v], inv.bound(static_cast<int>(sf),
                                                    static_cast<int>(v)));
      }
    }

    std::vector<Finding> baseline;
    {
      const FrameInfo frame = frame_info(u);
      IntervalPass pass(spec, u, frame, effects);
      const Cfg cfg = build_cfg(*u.block);
      const IntervalEnv entry = pass.entry_env();
      const std::vector<IntervalEnv> in =
          solve_intervals(cfg, pass, entry, entry);
      for (int id : cfg.reverse_post_order()) {
        const IntervalEnv& e = in[static_cast<std::size_t>(id)];
        if (!e.bot) pass.report_node(cfg.node(id), e, baseline);
      }
    }
    std::set<std::pair<int, int>> baseline_locs;
    for (const Finding& f : baseline) {
      baseline_locs.insert({f.loc.line, f.loc.column});
    }

    std::vector<Finding> seeded;
    {
      UnitSolver solver(spec, u, effects, tb);
      IntervalEnv entry = solver.pass.entry_env_raw();
      entry.module = entry_mod;
      if (u.provided != nullptr) {
        solver.pass.refine(entry, *u.provided, true);
      }
      const std::vector<IntervalEnv> in =
          solve_intervals(solver.cfg, solver.pass, entry, solver.widen_to);
      for (int id : solver.cfg.reverse_post_order()) {
        const IntervalEnv& e = in[static_cast<std::size_t>(id)];
        if (!e.bot) solver.pass.report_node(solver.cfg.node(id), e, seeded);
      }
    }
    for (const Finding& f : seeded) {
      if (baseline_locs.count({f.loc.line, f.loc.column}) != 0) continue;
      findings.emplace_back(Severity::Warning, "invariants", f.loc, label,
                            f.message +
                                " (provable only across transitions, from "
                                "the control-state invariant)");
    }
  }

  // 3. Interactions with syntactic output sites that are all statically
  //    dead (no site at all is the `interactions` pass's case).
  {
    std::set<std::pair<int, int>> all_sites;
    const std::vector<std::set<std::pair<int, int>>> routine_outs =
        routine_out_sets(spec);
    for (std::size_t i = 0; i < n_inits + nt; ++i) {
      unit_emit_set(units[i], routine_outs, all_sites);
    }
    for (const auto& [ip, id] : all_sites) {
      if (ip < 0 || ip >= inv.n_ips || id < 0 ||
          id >= inv.n_interactions) {
        continue;
      }
      if (inv.is_emittable(ip, id)) continue;
      findings.emplace_back(
          Severity::Warning, "invariants", SourceLoc{},
          "ip '" + spec.ips[static_cast<std::size_t>(ip)].name + "'",
          "interaction '" + spec.interaction(id).name + "' can never be "
              "output on ip '" +
              spec.ips[static_cast<std::size_t>(ip)].name +
              "': every output site is statically dead");
    }
  }

  return findings;
}

// ---------------------------------------------------------------------------
// GuardMatrix v2 augmentation
// ---------------------------------------------------------------------------

void augment_guard_matrix(const Spec& spec, const StateInvariants& inv,
                          GuardMatrix& gm) {
  if (!inv.valid) return;
  if (gm.n != inv.n_transitions) return;  // defensive: mismatched spec
  gm.n_states = inv.n_states;
  gm.n_module_vars = inv.n_module_vars;
  gm.n_ips = inv.n_ips;
  gm.n_interactions = inv.n_interactions;
  gm.state_refuted_ = inv.refuted;
  gm.state_reachable_ = inv.reachable;
  gm.never_out_.assign(inv.emittable.size(), 0);
  bool any_out_site = false;
  for (std::size_t i = 0; i < inv.emittable.size(); ++i) {
    gm.never_out_[i] = inv.emittable[i] != 0 ? 0 : 1;
    any_out_site = any_out_site || inv.emittable[i] != 0;
  }
  // A trace's out events were validated against the spec's channel
  // declarations, not against reachable code — never_out entries are
  // meaningful even when no code outputs anything (every pending out event
  // is then doomed). Keep them all.
  (void)any_out_site;
  (void)spec;
  gm.inv_lo_.assign(inv.bounds.size(), 1);
  gm.inv_hi_.assign(inv.bounds.size(), 0);
  for (std::size_t i = 0; i < inv.bounds.size(); ++i) {
    gm.inv_lo_[i] = inv.bounds[i].lo;
    gm.inv_hi_[i] = inv.bounds[i].hi;
  }
}

}  // namespace tango::analysis
