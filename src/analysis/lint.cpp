#include "analysis/lint.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "analysis/dataflow.hpp"
#include "analysis/guard_solver.hpp"
#include "analysis/invariants.hpp"

namespace tango::analysis {

namespace {

using est::Spec;
using est::Stmt;
using est::StmtKind;
using est::Transition;

bool block_has_output(const Stmt& s) {
  if (s.kind == StmtKind::Output) return true;
  for (const est::StmtPtr& c : s.body) {
    if (c && block_has_output(*c)) return true;
  }
  for (const est::StmtPtr& c : s.otherwise) {
    if (c && block_has_output(*c)) return true;
  }
  for (const est::CaseArm& arm : s.arms) {
    if (arm.body && block_has_output(*arm.body)) return true;
  }
  if (s.s0 && block_has_output(*s.s0)) return true;
  if (s.s1 && block_has_output(*s.s1)) return true;
  return false;
}

SourceLoc state_loc(const Spec& spec, std::size_t ordinal) {
  return ordinal < spec.state_locs.size() ? spec.state_locs[ordinal]
                                          : SourceLoc{};
}

/// States reachable from the initializers' target states over the
/// transition graph (conservative: provided clauses ignored).
std::vector<char> reachable_states(const Spec& spec) {
  std::vector<char> seen(spec.states.size(), 0);
  std::deque<int> work;
  for (const est::Initializer& init : spec.body().initializers) {
    if (!seen[static_cast<std::size_t>(init.to_ordinal)]) {
      seen[static_cast<std::size_t>(init.to_ordinal)] = 1;
      work.push_back(init.to_ordinal);
    }
  }
  while (!work.empty()) {
    const int s = work.front();
    work.pop_front();
    for (const Transition& tr : spec.body().transitions) {
      if (!std::binary_search(tr.from_ordinals.begin(),
                              tr.from_ordinals.end(), s)) {
        continue;
      }
      const int to = tr.to_ordinal >= 0 ? tr.to_ordinal : s;  // `same`
      if (!seen[static_cast<std::size_t>(to)]) {
        seen[static_cast<std::size_t>(to)] = 1;
        work.push_back(to);
      }
    }
  }
  return seen;
}

void check_reachability(const Spec& spec, LintReport& report) {
  const std::vector<char> seen = reachable_states(spec);
  for (std::size_t s = 0; s < spec.states.size(); ++s) {
    if (!seen[s]) {
      report.findings.emplace_back(
          Severity::Warning, "reach", state_loc(spec, s),
          "state '" + spec.states[s] + "'",
          "state '" + spec.states[s] +
              "' is unreachable from every initial state");
    }
  }
  for (const Transition& tr : spec.body().transitions) {
    const bool fireable_somewhere = std::any_of(
        tr.from_ordinals.begin(), tr.from_ordinals.end(),
        [&](int s) { return seen[static_cast<std::size_t>(s)] != 0; });
    if (!fireable_somewhere) {
      report.findings.emplace_back(
          Severity::Warning, "reach", tr.loc, "transition '" + tr.name + "'",
          "transition '" + tr.name +
              "' can never fire: all of its source states are unreachable");
    }
  }
}

/// §2.1 footnote 1: cycles of spontaneous transitions that consume no
/// input and produce no output. Detected structurally over the graph of
/// spontaneous, output-free transitions; a cycle with no provided guard
/// anywhere is certain to foil DFS (error), a guarded one may (warning).
void check_non_progress_cycles(const Spec& spec, LintReport& report) {
  struct Edge {
    int to;
    bool guarded;
    const Transition* tr;
  };
  const auto n = spec.states.size();
  std::vector<std::vector<Edge>> graph(n);
  for (const Transition& tr : spec.body().transitions) {
    if (tr.when) continue;                     // consumes input: progress
    if (block_has_output(*tr.block)) continue; // produces output: progress
    for (int from : tr.from_ordinals) {
      const int to = tr.to_ordinal >= 0 ? tr.to_ordinal : from;
      graph[static_cast<std::size_t>(from)].push_back(
          Edge{to, tr.provided != nullptr, &tr});
    }
  }

  // DFS cycle detection; report each state that can re-reach itself.
  std::set<const Transition*> reported;
  for (std::size_t start = 0; start < n; ++start) {
    // BFS from each successor of `start` back to `start`.
    for (const Edge& first : graph[start]) {
      std::vector<char> seen(n, 0);
      std::deque<int> work{first.to};
      bool all_unguarded = !first.guarded;
      bool closes = first.to == static_cast<int>(start);
      while (!work.empty() && !closes) {
        const int s = work.front();
        work.pop_front();
        if (seen[static_cast<std::size_t>(s)]) continue;
        seen[static_cast<std::size_t>(s)] = 1;
        for (const Edge& e : graph[static_cast<std::size_t>(s)]) {
          if (e.to == static_cast<int>(start)) {
            closes = true;
            all_unguarded = all_unguarded && !e.guarded;
            break;
          }
          work.push_back(e.to);
        }
      }
      if (closes && reported.insert(first.tr).second) {
        report.findings.emplace_back(
            all_unguarded ? Severity::Error : Severity::Warning, "cycles",
            first.tr->loc, "transition '" + first.tr->name + "'",
            "transition '" + first.tr->name +
                "' starts a non-progress cycle (spontaneous, no output, "
                "returns to state '" + spec.states[start] + "')" +
                (all_unguarded
                     ? " with no provided guard anywhere: depth-first "
                       "trace analysis WILL diverge (paper §2.1)"
                     : "; a provided guard may bound it, but the cycle "
                       "can foil depth-first trace analysis (paper §2.1)"));
      }
    }
  }
}

void check_dead_interactions(const Spec& spec, LintReport& report) {
  std::vector<char> consumed(spec.interactions.size(), 0);
  std::vector<char> produced(spec.interactions.size(), 0);

  for (const Transition& tr : spec.body().transitions) {
    if (tr.when) {
      consumed[static_cast<std::size_t>(tr.when->interaction_id)] = 1;
    }
  }
  auto scan_outputs = [&](const Stmt& s, auto&& self) -> void {
    if (s.kind == StmtKind::Output) {
      produced[static_cast<std::size_t>(s.interaction_id)] = 1;
    }
    for (const est::StmtPtr& c : s.body) {
      if (c) self(*c, self);
    }
    for (const est::StmtPtr& c : s.otherwise) {
      if (c) self(*c, self);
    }
    for (const est::CaseArm& arm : s.arms) {
      if (arm.body) self(*arm.body, self);
    }
    if (s.s0) self(*s.s0, self);
    if (s.s1) self(*s.s1, self);
  };
  for (const Transition& tr : spec.body().transitions) {
    scan_outputs(*tr.block, scan_outputs);
  }
  for (const est::Routine& r : spec.body().routines) {
    scan_outputs(*r.body, scan_outputs);
  }
  for (const est::Initializer& init : spec.body().initializers) {
    if (init.block) scan_outputs(*init.block, scan_outputs);
  }

  for (const est::IpInfo& ip : spec.ips) {
    for (const auto& [name, id] : ip.inputs) {
      if (!consumed[static_cast<std::size_t>(id)]) {
        report.findings.emplace_back(
            Severity::Warning, "interactions", SourceLoc{},
            "ip '" + ip.name + "'",
            "input interaction '" + ip.name + "." + name +
                "' is never consumed by any transition");
      }
    }
    for (const auto& [name, id] : ip.outputs) {
      if (!produced[static_cast<std::size_t>(id)]) {
        report.findings.emplace_back(
            Severity::Warning, "interactions", SourceLoc{},
            "ip '" + ip.name + "'",
            "output interaction '" + ip.name + "." + name +
                "' is never produced by any transition");
      }
    }
  }
}

constexpr const char* kPassNames[] = {"reach",       "cycles",  "interactions",
                                      "assign",      "intervals",
                                      "unreachable", "purity",  "guards",
                                      "invariants"};

std::set<std::string> parse_passes(const std::string& passes) {
  std::set<std::string> on;
  if (passes.empty()) {
    for (const char* p : kPassNames) on.insert(p);
    return on;
  }
  std::size_t begin = 0;
  while (begin <= passes.size()) {
    std::size_t comma = passes.find(',', begin);
    if (comma == std::string::npos) comma = passes.size();
    const std::string name = passes.substr(begin, comma - begin);
    if (!name.empty()) {
      const bool known =
          std::any_of(std::begin(kPassNames), std::end(kPassNames),
                      [&](const char* p) { return name == p; });
      if (!known) {
        throw CompileError({}, "unknown lint pass '" + name +
                                   "' (expected a comma-separated subset of "
                                   "reach,cycles,interactions,assign,"
                                   "intervals,unreachable,purity,guards,"
                                   "invariants)");
      }
      on.insert(name);
    }
    begin = comma + 1;
  }
  return on;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  json_escape_into(out, s);
  out += '"';
  return out;
}

}  // namespace

std::string LintReport::render() const {
  std::string out;
  for (const Finding& f : findings) {
    if (f.loc.valid()) {
      out += tango::to_string(f.loc);
      out += ": ";
    }
    out += to_string(f.severity);
    out += ": [";
    out += f.pass;
    out += "] ";
    if (!f.unit.empty()) {
      out += f.unit;
      out += ": ";
    }
    out += f.message;
    out += '\n';
  }
  if (findings.empty()) out = "no findings\n";
  return out;
}

std::string LintReport::render_json(const std::string& source) const {
  std::string out = "{\"source\":" + quoted(source) + ",\"findings\":[";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ',';
    first = false;
    out += "{\"severity\":" + quoted(to_string(f.severity)) +
           ",\"pass\":" + quoted(f.pass) +
           ",\"line\":" + std::to_string(f.loc.line) +
           ",\"column\":" + std::to_string(f.loc.column);
    if (f.end.valid()) {
      out += ",\"end_line\":" + std::to_string(f.end.line) +
             ",\"end_column\":" + std::to_string(f.end.column);
    }
    out += ",\"unit\":" + quoted(f.unit) +
           ",\"message\":" + quoted(f.message) + "}";
  }
  out += "]}\n";
  return out;
}

std::string LintReport::render_sarif(const std::string& source) const {
  // SARIF "level" has no note; notes map to "note" (valid since 2.1.0).
  auto level = [](Severity s) {
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "none";
  };

  // One reportingDescriptor per pass that actually fired, sorted by id.
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.pass);

  std::string out =
      "{\"version\":\"2.1.0\",\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"tango lint\","
      "\"rules\":[";
  bool first = true;
  for (const std::string& r : rules) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + quoted(r) + "}";
  }
  out += "]}},\"results\":[";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out += ',';
    first = false;
    out += "{\"ruleId\":" + quoted(f.pass) +
           ",\"level\":" + quoted(level(f.severity)) +
           ",\"message\":{\"text\":" + quoted(f.message) + "}";
    if (f.loc.valid()) {
      const SourceLoc end = f.end.valid() ? f.end : f.loc;
      out += ",\"locations\":[{\"physicalLocation\":{"
             "\"artifactLocation\":{\"uri\":" + quoted(source) + "},"
             "\"region\":{\"startLine\":" + std::to_string(f.loc.line) +
             ",\"startColumn\":" + std::to_string(f.loc.column) +
             ",\"endLine\":" + std::to_string(end.line) +
             ",\"endColumn\":" + std::to_string(end.column) + "}}}]";
    }
    out += '}';
  }
  out += "]}]}\n";
  return out;
}

LintReport lint(const est::Spec& spec, const LintOptions& options) {
  const std::set<std::string> on = parse_passes(options.passes);
  LintReport report;
  if (on.count("reach")) check_reachability(spec, report);
  if (on.count("cycles")) check_non_progress_cycles(spec, report);
  if (on.count("interactions")) check_dead_interactions(spec, report);

  DataflowOptions df;
  df.assign = on.count("assign") != 0;
  df.intervals = on.count("intervals") != 0;
  df.unreachable = on.count("unreachable") != 0;
  df.purity = on.count("purity") != 0;
  if (df.assign || df.intervals || df.unreachable || df.purity) {
    std::vector<Finding> flow = run_dataflow(spec, df);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(flow.begin()),
                           std::make_move_iterator(flow.end()));
  }
  if (on.count("guards")) {
    GuardAnalysis ga = analyze_guards(spec);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(ga.findings.begin()),
                           std::make_move_iterator(ga.findings.end()));
  }
  if (on.count("invariants")) {
    const std::vector<RoutineEffects> effects = compute_routine_effects(spec);
    const StateInvariants inv = compute_state_invariants(spec, effects);
    std::vector<Finding> facts = invariant_findings(spec, effects, inv);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(facts.begin()),
                           std::make_move_iterator(facts.end()));
  }
  sort_findings(report.findings);
  return report;
}

}  // namespace tango::analysis
