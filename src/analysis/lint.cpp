#include "analysis/lint.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace tango::analysis {

namespace {

using est::Spec;
using est::Stmt;
using est::StmtKind;
using est::Transition;

bool block_has_output(const Stmt& s) {
  if (s.kind == StmtKind::Output) return true;
  for (const est::StmtPtr& c : s.body) {
    if (c && block_has_output(*c)) return true;
  }
  for (const est::StmtPtr& c : s.otherwise) {
    if (c && block_has_output(*c)) return true;
  }
  for (const est::CaseArm& arm : s.arms) {
    if (arm.body && block_has_output(*arm.body)) return true;
  }
  if (s.s0 && block_has_output(*s.s0)) return true;
  if (s.s1 && block_has_output(*s.s1)) return true;
  return false;
}

/// States reachable from the initializers' target states over the
/// transition graph (conservative: provided clauses ignored).
std::vector<char> reachable_states(const Spec& spec) {
  std::vector<char> seen(spec.states.size(), 0);
  std::deque<int> work;
  for (const est::Initializer& init : spec.body().initializers) {
    if (!seen[static_cast<std::size_t>(init.to_ordinal)]) {
      seen[static_cast<std::size_t>(init.to_ordinal)] = 1;
      work.push_back(init.to_ordinal);
    }
  }
  while (!work.empty()) {
    const int s = work.front();
    work.pop_front();
    for (const Transition& tr : spec.body().transitions) {
      if (!std::binary_search(tr.from_ordinals.begin(),
                              tr.from_ordinals.end(), s)) {
        continue;
      }
      const int to = tr.to_ordinal >= 0 ? tr.to_ordinal : s;  // `same`
      if (!seen[static_cast<std::size_t>(to)]) {
        seen[static_cast<std::size_t>(to)] = 1;
        work.push_back(to);
      }
    }
  }
  return seen;
}

void check_reachability(const Spec& spec, LintReport& report) {
  const std::vector<char> seen = reachable_states(spec);
  for (std::size_t s = 0; s < spec.states.size(); ++s) {
    if (!seen[s]) {
      report.findings.push_back(
          {Severity::Warning, {},
           "state '" + spec.states[s] +
               "' is unreachable from every initial state"});
    }
  }
  for (const Transition& tr : spec.body().transitions) {
    const bool fireable_somewhere = std::any_of(
        tr.from_ordinals.begin(), tr.from_ordinals.end(),
        [&](int s) { return seen[static_cast<std::size_t>(s)] != 0; });
    if (!fireable_somewhere) {
      report.findings.push_back(
          {Severity::Warning, tr.loc,
           "transition '" + tr.name +
               "' can never fire: all of its source states are "
               "unreachable"});
    }
  }
}

/// §2.1 footnote 1: cycles of spontaneous transitions that consume no
/// input and produce no output. Detected structurally over the graph of
/// spontaneous, output-free transitions; a cycle with no provided guard
/// anywhere is certain to foil DFS (error), a guarded one may (warning).
void check_non_progress_cycles(const Spec& spec, LintReport& report) {
  struct Edge {
    int to;
    bool guarded;
    const Transition* tr;
  };
  const auto n = spec.states.size();
  std::vector<std::vector<Edge>> graph(n);
  for (const Transition& tr : spec.body().transitions) {
    if (tr.when) continue;                     // consumes input: progress
    if (block_has_output(*tr.block)) continue; // produces output: progress
    for (int from : tr.from_ordinals) {
      const int to = tr.to_ordinal >= 0 ? tr.to_ordinal : from;
      graph[static_cast<std::size_t>(from)].push_back(
          Edge{to, tr.provided != nullptr, &tr});
    }
  }

  // DFS cycle detection; report each state that can re-reach itself.
  std::set<const Transition*> reported;
  for (std::size_t start = 0; start < n; ++start) {
    // BFS from each successor of `start` back to `start`.
    for (const Edge& first : graph[start]) {
      std::vector<char> seen(n, 0);
      std::deque<int> work{first.to};
      bool all_unguarded = !first.guarded;
      bool closes = first.to == static_cast<int>(start);
      while (!work.empty() && !closes) {
        const int s = work.front();
        work.pop_front();
        if (seen[static_cast<std::size_t>(s)]) continue;
        seen[static_cast<std::size_t>(s)] = 1;
        for (const Edge& e : graph[static_cast<std::size_t>(s)]) {
          if (e.to == static_cast<int>(start)) {
            closes = true;
            all_unguarded = all_unguarded && !e.guarded;
            break;
          }
          work.push_back(e.to);
        }
      }
      if (closes && reported.insert(first.tr).second) {
        report.findings.push_back(
            {all_unguarded ? Severity::Error : Severity::Warning,
             first.tr->loc,
             "transition '" + first.tr->name +
                 "' starts a non-progress cycle (spontaneous, no output, "
                 "returns to state '" + spec.states[start] + "')" +
                 (all_unguarded
                      ? " with no provided guard anywhere: depth-first "
                        "trace analysis WILL diverge (paper §2.1)"
                      : "; a provided guard may bound it, but the cycle "
                        "can foil depth-first trace analysis (paper §2.1)")});
      }
    }
  }
}

void check_dead_interactions(const Spec& spec, LintReport& report) {
  std::vector<char> consumed(spec.interactions.size(), 0);
  std::vector<char> produced(spec.interactions.size(), 0);

  for (const Transition& tr : spec.body().transitions) {
    if (tr.when) {
      consumed[static_cast<std::size_t>(tr.when->interaction_id)] = 1;
    }
  }
  auto scan_outputs = [&](const Stmt& s, auto&& self) -> void {
    if (s.kind == StmtKind::Output) {
      produced[static_cast<std::size_t>(s.interaction_id)] = 1;
    }
    for (const est::StmtPtr& c : s.body) {
      if (c) self(*c, self);
    }
    for (const est::StmtPtr& c : s.otherwise) {
      if (c) self(*c, self);
    }
    for (const est::CaseArm& arm : s.arms) {
      if (arm.body) self(*arm.body, self);
    }
    if (s.s0) self(*s.s0, self);
    if (s.s1) self(*s.s1, self);
  };
  for (const Transition& tr : spec.body().transitions) {
    scan_outputs(*tr.block, scan_outputs);
  }
  for (const est::Routine& r : spec.body().routines) {
    scan_outputs(*r.body, scan_outputs);
  }
  for (const est::Initializer& init : spec.body().initializers) {
    if (init.block) scan_outputs(*init.block, scan_outputs);
  }

  for (const est::IpInfo& ip : spec.ips) {
    for (const auto& [name, id] : ip.inputs) {
      if (!consumed[static_cast<std::size_t>(id)]) {
        report.findings.push_back(
            {Severity::Warning, {},
             "input interaction '" + ip.name + "." + name +
                 "' is never consumed by any transition"});
      }
    }
    for (const auto& [name, id] : ip.outputs) {
      if (!produced[static_cast<std::size_t>(id)]) {
        report.findings.push_back(
            {Severity::Warning, {},
             "output interaction '" + ip.name + "." + name +
                 "' is never produced by any transition"});
      }
    }
  }
}

}  // namespace

std::string LintReport::render() const {
  std::string out;
  for (const Diagnostic& d : findings) {
    out += d.render();
    out += '\n';
  }
  if (findings.empty()) out = "no findings\n";
  return out;
}

LintReport lint(const est::Spec& spec) {
  LintReport report;
  check_reachability(spec, report);
  check_non_progress_cycles(spec, report);
  check_dead_interactions(spec, report);
  return report;
}

}  // namespace tango::analysis
