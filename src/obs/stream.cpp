#include "obs/stream.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace tango::obs {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("event: " + what);
}

std::int64_t get_int(const JsonValue& v, const char* key, std::int64_t fallback) {
  const JsonValue* f = v.find(key);
  if (f == nullptr) return fallback;
  if (!f->is_number() || !f->is_integer) {
    bad(std::string("field '") + key + "' is not an integer");
  }
  return f->integer;
}

bool get_bool(const JsonValue& v, const char* key, bool fallback) {
  const JsonValue* f = v.find(key);
  if (f == nullptr) return fallback;
  if (!f->is_bool()) bad(std::string("field '") + key + "' is not a boolean");
  return f->boolean;
}

std::string get_str(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  if (f == nullptr) return {};
  if (!f->is_string()) bad(std::string("field '") + key + "' is not a string");
  return f->string;
}

std::uint64_t get_hash(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  if (f == nullptr) return 0;
  if (!f->is_string()) bad(std::string("field '") + key + "' is not a string");
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(f->string.c_str(), &end, 16);
  if (end != f->string.c_str() + f->string.size() || f->string.empty()) {
    bad(std::string("field '") + key + "' is not a hex hash");
  }
  return value;
}

/// Raw nested payloads round-trip through canonical form so downstream
/// comparisons are field-order-insensitive.
std::string get_raw(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  if (f == nullptr) return {};
  if (!f->is_object()) bad(std::string("field '") + key + "' is not an object");
  return canonical(*f);
}

}  // namespace

Event event_from_json(const JsonValue& v) {
  if (!v.is_object()) bad("not a JSON object");
  const JsonValue* kind_v = v.find("kind");
  if (kind_v == nullptr || !kind_v->is_string()) bad("missing 'kind'");
  Event e;
  if (!parse_kind(kind_v->string, e.kind)) {
    bad("unknown kind '" + kind_v->string + "'");
  }
  e.id = static_cast<std::uint64_t>(get_int(v, "id", 0));
  e.parent = static_cast<std::uint64_t>(get_int(v, "parent", 0));
  e.worker = static_cast<std::int32_t>(get_int(v, "worker", -1));
  e.depth = static_cast<std::int32_t>(get_int(v, "depth", 0));
  e.transition = static_cast<std::int32_t>(get_int(v, "transition", -1));
  e.input_event = static_cast<std::int32_t>(get_int(v, "input_event", -1));
  e.init = static_cast<std::int32_t>(get_int(v, "init", -1));
  e.start_state = static_cast<std::int32_t>(get_int(v, "start_state", -1));
  e.synthesized = get_bool(v, "synthesized", false);
  e.applied = get_bool(v, "applied", true);
  e.ok = get_bool(v, "ok", false);
  e.retry = get_bool(v, "retry", false);
  e.all_done = get_bool(v, "all_done", false);
  e.state_hash = get_hash(v, "state_hash");
  e.count = static_cast<std::uint64_t>(get_int(v, "count", 0));
  e.version = static_cast<std::uint32_t>(get_int(v, "version", 0));
  e.engine = get_str(v, "engine");
  e.spec = get_str(v, "spec");
  e.spec_ref = get_str(v, "spec_ref");
  e.trace_ref = get_str(v, "trace_ref");
  e.order = get_str(v, "order");
  e.flags = get_raw(v, "flags");
  e.verdict = get_str(v, "verdict");
  e.reason = get_str(v, "reason");
  e.stats_json = get_raw(v, "stats");
  return e;
}

ReadResult read_events(const std::string& text) {
  ReadResult result;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? text.size() : eol;
    std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string_view::npos) {
      continue;
    }
    try {
      result.events.push_back(event_from_json(parse_json(line)));
    } catch (const std::runtime_error& err) {
      result.errors.push_back({line_no, err.what()});
    }
  }
  return result;
}

ReadResult read_events_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open events file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_events(buffer.str());
}

StreamStats summarize(const std::vector<Event>& events) {
  StreamStats s;
  std::set<std::int32_t> workers;
  for (const Event& e : events) {
    ++s.by_kind[std::string(to_string(e.kind))];
    if (e.worker >= 0) workers.insert(e.worker);
    if (e.depth > s.max_depth) s.max_depth = e.depth;
    switch (e.kind) {
      case EventKind::Enter:
      case EventKind::Fire:
        ++s.nodes;
        if (e.ok) {
          ++s.applied_ok;
        } else {
          ++s.vetoed;
        }
        break;
      case EventKind::Run:
        s.engine = e.engine;
        break;
      case EventKind::Verdict:
        s.verdict = e.verdict;
        break;
      default:
        break;
    }
  }
  s.workers = static_cast<std::int32_t>(workers.size());
  return s;
}

std::string stats_to_json(const StreamStats& s) {
  std::string out = "{";
  char buf[64];
  auto num = [&](const char* key, std::uint64_t value, bool first = false) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                  value);
    out += buf;
  };
  out += "\"engine\":\"" + s.engine + "\"";
  out += ",\"verdict\":\"" + s.verdict + "\"";
  num("events", [&] {
    std::uint64_t total = 0;
    for (const auto& [kind, count] : s.by_kind) {
      (void)kind;
      total += count;
    }
    return total;
  }());
  num("nodes", s.nodes);
  num("applied_ok", s.applied_ok);
  num("vetoed", s.vetoed);
  num("max_depth", static_cast<std::uint64_t>(s.max_depth));
  num("workers", static_cast<std::uint64_t>(s.workers));
  out += ",\"by_kind\":{";
  bool first = true;
  for (const auto& [kind, count] : s.by_kind) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, kind.c_str(), count);
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace tango::obs
