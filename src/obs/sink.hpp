// Event sinks. The null sink is a plain null pointer: engines guard every
// emission with `if (sink)`, so the disabled path costs one predictable
// branch (the <2% bench_guard_prune budget in docs/OBSERVABILITY.md).
// Sinks must be thread-safe — the work-stealing engine emits from every
// worker — and own the stream-wide event-id counter so ids are unique
// across workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace tango::obs {

class Sink {
 public:
  virtual ~Sink() = default;

  /// Records one event. Must be safe to call from multiple threads.
  virtual void emit(const Event& e) = 0;

  /// Allocates the next enter/fire node id (1-based, stream-wide).
  std::uint64_t next_id() {
    return ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Optional annotations copied into the `run` header so `tango events
  /// replay` can reload the spec and trace without extra flags.
  void set_refs(std::string spec_ref, std::string trace_ref) {
    spec_ref_ = std::move(spec_ref);
    trace_ref_ = std::move(trace_ref);
  }
  [[nodiscard]] const std::string& spec_ref() const { return spec_ref_; }
  [[nodiscard]] const std::string& trace_ref() const { return trace_ref_; }

 private:
  std::atomic<std::uint64_t> ids_{0};
  std::string spec_ref_;
  std::string trace_ref_;
};

/// Test sink: keeps every event in memory, in emission order.
class MemorySink final : public Sink {
 public:
  void emit(const Event& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(e);
  }
  [[nodiscard]] std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// Serializes one event as a single JSONL line (no trailing newline).
/// Only the fields meaningful for e.kind are written; `state_hash` is
/// rendered as a 16-digit hex string because a 64-bit hash does not
/// survive a double round trip.
[[nodiscard]] std::string to_jsonl(const Event& e);

/// `--events=<file>`: JSONL writer behind a fixed ring of formatted lines,
/// flushed to the file whenever the ring fills (and on destruction), so a
/// hot search loop pays string formatting but only periodic file IO.
class JsonlSink final : public Sink {
 public:
  explicit JsonlSink(const std::string& path, std::size_t ring_capacity = 256);
  ~JsonlSink() override;

  void emit(const Event& e) override;
  void flush();

  [[nodiscard]] std::uint64_t events_written() const {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  void flush_locked();

  std::mutex mu_;
  std::ofstream out_;
  std::vector<std::string> ring_;
  std::size_t ring_size_ = 0;
  std::atomic<std::uint64_t> written_{0};
};

}  // namespace tango::obs
