// Structured search events (docs/EVENTS.md). Every engine narrates its
// search through these records: the `fire` events form a tree via `parent`
// (each fire points at the event that produced its source state), which
// makes a recorded stream replayable independently of the engine's
// scheduling — a stolen subtree's events still name the same parents a
// sequential run would. The taxonomy follows the GenTra4CP idea of one
// generic, schema'd trace format over heterogeneous engines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tango::obs {

/// Version of the event schema (docs/schema/search_events.schema.json).
/// Bump on any field rename, removal, or semantic change; `run` headers
/// record it and the readers reject streams from a different major.
inline constexpr std::uint32_t kEventSchemaVersion = 2;

enum class EventKind : std::uint8_t {
  Run,                // stream header: engine, spec, options fingerprint
  Enter,              // a search root: initializer applied (or attempted)
  Fire,               // one apply of a generated firing (ok or vetoed)
  Backtrack,          // a node's alternatives are exhausted; popped
  PruneVisited,       // §4.2 hash table: state seen before, subtree cut
  PruneStatic,        // guard-solver skip set / mutex matrix cut a candidate
  PruneShadow,        // lower-priority candidates dropped after generation
  CheckpointSave,     // save() at a branching node (mark in `count`)
  CheckpointRestore,  // restore() to a mark for the next sibling
  Steal,              // a worker ran a continuation published by another
  Evict,              // --visited-max overflow dropped a resident hash
  Verdict,            // final verdict + deterministic counter snapshot
};

[[nodiscard]] constexpr std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::Run: return "run";
    case EventKind::Enter: return "enter";
    case EventKind::Fire: return "fire";
    case EventKind::Backtrack: return "backtrack";
    case EventKind::PruneVisited: return "prune.visited";
    case EventKind::PruneStatic: return "prune.static";
    case EventKind::PruneShadow: return "prune.shadow";
    case EventKind::CheckpointSave: return "checkpoint.save";
    case EventKind::CheckpointRestore: return "checkpoint.restore";
    case EventKind::Steal: return "steal";
    case EventKind::Evict: return "evict";
    case EventKind::Verdict: return "verdict";
  }
  return "?";
}

/// Inverse of to_string; returns false on an unknown kind name.
[[nodiscard]] bool parse_kind(std::string_view name, EventKind& out);

/// One event. A deliberately flat bag of fields; which ones are meaningful
/// depends on `kind` (see docs/EVENTS.md), and the JSONL writer serializes
/// only those. Events carry NO wall-clock data: a stream from a
/// deterministic run is byte-identical across runs, which the golden tests
/// and `tango events diff` rely on.
struct Event {
  EventKind kind = EventKind::Fire;

  /// Node identity for `enter`/`fire` events: monotonically assigned per
  /// stream (Sink::next_id), never 0. Other kinds leave it 0.
  std::uint64_t id = 0;
  /// For `fire`: the enter/fire event whose resulting state this firing
  /// applied from. For prune/backtrack/checkpoint/steal: the node event
  /// the operation happened at. For `verdict`: the witness node (the event
  /// whose state completed the trace), 0 when there is none.
  std::uint64_t parent = 0;

  std::int32_t worker = -1;  // worker index; -1 in sequential engines
  std::int32_t depth = 0;    // search-tree depth of the node

  std::int32_t transition = -1;   // fire/prune.static: transition index
  std::int32_t input_event = -1;  // fire: consumed trace seq, or -1
  std::int32_t init = -1;         // enter: initializer index
  std::int32_t start_state = -1;  // enter: FSM start state of this root
  bool synthesized = false;       // fire: unobservable-ip input (§5.2)
  /// enter: true when this event performed the apply_initializer call
  /// (initial-state-search clones share one apply and record false).
  bool applied = true;
  bool ok = false;        // enter/fire: the apply succeeded
  bool retry = false;     // fire (on-line): vetoed only until more events
  bool all_done = false;  // enter/fire: state explains the complete trace
  /// enter/fire (ok only): composite SearchState hash of the new state.
  std::uint64_t state_hash = 0;
  /// checkpoint.*: the mark; prune.shadow / evict: how many were dropped.
  std::uint64_t count = 0;

  // --- run header only ---
  std::uint32_t version = 0;
  std::string engine;     // dfs | mdfs | par | batch
  std::string spec;       // specification name (est::Spec::name)
  std::string spec_ref;   // how to reload it: path or builtin:<name> ("" ok)
  std::string trace_ref;  // trace file path ("" when fed from memory)
  std::string order;      // NR | IO | IP | FULL (Options::order_mode_name)
  /// Replay-relevant option fingerprint as a JSON object (see
  /// core/obs_record.cpp); replay rebuilds its Options from this.
  std::string flags;

  // --- verdict only ---
  std::string verdict;     // core::to_string(Verdict)
  /// Exhausted resource behind an inconclusive verdict: one of
  /// "transitions" | "depth" | "deadline" | "memory" | "shutdown";
  /// "" otherwise. Serialized only when non-empty (schema v2).
  std::string reason;
  std::string stats_json;  // Stats::to_json_counters(): no timing fields
};

}  // namespace tango::obs
