// Replay oracle over a recorded search-event stream (docs/OBSERVABILITY.md).
//
// replay() re-executes the stream against a fresh machine built from the
// run header's recorded flags: every `enter` re-runs its initializer, every
// ok `fire` must name a transition that generate() re-derives as enabled at
// the recorded parent node, re-applying it must succeed and must reproduce
// the recorded post-state hash, and the final `verdict` must balance the
// stream (counter equalities, witness consistency). A stream that replays
// clean is strong evidence the engine's search was sound — the oracle
// shares generate/apply with the engines but none of their scheduling,
// pruning or checkpointing machinery.
//
// Engine-specific relaxations (see docs/EVENTS.md):
//   - "mdfs" streams are recorded against a *growing* trace; vetoed fires
//     and per-node all_done flags reflect a prefix of the final trace and
//     are not re-checked, and hidden initializer retries make the TE
//     balance a lower bound rather than an equality.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "trace/event.hpp"

namespace tango::est {
class Spec;
}

namespace tango::obs {

struct ReplayIssue {
  std::size_t event_index = 0;  // 0-based position in the stream
  std::string message;
};

struct ReplayReport {
  std::string engine;   // from the run header
  std::string verdict;  // recorded verdict ("" when the stream has none)
  std::uint64_t witness = 0;
  std::size_t nodes_replayed = 0;  // ok enter/fire states reconstructed
  std::size_t fires_checked = 0;   // fire events re-executed
  std::vector<ReplayIssue> issues;

  [[nodiscard]] bool ok() const { return issues.empty(); }
  /// "" when ok(); otherwise "event N: message" for the first issue.
  [[nodiscard]] std::string first_issue() const;
};

/// Replays an already-parsed stream. `trace` must be the same trace the
/// recording run analyzed (its final extent, for on-line runs).
[[nodiscard]] ReplayReport replay(const est::Spec& spec,
                                  const tr::Trace& trace,
                                  const std::vector<Event>& events);

/// Schema-validates `text` (docs/schema/search_events.schema.json rules),
/// parses it, and replays. Schema violations become issues; replay runs
/// only on a schema-clean stream.
[[nodiscard]] ReplayReport replay_stream(const est::Spec& spec,
                                         const tr::Trace& trace,
                                         const std::string& text);

}  // namespace tango::obs
