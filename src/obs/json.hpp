// Minimal JSON for the observability tooling: parsing recorded JSONL event
// lines back into values, canonical re-serialization for field-order-
// insensitive comparison (`tango events diff`, the golden tests), and
// lookup helpers for the schema validator. Deliberately tiny — events are
// flat objects with at most one nested level — and dependency-free, so it
// is NOT a general JSON library (no \uXXXX surrogate pairs, numbers parse
// as double or int64).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tango::obs {

struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  /// Set iff the literal was integral and fits; `number` carries the
  /// (possibly lossy) double view either way.
  bool is_integer = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion order preserved; canonical() sorts by key.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return type == Type::Object; }
  [[nodiscard]] bool is_string() const { return type == Type::String; }
  [[nodiscard]] bool is_number() const { return type == Type::Number; }
  [[nodiscard]] bool is_bool() const { return type == Type::Bool; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document. Throws std::runtime_error with a byte offset
/// on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Serializes with object keys sorted and a fixed number format, so two
/// documents are semantically equal iff their canonical forms are equal
/// strings. `ignore_keys` drops those top-level object members first.
[[nodiscard]] std::string canonical(
    const JsonValue& v, const std::vector<std::string>& ignore_keys = {});

/// Appends `s` to `out` as a quoted JSON string. Control characters get
/// the usual short escapes, well-formed UTF-8 sequences pass through
/// verbatim (so valid UTF-8 round-trips byte-identically through
/// parse_json), and any byte that is NOT part of a well-formed UTF-8
/// sequence is escaped as \u00XX — every emitted line is valid UTF-8 no
/// matter what bytes a spec name or fault note carried. Shared by every
/// writer (event JSONL, canonical form).
void escape_json_into(std::string& out, std::string_view s);

/// True iff `s` is well-formed UTF-8 (rejecting overlong encodings,
/// surrogate code points, and values beyond U+10FFFF).
[[nodiscard]] bool is_valid_utf8(std::string_view s);

}  // namespace tango::obs
