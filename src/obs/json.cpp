#include "obs/json.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tango::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::String;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::Bool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Events only ever escape control characters; encode BMP points
          // as UTF-8 and reject surrogates (never emitted by our writer).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string lexeme(text_.substr(start, pos_ - start));
    JsonValue v;
    v.type = JsonValue::Type::Number;
    errno = 0;
    char* end = nullptr;
    v.number = std::strtod(lexeme.c_str(), &end);
    if (end != lexeme.c_str() + lexeme.size() || errno == ERANGE) {
      pos_ = start;
      fail("bad number '" + lexeme + "'");
    }
    if (integral) {
      errno = 0;
      const long long i = std::strtoll(lexeme.c_str(), &end, 10);
      if (end == lexeme.c_str() + lexeme.size() && errno != ERANGE) {
        v.is_integer = true;
        v.integer = i;
      }
    }
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Length of the well-formed UTF-8 sequence starting at s[i], validating
/// continuation bytes and rejecting overlong encodings, surrogates and
/// code points past U+10FFFF; 0 when the bytes are not valid UTF-8.
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const auto b0 = static_cast<unsigned char>(s[i]);
  if (b0 < 0x80) return 1;
  std::size_t n = 0;
  std::uint32_t cp = 0;
  std::uint32_t min_cp = 0;
  if ((b0 & 0xE0) == 0xC0) {
    n = 2;
    cp = b0 & 0x1Fu;
    min_cp = 0x80;
  } else if ((b0 & 0xF0) == 0xE0) {
    n = 3;
    cp = b0 & 0x0Fu;
    min_cp = 0x800;
  } else if ((b0 & 0xF8) == 0xF0) {
    n = 4;
    cp = b0 & 0x07u;
    min_cp = 0x10000;
  } else {
    return 0;  // continuation byte or invalid lead byte
  }
  if (i + n > s.size()) return 0;
  for (std::size_t k = 1; k < n; ++k) {
    const auto b = static_cast<unsigned char>(s[i + k]);
    if ((b & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3Fu);
  }
  if (cp < min_cp || cp > 0x10FFFF) return 0;
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;
  return n;
}

void canonical_into(const JsonValue& v, std::string& out) {
  switch (v.type) {
    case JsonValue::Type::Null:
      out += "null";
      break;
    case JsonValue::Type::Bool:
      out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Type::Number: {
      char buf[40];
      if (v.is_integer) {
        std::snprintf(buf, sizeof(buf), "%" PRId64, v.integer);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      }
      out += buf;
      break;
    }
    case JsonValue::Type::String:
      escape_json_into(out, v.string);
      break;
    case JsonValue::Type::Array:
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i != 0) out += ',';
        canonical_into(v.array[i], out);
      }
      out += ']';
      break;
    case JsonValue::Type::Object: {
      std::vector<const std::pair<std::string, JsonValue>*> members;
      members.reserve(v.object.size());
      for (const auto& m : v.object) members.push_back(&m);
      std::sort(members.begin(), members.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      out += '{';
      bool first = true;
      for (const auto* m : members) {
        if (!first) out += ',';
        first = false;
        escape_json_into(out, m->first);
        out += ':';
        canonical_into(m->second, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

void escape_json_into(std::string& out, std::string_view s) {
  out += '"';
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const auto b = static_cast<unsigned char>(c);
    if (b < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", b);
      out += buf;
      ++i;
      continue;
    }
    if (b < 0x80) {
      out += c;
      ++i;
      continue;
    }
    const std::size_t n = utf8_sequence_length(s, i);
    if (n == 0) {
      // Not UTF-8: escape the raw byte so the emitted text stays valid
      // UTF-8. The byte reads back as U+00XX — lossy for mojibake input,
      // but deterministic and parseable.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", b);
      out += buf;
      ++i;
    } else {
      out.append(s.substr(i, n));
      i += n;
    }
  }
  out += '"';
}

bool is_valid_utf8(std::string_view s) {
  for (std::size_t i = 0; i < s.size();) {
    const std::size_t n = utf8_sequence_length(s, i);
    if (n == 0) return false;
    i += n;
  }
  return true;
}

std::string canonical(const JsonValue& v,
                      const std::vector<std::string>& ignore_keys) {
  if (v.type == JsonValue::Type::Object && !ignore_keys.empty()) {
    JsonValue filtered;
    filtered.type = JsonValue::Type::Object;
    for (const auto& m : v.object) {
      if (std::find(ignore_keys.begin(), ignore_keys.end(), m.first) ==
          ignore_keys.end()) {
        filtered.object.push_back(m);
      }
    }
    std::string out;
    canonical_into(filtered, out);
    return out;
  }
  std::string out;
  canonical_into(v, out);
  return out;
}

}  // namespace tango::obs
