#include "obs/schema.hpp"

#include <cctype>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <unordered_set>

#include "obs/event.hpp"

namespace tango::obs {

namespace {

enum class FieldType : std::uint8_t { Int, Bool, Str, Hash, Obj };

enum class Need : std::uint8_t {
  Required,  // must be present
  Optional,  // may be present
  IfOk,      // present iff the event's "ok" field is true
};

struct FieldRule {
  const char* name;
  FieldType type;
  Need need;
};

constexpr FieldRule kRunRules[] = {
    {"version", FieldType::Int, Need::Required},
    {"engine", FieldType::Str, Need::Required},
    {"spec", FieldType::Str, Need::Required},
    {"spec_ref", FieldType::Str, Need::Required},
    {"trace_ref", FieldType::Str, Need::Required},
    {"order", FieldType::Str, Need::Required},
    {"flags", FieldType::Obj, Need::Required},
};
constexpr FieldRule kEnterRules[] = {
    {"id", FieldType::Int, Need::Required},
    {"worker", FieldType::Int, Need::Required},
    {"init", FieldType::Int, Need::Required},
    {"start_state", FieldType::Int, Need::Required},
    {"applied", FieldType::Bool, Need::Required},
    {"ok", FieldType::Bool, Need::Required},
    {"all_done", FieldType::Bool, Need::IfOk},
    {"state_hash", FieldType::Hash, Need::IfOk},
};
constexpr FieldRule kFireRules[] = {
    {"id", FieldType::Int, Need::Required},
    {"parent", FieldType::Int, Need::Required},
    {"worker", FieldType::Int, Need::Required},
    {"depth", FieldType::Int, Need::Required},
    {"transition", FieldType::Int, Need::Required},
    {"input_event", FieldType::Int, Need::Required},
    {"synthesized", FieldType::Bool, Need::Optional},
    {"ok", FieldType::Bool, Need::Required},
    {"retry", FieldType::Bool, Need::Optional},
    {"all_done", FieldType::Bool, Need::IfOk},
    {"state_hash", FieldType::Hash, Need::IfOk},
};
constexpr FieldRule kNodeRules[] = {
    {"parent", FieldType::Int, Need::Required},
    {"worker", FieldType::Int, Need::Required},
    {"depth", FieldType::Int, Need::Required},
};
constexpr FieldRule kPruneVisitedRules[] = {
    {"parent", FieldType::Int, Need::Required},
    {"worker", FieldType::Int, Need::Required},
    {"depth", FieldType::Int, Need::Required},
    {"state_hash", FieldType::Hash, Need::Required},
};
constexpr FieldRule kPruneStaticRules[] = {
    {"parent", FieldType::Int, Need::Required},
    {"worker", FieldType::Int, Need::Required},
    {"depth", FieldType::Int, Need::Required},
    {"transition", FieldType::Int, Need::Required},
};
constexpr FieldRule kCountedRules[] = {
    {"parent", FieldType::Int, Need::Required},
    {"worker", FieldType::Int, Need::Required},
    {"depth", FieldType::Int, Need::Required},
    {"count", FieldType::Int, Need::Required},
};
constexpr FieldRule kEvictRules[] = {
    {"worker", FieldType::Int, Need::Required},
    {"count", FieldType::Int, Need::Required},
};
constexpr FieldRule kVerdictRules[] = {
    {"parent", FieldType::Int, Need::Required},
    {"verdict", FieldType::Str, Need::Required},
    // v2: exhausted-resource tag on inconclusive verdicts; writers omit it
    // entirely otherwise.
    {"reason", FieldType::Str, Need::Optional},
    {"stats", FieldType::Obj, Need::Required},
};

struct RuleSet {
  const FieldRule* rules;
  std::size_t count;
};

RuleSet rules_for(EventKind kind) {
  switch (kind) {
    case EventKind::Run: return {kRunRules, std::size(kRunRules)};
    case EventKind::Enter: return {kEnterRules, std::size(kEnterRules)};
    case EventKind::Fire: return {kFireRules, std::size(kFireRules)};
    case EventKind::Backtrack:
    case EventKind::Steal: return {kNodeRules, std::size(kNodeRules)};
    case EventKind::PruneVisited:
      return {kPruneVisitedRules, std::size(kPruneVisitedRules)};
    case EventKind::PruneStatic:
      return {kPruneStaticRules, std::size(kPruneStaticRules)};
    case EventKind::PruneShadow:
    case EventKind::CheckpointSave:
    case EventKind::CheckpointRestore:
      return {kCountedRules, std::size(kCountedRules)};
    case EventKind::Evict: return {kEvictRules, std::size(kEvictRules)};
    case EventKind::Verdict: return {kVerdictRules, std::size(kVerdictRules)};
  }
  return {nullptr, 0};
}

bool is_hash_string(const JsonValue& v) {
  if (!v.is_string() || v.string.size() != 16) return false;
  for (const char c : v.string) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

const char* type_name(FieldType t) {
  switch (t) {
    case FieldType::Int: return "integer";
    case FieldType::Bool: return "boolean";
    case FieldType::Str: return "string";
    case FieldType::Hash: return "16-hex-digit string";
    case FieldType::Obj: return "object";
  }
  return "?";
}

bool type_matches(const JsonValue& v, FieldType t) {
  switch (t) {
    case FieldType::Int: return v.is_number() && v.is_integer;
    case FieldType::Bool: return v.is_bool();
    case FieldType::Str: return v.is_string();
    case FieldType::Hash: return is_hash_string(v);
    case FieldType::Obj: return v.is_object();
  }
  return false;
}

void add_error(std::vector<SchemaError>& errors, std::size_t line,
               std::string message) {
  errors.push_back({line, std::move(message)});
}

}  // namespace

bool validate_event(const JsonValue& v, std::size_t line,
                    std::vector<SchemaError>& errors) {
  const std::size_t before = errors.size();
  if (!v.is_object()) {
    add_error(errors, line, "event is not a JSON object");
    return false;
  }
  const JsonValue* kind_v = v.find("kind");
  if (kind_v == nullptr || !kind_v->is_string()) {
    add_error(errors, line, "missing string field 'kind'");
    return false;
  }
  EventKind kind{};
  if (!parse_kind(kind_v->string, kind)) {
    add_error(errors, line, "unknown event kind '" + kind_v->string + "'");
    return false;
  }
  const RuleSet rules = rules_for(kind);

  const JsonValue* ok_v = v.find("ok");
  const bool ok = ok_v != nullptr && ok_v->is_bool() && ok_v->boolean;

  for (std::size_t i = 0; i < rules.count; ++i) {
    const FieldRule& rule = rules.rules[i];
    const JsonValue* field = v.find(rule.name);
    const bool required =
        rule.need == Need::Required || (rule.need == Need::IfOk && ok);
    if (field == nullptr) {
      if (required) {
        add_error(errors, line,
                  std::string(kind_v->string) + ": missing field '" +
                      rule.name + "'");
      }
      continue;
    }
    if (rule.need == Need::IfOk && !ok) {
      add_error(errors, line,
                std::string(kind_v->string) + ": field '" + rule.name +
                    "' present on a vetoed event");
      continue;
    }
    if (!type_matches(*field, rule.type)) {
      add_error(errors, line,
                std::string(kind_v->string) + ": field '" + rule.name +
                    "' is not a " + type_name(rule.type));
    }
  }

  // Strict about unknown keys: a typo'd field name should fail the check,
  // not silently ride along.
  for (const auto& [key, value] : v.object) {
    (void)value;
    if (key == "kind") continue;
    bool known = false;
    for (std::size_t i = 0; i < rules.count; ++i) {
      if (key == rules.rules[i].name) {
        known = true;
        break;
      }
    }
    if (!known) {
      add_error(errors, line,
                std::string(kind_v->string) + ": unknown field '" + key + "'");
    }
  }
  return errors.size() == before;
}

bool validate_stream(const std::string& text,
                     std::vector<SchemaError>& errors) {
  const std::size_t before = errors.size();
  std::unordered_set<std::uint64_t> node_ids;
  bool saw_run = false;
  bool saw_any = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? text.size() : eol;
    std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (eol == std::string::npos && line.empty()) break;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string_view::npos) {
      continue;
    }
    if (!is_valid_utf8(line)) {
      // The writers escape every non-UTF-8 byte; a raw byte here means the
      // stream was produced (or corrupted) by something else.
      add_error(errors, line_no, "line is not valid UTF-8");
      continue;
    }

    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const std::runtime_error& err) {
      add_error(errors, line_no, err.what());
      continue;
    }
    if (!validate_event(v, line_no, errors)) continue;

    const JsonValue* kind_v = v.find("kind");
    EventKind kind{};
    if (!parse_kind(kind_v->string, kind)) continue;  // validate_event caught it

    if (!saw_any) {
      saw_any = true;
      if (kind != EventKind::Run) {
        add_error(errors, line_no, "stream does not start with a run header");
      }
    }
    if (kind == EventKind::Run) {
      if (saw_run) {
        add_error(errors, line_no, "duplicate run header");
      }
      saw_run = true;
      const JsonValue* version = v.find("version");
      if (version != nullptr && version->is_integer &&
          version->integer != static_cast<std::int64_t>(kEventSchemaVersion)) {
        add_error(errors, line_no,
                  "unsupported schema version " +
                      std::to_string(version->integer) + " (expected " +
                      std::to_string(kEventSchemaVersion) + ")");
      }
      continue;
    }

    if (kind == EventKind::Enter || kind == EventKind::Fire) {
      const JsonValue* id = v.find("id");
      if (id != nullptr && id->is_integer) {
        if (id->integer <= 0) {
          add_error(errors, line_no, "node id must be positive");
        } else if (!node_ids.insert(static_cast<std::uint64_t>(id->integer))
                        .second) {
          add_error(errors, line_no,
                    "duplicate node id " + std::to_string(id->integer));
        }
      }
    }
    const JsonValue* parent = v.find("parent");
    if (parent != nullptr && parent->is_integer && parent->integer != 0) {
      if (parent->integer < 0 ||
          node_ids.count(static_cast<std::uint64_t>(parent->integer)) == 0) {
        add_error(errors, line_no,
                  "parent " + std::to_string(parent->integer) +
                      " does not reference an earlier enter/fire event");
      }
    } else if (parent != nullptr && parent->is_integer &&
               parent->integer == 0 && kind != EventKind::Verdict) {
      add_error(errors, line_no, "parent must be a node id (0 is only valid "
                                 "for verdict events with no witness)");
    }
  }

  if (!saw_any) add_error(errors, 0, "empty event stream");
  return errors.size() == before;
}

}  // namespace tango::obs
