#include "obs/sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "obs/json.hpp"

namespace tango::obs {

bool parse_kind(std::string_view name, EventKind& out) {
  for (int k = 0; k <= static_cast<int>(EventKind::Verdict); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (to_string(kind) == name) {
      out = kind;
      return true;
    }
  }
  return false;
}

namespace {

void field_str(std::string& out, const char* key, std::string_view value) {
  out += ",\"";
  out += key;
  out += "\":";
  // Shared UTF-8-validating escaper: every JSONL line is valid UTF-8 even
  // when a spec name or note carries arbitrary bytes.
  escape_json_into(out, value);
}

void field_u64(std::string& out, const char* key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += ",\"";
  out += key;
  out += "\":";
  out += buf;
}

void field_i32(std::string& out, const char* key, std::int32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%" PRId32, value);
  out += ",\"";
  out += key;
  out += "\":";
  out += buf;
}

void field_bool(std::string& out, const char* key, bool value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

void field_hash(std::string& out, const char* key, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  out += ",\"";
  out += key;
  out += "\":\"";
  out += buf;
  out += '"';
}

/// Raw JSON payload (already serialized); empty becomes {}.
void field_raw(std::string& out, const char* key, const std::string& json) {
  out += ",\"";
  out += key;
  out += "\":";
  out += json.empty() ? "{}" : json;
}

void node_fields(std::string& out, const Event& e) {
  field_u64(out, "parent", e.parent);
  field_i32(out, "worker", e.worker);
  field_i32(out, "depth", e.depth);
}

}  // namespace

std::string to_jsonl(const Event& e) {
  std::string out;
  out.reserve(160);
  out += "{\"kind\":\"";
  out += to_string(e.kind);
  out += '"';
  switch (e.kind) {
    case EventKind::Run:
      field_u64(out, "version", e.version);
      field_str(out, "engine", e.engine);
      field_str(out, "spec", e.spec);
      field_str(out, "spec_ref", e.spec_ref);
      field_str(out, "trace_ref", e.trace_ref);
      field_str(out, "order", e.order);
      field_raw(out, "flags", e.flags);
      break;
    case EventKind::Enter:
      field_u64(out, "id", e.id);
      field_i32(out, "worker", e.worker);
      field_i32(out, "init", e.init);
      field_i32(out, "start_state", e.start_state);
      field_bool(out, "applied", e.applied);
      field_bool(out, "ok", e.ok);
      if (e.ok) {
        field_bool(out, "all_done", e.all_done);
        field_hash(out, "state_hash", e.state_hash);
      }
      break;
    case EventKind::Fire:
      field_u64(out, "id", e.id);
      node_fields(out, e);
      field_i32(out, "transition", e.transition);
      field_i32(out, "input_event", e.input_event);
      if (e.synthesized) field_bool(out, "synthesized", true);
      field_bool(out, "ok", e.ok);
      if (e.retry) field_bool(out, "retry", true);
      if (e.ok) {
        field_bool(out, "all_done", e.all_done);
        field_hash(out, "state_hash", e.state_hash);
      }
      break;
    case EventKind::Backtrack:
    case EventKind::Steal:
      node_fields(out, e);
      break;
    case EventKind::PruneVisited:
      node_fields(out, e);
      field_hash(out, "state_hash", e.state_hash);
      break;
    case EventKind::PruneStatic:
      node_fields(out, e);
      field_i32(out, "transition", e.transition);
      break;
    case EventKind::PruneShadow:
    case EventKind::CheckpointSave:
    case EventKind::CheckpointRestore:
      node_fields(out, e);
      field_u64(out, "count", e.count);
      break;
    case EventKind::Evict:
      field_i32(out, "worker", e.worker);
      field_u64(out, "count", e.count);
      break;
    case EventKind::Verdict:
      field_u64(out, "parent", e.parent);
      field_str(out, "verdict", e.verdict);
      if (!e.reason.empty()) field_str(out, "reason", e.reason);
      field_raw(out, "stats", e.stats_json);
      break;
  }
  out += '}';
  return out;
}

JsonlSink::JsonlSink(const std::string& path, std::size_t ring_capacity)
    : out_(path, std::ios::binary),
      ring_(ring_capacity == 0 ? 1 : ring_capacity) {
  if (!out_) {
    throw std::runtime_error("cannot open events file '" + path + "'");
  }
}

JsonlSink::~JsonlSink() { flush(); }

void JsonlSink::emit(const Event& e) {
  std::string line = to_jsonl(e);
  std::lock_guard<std::mutex> lock(mu_);
  ring_[ring_size_++] = std::move(line);
  written_.fetch_add(1, std::memory_order_relaxed);
  if (ring_size_ == ring_.size()) flush_locked();
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
  out_.flush();
}

void JsonlSink::flush_locked() {
  for (std::size_t i = 0; i < ring_size_; ++i) {
    out_ << ring_[i] << '\n';
    ring_[i].clear();
  }
  ring_size_ = 0;
}

}  // namespace tango::obs
