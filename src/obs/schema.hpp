// Event schema validation (`tango events check`, the golden tests, and the
// replay oracle's input gate). The C++ validator is the executable twin of
// docs/schema/search_events.schema.json: per-kind required/optional key
// sets, type checks, and strictness about unknown keys, so a stream that
// validates here also validates against the published JSON Schema.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace tango::obs {

/// One validation problem, tied to a 1-based JSONL line number.
struct SchemaError {
  std::size_t line = 0;
  std::string message;
};

/// Validates a single parsed event object. Appends to `errors`; returns
/// true when the object is a well-formed event of a known kind.
bool validate_event(const JsonValue& v, std::size_t line,
                    std::vector<SchemaError>& errors);

/// Validates a whole stream (one JSON object per line; blank lines are
/// ignored). Checks per-line schema plus stream-level rules: the first
/// event is a `run` header of a supported version, enter/fire ids are
/// unique, and every `parent` references an earlier enter/fire id.
/// Returns true when no errors were appended.
bool validate_stream(const std::string& text, std::vector<SchemaError>& errors);

}  // namespace tango::obs
