#include "obs/replay.hpp"

#include <optional>
#include <unordered_map>
#include <utility>

#include "core/executor.hpp"
#include "core/generator.hpp"
#include "core/obs_record.hpp"
#include "core/options.hpp"
#include "core/search_state.hpp"
#include "core/stats.hpp"
#include "estelle/spec.hpp"
#include "obs/json.hpp"
#include "obs/schema.hpp"
#include "obs/stream.hpp"
#include "runtime/interp.hpp"

namespace tango::obs {

std::string ReplayReport::first_issue() const {
  if (issues.empty()) return "";
  return "event " + std::to_string(issues.front().event_index) + ": " +
         issues.front().message;
}

namespace {

std::string hex16(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Reads an integer counter from the verdict's stats object; 0 if absent.
std::uint64_t counter(const JsonValue& stats, const char* key) {
  const JsonValue* v = stats.find(key);
  if (v == nullptr || !v->is_number() || !v->is_integer || v->integer < 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(v->integer);
}

class Replayer {
 public:
  Replayer(const est::Spec& spec, const tr::Trace& trace,
           const std::vector<Event>& events)
      : spec_(spec), trace_(trace), events_(events) {}

  ReplayReport run() {
    if (events_.empty()) {
      issue(0, "empty event stream");
      return std::move(report_);
    }
    if (events_[0].kind != EventKind::Run) {
      issue(0, "stream does not begin with a run header");
      return std::move(report_);
    }
    if (!begin(events_[0])) return std::move(report_);

    for (std::size_t i = 1; i < events_.size(); ++i) {
      const Event& e = events_[i];
      switch (e.kind) {
        case EventKind::Run:
          issue(i, "duplicate run header");
          break;
        case EventKind::Enter:
          replay_enter(e, i);
          break;
        case EventKind::Fire:
          replay_fire(e, i);
          break;
        case EventKind::Backtrack:
          ++backtracks_;
          break;
        case EventKind::PruneVisited: {
          ++prune_visited_;
          auto it = nodes_.find(e.parent);
          if (it != nodes_.end() && it->second.hash_rec != e.state_hash) {
            issue(i, "prune.visited hash " + hex16(e.state_hash) +
                         " does not match its node's recorded hash " +
                         hex16(it->second.hash_rec));
          }
          break;
        }
        case EventKind::PruneStatic:
          ++prune_static_;
          break;
        case EventKind::PruneShadow:
          break;  // shadow counts feed no Stats counter
        case EventKind::CheckpointSave:
          ++saves_;
          break;
        case EventKind::CheckpointRestore:
          ++restores_;
          break;
        case EventKind::Steal:
          ++steals_;
          break;
        case EventKind::Evict:
          evict_sum_ += e.count;
          break;
        case EventKind::Verdict:
          if (saw_verdict_) {
            issue(i, "duplicate verdict event");
          } else {
            saw_verdict_ = true;
            check_verdict(e, i);
          }
          break;
      }
    }

    if (!saw_verdict_) {
      issue(events_.size(), "stream ends without a verdict event");
    }
    return std::move(report_);
  }

 private:
  struct Node {
    core::SearchState state;  // post-apply; post-generate once `generated`
    core::GenResult gen;
    bool generated = false;
    std::uint64_t hash_rec = 0;
    bool all_done_rec = false;
  };

  void issue(std::size_t index, std::string message) {
    report_.issues.push_back({index, std::move(message)});
  }

  bool begin(const Event& header) {
    report_.engine = header.engine;
    relaxed_ = header.engine == "mdfs";
    try {
      const JsonValue flags = parse_json(header.flags.empty() ? std::string("{}")
                                                              : header.flags);
      core::options_from_flags(flags, options_);
    } catch (const std::exception& ex) {
      issue(0, std::string("bad run-header flags: ") + ex.what());
      return false;
    }
    options_.sink = nullptr;  // never record while replaying
    try {
      ro_.emplace(spec_, options_);
    } catch (const std::exception& ex) {
      issue(0, std::string("options failed to resolve: ") + ex.what());
      return false;
    }
    interp_.emplace(spec_,
                    options_.partial ? rt::EvalMode::Partial
                                     : rt::EvalMode::Strict,
                    options_.interp);
    return true;
  }

  void replay_enter(const Event& e, std::size_t i) {
    if (e.applied) ++enters_applied_;
    if (e.init < 0 ||
        static_cast<std::size_t>(e.init) >= spec_.body().initializers.size()) {
      issue(i, "enter names initializer " + std::to_string(e.init) +
                   " but the spec has " +
                   std::to_string(spec_.body().initializers.size()));
      return;
    }
    core::InitResult init = core::apply_initializer(
        *interp_, trace_, *ro_, static_cast<std::size_t>(e.init), scratch_);
    if (!e.ok) {
      if (init.ok) {
        issue(i, "recorded initializer veto, but initializer " +
                     std::to_string(e.init) + " succeeds on replay");
      }
      return;
    }
    if (!init.ok) {
      issue(i, "recorded ok enter, but initializer " + std::to_string(e.init) +
                   " is vetoed on replay: " + init.note);
      return;
    }
    Node node;
    node.state = std::move(init.state);
    if (e.start_state >= 0) node.state.machine.fsm_state = e.start_state;
    const std::uint64_t h = node.state.hash();
    if (h != e.state_hash) {
      issue(i, "enter state hash mismatch: recorded " + hex16(e.state_hash) +
                   ", replayed " + hex16(h));
      return;
    }
    if (!relaxed_) {
      const bool done = node.state.cursors.all_done(trace_, *ro_);
      if (done != e.all_done) {
        issue(i, std::string("enter all_done mismatch: recorded ") +
                     (e.all_done ? "true" : "false"));
        return;
      }
    }
    node.hash_rec = e.state_hash;
    node.all_done_rec = e.all_done;
    nodes_.emplace(e.id, std::move(node));
    ++report_.nodes_replayed;
  }

  /// Runs generate() on the node's stored state exactly once, in place —
  /// the engines hash fires against the *post-generate* branching state
  /// (impure provided-clauses may mutate it), so replay must too.
  Node* generated_node(std::uint64_t id) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return nullptr;
    Node& node = it->second;
    if (!node.generated) {
      node.gen = core::generate(*interp_, trace_, *ro_, node.state, scratch_);
      node.generated = true;
    }
    return &node;
  }

  void replay_fire(const Event& e, std::size_t i) {
    ++fires_total_;
    ++report_.fires_checked;
    Node* parent = generated_node(e.parent);
    if (parent == nullptr) {
      issue(i, "fire references node " + std::to_string(e.parent) +
                   " which was not replayed");
      return;
    }
    const core::Firing* firing = nullptr;
    for (const core::Firing& f : parent->gen.firings) {
      if (f.transition == e.transition && f.input_event == e.input_event) {
        firing = &f;
        break;
      }
    }
    core::Firing fallback;
    if (firing == nullptr) {
      if (!e.ok && relaxed_) return;  // growth-time veto, unreproducible
      if (relaxed_) {
        // A parked node re-generated mid-growth can fire a candidate the
        // final-trace generate() orders away; retry from the raw fields.
        fallback.transition = e.transition;
        fallback.input_event = e.input_event;
        fallback.synthesized = e.synthesized;
        firing = &fallback;
      } else {
        issue(i, "fired transition " + std::to_string(e.transition) +
                     " (input_event " + std::to_string(e.input_event) +
                     ") is not enabled at node " + std::to_string(e.parent));
        return;
      }
    }
    if (firing->synthesized != e.synthesized) {
      issue(i, "fire synthesized flag mismatch");
      return;
    }
    if (!e.ok) {
      if (relaxed_) return;  // veto reflects a trace prefix, skip
      core::SearchState probe = parent->state;
      core::ApplyResult applied = core::apply_firing(
          *interp_, trace_, *ro_, probe, *firing, scratch_);
      if (applied.ok) {
        issue(i, "recorded veto of transition " +
                     std::to_string(e.transition) +
                     ", but it applies cleanly on replay");
      }
      return;
    }
    Node child;
    child.state = parent->state;
    core::ApplyResult applied = core::apply_firing(
        *interp_, trace_, *ro_, child.state, *firing, scratch_);
    if (!applied.ok) {
      issue(i, "recorded ok fire of transition " +
                   std::to_string(e.transition) +
                   " is vetoed on replay: " + applied.note);
      return;
    }
    const std::uint64_t h = child.state.hash();
    if (h != e.state_hash) {
      issue(i, "fire state hash mismatch: recorded " + hex16(e.state_hash) +
                   ", replayed " + hex16(h));
      return;
    }
    if (!relaxed_) {
      const bool done = child.state.cursors.all_done(trace_, *ro_);
      if (done != e.all_done) {
        issue(i, std::string("fire all_done mismatch: recorded ") +
                     (e.all_done ? "true" : "false"));
        return;
      }
    }
    child.hash_rec = e.state_hash;
    child.all_done_rec = e.all_done;
    nodes_.emplace(e.id, std::move(child));
    ++report_.nodes_replayed;
  }

  void check_verdict(const Event& e, std::size_t i) {
    report_.verdict = e.verdict;
    report_.witness = e.parent;

    if (e.verdict == "valid") {
      auto it = nodes_.find(e.parent);
      if (e.parent == 0 || it == nodes_.end()) {
        issue(i, "valid verdict without a replayed witness node");
      } else if (!it->second.all_done_rec) {
        issue(i, "valid verdict's witness was not recorded all_done");
      } else if (!it->second.state.cursors.all_done(trace_, *ro_)) {
        issue(i, "valid verdict's witness does not consume the whole trace "
                 "on replay");
      }
    } else if (e.parent != 0) {
      issue(i, "verdict '" + e.verdict + "' names witness node " +
                   std::to_string(e.parent) + "; only 'valid' may");
    }

    // Schema v2 reason: must be a known token, appear exactly on
    // inconclusive verdicts, and name a budget the run-header flags
    // actually armed — a "deadline" reason in a run with no --deadline is
    // a fabricated stream.
    if (!e.reason.empty()) {
      core::InconclusiveReason r = core::InconclusiveReason::None;
      if (!core::parse_reason(e.reason, r)) {
        issue(i, "unknown verdict reason '" + e.reason + "'");
      } else if (e.verdict != "inconclusive") {
        issue(i, "verdict '" + e.verdict + "' carries reason '" + e.reason +
                     "'; only 'inconclusive' may");
      } else {
        bool armed = false;
        switch (r) {
          case core::InconclusiveReason::Transitions:
            armed = options_.max_transitions != 0;
            break;
          case core::InconclusiveReason::Depth:
            armed = options_.max_depth != 0;
            break;
          case core::InconclusiveReason::Deadline:
            armed = options_.deadline_ms != 0;
            break;
          case core::InconclusiveReason::Memory:
            armed = options_.max_memory != 0;
            break;
          case core::InconclusiveReason::Shutdown:
            // An operator/drain decision, not a budget — no flag arms it.
            armed = true;
            break;
          case core::InconclusiveReason::None:
            break;
        }
        if (!armed) {
          issue(i, "verdict reason '" + e.reason +
                       "' names a budget the run-header flags never armed");
        }
      }
    } else if (e.verdict == "inconclusive") {
      issue(i, "inconclusive verdict without a reason");
    }

    if (e.stats_json.empty()) {
      issue(i, "verdict event carries no stats");
      return;
    }
    JsonValue stats;
    try {
      stats = parse_json(e.stats_json);
    } catch (const std::exception& ex) {
      issue(i, std::string("verdict stats do not parse: ") + ex.what());
      return;
    }

    const std::uint64_t te = counter(stats, "te");
    const std::uint64_t accounted = fires_total_ + enters_applied_;
    if (relaxed_) {
      // Pending-root initializer retries execute bodies without emitting
      // events, so the stream accounts for a lower bound of TE.
      if (te < accounted) {
        issue(i, "te " + std::to_string(te) + " below the " +
                     std::to_string(accounted) +
                     " executions the stream accounts for");
      }
    } else if (te != accounted) {
      issue(i, "te " + std::to_string(te) + " != fires + applied enters (" +
                   std::to_string(accounted) + ")");
    }
    check_counter(i, stats, "sa", saves_);
    check_counter(i, stats, "re", restores_);
    check_counter(i, stats, "pruned_by_hash", prune_visited_);
    check_counter(i, stats, "static_skips", prune_static_);
    check_counter(i, stats, "tasks_stolen", steals_);
    check_counter(i, stats, "evictions", evict_sum_);
  }

  void check_counter(std::size_t i, const JsonValue& stats, const char* key,
                     std::uint64_t streamed) {
    const std::uint64_t recorded = counter(stats, key);
    if (recorded != streamed) {
      issue(i, std::string(key) + " " + std::to_string(recorded) +
                   " != " + std::to_string(streamed) +
                   " accounted for by the stream");
    }
  }

  const est::Spec& spec_;
  const tr::Trace& trace_;
  const std::vector<Event>& events_;
  ReplayReport report_;

  core::Options options_;
  std::optional<core::ResolvedOptions> ro_;
  std::optional<rt::Interp> interp_;
  core::Stats scratch_;
  std::unordered_map<std::uint64_t, Node> nodes_;
  bool relaxed_ = false;

  std::uint64_t fires_total_ = 0;
  std::uint64_t enters_applied_ = 0;
  std::uint64_t saves_ = 0;
  std::uint64_t restores_ = 0;
  std::uint64_t prune_visited_ = 0;
  std::uint64_t prune_static_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t evict_sum_ = 0;
  std::uint64_t backtracks_ = 0;
  bool saw_verdict_ = false;
};

}  // namespace

ReplayReport replay(const est::Spec& spec, const tr::Trace& trace,
                    const std::vector<Event>& events) {
  return Replayer(spec, trace, events).run();
}

ReplayReport replay_stream(const est::Spec& spec, const tr::Trace& trace,
                           const std::string& text) {
  std::vector<SchemaError> schema_errors;
  if (!validate_stream(text, schema_errors)) {
    ReplayReport report;
    for (const SchemaError& err : schema_errors) {
      report.issues.push_back(
          {err.line, "schema: " + err.message});
    }
    return report;
  }
  ReadResult rr = read_events(text);
  if (!rr.errors.empty()) {
    ReplayReport report;
    for (const ReadError& err : rr.errors) {
      report.issues.push_back({err.line, "parse: " + err.message});
    }
    return report;
  }
  return replay(spec, trace, rr.events);
}

}  // namespace tango::obs
