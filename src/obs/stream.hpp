// Reading recorded event streams back: JSONL text -> Event records, plus
// the aggregation behind `tango events stats`. Parsing is tolerant of
// per-line noise (each bad line becomes one error, later lines still
// parse); use validate_stream for strict schema checking first.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/json.hpp"

namespace tango::obs {

/// Converts a parsed JSON object into an Event. Throws std::runtime_error
/// on a structurally unusable object (no/unknown kind, bad field type);
/// unknown fields are ignored here — strictness lives in the validator.
[[nodiscard]] Event event_from_json(const JsonValue& v);

struct ReadError {
  std::size_t line = 0;
  std::string message;
};

struct ReadResult {
  std::vector<Event> events;
  std::vector<ReadError> errors;
};

/// Parses a whole JSONL stream; blank lines are skipped.
[[nodiscard]] ReadResult read_events(const std::string& text);

/// Reads and parses a JSONL file. Throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] ReadResult read_events_file(const std::string& path);

/// `tango events stats`: per-kind counts plus headline figures.
struct StreamStats {
  std::map<std::string, std::uint64_t> by_kind;  // kind name -> count
  std::uint64_t nodes = 0;          // enter + fire events (ok or not)
  std::uint64_t applied_ok = 0;     // enter/fire with ok=true
  std::uint64_t vetoed = 0;         // enter/fire with ok=false
  std::int32_t max_depth = 0;
  std::int32_t workers = 0;         // distinct worker ids (>= 0) seen
  std::string engine;               // from the run header, "" if absent
  std::string verdict;              // from the verdict event, "" if absent
};

[[nodiscard]] StreamStats summarize(const std::vector<Event>& events);

/// Renders the summary as a small JSON object (stable key order).
[[nodiscard]] std::string stats_to_json(const StreamStats& s);

}  // namespace tango::obs
