# Empty compiler generated dependencies file for mdfs_test.
# This may be replaced when dependencies are built.
