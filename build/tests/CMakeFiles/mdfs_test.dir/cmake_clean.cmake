file(REMOVE_RECURSE
  "CMakeFiles/mdfs_test.dir/core/mdfs_test.cpp.o"
  "CMakeFiles/mdfs_test.dir/core/mdfs_test.cpp.o.d"
  "mdfs_test"
  "mdfs_test.pdb"
  "mdfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
