# Empty dependencies file for inres_test.
# This may be replaced when dependencies are built.
